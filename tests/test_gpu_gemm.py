"""Unit tests for the GEMM kernel model (repro.gpu.gemm)."""

import pytest

from repro.config import table1_system
from repro.gpu.gemm import GEMMKernel, GEMMResult, LocalWriteSink
from repro.gpu.wavefront import GEMMShape, TileGrid
from repro.interconnect.topology import RingTopology
from repro.memory.cache import estimate_gemm_traffic
from repro.sim import Environment


def small_system(**fidelity):
    defaults = dict(quantum_bytes=8 * 1024)
    defaults.update(fidelity)
    return table1_system(n_gpus=2).with_fidelity(**defaults)


def make_kernel(system, m=512, n=512, k=256, n_cus=4, bypass=False,
                **kwargs):
    shape = GEMMShape(m, n, k)
    grid = TileGrid(shape, system.gemm, n_cus=n_cus)
    traffic = estimate_gemm_traffic(grid, system.memory, bypass_writes=bypass)
    return GEMMKernel(grid, traffic, n_cus=n_cus, **kwargs)


def run_kernel(system, kernel, policy="compute-priority"):
    env = Environment()
    topo = RingTopology(env, system, policy_name=policy)
    gpu = topo.gpus[0]
    proc = gpu.launch(kernel)
    result = env.run_until_process(proc)
    return env, gpu, result


def test_kernel_runs_to_completion():
    system = small_system()
    kernel = make_kernel(system)
    env, gpu, result = run_kernel(system, kernel)
    assert isinstance(result, GEMMResult)
    assert result.duration > 0
    assert len(result.stage_ends) == kernel.grid.n_stages


def test_writes_land_in_dram_counters():
    system = small_system()
    kernel = make_kernel(system)
    _env, gpu, _result = run_kernel(system, kernel)
    expected = kernel.grid.n_wgs * kernel.grid.wg_tile_bytes
    assert gpu.mc.counters.get("gemm.write") == pytest.approx(expected)
    assert gpu.mc.counters.get("gemm.read") == pytest.approx(
        kernel.traffic.total_read_bytes)


def test_compute_bound_gemm_duration_close_to_flop_time():
    system = small_system()
    # Large K makes the GEMM strongly compute bound.
    kernel = make_kernel(system, m=256, n=256, k=8192, n_cus=2)
    env, gpu, result = run_kernel(system, kernel)
    flop_time = kernel.total_flops() / kernel.sustained_flops(gpu)
    assert result.duration >= flop_time
    assert result.duration <= flop_time * 1.5 + kernel.launch_overhead_ns * 2


def test_memory_bound_gemm_limited_by_hbm():
    system = small_system()
    # Tiny K: traffic dominates compute.
    kernel = make_kernel(system, m=2048, n=2048, k=8, n_cus=80)
    env, gpu, result = run_kernel(system, kernel)
    total_bytes = (kernel.traffic.total_read_bytes
                   + kernel.traffic.total_write_bytes)
    mem_time = total_bytes / system.memory.effective_bandwidth
    assert result.duration >= mem_time * 0.8


def test_halving_cus_roughly_doubles_compute_bound_time():
    """The Figure 6 CU-sharing effect on the GEMM side."""
    system = small_system()
    slow = make_kernel(system, m=512, n=512, k=4096, n_cus=2)
    fast = make_kernel(system, m=512, n=512, k=4096, n_cus=4)
    _, _, slow_result = run_kernel(system, slow)
    _, _, fast_result = run_kernel(system, fast)
    ratio = slow_result.duration / fast_result.duration
    assert 1.6 < ratio < 2.2


def test_tp_slicing_shrinks_gemm_time_but_not_writes():
    system = small_system()
    full = make_kernel(system, k=4096, n_cus=4)
    sliced_shape = GEMMShape(512, 512, 4096).tp_sliced(8)
    grid = TileGrid(sliced_shape, system.gemm, n_cus=4)
    traffic = estimate_gemm_traffic(grid, system.memory, bypass_writes=False)
    sliced = GEMMKernel(grid, traffic, n_cus=4)
    _, gpu_full, full_result = run_kernel(system, full)
    _, gpu_sliced, sliced_result = run_kernel(system, sliced)
    assert sliced_result.duration < full_result.duration
    assert gpu_full.mc.counters.get("gemm.write") == pytest.approx(
        gpu_sliced.mc.counters.get("gemm.write"))


def test_stage_count_mismatch_rejected():
    system = small_system()
    shape = GEMMShape(512, 512, 256)
    grid_a = TileGrid(shape, system.gemm, n_cus=4)
    grid_b = TileGrid(GEMMShape(2048, 512, 256), system.gemm, n_cus=4)
    traffic_b = estimate_gemm_traffic(grid_b, system.memory, False)
    with pytest.raises(ValueError, match="stage count"):
        GEMMKernel(grid_a, traffic_b)


def test_mca_calibration_happens_after_first_stage():
    system = small_system()
    kernel = make_kernel(system, calibrate_mca=True)
    env = Environment()
    topo = RingTopology(env, system, policy_name="mca")
    gpu = topo.gpus[0]
    proc = gpu.launch(kernel)
    env.run_until_process(proc)
    for channel in gpu.mc.channels:
        assert channel.policy.calibrations, "calibrate() never called"


def test_launch_overhead_delays_start():
    system = small_system()
    kernel = make_kernel(system, launch_overhead_ns=5000.0)
    env, gpu, result = run_kernel(system, kernel)
    assert result.stage_ends[0] >= 5000.0


def test_custom_sink_receives_every_stage():
    system = small_system()

    class RecordingSink(LocalWriteSink):
        def __init__(self):
            super().__init__()
            self.stages = []
            self.completed = False

        def store_stage(self, gpu, kernel, stage):
            self.stages.append(stage.index)
            return super().store_stage(gpu, kernel, stage)

        def on_kernel_complete(self, gpu, kernel):
            self.completed = True

    sink = RecordingSink()
    kernel = make_kernel(system, sink=sink)
    run_kernel(system, kernel)
    assert sink.stages == list(range(kernel.grid.n_stages))
    assert sink.completed
