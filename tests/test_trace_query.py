"""Tests for the trace-intelligence layer (repro.trace).

A module-scoped fused TP=4 run (with registry + decomposition-grade
trace) serves as the golden fixture: every query, join, decomposition,
pass, and render is checked against it, including the headline contract
— post-hoc numbers from a saved file equal the live profiler's exactly.
"""

import json

import pytest

from repro.analysis.trace import TraceRecorder
from repro.config import table1_system
from repro.gpu.wavefront import GEMMShape
from repro.interconnect.topology import RingTopology
from repro.obs import MetricsRegistry, profiler
from repro.sim import Environment
from repro.t3.fusion import FusedGEMMRS
from repro.trace import (
    PASSES,
    TraceQuery,
    attribute_plan_stages_query,
    attribute_stages_query,
    comm_intervals,
    compute_intervals,
    counter_view,
    decompose_query,
    has_dram_spans,
    render_timeline,
    run_passes,
)


@pytest.fixture(scope="module")
def fused_run():
    """One fused GEMM-RS run with live telemetry and a full trace."""
    env = Environment()
    registry = MetricsRegistry()
    env.obs = registry
    trace = TraceRecorder(record_dram=True)
    env.trace = trace
    system = table1_system(n_gpus=4).with_fidelity(quantum_bytes=16 * 1024)
    topo = RingTopology(env, system)
    FusedGEMMRS(topo, GEMMShape(1024, 512, 256), n_cus=4).run()
    return registry, trace


@pytest.fixture(scope="module")
def saved(fused_run, tmp_path_factory):
    registry, trace = fused_run
    path = tmp_path_factory.mktemp("trace") / "fused.trace.json"
    trace.save(str(path), registry=registry)
    return path


@pytest.fixture(scope="module")
def query(saved):
    return TraceQuery.from_file(str(saved))


# ---------------------------------------------------------------- loading

def test_from_file_matches_from_recorder(fused_run, query):
    registry, trace = fused_run
    live = TraceQuery.from_recorder(trace, registry=registry)
    assert len(live) == len(query)
    assert live.categories() == query.categories()
    assert sorted(live.tracks()) == sorted(query.tracks())


def test_exact_ns_round_trip(fused_run, query):
    """Saved spans carry exact float ns, not microsecond-rounded times."""
    _, trace = fused_run
    live = sorted(trace.spans, key=lambda s: s.sort_key())
    loaded = sorted(query.select(), key=lambda s: s.sort_key())
    assert [(s.start_ns, s.end_ns) for s in live] == \
        [(s.start_ns, s.end_ns) for s in loaded]


def test_counter_tracks_loaded(query):
    tracks = query.counter_tracks()
    assert tracks, "saved registry produced no counter tracks"
    view = counter_view(query, r"\.gemm\.stage_end$")
    assert view.tracks and view.values()


def test_from_events_accepts_foreign_traces():
    """Traces without args.start_ns fall back to ts/dur microseconds."""
    events = [{"ph": "X", "name": "op", "cat": "kernel", "ts": 1.0,
               "dur": 2.0, "pid": "compute", "tid": 0}]
    query = TraceQuery.from_events(events)
    span = query.select(category="kernel")[0]
    assert (span.start_ns, span.end_ns) == (1000.0, 3000.0)


# -------------------------------------------------------------- selection

def test_select_by_category_and_track(query):
    kernels = query.select(category="kernel")
    assert len(kernels) == 4
    one_track = query.select(track=kernels[0].track)
    assert all(s.track == kernels[0].track for s in one_track)


def test_select_window_keeps_overlapping_spans(query):
    lo, hi = query.bounds()
    mid = (lo + hi) / 2
    windowed = query.select(window=(lo, mid))
    assert windowed and all(s.start_ns <= mid and s.end_ns >= lo
                            for s in windowed)
    assert len(windowed) < len(query)


def test_track_summaries_and_utilization(query):
    summaries = query.summaries()
    assert summaries
    for summary in summaries:
        assert 0.0 <= summary.utilization <= 1.0
        assert summary.busy_ns <= query.horizon_ns
    util = query.utilization(category="kernel")
    assert 0.0 < util <= 1.0


def test_gaps_complement_busy_time(query):
    track = query.select(category="dma")[0].track
    summary = query.track_summary(track)
    gap_total = sum(hi - lo for lo, hi in query.gaps(track))
    assert gap_total == pytest.approx(summary.gap_ns)
    window = summary.last_ns - summary.first_ns
    assert gap_total == pytest.approx(window - summary.busy_ns)


# ------------------------------------------------------------------ joins

def test_chunk_flows_join_dma_link_dram(query):
    flows = query.chunk_flows()
    assert flows, "no DMA->link->DRAM flows joined"
    for flow in flows:
        assert flow.links, f"DMA {flow.dma.name} joined no link spans"
        for link in flow.links:
            assert link.start_ns >= flow.dma.start_ns
            assert link.end_ns <= flow.dma.end_ns
            assert link.track == f"link.{flow.src_gpu}->{flow.dst_gpu}"
        for service in flow.dram:
            assert service.track.startswith(f"gpu{flow.dst_gpu}.")
            assert service.args.get("stream") == "comm"
            if service.args.get("chunk") is not None:
                assert service.args["chunk"] == flow.chunk
        assert flow.trigger_to_wire_ns >= 0.0
    assert any(flow.dram for flow in flows), \
        "record_dram trace joined no DRAM service spans"


def test_join_respects_key_equality(query):
    dmas = query.select(category="dma")
    links = query.select(category="link")
    joined = query.join(dmas, links, key=lambda s: s.args.get("chunk"))
    assert joined and all(children for _, children in joined
                          if children)


# ---------------------------------------------------------- critical path

def test_critical_path_walks_backward_contiguously(query):
    path = query.critical_path()
    assert path, "empty critical path"
    assert path[-1].span.end_ns == query.bounds()[1]
    for earlier, later in zip(path, path[1:]):
        assert earlier.span.end_ns <= later.span.start_ns
        assert later.slack_ns == pytest.approx(
            later.span.start_ns - earlier.span.end_ns)
    breakdown = query.critical_path_breakdown()
    assert set(breakdown) <= {"kernel", "dma", "link", "dram", "slack"}


# ---------------------------------------------- post-hoc == live contract

def test_decomposition_matches_live_profiler_exactly(fused_run, query):
    registry, _ = fused_run
    live = profiler.decompose(registry)
    posthoc = decompose_query(query)
    assert posthoc.compute_ns == live.compute_ns
    assert posthoc.comm_ns == live.comm_ns
    assert posthoc.hidden_ns == live.hidden_ns
    assert posthoc.exposed_ns == live.exposed_ns


def test_stage_attribution_matches_live_exactly(fused_run, query):
    registry, _ = fused_run
    live = [s.__dict__ for s in profiler.attribute_stages(registry)]
    posthoc = [s.__dict__ for s in attribute_stages_query(query)]
    assert posthoc == live


def test_plan_stage_attribution_matches_live_exactly(fused_run, query):
    registry, _ = fused_run
    live = [s.__dict__ for s in profiler.attribute_plan_stages(registry)]
    posthoc = [s.__dict__ for s in attribute_plan_stages_query(query)]
    assert posthoc == live


def test_interval_helpers(query):
    assert has_dram_spans(query)
    compute = compute_intervals(query)
    comm = comm_intervals(query)
    assert compute and comm
    for intervals in (compute, comm):
        assert all(lo <= hi for lo, hi in intervals)


# ----------------------------------------------------------------- passes

def test_all_passes_run_on_golden_trace(query):
    results = run_passes(query)
    assert [r.name for r in results] == list(PASSES)
    for result in results:
        assert result.text.strip()
        json.dumps(result.to_dict())  # JSON-serializable


def test_unknown_pass_raises(query):
    with pytest.raises(KeyError):
        run_passes(query, ["nonsense"])


def test_trigger_latency_pass_finds_tracker_series(query):
    result = run_passes(query, ["trigger-latency"])[0]
    assert result.data.get("count", 0) > 0


# --------------------------------------------------------------- timeline

def test_render_timeline_headless(query):
    text = render_timeline(query, width=80)
    lines = text.splitlines()
    assert len(lines) >= 3
    assert any("%" in line for line in lines)  # per-track utilization
    assert all(len(line) <= 140 for line in lines)


def test_render_timeline_window_and_filter(query):
    lo, hi = query.bounds()
    dma_tracks = [t for t in query.tracks() if t.endswith(".dma")]
    text = render_timeline(query, width=60, window=(lo, (lo + hi) / 2),
                           tracks=dma_tracks)
    lines = text.splitlines()
    assert dma_tracks and len(lines) == len(dma_tracks) + 2
    assert all(track in text for track in dma_tracks)
