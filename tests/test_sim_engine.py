"""Unit tests for the discrete-event engine (repro.sim.engine)."""

import pytest

from repro.sim import Environment, SimulationError
from repro.sim.engine import BaseEvent


def test_time_starts_at_zero():
    env = Environment()
    assert env.now == 0.0


def test_timeout_advances_clock():
    env = Environment()

    def proc():
        yield env.timeout(10)
        assert env.now == 10
        yield env.timeout(5)
        assert env.now == 15

    p = env.process(proc())
    env.run()
    assert env.now == 15
    assert p.triggered and p.ok


def test_timeout_value_is_delivered():
    env = Environment()
    seen = []

    def proc():
        value = yield env.timeout(1, value="hello")
        seen.append(value)

    env.process(proc())
    env.run()
    assert seen == ["hello"]


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        env.timeout(-1)


def test_same_time_events_fire_fifo():
    env = Environment()
    order = []

    def proc(tag):
        yield env.timeout(5)
        order.append(tag)

    for tag in ("a", "b", "c"):
        env.process(proc(tag))
    env.run()
    assert order == ["a", "b", "c"]


def test_process_return_value():
    env = Environment()

    def child():
        yield env.timeout(3)
        return 42

    def parent(results):
        value = yield env.process(child())
        results.append(value)

    results = []
    env.process(parent(results))
    env.run()
    assert results == [42]


def test_run_until_process_returns_value():
    env = Environment()

    def child():
        yield env.timeout(7)
        return "done"

    p = env.process(child())
    assert env.run_until_process(p) == "done"
    assert env.now == 7


def test_run_until_time_stops_early():
    env = Environment()

    def proc():
        yield env.timeout(100)

    env.process(proc())
    final = env.run(until=40)
    assert final == 40
    assert env.now == 40
    # Remaining event still pending.
    assert env.peek() == 100


def test_run_until_past_raises():
    env = Environment()

    def noop():
        yield env.timeout(1)

    env.process(noop())
    env.run()
    with pytest.raises(SimulationError):
        env.run(until=env.now - 1)


def test_manual_event_succeed():
    env = Environment()
    gate = env.event()
    log = []

    def waiter():
        value = yield gate
        log.append((env.now, value))

    def opener():
        yield env.timeout(12)
        gate.succeed("open")

    env.process(waiter())
    env.process(opener())
    env.run()
    assert log == [(12, "open")]


def test_event_double_trigger_raises():
    env = Environment()
    ev = env.event()
    ev.succeed()
    with pytest.raises(SimulationError):
        ev.succeed()
    with pytest.raises(SimulationError):
        ev.fail(RuntimeError("boom"))


def test_event_fail_throws_into_waiter():
    env = Environment()
    ev = env.event()
    caught = []

    def waiter():
        try:
            yield ev
        except RuntimeError as exc:
            caught.append(str(exc))

    env.process(waiter())
    ev.fail(RuntimeError("boom"))
    env.run()
    assert caught == ["boom"]


def test_fail_requires_exception_instance():
    env = Environment()
    ev = env.event()
    with pytest.raises(TypeError):
        ev.fail("not an exception")  # type: ignore[arg-type]


def test_unhandled_process_exception_propagates():
    env = Environment()

    def bad():
        yield env.timeout(1)
        raise ValueError("kaput")

    env.process(bad())
    with pytest.raises(ValueError, match="kaput"):
        env.run()


def test_waited_process_exception_forwarded_to_parent():
    env = Environment()
    caught = []

    def bad():
        yield env.timeout(1)
        raise ValueError("inner")

    def parent():
        try:
            yield env.process(bad())
        except ValueError as exc:
            caught.append(str(exc))

    env.process(parent())
    env.run()
    assert caught == ["inner"]


def test_yielding_non_event_raises():
    env = Environment()

    def bad():
        yield 5  # not an event

    env.process(bad())
    with pytest.raises(SimulationError, match="must[\\s\\S]*yield events"):
        env.run()


def test_late_callback_runs_immediately():
    env = Environment()
    ev = env.event()
    ev.succeed("v")
    env.run()
    seen = []
    ev.add_callback(lambda e: seen.append(e.value))
    assert seen == ["v"]


def test_deadlock_detected_by_run_until_process():
    env = Environment()
    never = env.event()

    def stuck():
        yield never

    p = env.process(stuck())
    with pytest.raises(SimulationError, match="deadlock"):
        env.run_until_process(p)


def test_interleaving_of_two_processes():
    env = Environment()
    trace = []

    def ping():
        for _ in range(3):
            yield env.timeout(2)
            trace.append(("ping", env.now))

    def pong():
        for _ in range(2):
            yield env.timeout(3)
            trace.append(("pong", env.now))

    env.process(ping())
    env.process(pong())
    env.run()
    # At t=6 pong's timeout was scheduled (at t=3) before ping's (at t=4),
    # so pong fires first — the engine is FIFO in scheduling order.
    assert trace == [
        ("ping", 2), ("pong", 3), ("ping", 4), ("pong", 6), ("ping", 6),
    ]


def test_interrupt_wakes_process():
    env = Environment()
    from repro.sim import Interrupt

    log = []

    def sleeper():
        try:
            yield env.timeout(1000)
        except Interrupt as intr:
            log.append((env.now, intr.cause))

    def interrupter(target):
        yield env.timeout(5)
        target.interrupt("wake up")

    p = env.process(sleeper())
    env.process(interrupter(p))
    env.run()
    assert log == [(5, "wake up")]


def test_step_on_empty_schedule_raises():
    env = Environment()
    with pytest.raises(SimulationError):
        env.step()


def test_peek_reports_next_event_time():
    env = Environment()
    assert env.peek() == float("inf")
    env.timeout(9)
    assert env.peek() == 9


def test_schedule_in_past_rejected():
    env = Environment()
    ev = BaseEvent(env)
    with pytest.raises(SimulationError):
        env._schedule(ev, delay=-1)
