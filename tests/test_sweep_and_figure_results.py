"""Tests for the cached sub-layer sweep and figure result dataclasses."""

import pytest

from repro.config import table1_system
from repro.experiments import sublayer_sweep
from repro.experiments.figure19 import Figure19Result, Figure19Row
from repro.experiments.figure20 import Figure20Result, Figure20Row
from repro.experiments.figure15 import Figure15Row
from repro.models import zoo


# ------------------------------------------------------------ sweep caching

def test_run_case_caches_by_label_and_system():
    sublayer_sweep.clear_cache()
    sub = zoo.t_nlg().sublayer("OP", 4)
    system = table1_system(n_gpus=4).with_fidelity(quantum_bytes=64 * 1024)
    first = sublayer_sweep.run_case(sub, fast=True, system=system)
    second = sublayer_sweep.run_case(sub, fast=True, system=system)
    assert first is second  # cache hit returns the identical object
    third = sublayer_sweep.run_case(sub, fast=True, system=system,
                                    use_cache=False)
    assert third is not first
    # Same numbers either way (determinism).
    assert third.times["Sequential"] == pytest.approx(
        first.times["Sequential"])
    sublayer_sweep.clear_cache()


def test_run_case_rejects_tp_mismatched_system():
    sub = zoo.t_nlg().sublayer("OP", 8)
    with pytest.raises(ValueError, match="n_gpus=8"):
        sublayer_sweep.run_case(sub, system=table1_system(n_gpus=4))


def test_run_case_rejects_unknown_config_name():
    """Regression: a typo like "T3-mca" used to be silently dropped and
    only surfaced later as a KeyError in SublayerSuite.speedup()."""
    sub = zoo.t_nlg().sublayer("OP", 4)
    with pytest.raises(ValueError, match="T3-mca"):
        sublayer_sweep.run_case(sub, system=table1_system(n_gpus=4),
                                configs=["Sequential", "T3-mca"])


def test_run_sublayer_suite_rejects_unknown_config_name():
    from repro.experiments.common import run_sublayer_suite
    from repro.gpu.wavefront import GEMMShape
    with pytest.raises(ValueError, match="Ideal-NMC"):
        run_sublayer_suite(table1_system(n_gpus=4),
                           GEMMShape(2048, 1024, 1024),
                           configs=["Ideal-NMC"])


def test_run_case_rejects_unchunkable_shape():
    """Regression: when the unscaled M is already below the min_m the
    sweep computes from tp and the macro-tile, the old code silently
    clamped and let ring fusion fail downstream; now it raises."""
    tiny = zoo.TransformerConfig("tiny", hidden=128, n_layers=2,
                                 seq_len=64, batch=1)
    sub = tiny.sublayer("OP", 4)   # tokens=64 < min_m=4*128
    with pytest.raises(ValueError, match="min_m"):
        sublayer_sweep.run_case(sub, system=table1_system(n_gpus=4))


def test_scaled_shape_rejects_m_below_floor():
    from repro.experiments.common import scaled_shape
    from repro.gpu.wavefront import GEMMShape
    with pytest.raises(ValueError, match="min_m"):
        scaled_shape(GEMMShape(128, 1024, 1024), 8, min_m=512)
    with pytest.raises(ValueError, match="min_m"):
        scaled_shape(GEMMShape(128, 1024, 1024), 1, min_m=512)


def test_default_cases_grids():
    small = sublayer_sweep.default_cases()
    assert len(small) == 16
    assert {c.tp for c in small} == {8, 16}
    large = sublayer_sweep.default_cases(large=True)
    assert len(large) == 12
    assert {c.tp for c in large} == {32}


def test_full_mode_coarsens_quantum():
    sub = zoo.t_nlg().sublayer("OP", 4)
    # Exercised indirectly: full-mode quantum constant must exceed the
    # default fidelity quantum.
    assert sublayer_sweep.FULL_MODE_QUANTUM > \
        table1_system().fidelity.quantum_bytes


# ------------------------------------------------------ result dataclasses

def test_figure15_row_fractions_sum():
    row = Figure15Row(case="x", gemm_us=50, rs_us=30, ag_us=20)
    assert row.total_us == 100
    assert row.gemm_fraction + row.rs_fraction + row.ag_fraction == \
        pytest.approx(1.0)


def test_figure19_result_max_speedup():
    rows = [
        Figure19Row("m", 8, "training", 1.05, 1.08),
        Figure19Row("m", 8, "prompt", 1.07, 1.12),
    ]
    result = Figure19Result(rows=rows, sublayer_speedups={})
    assert result.max_speedup("T3", "training") == 1.05
    assert result.max_speedup("T3-MCA", "prompt") == 1.12
    assert "Figure 19" in result.render()


def test_figure20_result_lookup_and_deltas():
    rows = [
        Figure20Row("PALM/FC-2/TP32", 1.30, 1.35, 1.34, 1.40),
        Figure20Row("PALM/OP/TP32", 1.24, 1.17, 1.26, 1.21),
    ]
    result = Figure20Result(rows=rows)
    fc2 = result.row("FC-2")
    assert fc2.delta == pytest.approx(0.05)
    assert fc2.ideal_delta == pytest.approx(0.06)
    assert result.row("OP").delta == pytest.approx(-0.07)
    with pytest.raises(KeyError):
        result.row("GPT-3")
    assert "ideal1x" in result.render()
