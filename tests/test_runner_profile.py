"""CLI tests for the ``profile`` subcommand and ``--profile`` flag
(repro.experiments.runner) plus the case-filter helper."""

import json

import pytest

from repro.experiments import profile, runner
from repro.models import zoo


# ---------------------------------------------------------- filter_cases

def test_filter_cases_ignores_case_and_punctuation():
    cases = [zoo.megatron_gpt2().sublayer("FC-2", 8),
             zoo.t_nlg().sublayer("OP", 8)]
    selected = profile.filter_cases(cases, "fc2")
    assert [sub.label for sub in selected] == [cases[0].label]
    assert profile.filter_cases(cases, None) == cases


def test_filter_cases_rejects_unmatched_filter():
    cases = [zoo.t_nlg().sublayer("OP", 8)]
    with pytest.raises(ValueError, match="matched none"):
        profile.filter_cases(cases, "nope")


# --------------------------------------------------------------- profile.run

@pytest.fixture(scope="module")
def small_report():
    """One cheap TP=4 case through the real profiling pipeline."""
    return profile.run(fast=True,
                       cases=[zoo.t_nlg().sublayer("OP", 4)],
                       configs=("Sequential", "T3-MCA"))


def test_profile_run_produces_strict_hiding(small_report):
    assert len(small_report.cases) == 1
    case = small_report.cases[0]
    assert case.hidden_ns("Sequential") == 0.0
    assert case.hidden_ns("T3-MCA") > 0.0
    assert small_report.check_strict_hiding("T3-MCA", "Sequential")


def test_profile_run_totals_pinned_to_suite_times(small_report):
    breakdown = small_report.cases[0].configs["T3-MCA"].breakdown
    # total is the suite's GEMM+RS+AG time, which is longer than the
    # profiled horizon of the fused portion alone.
    assert breakdown.total_ns > 0
    assert 0.0 <= breakdown.overlap_efficiency <= 1.0


def test_write_report_round_trips(small_report, tmp_path):
    path = profile.write_report(small_report, tmp_path / "overlap.json")
    payload = json.loads(path.read_text())
    assert payload["strict_hiding"]["T3-MCA"] is True
    assert payload["cases"][0]["configs"]["T3-MCA"]["breakdown"][
        "hidden_ns"] > 0


# -------------------------------------------------------------- runner CLI

def test_runner_rejects_bad_profile_target(capsys):
    assert runner.main(["profile", "figure99"]) == 2
    assert "profile target" in capsys.readouterr().err


def test_runner_rejects_target_without_profile(capsys):
    assert runner.main(["figure16", "figure16"]) == 2
    assert "only valid with the 'profile' subcommand" in \
        capsys.readouterr().err


def test_runner_profile_subcommand_end_to_end(capsys, tmp_path, monkeypatch):
    """`runner profile figure16 --config <one case>` renders the report
    and writes the JSON dump.  Patch the sweep to its cheapest case so
    the test stays fast."""
    monkeypatch.setattr(
        "repro.experiments.profile.default_cases",
        lambda large=False: [zoo.t_nlg().sublayer("OP", 4)])
    out = tmp_path / "overlap.json"
    code = runner.main(["profile", "figure16", "--config", "tnlg",
                        "--profile", str(out)])
    captured = capsys.readouterr().out
    assert code == 0
    assert "Overlap profile" in captured
    assert "strictly more comm hidden" in captured
    payload = json.loads(out.read_text())
    assert payload["strict_hiding"]["T3-MCA"] is True
