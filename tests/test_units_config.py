"""Unit tests for repro.units and repro.config (Table 1 rendering)."""

import dataclasses

import pytest

from repro import units
from repro.config import (
    ComputeConfig,
    MemoryConfig,
    SystemConfig,
    table1_system,
)


# --------------------------------------------------------------------- units

def test_bandwidth_units_are_bytes_per_ns():
    assert units.gbps(150) == 150.0
    assert units.tbps(1) == 1000.0


def test_cycle_conversions_roundtrip():
    ns = units.cycles_to_ns(1400, clock_ghz=1.4)
    assert ns == pytest.approx(1000.0)
    assert units.ns_to_cycles(ns, clock_ghz=1.4) == pytest.approx(1400)


def test_cycle_conversion_validation():
    with pytest.raises(ValueError):
        units.cycles_to_ns(10, 0)
    with pytest.raises(ValueError):
        units.ns_to_cycles(10, -1)


def test_pretty_bytes():
    assert units.pretty_bytes(512) == "512 B"
    assert units.pretty_bytes(2 * units.MiB) == "2.00 MiB"


def test_pretty_time():
    assert units.pretty_time(500) == "500.0 ns"
    assert units.pretty_time(2500) == "2.50 us"
    assert units.pretty_time(3 * units.MS) == "3.00 ms"
    assert units.pretty_time(2 * units.S) == "2.000 s"


# -------------------------------------------------------------------- config

def test_table1_defaults_match_paper():
    system = table1_system(n_gpus=8)
    assert system.n_gpus == 8
    assert system.compute.n_cus == 80
    assert system.compute.clock_ghz == pytest.approx(1.4)
    assert system.memory.llc_bytes == 16 * units.MiB
    assert system.memory.hbm_bandwidth == pytest.approx(1000.0)  # 1 TB/s
    # "150 GB/s bi-directional" ring => 75 GB/s each direction.
    assert system.link.bandwidth == pytest.approx(75.0)
    assert system.link.bidirectional_bandwidth == pytest.approx(150.0)
    assert system.link.latency_ns == pytest.approx(500.0)
    assert system.memory.nmc_ccdwl_factor == pytest.approx(2.0)
    assert system.tracker.n_entries == 256
    assert system.tracker.size_bytes == 19 * units.KiB


def test_peak_flops_is_order_100_tflops():
    compute = ComputeConfig()
    # 80 CUs * 1024 FLOP/cycle * 1.4 GHz = 114.7 TFLOP/s = 114688 FLOP/ns.
    assert compute.peak_flops_per_ns == pytest.approx(114688.0)


def test_reduce_bandwidth_scales_with_cus():
    compute = ComputeConfig()
    full = compute.reduce_bandwidth()
    eight = compute.reduce_bandwidth(8)
    assert full == pytest.approx(eight * 10)
    # With 8 CUs the reduce bandwidth is far below HBM bandwidth -> the
    # Figure 6 contention effect.
    assert eight < MemoryConfig().hbm_bandwidth


def test_gemm_wf_tile_geometry():
    system = table1_system()
    gemm = system.gemm
    assert gemm.wf_tile_elems == (128 * 128) // 4
    assert gemm.wgs_per_stage(n_cus=80) == 80


def test_min_gpus_enforced():
    with pytest.raises(ValueError):
        SystemConfig(n_gpus=1)


def test_replace_and_with_fidelity():
    system = table1_system()
    smaller = system.with_fidelity(quantum_bytes=4096)
    assert smaller.fidelity.quantum_bytes == 4096
    assert system.fidelity.quantum_bytes != 4096  # original untouched
    sixteen = system.replace(n_gpus=16)
    assert sixteen.n_gpus == 16


def test_scaled_compute_future_hardware():
    system = table1_system()
    future = system.scaled_compute(2.0)
    assert future.compute.n_cus == 160
    assert future.link.bandwidth == system.link.bandwidth  # network unchanged


def test_configs_are_frozen():
    system = table1_system()
    with pytest.raises(dataclasses.FrozenInstanceError):
        system.n_gpus = 4  # type: ignore[misc]


def test_channel_bandwidth_partitioning():
    memory = MemoryConfig()
    assert memory.channel_bandwidth * memory.n_channels == pytest.approx(
        memory.effective_bandwidth
    )


def test_mca_threshold_table_shape():
    system = table1_system()
    # thresholds {5, 10, 30, unlimited} from Section 6.1.3.
    assert system.mca.occupancy_thresholds == (5, 10, 30, None)
    assert len(system.mca.intensity_breakpoints) == (
        len(system.mca.occupancy_thresholds) - 1
    )
