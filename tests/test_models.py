"""Unit tests for the model zoo and sub-layer derivations."""

import pytest

from repro import units
from repro.models import zoo
from repro.models.transformer import AR_SUBLAYERS, TransformerConfig


def test_table2_hyperparameters():
    m = zoo.megatron_gpt2()
    assert (m.hidden, m.n_layers, m.seq_len, m.batch) == (3072, 74, 1024, 16)
    t = zoo.t_nlg()
    assert (t.hidden, t.n_layers, t.seq_len, t.batch) == (4256, 78, 1024, 8)
    g = zoo.gpt3()
    assert (g.hidden, g.n_layers) == (12288, 96)
    assert zoo.palm().hidden == 18432
    assert zoo.mt_nlg().hidden == 20480


def test_tokens_match_paper_setup():
    """Mega-GPT-2: 16K input tokens; T-NLG: 8K (Section 5.2)."""
    assert zoo.megatron_gpt2().tokens == 16 * 1024
    assert zoo.t_nlg().tokens == 8 * 1024


def test_parameter_counts_are_in_the_advertised_range():
    assert 1.2e9 < zoo.megatron_gpt2().n_parameters < 1.2e10
    assert 1.5e11 < zoo.gpt3().n_parameters < 2.2e11      # ~175B
    assert 4.0e11 < zoo.palm().n_parameters < 6.0e11      # ~530B
    assert 4.5e11 < zoo.mt_nlg().n_parameters < 6.5e11    # ~540B
    assert 0.8e12 < zoo.future_1t().n_parameters < 1.5e12
    assert 0.7e13 < zoo.future_10t().n_parameters < 1.3e13


def test_tp_setups_match_table2():
    assert zoo.TP_SETUPS["Mega-GPT-2"] == (8, 16)
    assert zoo.TP_SETUPS["T-NLG"] == (8, 16)
    for big in ("GPT-3", "PALM", "MT-NLG"):
        assert zoo.TP_SETUPS[big] == (32,)
    assert zoo.TP_SETUPS["Future-1T"] == (64,)


def test_zoo_lookups():
    assert zoo.by_name("T-NLG").name == "T-NLG"
    with pytest.raises(ValueError):
        zoo.by_name("BERT")
    assert len(zoo.table2_models()) == 5
    assert len(zoo.small_models()) == 2
    assert len(zoo.large_models()) == 3
    assert {m.name for m in zoo.all_models()} >= {"GPT-3", "Future-10T"}


# ------------------------------------------------------------------ sublayers

def test_sublayer_shapes_follow_megatron_slicing():
    model = zoo.t_nlg()
    t = model.tokens
    h = model.hidden
    op = model.sublayer("OP", tp=8)
    assert (op.gemm.m, op.gemm.n, op.gemm.k) == (t, h, h // 8)
    assert op.phase == "fwd"
    fc2 = model.sublayer("FC-2", tp=8)
    assert fc2.gemm.k == 4 * h // 8
    fc1 = model.sublayer("FC-1", tp=16)
    assert fc1.gemm.k == 4 * h // 16
    assert fc1.phase == "bwd"
    ip = model.sublayer("IP", tp=8)
    assert ip.gemm.k == 3 * h // 8


def test_ar_payload_is_activation_tensor():
    model = zoo.megatron_gpt2()
    for name in AR_SUBLAYERS:
        sub = model.sublayer(name, tp=8)
        assert sub.comm_bytes == model.tokens * model.hidden * 2
    # Mega-GPT-2: 16K x 3072 x 2B = 96 MiB all-reduce.
    assert model.sublayer("OP", 8).comm_bytes == 96 * units.MiB


def test_sublayer_output_is_tp_invariant():
    """Figure 5: slicing changes K only."""
    model = zoo.t_nlg()
    a = model.sublayer("FC-2", tp=8).gemm
    b = model.sublayer("FC-2", tp=16).gemm
    assert a.output_bytes == b.output_bytes
    assert a.k == 2 * b.k


def test_ar_sublayers_order_and_count():
    subs = zoo.megatron_gpt2().ar_sublayers(tp=8)
    assert [s.name for s in subs] == ["OP", "FC-2", "FC-1", "IP"]
    assert all(s.occurrences_per_iteration == 74 for s in subs)


def test_sublayer_validation():
    model = zoo.megatron_gpt2()
    with pytest.raises(ValueError):
        model.sublayer("FC-3", 8)
    with pytest.raises(ValueError):
        model.sublayer("OP", 1)
    with pytest.raises(ValueError):
        model.sublayer("OP", 7)  # H=3072 not divisible by 7
    with pytest.raises(ValueError):
        TransformerConfig("bad", hidden=0, n_layers=1, seq_len=1, batch=1)


def test_sublayer_labels():
    sub = zoo.t_nlg().sublayer("FC-1", 16)
    assert sub.label == "T-NLG/FC-1/TP16"
