"""Tests for the calibrated analytic surrogate (repro.surrogate).

Model-math tests are pure (synthetic records, no simulation); the
round-trip and triage tests simulate a handful of tiny cases through an
isolated on-disk cache so they stay fast and hermetic.
"""

import json

import pytest

from repro.config import table1_system
from repro.experiments import sublayer_sweep
from repro.experiments.sublayer_sweep import case_shape
from repro.models.transformer import TransformerConfig
from repro.surrogate import (
    CalibratedSurrogate,
    TrainingRecord,
    analytic_times,
    harvest_cache,
    records_from_suite,
    triaged_sweep,
)
from repro.surrogate.features import gemm_analytic_time
from repro.surrogate.grid import synthetic_cases


@pytest.fixture
def isolated_cache(tmp_path, monkeypatch):
    """Point the process-wide sweep cache at a private directory."""
    sublayer_sweep.configure(cache_dir=str(tmp_path), disk_cache=True)
    sublayer_sweep.clear_cache()
    yield tmp_path
    sublayer_sweep.configure(cache_dir="", disk_cache=True)
    sublayer_sweep._OPTIONS.cache_dir = None
    sublayer_sweep._DISK_CACHE = None
    sublayer_sweep.clear_cache()


def _tiny_cases(n=6):
    cases = []
    for hidden in (512, 1024):
        for batch in (1, 2):
            model = TransformerConfig(name=f"tiny-H{hidden}-B{batch}",
                                      hidden=hidden, n_layers=1,
                                      seq_len=512, batch=batch)
            cases.append(model.sublayer("FC-2", 4))
            cases.append(model.sublayer("OP", 4))
    return cases[:n]


# ------------------------------------------------------------- features


def test_analytic_times_composition():
    system = table1_system(n_gpus=8)
    model = TransformerConfig(name="m", hidden=2048, n_layers=1,
                              seq_len=512, batch=2)
    sub = model.sublayer("FC-2", 8)
    shape = case_shape(sub, sublayer_sweep.FAST_SCALE, system)
    times = analytic_times(shape, system)
    # Sequential stacks all three phases; every overlap config hides the
    # RS under the GEMM, so it can never exceed Sequential.
    assert times["Sequential"] > times["T3"]
    assert times["Sequential"] > times["Ideal-GEMM-RS-Overlap"]
    # The bypass-write GEMM differs from the cached-write one, so T3 and
    # the ideal overlap need not be equal — but both must be positive.
    assert all(value > 0 for value in times.values())


def test_analytic_times_respects_config_subset():
    system = table1_system(n_gpus=4)
    model = TransformerConfig(name="m", hidden=1024, n_layers=1,
                              seq_len=512, batch=1)
    shape = case_shape(model.sublayer("OP", 4), 8, system)
    times = analytic_times(shape, system, configs=["Sequential", "T3"])
    assert sorted(times) == ["Sequential", "T3"]


def test_gemm_analytic_time_scales_with_shape():
    system = table1_system(n_gpus=4)
    model_small = TransformerConfig(name="s", hidden=1024, n_layers=1,
                                    seq_len=512, batch=1)
    model_big = TransformerConfig(name="b", hidden=4096, n_layers=1,
                                  seq_len=2048, batch=4)
    small = gemm_analytic_time(model_small.sublayer("FC-2", 4).gemm, system)
    big = gemm_analytic_time(model_big.sublayer("FC-2", 4).gemm, system)
    assert big > small > 0


# ---------------------------------------------------------------- model


def _affine_records(slope, intercept, xs, config="T3", sublayer="FC-2",
                    tp=8):
    return [TrainingRecord(config=config, sublayer=sublayer, tp=tp,
                           analytic_ns=x, simulated_ns=slope * x + intercept)
            for x in xs]


def test_fit_recovers_affine_relation():
    records = _affine_records(1.08, 40_000.0, [1e4, 1e5, 1e6, 1e7])
    surrogate = CalibratedSurrogate.fit(records)
    slope, intercept = surrogate.correction("T3", "FC-2", 8)
    assert slope == pytest.approx(1.08, rel=1e-6)
    assert intercept == pytest.approx(40_000.0, rel=1e-6)
    # Interpolation inside the training range is near-exact.
    predicted = surrogate.predict("T3", "FC-2", 8, 5e5)
    assert predicted == pytest.approx(1.08 * 5e5 + 40_000.0, rel=1e-6)


def test_single_record_bucket_degrades_to_ratio():
    surrogate = CalibratedSurrogate.fit(_affine_records(1.5, 0.0, [1e5]))
    slope, intercept = surrogate.correction("T3", "FC-2", 8)
    assert slope == pytest.approx(1.5)
    assert intercept == 0.0


def test_fallback_chain():
    records = _affine_records(1.2, 0.0, [1e4, 1e6], tp=8)
    surrogate = CalibratedSurrogate.fit(records)
    # Fine bucket: exact.  Unseen TP: falls back to (config, sublayer).
    assert surrogate.covers("T3", "FC-2", 8)
    assert not surrogate.covers("T3", "FC-2", 16)
    assert surrogate.predict("T3", "FC-2", 16, 1e5) == \
        surrogate.predict("T3", "FC-2", 8, 1e5)
    # Unseen sublayer: falls back to (config,).
    assert surrogate.predict("T3", "OP", 4, 1e5) == \
        surrogate.predict("T3", "FC-2", 8, 1e5)
    # Unseen config: identity (prediction == analytic).
    assert surrogate.predict("Sequential", "FC-2", 8, 1e5) == 1e5


def test_predict_never_undercuts_analytic():
    # A fitted negative intercept extrapolated to a tiny case must clamp
    # at the roofline, not predict sim < analytic.
    records = _affine_records(1.0, -50_000.0, [1e6, 1e7])
    surrogate = CalibratedSurrogate.fit(records)
    assert surrogate.predict("T3", "FC-2", 8, 1e3) == pytest.approx(1e3)


def test_serialization_round_trip():
    records = (_affine_records(1.1, 1000.0, [1e4, 1e5])
               + _affine_records(1.3, 0.0, [2e4], config="Sequential",
                                 sublayer="OP", tp=4))
    surrogate = CalibratedSurrogate.fit(records)
    clone = CalibratedSurrogate.from_dict(
        json.loads(json.dumps(surrogate.to_dict())))
    for config, sublayer, tp in (("T3", "FC-2", 8), ("Sequential", "OP", 4),
                                 ("T3", "unknown", 1)):
        assert clone.predict(config, sublayer, tp, 3e5) == \
            surrogate.predict(config, sublayer, tp, 3e5)
    assert clone.n_records == surrogate.n_records


def test_evaluate_handles_exact_hits():
    records = _affine_records(1.0, 0.0, [1e4, 1e5, 1e6])
    surrogate = CalibratedSurrogate.fit(records)
    stats = surrogate.evaluate(records)
    assert stats["n"] == 3
    assert stats["mae_rel"] == pytest.approx(0.0, abs=1e-9)
    # log1p-based geomean must not blow up on zero errors.
    assert stats["geomean_rel"] == pytest.approx(0.0, abs=1e-9)


# ----------------------------------------------------------------- grid


def test_synthetic_grid_is_valid_and_deterministic():
    cases = synthetic_cases(n=200, seed=7)
    assert len(cases) == 200
    assert [c.label for c in cases] == \
        [c.label for c in synthetic_cases(n=200, seed=7)]
    assert [c.label for c in cases] != \
        [c.label for c in synthetic_cases(n=200, seed=8)]
    # Every emitted case must survive the simulator's chunkability floor.
    for sub in cases[:50]:
        system = table1_system(n_gpus=sub.tp)
        shape = case_shape(sub, sublayer_sweep.FAST_SCALE, system)
        assert shape.m >= 1


def test_synthetic_grid_default_scale():
    # The full default grid comfortably exceeds the 10k demo size.
    assert len(synthetic_cases(n=None)) >= 10_000


# ------------------------------------------------- harvest + round trip


def test_round_trip_on_simulated_cases(isolated_cache):
    """Train on four simulated tiny cases, predict two held-out ones:
    the audit error must stay within a loose sanity bound (the bench
    asserts the tight one on its own grid)."""
    cases = _tiny_cases(6)
    suites = sublayer_sweep.run_sweep(
        cases=cases, configs=["Sequential", "T3"])
    train, held_out = suites[:4], suites[4:]
    records = [r for s in train for r in records_from_suite(s)]
    surrogate = CalibratedSurrogate.fit(records)
    stats = surrogate.evaluate(
        [r for s in held_out for r in records_from_suite(s)])
    assert stats["n"] == 4
    assert stats["mae_rel"] <= 0.25
    # Harvest sees everything the sweep cached.
    harvested = harvest_cache(sublayer_sweep.disk_cache())
    assert len(harvested) >= len(records)


def test_triaged_sweep_structure(isolated_cache):
    cases = _tiny_cases(6)
    result = sublayer_sweep.run_sweep(
        cases=cases, configs=["Sequential", "T3", "T3-MCA"],
        triage="surrogate",
        triage_options=dict(frontier=2, min_audit=1, audit_fraction=0.0,
                            max_train=4, seed=3))
    assert result.n_scored == len(cases)
    assert 0 < result.n_simulated <= len(cases)
    assert result.frontier()
    assert set(result.suites) <= set(range(len(cases)))
    labels = {c.simulated_as for c in result.scored}
    assert "frontier" in labels
    # Every simulated case keeps its full suite; surrogate-only cases
    # carry per-config predictions.
    for case in result.scored:
        assert case.predicted["Sequential"] > 0
    payload = json.loads(json.dumps(result.to_dict()))
    assert payload["n_scored"] == len(cases)
    assert "audit" in payload and "surrogate" in payload
    assert "cases scored" in result.render()


def test_run_sweep_triage_rejects_unknown_mode():
    with pytest.raises(ValueError, match="unknown triage mode"):
        sublayer_sweep.run_sweep(cases=_tiny_cases(1), triage="nope")


def test_run_sweep_triage_rejects_faults():
    from repro.faults import FaultPlan

    with pytest.raises(ValueError, match="healthy"):
        sublayer_sweep.run_sweep(
            cases=_tiny_cases(1), triage="surrogate",
            faults=FaultPlan.straggler(gpu_id=0, factor=2.0, seed=1))
