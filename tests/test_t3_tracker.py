"""Unit tests for the T3 Tracker and trigger controller."""

import pytest

from repro.config import TrackerConfig, table1_system
from repro.gpu.dma import DMACommand
from repro.interconnect.topology import RingTopology
from repro.memory.request import AccessKind, MemRequest, Stream
from repro.sim import Environment
from repro.t3.tracker import Tracker
from repro.t3.trigger import DMABlock, TriggerController


def update(wg, nbytes, wf=None, kind=AccessKind.UPDATE):
    return MemRequest(kind=kind, stream=Stream.COMPUTE, nbytes=nbytes,
                      label="gemm", wg_id=wg, wf_id=wf)


# ------------------------------------------------------------------- Tracker

def test_region_completes_at_expected_bytes():
    tracker = Tracker(TrackerConfig())
    fired = []
    tracker.add_completion_listener(fired.append)
    tracker.program_region(wg_id=7, wf_id=-1, expected_bytes=200)
    tracker.observe(update(7, 100))
    assert fired == []
    tracker.observe(update(7, 100))
    assert fired == [(7, -1)]
    assert tracker.stats.regions_completed == 1


def test_completed_entry_is_freed():
    tracker = Tracker(TrackerConfig())
    tracker.program_region(5, -1, 100)
    tracker.observe(update(5, 100))
    assert tracker.live_regions == 0
    # Late updates to a freed region are counted as untracked.
    tracker.observe(update(5, 50))
    assert tracker.stats.untracked_updates == 1


def test_reads_are_ignored():
    tracker = Tracker(TrackerConfig())
    tracker.program_region(1, -1, 100)
    tracker.observe(update(1, 100, kind=AccessKind.READ))
    assert tracker.live_regions == 1


def test_untracked_wg_counted_not_crashed():
    tracker = Tracker(TrackerConfig())
    tracker.observe(update(99, 10))
    assert tracker.stats.untracked_updates == 1


def test_requests_without_wg_metadata_ignored():
    tracker = Tracker(TrackerConfig())
    req = MemRequest(AccessKind.WRITE, Stream.COMPUTE, 10, "gemm")
    tracker.observe(req)
    assert tracker.stats.untracked_updates == 1


def test_set_index_and_tag_disambiguate_aliasing_wgs():
    """WGs 3 and 259 share a set (index 3) but differ in wg_msb."""
    tracker = Tracker(TrackerConfig())
    tracker.program_region(3, -1, 100)
    tracker.program_region(259, -1, 100)
    tracker.observe(update(259, 100))
    assert not tracker.is_tracked(259)
    assert tracker.is_tracked(3)  # untouched


def test_wf_granularity_tracks_per_wavefront():
    tracker = Tracker(TrackerConfig(), granularity="wf")
    for wf in range(4):
        tracker.program_region(0, wf, expected_bytes=100)
    fired = []
    tracker.add_completion_listener(fired.append)
    tracker.observe(update(0, 100, wf=2))
    assert fired == [(0, 2)]
    assert tracker.live_regions == 3


def test_wf_granularity_spreads_wg_level_stores():
    tracker = Tracker(TrackerConfig(), granularity="wf")
    for wf in range(4):
        tracker.program_region(0, wf, expected_bytes=100)
    # A WG-granular store of 400 bytes covers all four WF regions.
    tracker.observe(update(0, 400, wf=None))
    assert tracker.live_regions == 0


def test_overflow_strict_raises():
    config = TrackerConfig(n_entries=4, ways=2)
    tracker = Tracker(config, strict_capacity=True)
    tracker.program_region(0, -1, 10)
    tracker.program_region(4, -1, 10)  # same set, second way
    with pytest.raises(RuntimeError, match="ways"):
        tracker.program_region(8, -1, 10)


def test_overflow_lenient_counts():
    config = TrackerConfig(n_entries=4, ways=2)
    tracker = Tracker(config)
    for wg in (0, 4, 8):
        tracker.program_region(wg, -1, 10)
    assert tracker.stats.overflow_events == 1
    assert tracker.stats.peak_ways_used == 3


def test_paper_scale_stage_fits_tracker():
    """A full 80-WG stage with 4 WFs/WG fits 256 sets x 8 ways easily."""
    tracker = Tracker(TrackerConfig(), granularity="wf", strict_capacity=True)
    for wg in range(80):
        for wf in range(4):
            tracker.program_region(wg, wf, 100)
    assert tracker.stats.overflow_events == 0
    assert tracker.live_regions == 320


def test_program_region_validation():
    tracker = Tracker(TrackerConfig())
    with pytest.raises(ValueError):
        tracker.program_region(0, -1, 0)
    tracker.program_region(0, -1, 10)
    with pytest.raises(ValueError):
        tracker.program_region(0, -1, 10)
    with pytest.raises(ValueError):
        Tracker(TrackerConfig(), granularity="warp")


# --------------------------------------------------------- TriggerController

def make_controller():
    env = Environment()
    system = table1_system(n_gpus=4).with_fidelity(quantum_bytes=4096)
    topo = RingTopology(env, system)
    gpu = topo.gpus[0]
    tracker = Tracker(TrackerConfig())
    gpu.mc.add_tracker_observer(tracker.observe)
    controller = TriggerController(env, tracker, gpu.dma)
    return env, topo, gpu, tracker, controller


def test_terminal_block_fires_event():
    env, topo, gpu, tracker, controller = make_controller()
    tracker.program_region(0, -1, 100)
    tracker.program_region(1, -1, 100)
    terminal = controller.program_block(DMABlock(
        block_id="own", regions={(0, -1), (1, -1)}))
    assert terminal is not None
    tracker.observe(update(0, 100))
    assert not terminal.triggered
    tracker.observe(update(1, 100))
    assert terminal.triggered


def test_dma_block_triggers_programmed_command():
    env, topo, gpu, tracker, controller = make_controller()
    gpu.dma.program(DMACommand(
        command_id="d0", dst_gpu_id=3, chunk_id=1,
        wg_slices=((0, 4096), (1, 4096)), op=AccessKind.UPDATE))
    tracker.program_region(0, -1, 100)
    tracker.program_region(1, -1, 100)
    assert controller.program_block(DMABlock(
        block_id="c1", regions={(0, -1), (1, -1)},
        dma_command_id="d0")) is None
    tracker.observe(update(0, 100))
    tracker.observe(update(1, 100))
    env.run()
    assert "d0" in gpu.dma.triggered_commands
    assert gpu.dma.completion("d0").fired
    assert controller.blocks_fired == 1


def test_block_referencing_unknown_dma_rejected():
    env, topo, gpu, tracker, controller = make_controller()
    tracker.program_region(0, -1, 100)
    with pytest.raises(ValueError, match="unprogrammed DMA"):
        controller.program_block(DMABlock(
            block_id="bad", regions={(0, -1)}, dma_command_id="ghost"))


def test_region_cannot_belong_to_two_blocks():
    env, topo, gpu, tracker, controller = make_controller()
    tracker.program_region(0, -1, 100)
    controller.program_block(DMABlock("a", regions={(0, -1)}))
    with pytest.raises(ValueError, match="already owned"):
        controller.program_block(DMABlock("b", regions={(0, -1)}))


def test_block_validation():
    env, topo, gpu, tracker, controller = make_controller()
    with pytest.raises(ValueError, match="no regions"):
        controller.program_block(DMABlock("empty", regions=set()))
    tracker.program_region(0, -1, 100)
    controller.program_block(DMABlock("a", regions={(0, -1)}))
    with pytest.raises(ValueError, match="twice"):
        controller.program_block(DMABlock("a", regions={(1, -1)}))


def test_untracked_region_completion_is_ignored():
    env, topo, gpu, tracker, controller = make_controller()
    tracker.program_region(42, -1, 50)
    tracker.observe(update(42, 50))  # no block owns region 42
    assert controller.blocks_fired == 0
