"""Unit tests for collective schedules and analytic models."""

import pytest

from repro import units
from repro.collectives.api import (
    CollectiveOp,
    collective_time,
    ring_ag_time,
    ring_ar_time,
    ring_rs_time,
    rs_wire_bytes_per_gpu,
    rs_with_nmc_time,
)
from repro.collectives.schedule import (
    all_to_all_schedule,
    chunk_sizes,
    direct_rs_peers,
    ring_ag_schedule,
    ring_rs_schedule,
)
from repro.config import table1_system


# ---------------------------------------------------------------- schedules

def test_rs_schedule_has_n_minus_1_steps():
    steps = ring_rs_schedule(4, rank=0)
    assert [s.step for s in steps] == [1, 2, 3]


def test_rs_schedule_send_chunks_follow_ring_order():
    # Device d sends chunk (d+s) mod N at step s.
    steps = ring_rs_schedule(4, rank=1)
    assert [s.send_chunk for s in steps] == [2, 3, 0]
    assert [s.recv_chunk for s in steps] == [3, 0, 1]


def test_rs_final_recv_is_own_chunk():
    """After N-1 steps each rank has received its own (fully-reduced) chunk."""
    for n in (2, 4, 8):
        for rank in range(n):
            steps = ring_rs_schedule(n, rank)
            assert steps[-1].recv_chunk == rank


def test_rs_every_chunk_traverses_every_rank():
    """Chunk e must be touched (sent) once by every rank except e itself."""
    n = 8
    senders_of = {c: set() for c in range(n)}
    for rank in range(n):
        for step in ring_rs_schedule(n, rank):
            senders_of[step.send_chunk].add(rank)
    for chunk, senders in senders_of.items():
        assert senders == set(r for r in range(n) if r != chunk)


def test_rs_schedule_matches_gemm_production_order():
    """The chunk a device sends at step s is exactly the s-th chunk its
    staggered GEMM produces — the co-design invariant of Section 4.4."""
    from repro.config import GEMMKernelConfig
    from repro.gpu.wavefront import GEMMShape, TileGrid

    n = 4
    for rank in range(n):
        grid = TileGrid(GEMMShape(1024, 512, 128), GEMMKernelConfig(),
                        n_cus=2, n_chunks=n, chunk_offset=rank)
        production = grid.chunk_order()
        sends = [s.send_chunk for s in ring_rs_schedule(n, rank)]
        assert production[:-1] == sends
        assert production[-1] == rank  # own chunk last, for the final reduce


def test_ag_schedule_covers_all_chunks():
    n = 4
    for rank in range(n):
        steps = ring_ag_schedule(n, rank)
        received = {s.recv_chunk for s in steps}
        assert received == set(range(n)) - {rank}
        # First send is the rank's own (just-reduced) chunk.
        assert steps[0].send_chunk == rank


def test_ag_forwards_what_arrived_last_step():
    steps = ring_ag_schedule(8, rank=3)
    for prev, cur in zip(steps, steps[1:]):
        assert cur.send_chunk == prev.recv_chunk


def test_all_to_all_and_direct_rs_cover_peers():
    assert all_to_all_schedule(4, 1) == [(0, 0), (2, 2), (3, 3)]
    assert direct_rs_peers(4, 2) == [(0, 0), (1, 1), (3, 3)]


def test_schedule_validation():
    with pytest.raises(ValueError):
        ring_rs_schedule(1, 0)
    with pytest.raises(ValueError):
        ring_rs_schedule(4, 4)
    with pytest.raises(ValueError):
        chunk_sizes(3, 4)


def test_chunk_sizes_balanced_and_exact():
    sizes = chunk_sizes(1000, 3)
    assert sum(sizes) == 1000
    assert max(sizes) - min(sizes) <= 1


# ----------------------------------------------------------- analytic times

SYSTEM = table1_system(n_gpus=8)


def test_rs_time_is_link_bound_at_table1_scale():
    nbytes = 64 * units.MiB
    t = ring_rs_time(nbytes, SYSTEM)
    chunk = nbytes / 8
    link_step = chunk / SYSTEM.link.bandwidth
    assert t >= 7 * link_step
    assert t <= 7 * link_step * 1.2 + 50_000


def test_rs_nmc_is_faster_than_cu_rs():
    nbytes = 64 * units.MiB
    assert rs_with_nmc_time(nbytes, SYSTEM) < ring_rs_time(nbytes, SYSTEM)


def test_rs_nmc_gain_shrinks_with_more_gpus():
    """NMC only removes the final-step reduction; more ring steps dilute
    it (Section 6.1.1: 7% at TP=8 vs 3% at TP=16)."""
    nbytes = 64 * units.MiB
    gain8 = (ring_rs_time(nbytes, table1_system(8))
             / rs_with_nmc_time(nbytes, table1_system(8)))
    gain16 = (ring_rs_time(nbytes, table1_system(16))
              / rs_with_nmc_time(nbytes, table1_system(16)))
    assert gain8 > gain16 > 1.0


def test_fewer_cus_slow_down_rs():
    """Figure 6: an RS squeezed onto 8 CUs slows ~1.4x."""
    nbytes = 64 * units.MiB
    full = ring_rs_time(nbytes, SYSTEM)
    squeezed = ring_rs_time(nbytes, SYSTEM, n_cus=8)
    ratio = squeezed / full
    assert 1.25 < ratio < 1.6
    # 16 CUs nearly keep up (paper: ~7% slowdown).
    mild = ring_rs_time(nbytes, SYSTEM, n_cus=16) / full
    assert mild < 1.15


def test_ar_is_rs_plus_ag():
    nbytes = 32 * units.MiB
    assert ring_ar_time(nbytes, SYSTEM) == pytest.approx(
        ring_rs_time(nbytes, SYSTEM) + ring_ag_time(nbytes, SYSTEM))


def test_collective_time_dispatch():
    nbytes = 16 * units.MiB
    assert collective_time(CollectiveOp.REDUCE_SCATTER, nbytes, SYSTEM) == \
        pytest.approx(ring_rs_time(nbytes, SYSTEM))
    assert collective_time(CollectiveOp.ALL_GATHER, nbytes, SYSTEM) == \
        pytest.approx(ring_ag_time(nbytes, SYSTEM))
    assert collective_time(CollectiveOp.ALL_REDUCE, nbytes, SYSTEM) > 0
    assert collective_time(CollectiveOp.ALL_TO_ALL, nbytes, SYSTEM) > 0


def test_time_scales_linearly_with_size():
    t1 = ring_rs_time(16 * units.MiB, SYSTEM)
    t2 = ring_rs_time(160 * units.MiB, SYSTEM)
    # Overheads aside, 10x the bytes ~ 10x the time.
    assert 8 < (t2 - 2000) / (t1 - 2000) < 10.5


def test_wire_bytes_per_gpu():
    assert rs_wire_bytes_per_gpu(800, 8) == pytest.approx(700)


def test_analytic_validation():
    with pytest.raises(ValueError):
        ring_rs_time(0, SYSTEM)
