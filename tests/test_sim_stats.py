"""Unit tests for measurement helpers (repro.sim.stats)."""

import pytest

from repro.sim.stats import (
    Counter,
    IntervalStats,
    TimeSeries,
    UtilizationTracker,
    geomean,
    weighted_mean,
)


# ---------------------------------------------------------------- TimeSeries

def test_time_series_records_in_order():
    ts = TimeSeries("reads")
    ts.record(0, 10)
    ts.record(5, 20)
    assert len(ts) == 2
    assert ts.total() == 30


def test_time_series_rejects_out_of_order():
    ts = TimeSeries("reads")
    ts.record(10, 1)
    with pytest.raises(ValueError):
        ts.record(5, 1)


def test_time_series_binning():
    ts = TimeSeries()
    for t in range(10):
        ts.record(t, 1.0)
    starts, sums = ts.binned(bin_ns=5)
    assert starts == [0, 5]
    assert sums == [5.0, 5.0]


def test_time_series_binning_empty():
    ts = TimeSeries()
    assert ts.binned(5) == ([], [])


def test_time_series_binning_window():
    ts = TimeSeries()
    for t in (0, 10, 20, 30):
        ts.record(t, 2.0)
    starts, sums = ts.binned(bin_ns=10, start=10, end=30)
    assert sum(sums) == 6.0  # samples at 10, 20, 30


def test_time_series_binning_validation():
    ts = TimeSeries()
    ts.record(0, 1)
    with pytest.raises(ValueError):
        ts.binned(0)
    with pytest.raises(ValueError):
        ts.binned(5, start=10, end=5)


def test_time_series_binning_window_end_sample_clamps_into_last_bin():
    # A sample exactly at the window end falls outside every half-open
    # [edge, edge+bin) bin; it must clamp into the final bin, not vanish.
    ts = TimeSeries()
    for t in range(11):  # 0..10 inclusive
        ts.record(t, 1.0)
    starts, sums = ts.binned(bin_ns=5)
    assert starts == [0, 5]
    assert sums == [5.0, 6.0]  # t=10 joins the [5, 10) bin
    assert sum(sums) == len(ts)


def test_time_series_binning_single_sample():
    ts = TimeSeries()
    ts.record(7.0, 3.0)
    starts, sums = ts.binned(bin_ns=5)
    assert starts == [7.0]
    assert sums == [3.0]


def test_time_series_binning_single_sample_with_start_override():
    ts = TimeSeries()
    ts.record(7.0, 3.0)
    starts, sums = ts.binned(bin_ns=5, start=0)
    assert starts == [0.0, 5.0]
    assert sums == [0.0, 3.0]


def test_time_series_binning_overrides_widen_the_window():
    ts = TimeSeries()
    for t in (0, 10, 20):
        ts.record(t, 2.0)
    starts, sums = ts.binned(bin_ns=10, start=0, end=40)
    assert starts == [0, 10, 20, 30]
    assert sums == [2.0, 2.0, 2.0, 0.0]


def test_time_series_binning_window_excluding_all_samples():
    ts = TimeSeries()
    for t in (0, 10, 20):
        ts.record(t, 2.0)
    starts, sums = ts.binned(bin_ns=5, start=100, end=110)
    assert starts == [100, 105]
    assert sums == [0.0, 0.0]


# ------------------------------------------------------------------- Counter

def test_counter_accumulates():
    c = Counter()
    c.add("gemm.read", 100)
    c.add("gemm.read", 50)
    c.add("rs.write", 30)
    assert c.get("gemm.read") == 150
    assert c.get("missing") == 0
    assert c.total("gemm") == 150
    assert c.total() == 180
    assert c.as_dict() == {"gemm.read": 150, "rs.write": 30}


# ------------------------------------------------------- UtilizationTracker

def test_utilization_basic():
    u = UtilizationTracker()
    u.busy(0, 50)
    assert u.utilization(100) == pytest.approx(0.5)


def test_utilization_merges_overlap():
    u = UtilizationTracker()
    u.busy(0, 60)
    u.busy(30, 60)  # overlaps first half
    assert u.busy_time == pytest.approx(90)
    assert u.utilization(90) == pytest.approx(1.0)


def test_utilization_negative_duration_rejected():
    u = UtilizationTracker()
    with pytest.raises(ValueError):
        u.busy(0, -1)


def test_utilization_zero_elapsed():
    u = UtilizationTracker()
    assert u.utilization(0) == 0.0


def test_utilization_out_of_order_disjoint_span_counts():
    # Regression: a span entirely before the recorded high-water mark
    # used to contribute zero busy time even though it overlapped
    # nothing.  The tracker merges, so both spans count in full.
    u = UtilizationTracker()
    u.busy(100, 10)
    u.busy(0, 10)
    assert u.busy_time == pytest.approx(20)


def test_utilization_out_of_order_partial_overlap():
    u = UtilizationTracker()
    u.busy(50, 10)   # [50, 60)
    u.busy(45, 10)   # [45, 55) — only [45, 50) is new
    assert u.busy_time == pytest.approx(15)


def test_utilization_out_of_order_span_bridging_gap():
    u = UtilizationTracker()
    u.busy(0, 10)    # [0, 10)
    u.busy(20, 10)   # [20, 30)
    u.busy(5, 20)    # [5, 25) — fills the gap exactly once
    assert u.busy_time == pytest.approx(30)


def test_utilization_out_of_order_contained_span_adds_nothing():
    u = UtilizationTracker()
    u.busy(0, 100)
    u.busy(10, 5)    # fully covered
    assert u.busy_time == pytest.approx(100)


def test_utilization_zero_duration_span_is_noop():
    u = UtilizationTracker()
    u.busy(10, 0)
    u.busy(5, 0)
    assert u.busy_time == 0.0


# -------------------------------------------------------------- IntervalStats

def test_interval_stats_duration_and_span():
    stats = IntervalStats()
    stats.begin("gemm", 0)
    stats.end("gemm", 10)
    stats.begin("gemm", 20)
    stats.end("gemm", 25)
    assert stats.duration("gemm") == 15
    assert stats.span("gemm") == (0, 25)


def test_interval_stats_errors():
    stats = IntervalStats()
    with pytest.raises(ValueError):
        stats.end("never-opened", 5)
    stats.begin("x", 0)
    with pytest.raises(ValueError):
        stats.begin("x", 1)
    with pytest.raises(ValueError):
        stats.end("x", -1)
    with pytest.raises(KeyError):
        stats.span("missing")


# ------------------------------------------------------------------ geomean

def test_geomean_matches_paper_style_aggregation():
    assert geomean([1.0, 4.0]) == pytest.approx(2.0)
    assert geomean([1.3, 1.3, 1.3]) == pytest.approx(1.3)


def test_geomean_validation():
    with pytest.raises(ValueError):
        geomean([])
    with pytest.raises(ValueError):
        geomean([1.0, 0.0])


def test_weighted_mean():
    assert weighted_mean([1, 3], [1, 1]) == pytest.approx(2.0)
    assert weighted_mean([1, 3], [3, 1]) == pytest.approx(1.5)
    with pytest.raises(ValueError):
        weighted_mean([], [])
    with pytest.raises(ValueError):
        weighted_mean([1], [0])
