"""Tests for the energy model (repro.analysis.energy)."""

import pytest

from repro.analysis.energy import (
    EnergyModel,
    EnergyReport,
    energy_saving,
    sublayer_energy,
)
from repro.analysis.traffic import DramBreakdown
from repro.config import table1_system
from repro.experiments.common import run_sublayer_suite
from repro.collectives.api import rs_wire_bytes_per_gpu
from repro.gpu.wavefront import GEMMShape


def test_coefficients_price_bytes():
    model = EnergyModel(dram_pj_per_byte=10.0, link_pj_per_byte=5.0,
                        flop_pj=1.0, nmc_extra_pj_per_byte=2.0)
    assert model.dram_energy_j(1e12) == pytest.approx(10.0)
    assert model.dram_energy_j(1e12, nmc_bytes=1e12) == pytest.approx(12.0)
    assert model.link_energy_j(2e12) == pytest.approx(10.0)
    assert model.compute_energy_j(3e12) == pytest.approx(3.0)


def test_report_total_and_dict():
    report = EnergyReport(dram_j=1.0, link_j=0.5, compute_j=2.0)
    assert report.total_j == pytest.approx(3.5)
    assert report.as_dict()["total_j"] == pytest.approx(3.5)


def test_energy_saving_validation():
    good = EnergyReport(1, 1, 1)
    with pytest.raises(ValueError):
        energy_saving(EnergyReport(0, 0, 0), good)


def test_t3_saves_energy_on_a_real_sublayer():
    """Figure 18's traffic reduction, priced: T3 must save total energy
    (same FLOPs and wire bytes, fewer DRAM bytes; NMC extra is small)."""
    system = table1_system(n_gpus=4).with_fidelity(quantum_bytes=32 * 1024)
    shape = GEMMShape(2048, 1024, 2048)
    suite = run_sublayer_suite(system, shape,
                               configs=["Sequential", "T3-MCA"])
    wire = rs_wire_bytes_per_gpu(shape.output_bytes, 4) * 2  # RS + AG
    base = sublayer_energy(suite.traffic["Sequential"], wire, shape.flops)
    t3_breakdown = suite.traffic["T3-MCA"]
    t3 = sublayer_energy(
        t3_breakdown, wire, shape.flops,
        nmc_bytes=t3_breakdown.gemm_write + t3_breakdown.rs_write)
    saving = energy_saving(base, t3)
    assert 0.0 < saving < 0.4
    # DRAM is where the saving comes from.
    assert t3.dram_j < base.dram_j
    assert t3.compute_j == pytest.approx(base.compute_j)


def test_nmc_extra_cost_cannot_erase_the_win_at_default_coefficients():
    base = DramBreakdown(gemm_read=100e9, gemm_write=70e9, rs_read=130e9,
                         rs_write=70e9, ag_read=60e9, ag_write=60e9)
    t3 = DramBreakdown(gemm_read=90e9, gemm_write=62e9, rs_read=52e9,
                       rs_write=62e9, ag_read=60e9, ag_write=60e9)
    base_report = sublayer_energy(base, wire_bytes=120e9, flops=1e14)
    t3_report = sublayer_energy(t3, wire_bytes=120e9, flops=1e14,
                                nmc_bytes=t3.gemm_write + t3.rs_write)
    # Total energy includes the (unchanged, dominant) compute term, so
    # the end-to-end saving is a few percent...
    assert energy_saving(base_report, t3_report) > 0.03
    # ...but the *data-movement* energy — what Figure 18 is about — drops
    # by well over 10% even after paying the near-bank ALU cost.
    movement_base = base_report.dram_j + base_report.link_j
    movement_t3 = t3_report.dram_j + t3_report.link_j
    assert 1.0 - movement_t3 / movement_base > 0.10
