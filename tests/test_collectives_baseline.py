"""Integration tests for the co-simulated baseline collectives."""

import pytest

from repro import units
from repro.collectives.api import ring_ag_time, ring_rs_time
from repro.collectives.baseline import (
    RingAllGather,
    RingAllReduce,
    RingReduceScatter,
)
from repro.config import table1_system
from repro.interconnect.topology import RingTopology
from repro.sim import Environment


def make_topo(n_gpus=4, quantum=32 * 1024):
    env = Environment()
    system = table1_system(n_gpus=n_gpus).with_fidelity(quantum_bytes=quantum)
    return env, RingTopology(env, system)


def test_rs_completes_on_all_ranks():
    env, topo = make_topo(4)
    rs = RingReduceScatter(topo, nbytes_total=4 * units.MiB)
    result = rs.run()
    assert result.duration > 0
    assert set(result.per_rank_end) == {0, 1, 2, 3}


def test_rs_dram_accounting_matches_closed_form():
    """Per GPU: reads (2N-1)*C, writes N*C — the Figure 18 baseline."""
    env, topo = make_topo(4)
    total = 4 * units.MiB
    chunk = total / 4
    rs = RingReduceScatter(topo, nbytes_total=total)
    rs.run()
    for gpu in topo.gpus:
        assert gpu.mc.counters.get("rs.read") == pytest.approx(
            (2 * 4 - 1) * chunk)
        assert gpu.mc.counters.get("rs.write") == pytest.approx(4 * chunk)


def test_rs_time_tracks_analytic_model():
    """The event simulation should follow the closed form (the Figure 14
    validation methodology) within ~15%."""
    env, topo = make_topo(4, quantum=64 * 1024)
    total = 24 * units.MiB
    rs = RingReduceScatter(topo, nbytes_total=total)
    result = rs.run()
    analytic = ring_rs_time(total, topo.system)
    assert result.duration == pytest.approx(analytic, rel=0.15)


def test_rs_scales_linearly_with_size():
    times = []
    for size in (4 * units.MiB, 16 * units.MiB):
        env, topo = make_topo(4)
        rs = RingReduceScatter(topo, nbytes_total=size)
        times.append(rs.run().duration)
    assert 3.0 < times[1] / times[0] < 4.6


def test_rs_with_few_cus_is_slower():
    """Figure 6's CU-sharing effect, now in the event simulator."""
    env, topo = make_topo(4)
    full = RingReduceScatter(topo, nbytes_total=8 * units.MiB).run().duration
    env2, topo2 = make_topo(4)
    squeezed = RingReduceScatter(
        topo2, nbytes_total=8 * units.MiB, n_cus=8).run().duration
    assert squeezed > full * 1.2


def test_ag_completes_and_accounts():
    env, topo = make_topo(4)
    total = 4 * units.MiB
    chunk = total / 4
    ag = RingAllGather(topo, nbytes_total=total)
    result = ag.run()
    assert result.duration > 0
    for gpu in topo.gpus:
        assert gpu.mc.counters.get("ag.read") == pytest.approx(3 * chunk)
        assert gpu.mc.counters.get("ag.write") == pytest.approx(3 * chunk)


def test_ag_tracks_analytic_model():
    env, topo = make_topo(4, quantum=64 * 1024)
    total = 24 * units.MiB
    result = RingAllGather(topo, nbytes_total=total).run()
    analytic = ring_ag_time(total, topo.system)
    assert result.duration == pytest.approx(analytic, rel=0.15)


def test_all_reduce_is_sequential_rs_then_ag():
    env, topo = make_topo(4)
    ar = RingAllReduce(topo, nbytes_total=4 * units.MiB)
    result = ar.run()
    assert ar.rs_result is not None and ar.ag_result is not None
    assert result.duration == pytest.approx(
        ar.rs_result.duration + ar.ag_result.duration, rel=0.01)


def test_rs_works_at_eight_gpus():
    env, topo = make_topo(8)
    result = RingReduceScatter(topo, nbytes_total=8 * units.MiB).run()
    assert len(result.per_rank_end) == 8


def test_rs_homogeneous_ranks_finish_together():
    """All GPUs do identical work; completion skew should be tiny."""
    env, topo = make_topo(4)
    result = RingReduceScatter(topo, nbytes_total=8 * units.MiB).run()
    ends = list(result.per_rank_end.values())
    spread = max(ends) - min(ends)
    assert spread < 0.05 * result.duration + 10_000
