"""Property-based tests (hypothesis) on core structures and invariants.

These cover the algebra the whole reproduction leans on: tiling/chunking
partitions, ring-schedule coverage, Tracker counting, cache-model
monotonicity, and the stats reducers.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.collectives.schedule import (
    chunk_sizes,
    ring_ag_schedule,
    ring_rs_schedule,
)
from repro.config import GEMMKernelConfig, MemoryConfig, TrackerConfig
from repro.gpu.wavefront import GEMMShape, TileGrid, split_evenly
from repro.memory.cache import estimate_gemm_traffic
from repro.memory.request import AccessKind, MemRequest, Stream
from repro.sim.stats import UtilizationTracker, geomean, weighted_mean
from repro.t3.address_map import AddressSpaceConfig, RouteKind
from repro.t3.tracker import Tracker

KCFG = GEMMKernelConfig()


# ------------------------------------------------------------- split_evenly

@given(total=st.integers(1, 10_000), parts=st.integers(1, 64))
def test_split_evenly_properties(total, parts):
    if total < parts:
        with pytest.raises(ValueError):
            split_evenly(total, parts)
        return
    out = split_evenly(total, parts)
    assert sum(out) == total
    assert len(out) == parts
    assert max(out) - min(out) <= 1
    assert out == sorted(out, reverse=True)  # larger parts first


# ----------------------------------------------------------------- TileGrid

grid_strategy = st.builds(
    dict,
    m=st.integers(128, 4096),
    n=st.integers(128, 2048),
    k=st.integers(32, 1024),
    n_cus=st.integers(1, 16),
    n_chunks=st.sampled_from([1, 2, 4, 8]),
    offset=st.integers(0, 7),
    stagger=st.booleans(),
)


def _make_grid(params):
    """Build a grid, returning None when the chunking is infeasible
    (fewer WG tiles than chunks — a validated error path)."""
    from hypothesis import assume

    offset = params.pop("offset")
    shape = GEMMShape(params.pop("m"), params.pop("n"), params.pop("k"))
    n_chunks = params.pop("n_chunks")
    stagger = params.pop("stagger", True)
    tiles = (math.ceil(shape.m / KCFG.macro_tile_m)
             * math.ceil(shape.n / KCFG.macro_tile_n))
    assume(tiles >= n_chunks)
    return TileGrid(shape, KCFG, n_cus=params.pop("n_cus"),
                    n_chunks=n_chunks, chunk_offset=offset,
                    stagger=stagger), offset


@settings(max_examples=60, deadline=None)
@given(params=grid_strategy)
def test_tilegrid_partitions(params):
    grid, offset = _make_grid(params)
    # Every WG appears exactly once across the device enumeration.
    wgs = [wg for wg, *_ in grid.wg_sequence()]
    assert sorted(wgs) == list(range(grid.n_wgs))
    # Stages partition the WGs.
    stage_wgs = [wg for s in grid.stages for wg in s.wg_ids]
    assert sorted(stage_wgs) == list(range(grid.n_wgs))
    # Chunks partition the WGs and byte totals agree.
    total = sum(grid.chunk_bytes_total(c) for c in range(grid.n_chunks))
    assert total == grid.n_wgs * grid.wg_tile_bytes
    # Chunk order is a permutation ending in the device's own chunk.
    order = grid.chunk_order()
    assert sorted(order) == list(range(grid.n_chunks))
    if grid.stagger and grid.n_chunks > 1:
        assert order[-1] == offset % grid.n_chunks
    # A-row coverage: every tile row is new exactly once.
    assert sum(s.new_tile_rows for s in grid.stages) == grid.tiles_m


@settings(max_examples=40, deadline=None)
@given(params=grid_strategy)
def test_tilegrid_chunk_completion_monotonic(params):
    params["stagger"] = True
    grid, _offset = _make_grid(params)
    order = grid.chunk_order()
    completion = [grid.stage_for_chunk_completion(c) for c in order]
    assert completion == sorted(completion)


# ------------------------------------------------------------ ring schedules

@settings(max_examples=60, deadline=None)
@given(n=st.integers(2, 33), rank=st.integers(0, 32))
def test_ring_rs_schedule_properties(n, rank):
    rank = rank % n
    steps = ring_rs_schedule(n, rank)
    assert len(steps) == n - 1
    # Sends cover every chunk except the rank's own.
    assert {s.send_chunk for s in steps} == set(range(n)) - {rank}
    # Last receive is the rank's own, fully-reduced chunk.
    assert steps[-1].recv_chunk == rank
    # What arrives at step s is what gets sent at step s+1.
    for prev, cur in zip(steps, steps[1:]):
        assert cur.send_chunk == prev.recv_chunk


@settings(max_examples=60, deadline=None)
@given(n=st.integers(2, 33), rank=st.integers(0, 32))
def test_ring_rs_global_consistency(n, rank):
    """At every step, what rank receives is exactly what its upstream
    neighbour (rank+1) sends."""
    rank = rank % n
    upstream = (rank + 1) % n
    mine = ring_rs_schedule(n, rank)
    theirs = ring_rs_schedule(n, upstream)
    for my_step, their_step in zip(mine, theirs):
        assert my_step.recv_chunk == their_step.send_chunk


@settings(max_examples=40, deadline=None)
@given(n=st.integers(2, 33), rank=st.integers(0, 32))
def test_ring_ag_covers_everything(n, rank):
    rank = rank % n
    steps = ring_ag_schedule(n, rank)
    assert {s.recv_chunk for s in steps} == set(range(n)) - {rank}
    assert steps[0].send_chunk == rank


@settings(max_examples=40, deadline=None)
@given(total=st.integers(64, 10_000_000), n=st.integers(2, 64))
def test_chunk_sizes_exact(total, n):
    if total < n:
        return
    sizes = chunk_sizes(total, n)
    assert sum(sizes) == total and len(sizes) == n


# ---------------------------------------------------------------- addr maps

@settings(max_examples=50, deadline=None)
@given(n=st.integers(2, 64), rank=st.integers(0, 63))
def test_ring_rs_address_map_properties(n, rank):
    rank = rank % n
    config = AddressSpaceConfig.ring_reduce_scatter(rank, n)
    assert len(config.routes) == n
    assert config.remote_chunks() == [(rank + 1) % n]
    assert config.route(rank).kind is RouteKind.LOCAL_TERMINAL
    assert len(config.dma_chunks()) == n - 2
    downstream = (rank - 1) % n
    for cid in config.dma_chunks():
        assert config.route(cid).dst_gpu == downstream
        assert config.route(cid).expected_updates == 2
    # The schedule's send order equals the staggered production order.
    sends = [s.send_chunk for s in ring_rs_schedule(n, rank)]
    assert sends[0] == config.remote_chunks()[0]
    assert set(sends[1:]) == set(config.dma_chunks())


@settings(max_examples=30, deadline=None)
@given(n=st.integers(2, 32), rank=st.integers(0, 31))
def test_direct_rs_address_map_properties(n, rank):
    rank = rank % n
    config = AddressSpaceConfig.direct_reduce_scatter(rank, n)
    assert len(config.remote_chunks()) == n - 1
    assert config.dma_chunks() == []
    assert config.route(rank).expected_updates == n


# ------------------------------------------------------------------ Tracker

@settings(max_examples=50, deadline=None)
@given(
    expected=st.integers(1, 1 << 20),
    pieces=st.lists(st.integers(1, 1 << 16), min_size=1, max_size=40),
)
def test_tracker_completes_exactly_at_threshold(expected, pieces):
    tracker = Tracker(TrackerConfig())
    tracker.program_region(0, -1, expected)
    fired = []
    tracker.add_completion_listener(fired.append)
    delivered = 0
    for piece in pieces:
        if delivered >= expected:
            break
        tracker.observe(MemRequest(AccessKind.UPDATE, Stream.COMPUTE,
                                   piece, "gemm", wg_id=0))
        delivered += piece
        assert bool(fired) == (delivered >= expected)
    if delivered >= expected:
        assert fired == [(0, -1)]
        assert tracker.live_regions == 0


@settings(max_examples=30, deadline=None)
@given(wgs=st.lists(st.integers(0, 2047), min_size=1, max_size=200,
                    unique=True))
def test_tracker_regions_independent(wgs):
    """Completing one WG region never disturbs another."""
    tracker = Tracker(TrackerConfig())
    for wg in wgs:
        tracker.program_region(wg, -1, 100)
    target = wgs[0]
    tracker.observe(MemRequest(AccessKind.UPDATE, Stream.COMPUTE, 100,
                               "gemm", wg_id=target))
    assert not tracker.is_tracked(target)
    for wg in wgs[1:]:
        assert tracker.is_tracked(wg)


# --------------------------------------------------------------- cache model

@settings(max_examples=30, deadline=None)
@given(
    m=st.integers(256, 4096),
    n=st.integers(256, 4096),
    k=st.integers(64, 4096),
)
def test_cache_model_monotone_in_budget(m, n, k):
    grid = TileGrid(GEMMShape(m, n, k), KCFG, n_cus=16)
    mem = MemoryConfig()
    base = estimate_gemm_traffic(grid, mem, bypass_writes=False)
    bypass = estimate_gemm_traffic(grid, mem, bypass_writes=True)
    # More cache for inputs never increases DRAM reads.
    assert bypass.total_read_bytes <= base.total_read_bytes + 1e-6
    # Reads are never below the compulsory A+B footprint...
    shape = grid.shape
    assert bypass.total_read_bytes >= (shape.a_bytes + shape.b_bytes) * 0.99
    # ...and writes always equal the tile-granular output exactly.
    for traffic in (base, bypass):
        assert traffic.total_write_bytes == pytest.approx(
            grid.n_wgs * grid.wg_tile_bytes)


# -------------------------------------------------------------------- stats

@settings(max_examples=50, deadline=None)
@given(values=st.lists(st.floats(0.01, 1e6), min_size=1, max_size=30))
def test_geomean_bounds(values):
    g = geomean(values)
    assert min(values) * 0.999 <= g <= max(values) * 1.001


@settings(max_examples=50, deadline=None)
@given(
    values=st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=20),
    weights=st.lists(st.floats(0.01, 100), min_size=1, max_size=20),
)
def test_weighted_mean_bounds(values, weights):
    k = min(len(values), len(weights))
    values, weights = values[:k], weights[:k]
    wm = weighted_mean(values, weights)
    assert min(values) - 1e-6 <= wm <= max(values) + 1e-6


@settings(max_examples=30, deadline=None)
@given(scale=st.floats(0.1, 10.0),
       values=st.lists(st.floats(0.01, 1e4), min_size=1, max_size=10))
def test_geomean_homogeneous(scale, values):
    scaled = [v * scale for v in values]
    assert geomean(scaled) == pytest.approx(geomean(values) * scale,
                                            rel=1e-6)


@settings(max_examples=100, deadline=None)
@given(spans=st.lists(st.tuples(st.integers(0, 120), st.integers(0, 25)),
                      max_size=25))
def test_utilization_tracker_matches_interval_union(spans):
    """Busy time equals the measure of the union of spans, regardless of
    arrival order (integer spans make the union exactly countable)."""
    tracker = UtilizationTracker()
    covered = set()
    for start, duration in spans:
        tracker.busy(start, duration)
        covered.update(range(start, start + duration))
    assert tracker.busy_time == len(covered)


# ------------------------------------------------ collective plan cross-rank

from repro.collectives.plan import (  # noqa: E402
    hierarchical_rs_plan,
    ring_production_order,
    ring_reduce_scatter_plan,
)


@settings(max_examples=50, deadline=None)
@given(n=st.integers(2, 16), split_k=st.integers(1, 4))
def test_plan_cross_rank_send_recv_symmetry(n, split_k):
    """Every send in the plan has the matching receive on the downstream
    rank at the same (stage, step) — the event-matching property the
    plan-driven executor keys on."""
    plan = ring_reduce_scatter_plan(n, split_k=split_k)
    plan.validate()
    recvs = {(r, s.stage, s.step, c)
             for r in range(n) for s in plan.steps(r)
             for c in s.recv_chunks}
    sends = {(s.dst, s.stage, s.step, c)
             for r in range(n) for s in plan.steps(r)
             for c in s.send_chunks}
    assert sends == recvs


@settings(max_examples=40, deadline=None)
@given(n=st.integers(2, 16))
def test_plan_every_chunk_reduced_exactly_once(n):
    """Each chunk has exactly one terminal owner, and the total update
    contributions flowing into it equal its expected count (validate()
    re-derives this mechanically from the routes)."""
    plan = ring_reduce_scatter_plan(n)
    plan.validate()
    owners = [r for r in range(n) for c in plan.rank_plan(r).terminal_chunks()]
    assert sorted(owners) == list(range(n))
    for c in range(n):
        assert plan.terminal_rank(c) == c


@settings(max_examples=25, deadline=None)
@given(shape=st.sampled_from([(2, 2), (2, 4), (4, 2), (2, 8), (4, 4),
                              (3, 4), (2, 3), (3, 2)]),
       split_k=st.integers(1, 3))
def test_hierarchical_plan_cross_rank_consistency(shape, split_k):
    nodes, per = shape
    plan = hierarchical_rs_plan(nodes, per, split_k=split_k)
    plan.validate()
    n = nodes * per
    recvs = {(r, s.stage, s.step, c)
             for r in range(n) for s in plan.steps(r)
             for c in s.recv_chunks}
    sends = {(s.dst, s.stage, s.step, c)
             for r in range(n) for s in plan.steps(r)
             for c in s.send_chunks}
    assert sends == recvs
    assert sorted(c for r in range(n)
                  for c in plan.rank_plan(r).terminal_chunks()) == \
        list(range(n))


@settings(max_examples=50, deadline=None)
@given(n=st.integers(2, 16), rank=st.integers(0, 15))
def test_plan_views_agree_across_layers(n, rank):
    """Address-map routes, TileGrid production order and the ring-RS
    schedule are views of one plan and must tell the same story."""
    rank = rank % n
    sends = [s.send_chunk for s in ring_rs_schedule(n, rank)]
    order = ring_production_order(n, rank)
    assert order == sends + [rank]
    config = AddressSpaceConfig.ring_reduce_scatter(rank, n)
    assert config.remote_chunks() == sends[:1]
    assert set(config.dma_chunks()) == set(sends[1:])
    grid = TileGrid(GEMMShape(m=4096, n=2048, k=256, element_bytes=2),
                    KCFG, n_cus=8, n_chunks=n, chunk_offset=rank,
                    stagger=True)
    assert grid.chunk_order() == order


# ------------------------------------------------------------ plan repair

from repro.collectives.plan import (  # noqa: E402
    direct_rs_plan,
    hierarchical_rs_plan,
    ring_reduce_scatter_plan,
)
from repro.resilience.repair import (  # noqa: E402
    demote_rank,
    exclude_rank,
    reroute_off_link,
)


def _plan_edges(plan):
    """Every directed (src, dst) edge the plan's DMA steps use."""
    return sorted({(rank_plan.rank, step.dst)
                   for rank_plan in plan.ranks
                   for step in rank_plan.steps})


@given(n=st.integers(2, 16), pick=st.integers(0, 10**6))
def test_ring_reroute_repair_always_validates(n, pick):
    plan = ring_reduce_scatter_plan(n)
    edges = _plan_edges(plan)
    src, dst = edges[pick % len(edges)]
    result = reroute_off_link(plan, src, dst)
    result.plan.validate()          # never returns an invalid plan
    assert result.plan.n_ranks == n
    assert result.action in ("reversed", "unchanged")
    if result.action == "reversed":
        assert (src, dst) not in _plan_edges(result.plan)


@given(n_nodes=st.integers(2, 4), per=st.integers(2, 4),
       pick=st.integers(0, 10**6))
def test_hierarchical_reroute_repair_always_validates(n_nodes, per, pick):
    plan = hierarchical_rs_plan(n_nodes, per)
    edges = _plan_edges(plan)
    src, dst = edges[pick % len(edges)]
    result = reroute_off_link(plan, src, dst)
    result.plan.validate()
    assert result.plan.n_ranks == n_nodes * per
    assert result.action in ("reversed", "unchanged")
    if result.action == "reversed":
        assert (src, dst) not in _plan_edges(result.plan)


@given(n=st.integers(2, 16), pick=st.integers(0, 10**6))
def test_direct_reroute_is_honest_unchanged(n, pick):
    """Direct plans use every pairwise edge; repair must not pretend."""
    plan = direct_rs_plan(n)
    routes = sorted({(rank_plan.rank, route.dst_gpu)
                     for rank_plan in plan.ranks
                     for route in rank_plan.routes.values()
                     if route.dst_gpu is not None
                     and route.dst_gpu != rank_plan.rank})
    if not routes:
        return
    src, dst = routes[pick % len(routes)]
    result = reroute_off_link(plan, src, dst)
    result.plan.validate()
    assert result.action == "unchanged"


@given(n=st.integers(3, 16), chunks_off=st.integers(1, 14),
       gpu=st.integers(0, 15))
def test_demote_repair_always_validates(n, chunks_off, gpu):
    n_chunks = max(2, n - (chunks_off % (n - 1)))
    plan = ring_reduce_scatter_plan(n, n_chunks=n_chunks)
    result = demote_rank(plan, gpu % n)
    result.plan.validate()
    assert result.plan.n_ranks == n
    assert result.plan.n_chunks == plan.n_chunks
    if n_chunks >= n:
        assert result.action == "unchanged"


@given(n=st.integers(3, 16), gpu=st.integers(0, 15))
def test_exclude_repair_always_validates(n, gpu):
    plan = ring_reduce_scatter_plan(n)
    result = exclude_rank(plan, gpu % n)
    result.plan.validate()
    assert result.action == "rebuilt"
    assert result.plan.n_ranks == n - 1


@given(n_nodes=st.integers(2, 4), per=st.integers(2, 4),
       gpu=st.integers(0, 15))
def test_hierarchical_exclude_repair_always_validates(n_nodes, per, gpu):
    plan = hierarchical_rs_plan(n_nodes, per)
    n = n_nodes * per
    result = exclude_rank(plan, gpu % n)
    result.plan.validate()
    assert result.action == "rebuilt"
    assert result.plan.n_ranks == n - 1
