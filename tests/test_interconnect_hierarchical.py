"""Tests for the hierarchical (multi-node) ring topology (Section 7.8)."""

import pytest

from repro.collectives.baseline import RingReduceScatter
from repro.config import table1_system
from repro.gpu.wavefront import GEMMShape
from repro.interconnect.topology import HierarchicalRingTopology, RingTopology
from repro.sim import Environment, SimulationError
from repro.t3.fusion import FusedGEMMRS
from repro import units


def make_hier(n_gpus=8, per_node=4, fraction=0.25, quantum=32 * 1024):
    env = Environment()
    system = table1_system(n_gpus=n_gpus).with_fidelity(quantum_bytes=quantum)
    topo = HierarchicalRingTopology(env, system, gpus_per_node=per_node,
                                    inter_node_fraction=fraction)
    return env, topo


def test_node_grouping():
    env, topo = make_hier(8, 4)
    assert topo.node_of(0) == 0
    assert topo.node_of(3) == 0
    assert topo.node_of(4) == 1
    assert topo.is_inter_node(3, 4)
    assert not topo.is_inter_node(1, 2)


def test_cross_node_links_are_slower():
    env, topo = make_hier(8, 4, fraction=0.25)
    intra = topo.link(1, 0)
    cross = topo.link(4, 3)
    assert cross.bandwidth == pytest.approx(intra.bandwidth * 0.25)
    assert cross.latency > intra.latency


def test_validation():
    env = Environment()
    system = table1_system(n_gpus=8)
    with pytest.raises(SimulationError):
        HierarchicalRingTopology(env, system, gpus_per_node=3)
    with pytest.raises(SimulationError):
        HierarchicalRingTopology(env, system, gpus_per_node=4,
                                 inter_node_fraction=0.0)


def test_ring_rs_slower_on_hierarchical_ring():
    """The slow hops pace the whole ring: every chunk crosses them."""
    nbytes = 8 * units.MiB
    env_f, flat = Environment(), None
    flat_topo = RingTopology(env_f, table1_system(n_gpus=8).with_fidelity(
        quantum_bytes=32 * 1024))
    flat_time = RingReduceScatter(flat_topo, nbytes).run().duration
    env_h, hier = make_hier(8, 4, fraction=0.25)
    hier_time = RingReduceScatter(hier, nbytes).run().duration
    assert hier_time > flat_time * 1.5


def test_fused_gemm_rs_works_across_nodes():
    """T3 fusion still completes and still hides the GEMM (Section 7.8:
    'T3 can still provide benefits from hiding the GEMM execution')."""
    env, topo = make_hier(8, 4, quantum=16 * 1024)
    fused = FusedGEMMRS(topo, GEMMShape(2048, 1024, 1024), n_cus=8)
    result = fused.run()
    assert len(result.per_rank_terminal) == 8
    # The fused span is at most GEMM + the exposed (slow) communication,
    # and strictly less than GEMM + a full sequential hierarchical RS.
    env_seq, topo_seq = make_hier(8, 4, quantum=16 * 1024)
    seq_rs = RingReduceScatter(
        topo_seq, nbytes_total=fused.shape.output_bytes).run().duration
    assert result.duration < result.gemm_duration + seq_rs
