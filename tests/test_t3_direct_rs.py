"""Tests for the Section 7.1 direct reduce-scatter fusion extension."""

import pytest

from repro.config import table1_system
from repro.gpu.wavefront import GEMMShape
from repro.interconnect.topology import FullyConnectedTopology
from repro.sim import Environment
from repro.t3.fusion import FusedGEMMRS


def run_direct(n_gpus=4, m=1024, n=512, k=256, n_cus=4, **kwargs):
    env = Environment()
    system = table1_system(n_gpus=n_gpus).with_fidelity(
        quantum_bytes=16 * 1024)
    topo = FullyConnectedTopology(env, system)
    fused = FusedGEMMRS(topo, GEMMShape(m, n, k), n_cus=n_cus,
                        collective="direct-rs", **kwargs)
    result = fused.run()
    return env, topo, fused, result


def test_direct_rs_completes():
    env, topo, fused, result = run_direct()
    assert len(result.per_rank_terminal) == 4
    assert result.duration > 0


def test_direct_rs_uses_no_dma():
    """Section 7.1: direct-RS is orchestrated entirely by GEMM stores."""
    env, topo, fused, result = run_direct()
    for gpu in topo.gpus:
        assert gpu.dma.programmed_commands == []
        assert gpu.mc.counters.get("rs.read") == 0  # no collective reads!


def test_direct_rs_own_chunk_gets_n_contributions():
    env, topo, fused, result = run_direct(n_gpus=4)
    for rank, ledger in enumerate(fused.ledgers):
        rows = ledger.summary()
        assert len(rows) == 1  # only the own chunk is tracked
        chunk_id, count, _ = rows[0]
        assert chunk_id == rank
        assert count == 4  # local + 3 remote (N contributions)


def test_direct_rs_local_traffic_is_one_chunk():
    """Each GPU's DRAM sees only its own chunk: local GEMM updates for it
    plus N-1 incoming remote updates."""
    env, topo, fused, result = run_direct(n_gpus=4, m=1024, n=512)
    chunk = fused.grids[0].chunk_bytes_total(0)
    for gpu in topo.gpus:
        assert gpu.mc.counters.get("gemm.update") == pytest.approx(chunk)
        assert gpu.mc.counters.get("rs.update") == pytest.approx(3 * chunk)


def test_direct_rs_eliminates_collective_data_movement_vs_ring():
    """Direct-RS moves strictly less DRAM traffic than ring-RS fusion."""
    from repro.interconnect.topology import RingTopology

    env_r = Environment()
    system = table1_system(n_gpus=4).with_fidelity(quantum_bytes=16 * 1024)
    ring = FusedGEMMRS(RingTopology(env_r, system), GEMMShape(1024, 512, 256),
                       n_cus=4)
    ring.run()
    ring_total = ring.topo.gpus[0].mc.total_bytes()

    _env, topo, _fused, _result = run_direct()
    direct_total = topo.gpus[0].mc.total_bytes()
    assert direct_total < ring_total


def test_direct_rs_requires_known_collective():
    env = Environment()
    system = table1_system(n_gpus=4)
    topo = FullyConnectedTopology(env, system)
    with pytest.raises(ValueError, match="unsupported"):
        FusedGEMMRS(topo, GEMMShape(512, 512, 128), collective="tree-ar")


def test_direct_rs_on_eight_gpus():
    env, topo, fused, result = run_direct(n_gpus=8, m=2048)
    assert len(result.per_rank_terminal) == 8
    for ledger in fused.ledgers:
        (_cid, count, _sealed), = ledger.summary()
        assert count == 8
