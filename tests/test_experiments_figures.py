"""Tests for the per-figure experiment runners.

Heavier sweeps are exercised with reduced case lists (monkeypatched
``default_cases``); the benchmark suite runs them at full fast-mode
breadth.
"""

import pytest

from repro.experiments import (
    figure4,
    figure6,
    figure15,
    figure16,
    figure17,
    figure18,
    tables,
    validation,
)
from repro.experiments import sublayer_sweep
from repro.models import zoo


@pytest.fixture()
def tiny_sweep(monkeypatch):
    """Shrink the sweep grid to two representative cases."""
    def two_cases(large=False):
        model = zoo.gpt3() if large else zoo.t_nlg()
        tp = 32 if large else 8
        return [model.sublayer("OP", tp), model.sublayer("FC-2", tp)]

    monkeypatch.setattr(sublayer_sweep, "default_cases", two_cases)
    yield


# ------------------------------------------------------------------ figure 4

def test_figure4_rows_cover_all_models():
    result = figure4.run()
    models = {r.model for r in result.rows}
    assert models == {m.name for m in zoo.all_models()}
    assert all(0 < r.sliced_fraction < 0.8 for r in result.rows)
    assert "Figure 4" in result.render()


def test_figure4_comm_fractions_match_section_2_4():
    result = figure4.run()
    # "Mega-GPT-2 and T-NLG spend up to 34% and 43% ... on communication".
    assert 0.25 < result.max_comm_fraction("Mega-GPT-2") < 0.45
    assert 0.25 < result.max_comm_fraction("T-NLG") < 0.50
    # Futuristic models stay communication-heavy (paper: up to 44%).
    assert result.max_comm_fraction("Future-1T") > 0.3


def test_figure4_prompt_is_more_comm_heavy_than_training():
    result = figure4.run()
    by_key = {(r.model, r.tp, r.phase): r for r in result.rows}
    for model, tp in [("T-NLG", 8), ("Mega-GPT-2", 16)]:
        assert by_key[(model, tp, "prompt")].comm_fraction > \
            by_key[(model, tp, "training")].comm_fraction


# ------------------------------------------------------------------ figure 6

@pytest.fixture(scope="module")
def fig6():
    return figure6.run(fast=True)


def test_figure6_splits_present(fig6):
    splits = {r.split for r in fig6.rows}
    assert splits == {"72-8", "64-16", "ideal"}


def test_figure6_ar_slowdown_matches_paper(fig6):
    """AR on 8 CUs slows ~1.4x; on 16 CUs only slightly (Section 3.2.1)."""
    eight = [r.ar_slowdown for r in fig6.rows if r.split == "72-8"]
    sixteen = [r.ar_slowdown for r in fig6.rows if r.split == "64-16"]
    assert all(1.15 < s < 1.6 for s in eight)
    assert all(s < 1.15 for s in sixteen)


def test_figure6_ordering_of_potential_speedups(fig6):
    """ideal > 64-16 > 72-8 in geomean, as in the paper's Figure 6."""
    g_ideal = fig6.geomean_speedup("ideal")
    g_6416 = fig6.geomean_speedup("64-16")
    g_728 = fig6.geomean_speedup("72-8")
    assert g_ideal > g_6416 > g_728
    assert g_728 > 1.0


# ----------------------------------------------------------------- figure 14

def test_validation_tracks_reference():
    result = validation.run(fast=True)
    assert result.geomean_error < 0.15  # paper: 6%
    assert "geomean error" in result.render()
    # Linearity: time grows ~linearly with size.
    simulated = [p.simulated_us for p in result.points]
    sizes = [p.size_mib for p in result.points]
    ratio = (simulated[-1] / simulated[0]) / (sizes[-1] / sizes[0])
    assert 0.8 < ratio < 1.2


# -------------------------------------------------------- figures 15/16/18

def test_figure15_distribution(tiny_sweep):
    result = figure15.run(fast=True)
    assert len(result.rows) == 2
    for row in result.rows:
        assert row.gemm_fraction + row.rs_fraction + row.ag_fraction == \
            pytest.approx(1.0)
    # FC-2 is more GEMM-heavy than OP (Figure 15's visible pattern).
    by_case = {r.case: r for r in result.rows}
    op = next(v for k, v in by_case.items() if "/OP/" in k)
    fc2 = next(v for k, v in by_case.items() if "/FC-2/" in k)
    assert fc2.gemm_fraction > op.gemm_fraction
    assert "Figure 15" in result.render()


def test_figure16_speedups(tiny_sweep):
    result = figure16.run(fast=True)
    assert result.geomean("T3-MCA") > 1.1
    assert result.geomean("Ideal-GEMM-RS-Overlap") >= result.geomean("T3") * 0.99
    assert "Figure 16" in result.render()


def test_figure18_reductions(tiny_sweep):
    result = figure18.run(fast=True)
    assert 0.05 < result.geomean_total_reduction() < 0.5
    assert result.geomean_rs_read_ratio() > 1.5
    assert result.geomean_gemm_read_ratio() >= 1.0
    assert result.geomean_write_ratio() > 1.0
    assert "Figure 18" in result.render()


# ----------------------------------------------------------------- figure 17

def test_figure17_timeline_shapes():
    result = figure17.run(fast=True)
    assert result.gemm_slowdown >= 1.0
    base_reads = result.baseline_series["GEMM reads"]
    assert base_reads.total > 0
    # T3 adds RS traffic series that the baseline run does not have.
    assert result.t3_series["RS updates"].total > 0
    assert result.t3_series["RS reads"].total > 0
    # Baseline GEMM has no plain writes in T3 (all NMC updates).
    assert result.t3_series["GEMM updates"].total > 0
    assert "Figure 17" in result.render()


def test_figure17_write_phases_are_bursty():
    """The baseline write series must be peaky (bursts at stage ends),
    i.e. peak bin >> mean bin."""
    result = figure17.run(fast=True)
    writes = result.baseline_series["GEMM writes"]
    nonzero = [b for b in writes.bytes_per_bin if b > 0]
    mean = sum(writes.bytes_per_bin) / len(writes.bytes_per_bin)
    assert writes.peak > 2.0 * mean
    assert len(nonzero) < len(writes.bytes_per_bin)  # quiet gaps exist


# ------------------------------------------------------------------- tables

def test_table1_renders_paper_parameters():
    text = tables.run_table1().render()
    assert "80 @ 1.4 GHz" in text
    assert "16 MiB" in text
    assert "150 GB/s" in text
    assert "256 entries" in text


def test_table2_lists_all_models():
    text = tables.run_table2().render()
    for name in ("Mega-GPT-2", "T-NLG", "GPT-3", "PALM", "MT-NLG"):
        assert name in text


def test_table3_t3_dominates():
    result = tables.run_table3()
    assert result.dominates("T3-MCA")
    for other in ("In-switch", "ACE", "CoCoNet", "Google Decomposition"):
        assert not all(result.features[other])
    assert "T3-MCA" in result.render()
