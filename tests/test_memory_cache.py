"""Unit tests for the LLC traffic model (repro.memory.cache)."""

import dataclasses

import pytest

from repro import units
from repro.config import GEMMKernelConfig, MemoryConfig
from repro.gpu.wavefront import GEMMShape, TileGrid
from repro.memory.cache import estimate_gemm_traffic, input_budget


KCFG = GEMMKernelConfig()
MEM = MemoryConfig()


def grid_for(m, n, k, n_cus=80):
    return TileGrid(GEMMShape(m, n, k), KCFG, n_cus=n_cus)


def test_input_budget_doubles_with_bypass():
    assert input_budget(MEM, bypass_writes=False) == 8 * units.MiB
    assert input_budget(MEM, bypass_writes=True) == 16 * units.MiB


def test_writes_equal_output_bytes():
    grid = grid_for(1024, 1024, 512, n_cus=4)
    traffic = estimate_gemm_traffic(grid, MEM, bypass_writes=False)
    assert traffic.total_write_bytes == pytest.approx(
        grid.n_wgs * grid.wg_tile_bytes
    )
    assert traffic.n_stages == grid.n_stages


def test_small_gemm_reads_just_inputs_once():
    """An LLC-resident GEMM reads A and B from DRAM exactly once (the
    paper's OP-layer behaviour, Section 6.1.2)."""
    grid = grid_for(1024, 1024, 256, n_cus=4)
    traffic = estimate_gemm_traffic(grid, MEM, bypass_writes=True)
    shape = grid.shape
    assert traffic.hit_probability == pytest.approx(1.0)
    assert traffic.total_read_bytes <= (shape.a_bytes + shape.b_bytes) * 1.01


def test_large_b_panel_causes_rereads():
    """When B exceeds the input budget, stages re-read it from DRAM."""
    # B = 4096x8192x2B = 64 MiB >> 16 MiB LLC.
    grid = grid_for(16384, 8192, 4096, n_cus=80)
    traffic = estimate_gemm_traffic(grid, MEM, bypass_writes=False)
    shape = grid.shape
    assert traffic.hit_probability < 0.2
    assert traffic.total_read_bytes > (shape.a_bytes + shape.b_bytes) * 1.5


def test_bypass_writes_reduces_reads():
    """T3's LLC write bypass frees input capacity -> fewer DRAM re-reads
    (the Figure 18 GEMM-read reduction)."""
    # B = 2048*2048*2 = 8 MiB: fits in 16 MiB (bypass) but not in the
    # 8 MiB baseline input share alongside the A strip.
    grid = grid_for(16384, 2048, 2048, n_cus=80)
    base = estimate_gemm_traffic(grid, MEM, bypass_writes=False)
    bypassed = estimate_gemm_traffic(grid, MEM, bypass_writes=True)
    assert bypassed.total_read_bytes < base.total_read_bytes
    ratio = base.total_read_bytes / bypassed.total_read_bytes
    assert 1.05 < ratio < 4.0  # paper reports 1.2x-2x per TP degree


def test_reads_never_below_compulsory():
    grid = grid_for(4096, 4096, 1024, n_cus=80)
    for bypass in (False, True):
        traffic = estimate_gemm_traffic(grid, MEM, bypass_writes=bypass)
        shape = grid.shape
        assert traffic.total_read_bytes >= (shape.a_bytes + shape.b_bytes) * 0.99


def test_reuse_window_caps_rereads():
    small_window = dataclasses.replace(MEM, llc_reuse_window_stages=1)
    big_window = dataclasses.replace(MEM, llc_reuse_window_stages=100)
    grid = grid_for(16384, 8192, 4096, n_cus=80)
    small = estimate_gemm_traffic(grid, small_window, bypass_writes=False)
    big = estimate_gemm_traffic(grid, big_window, bypass_writes=False)
    assert small.total_read_bytes < big.total_read_bytes


def test_per_stage_reads_positive_and_finite():
    grid = grid_for(2048, 2048, 512, n_cus=8)
    traffic = estimate_gemm_traffic(grid, MEM, bypass_writes=False)
    assert all(r >= 0 for r in traffic.stage_read_bytes)
    assert traffic.stage_read_bytes[0] > 0  # compulsory misses up front


def test_first_stage_dominated_by_compulsory_misses():
    grid = grid_for(8192, 4096, 2048, n_cus=80)
    traffic = estimate_gemm_traffic(grid, MEM, bypass_writes=False)
    # First stage reads the full B panel (all columns first touched).
    assert traffic.stage_read_bytes[0] >= grid.shape.b_bytes
