"""Tests for the CollectivePlan IR and its consumers.

The plan layer is the single source of truth for ring arithmetic:
schedules, address maps and stagger orders are all views over it.  These
tests pin the flat-ring convention (Figure 7), the hierarchical
multi-node plan, graceful small-shape chunking, and the plan-driven CU
reduce-scatter baseline.
"""

import pytest

from repro.collectives.api import (
    CollectiveOp,
    all_to_all_time,
    collective_time,
    ring_ag_time,
)
from repro.collectives.baseline import PlannedReduceScatter, RingReduceScatter
from repro.collectives.plan import (
    RouteKind,
    all_to_all_plan,
    direct_rs_plan,
    hierarchical_rs_plan,
    plan_for,
    ring_all_gather_plan,
    ring_production_order,
    ring_reduce_scatter_plan,
)
from repro.collectives.schedule import ring_rs_schedule
from repro.config import table1_system
from repro.experiments import scaleout
from repro.faults import InvariantChecker
from repro.gpu.wavefront import GEMMShape
from repro.interconnect.topology import (
    FullyConnectedTopology,
    HierarchicalRingTopology,
    RingTopology,
)
from repro.sim import Environment
from repro.t3.fusion import FusedGEMMRS


# ------------------------------------------------------------ flat ring plan

def test_flat_plan_matches_ring_convention():
    n = 8
    plan = ring_reduce_scatter_plan(n)
    plan.validate()
    for rank in range(n):
        for step, view in zip(plan.steps(rank), ring_rs_schedule(n, rank)):
            assert step.dst == (rank - 1) % n
            assert step.send_chunks == (view.send_chunk,)
            assert step.recv_chunks == (view.recv_chunk,)
        routes = plan.routes(rank)
        assert routes[rank].kind is RouteKind.LOCAL_TERMINAL
        assert routes[(rank + 1) % n].kind is RouteKind.REMOTE_UPDATE
        assert routes[(rank + 1) % n].dst_gpu == (rank - 1) % n
        assert plan.production_order(rank) == ring_production_order(n, rank)


def test_flat_plan_split_k_expected_updates():
    plan = ring_reduce_scatter_plan(8, split_k=4)
    routes = plan.routes(2)
    # remote-fed chunk gets split_k incoming partial-sums, others one DMA.
    assert routes[4].expected_updates == 8   # 4 local + 4 incoming
    assert routes[5].expected_updates == 5   # 4 local + 1 incoming
    assert routes[2].expected_updates == 5   # own terminal chunk


def test_ag_plan_arrival_order_is_ring_order():
    plan = ring_all_gather_plan(8)
    plan.validate()
    for rank in range(8):
        assert plan.arrival_order(rank) == [(rank + i) % 8 for i in range(8)]


def test_direct_and_a2a_plans_validate():
    for n in (2, 4, 8):
        direct_rs_plan(n).validate()
        all_to_all_plan(n).validate()
    plan = direct_rs_plan(4)
    assert plan.routes(1)[1].expected_updates == 4
    assert plan.routes(1)[3].dst_gpu == 3


# --------------------------------------------------- graceful small payloads

def test_plan_clamps_chunks_for_small_payloads():
    plan = ring_reduce_scatter_plan(8, max_chunks=3)
    plan.validate()
    assert plan.n_chunks == 3
    # only owners of live chunks terminate anything
    terminal = {r: plan.rank_plan(r).terminal_chunks() for r in range(8)}
    assert terminal[0] == [0] and terminal[2] == [2]
    assert terminal[5] == []


def test_fused_gemm_rs_small_shape_falls_back_to_fewer_chunks():
    """A GEMM with fewer output tiles than ranks used to raise inside
    split_evenly mid-sweep; the plan layer now clamps the chunk count."""
    env = Environment()
    system = table1_system(n_gpus=8)
    topo = RingTopology(env, system)
    # 256x128 output on 256x128 macro-tiles = 2 WG tiles < 8 ranks.
    shape = GEMMShape(m=256, n=128, k=512, element_bytes=2)
    fused = FusedGEMMRS(topo, shape)
    assert fused.plan.n_chunks == 2
    result = fused.run()
    assert result.duration > 0
    assert len(result.per_rank_terminal) == 2  # only live-chunk owners


# --------------------------------------------------------- hierarchical plan

@pytest.mark.parametrize("nodes,per", [(2, 2), (2, 4), (4, 2), (3, 4)])
def test_hierarchical_plan_validates_and_terminates_at_owner(nodes, per):
    plan = hierarchical_rs_plan(nodes, per)
    plan.validate()
    assert plan.stage_names == ("intra", "inter")
    for rank in range(nodes * per):
        assert plan.rank_plan(rank).terminal_chunks() == [rank]


def test_hierarchical_plan_degenerates_to_flat_ring():
    flat = ring_reduce_scatter_plan(8)
    for plan in (hierarchical_rs_plan(1, 8), hierarchical_rs_plan(8, 1)):
        for rank in range(8):
            assert plan.steps(rank) == flat.steps(rank)
            assert plan.routes(rank) == flat.routes(rank)


def test_plan_for_dispatches_on_topology():
    system = table1_system(n_gpus=8)
    assert plan_for(RingTopology(Environment(), system)).n_chunks == 8
    hier = HierarchicalRingTopology(Environment(), system, gpus_per_node=4)
    assert plan_for(hier).stage_names == ("intra", "inter")
    flat = HierarchicalRingTopology(Environment(), system, gpus_per_node=8)
    assert plan_for(flat).stage_names == ("ring",)
    full = FullyConnectedTopology(Environment(), system)
    assert plan_for(full, "direct-rs").collective == "direct-rs"


def test_fused_t3_runs_multi_node():
    """The headline capability: fused GEMM-RS across 2 nodes x 4 GPUs,
    with the invariant checker clean."""
    env = Environment()
    env.invariants = InvariantChecker(env)
    system = table1_system(n_gpus=8)
    topo = HierarchicalRingTopology(env, system, gpus_per_node=4,
                                    policy_name="mca")
    shape = GEMMShape(m=1024, n=1024, k=512, element_bytes=2)
    fused = FusedGEMMRS(topo, shape, calibrate_mca=True)
    assert fused.plan.stage_names == ("intra", "inter")
    result = fused.run()
    env.invariants.check_all()
    assert len(result.per_rank_terminal) == 8
    assert result.duration > 0


# ------------------------------------------- plan-driven CU reduce-scatter

def test_planned_rs_matches_ring_rs_on_flat_ring():
    def run(cls):
        env = Environment()
        topo = RingTopology(env, table1_system(n_gpus=8))
        res = cls(topo, nbytes_total=16 * 1024 * 1024).run()
        return res.duration, dict(res.per_rank_end)

    legacy = run(RingReduceScatter)
    planned = run(PlannedReduceScatter)
    assert planned == legacy


def test_planned_rs_completes_on_hierarchical_topology():
    env = Environment()
    topo = HierarchicalRingTopology(env, table1_system(n_gpus=8),
                                    gpus_per_node=4)
    rs = PlannedReduceScatter(topo, nbytes_total=16 * 1024 * 1024)
    res = rs.run()
    assert len(res.per_rank_end) == 8
    assert res.duration > 0


# -------------------------------------------------- all-to-all closed form

def test_all_to_all_time_own_closed_form():
    """The a2a model must price the pairwise exchange, not alias the ring
    all-gather (which forwards N-1 chunk-steps of the whole payload)."""
    system = table1_system(n_gpus=8)
    nbytes = 64 * 1024 * 1024
    a2a = collective_time(CollectiveOp.ALL_TO_ALL, nbytes, system)
    assert a2a == all_to_all_time(nbytes, system)
    assert a2a != ring_ag_time(nbytes, system)
    # n_cus is accepted (and ignored) like the other dispatches.
    assert collective_time(CollectiveOp.ALL_TO_ALL, nbytes, system,
                           n_cus=32) == a2a


def test_all_to_all_time_scales_with_bisection():
    """Pairwise shards crossing the ring cut make a2a *worse* with more
    devices at fixed payload — the opposite of ring-AG, whose per-step
    chunk shrinks.  The old alias (a2a priced as ring-AG) got this
    backwards."""
    nbytes = 64 * 1024 * 1024
    a2a_8 = all_to_all_time(nbytes, table1_system(n_gpus=8))
    a2a_16 = all_to_all_time(nbytes, table1_system(n_gpus=16))
    assert a2a_16 > a2a_8
    ag_growth = (ring_ag_time(nbytes, table1_system(n_gpus=16))
                 / ring_ag_time(nbytes, table1_system(n_gpus=8)))
    assert a2a_16 / a2a_8 > ag_growth  # bisection dominates, AG ~flat
    # payload monotonicity
    assert all_to_all_time(2 * nbytes, table1_system(n_gpus=8)) > a2a_8


# ------------------------------------------------------ scaleout experiment

def test_scaleout_experiment_t3_beats_sequential():
    result = scaleout.run(fast=True)
    labels = [row.label for row in result.rows]
    assert labels == ["1 node x 8 GPUs", "2 nodes x 4 GPUs"]
    for row in result.rows:
        assert row.speedup > 1.0, row.label
    hier = result.row("2 nodes x 4 GPUs")
    assert hier.stage_names == ["intra", "inter"]
    stages = {span.stage for span in hier.plan_stages}
    assert stages == {"intra", "inter"}
    rendered = result.render()
    assert "scale-out" in rendered and "intra" in rendered
