"""Guard against stale checked-in results.

``results/*.txt`` are committed artifacts of ``scripts/capture_results``;
when a simulator change shifts the numbers, the files must be
regenerated.  Re-rendering every figure is minutes of simulation, so this
test compares only the *cheap* (closed-form / sub-second) experiments
live against their checked-in bodies — any drift in shared config or
rendering code trips it immediately, and the expensive figures are
validated by the same mechanism whenever ``make results`` is run.
"""

import pathlib

import pytest

from repro.experiments.runner import EXPERIMENTS

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
RESULTS_DIR = REPO_ROOT / "results"

#: experiments cheap enough to re-render on every test run.
CHEAP = ("table1", "table2", "table3", "figure4")


def body(text: str) -> str:
    """Rendered output minus the ``[...]`` timing-stamp lines (which vary
    run to run by design — same convention as scripts/smoke_cache.py)."""
    return "\n".join(line for line in text.splitlines()
                     if not line.startswith("[")).strip()


def capture_order():
    """The ORDER list from scripts/capture_results.py (scripts/ is not a
    package, so lift the literal out of the source)."""
    source = (REPO_ROOT / "scripts" / "capture_results.py").read_text()
    start = source.index("ORDER")
    end = source.index("]", start) + 1
    namespace = {}
    exec(source[start:end], namespace)
    return namespace["ORDER"]


@pytest.mark.parametrize("name", CHEAP)
def test_checked_in_results_match_live_render(name):
    path = RESULTS_DIR / f"{name}.txt"
    assert path.exists(), f"results/{name}.txt missing; run make results"
    live = EXPERIMENTS[name](fast=True).render()
    assert body(path.read_text()) == body(live), (
        f"results/{name}.txt is stale; regenerate with "
        "`python scripts/capture_results.py`")


def test_every_captured_experiment_has_a_results_file():
    order = capture_order()
    assert set(order) <= set(EXPERIMENTS)
    missing = [name for name in order
               if not (RESULTS_DIR / f"{name}.txt").exists()]
    assert not missing, (
        f"results/ lacks {missing}; run `python scripts/capture_results.py`")


def test_combined_results_file_contains_every_body():
    combined = RESULTS_DIR / "all_results.txt"
    assert combined.exists()
    text = combined.read_text()
    for name in capture_order():
        assert body((RESULTS_DIR / f"{name}.txt").read_text()) in \
            body(text), f"all_results.txt out of sync for {name}"
