"""Integration tests for T3 fused GEMM-RS (repro.t3.fusion)."""

import pytest

from repro.config import table1_system
from repro.gpu.wavefront import GEMMShape
from repro.interconnect.topology import RingTopology
from repro.sim import Environment
from repro.t3.address_map import AddressSpaceConfig, ChunkRoute, RouteKind
from repro.t3.configs import CONFIGS, config_by_name
from repro.t3.fusion import FusedGEMMRS


def run_fused(n_gpus=4, m=1024, n=512, k=256, n_cus=4, quantum=8 * 1024,
              **kwargs):
    env = Environment()
    system = table1_system(n_gpus=n_gpus).with_fidelity(quantum_bytes=quantum)
    topo = RingTopology(env, system)
    fused = FusedGEMMRS(topo, GEMMShape(m, n, k), n_cus=n_cus, **kwargs)
    result = fused.run()
    return env, topo, fused, result


# -------------------------------------------------------------- address map

def test_ring_rs_routes_cover_all_chunks():
    config = AddressSpaceConfig.ring_reduce_scatter(rank=1, n_gpus=4)
    assert config.remote_chunks() == [2]          # rank+1
    assert sorted(config.dma_chunks()) == [0, 3]  # middle chunks
    assert config.route(1).kind is RouteKind.LOCAL_TERMINAL
    # DMA destination is the downstream neighbour (rank-1).
    assert config.route(3).dst_gpu == 0
    assert config.route(2).dst_gpu == 0


def test_ring_rs_expected_updates_is_two():
    """Section 4.2.1: ring-RS expects two updates per element."""
    config = AddressSpaceConfig.ring_reduce_scatter(rank=0, n_gpus=8)
    for cid in config.tracked_chunks():
        assert config.route(cid).expected_updates == 2


def test_direct_rs_routes():
    config = AddressSpaceConfig.direct_reduce_scatter(rank=2, n_gpus=4)
    assert config.remote_chunks() == [0, 1, 3]
    assert config.route(2).kind is RouteKind.LOCAL_TERMINAL
    assert config.route(2).expected_updates == 4
    assert config.route(0).dst_gpu == 0  # straight to the final owner


def test_chunk_route_validation():
    with pytest.raises(ValueError):
        ChunkRoute(0, RouteKind.REMOTE_UPDATE)  # missing dst
    with pytest.raises(ValueError):
        ChunkRoute(0, RouteKind.LOCAL_TERMINAL, dst_gpu=1)
    with pytest.raises(ValueError):
        ChunkRoute(0, RouteKind.LOCAL_UPDATE, dst_gpu=1, expected_updates=0)
    with pytest.raises(ValueError):
        AddressSpaceConfig.ring_reduce_scatter(0, 1)


# -------------------------------------------------------------------- fusion

def test_fused_run_completes_all_chunks():
    env, topo, fused, result = run_fused()
    assert result.duration > 0
    assert len(result.per_rank_terminal) == 4
    # All DMA commands fired exactly once.
    for rank, gpu in enumerate(topo.gpus):
        expected = len(fused.address_configs[rank].dma_chunks())
        assert len(gpu.dma.triggered_commands) == expected


def test_fused_reduction_invariants_hold():
    """Every tracked chunk on every rank accumulated exactly its two
    whole-chunk contributions (local + incoming)."""
    env, topo, fused, result = run_fused(check_invariants=True)
    for ledger in fused.ledgers:
        for _cid, count, _sealed in ledger.summary():
            assert count == 2


def test_fused_works_at_two_and_eight_gpus():
    for n_gpus in (2, 8):
        env, topo, fused, result = run_fused(n_gpus=n_gpus, m=2048)
        assert len(result.per_rank_terminal) == n_gpus


def test_fused_dram_accounting_matches_paper_structure():
    """Per GPU with T3: RS reads = (N-2) chunks, total updates =
    (2N-2) chunks (Figure 10b / Section 6.2 accounting)."""
    env, topo, fused, result = run_fused(n_gpus=4, m=1024, n=512)
    grid = fused.grids[0]
    chunk_bytes = grid.chunk_bytes_total(0)  # balanced chunks here
    n = 4
    for gpu in topo.gpus:
        rs_reads = gpu.mc.counters.get("rs.read")
        assert rs_reads == pytest.approx((n - 2) * chunk_bytes, rel=0.01)
        local_updates = gpu.mc.counters.get("gemm.update")
        incoming = gpu.mc.counters.get("rs.update")
        # local: N-1 chunks (one went remote); incoming: N-1 contributions.
        assert local_updates == pytest.approx((n - 1) * chunk_bytes, rel=0.01)
        assert incoming == pytest.approx((n - 1) * chunk_bytes, rel=0.01)
        # No plain GEMM writes at all: everything is an NMC update.
        assert gpu.mc.counters.get("gemm.write") == 0


def test_fused_no_cu_collective_kernel():
    """T3's whole point: communication moves without CU kernels — there is
    no 'rs' compute-stream read traffic beyond the DMA source reads."""
    env, topo, fused, result = run_fused()
    # The baseline CU kernel would have produced rs.write traffic from
    # reduce outputs; T3 produces only rs.update (NMC) traffic.
    for gpu in topo.gpus:
        assert gpu.mc.counters.get("rs.write") == 0


def test_fused_rs_tail_is_shorter_than_sequential_rs():
    """Fusion hides most of the RS behind the GEMM: the tail after GEMM
    completion must be far below a full sequential RS."""
    env, topo, fused, result = run_fused(m=2048, n=1024, k=2048, n_cus=8)
    gemm_end = max(r.end for r in result.gemm_results)
    tail = result.rs_done - gemm_end
    from repro.collectives.api import ring_rs_time
    sequential_rs = ring_rs_time(
        fused.shape.output_bytes, topo.system)
    assert tail < 0.6 * sequential_rs


def test_stagger_disabled_still_correct():
    env, topo, fused, result = run_fused(stagger=False)
    assert len(result.per_rank_terminal) == 4
    for ledger in fused.ledgers:
        for _cid, count, _sealed in ledger.summary():
            assert count == 2


def test_stagger_helps_fused_latency():
    _env1, _t1, _f1, staggered = run_fused(m=2048, n=1024, k=512, n_cus=8)
    _env2, _t2, _f2, unstaggered = run_fused(m=2048, n=1024, k=512, n_cus=8,
                                             stagger=False)
    # Without staggering every device produces chunk 0 first and the ring
    # serializes; staggered production must not be slower.
    assert staggered.duration <= unstaggered.duration * 1.02


def test_tracker_saw_every_update():
    env, topo, fused, result = run_fused()
    for tracker, config, grid in zip(fused.trackers, fused.address_configs,
                                     fused.grids):
        assert tracker.live_regions == 0  # everything completed
        programmed = sum(
            len(fused._chunk_wgs(grid, cid))
            for cid in config.tracked_chunks())
        assert tracker.stats.regions_programmed == programmed
        assert tracker.stats.regions_completed == programmed


# -------------------------------------------------------------------- configs

def test_config_registry():
    names = [c.name for c in CONFIGS]
    assert names == ["Sequential", "T3", "T3-MCA", "Ideal-GEMM-RS-Overlap",
                     "Ideal-RS+NMC"]
    assert config_by_name("T3-MCA").mc_policy == "mca"
    assert config_by_name("Ideal-RS+NMC").nmc_rs
    with pytest.raises(ValueError):
        config_by_name("nope")


def test_config_validation():
    from repro.t3.configs import RunConfig
    with pytest.raises(ValueError):
        RunConfig("bad", fused=True, mc_policy="mca", analytic=True)
