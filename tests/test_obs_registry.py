"""Unit tests for the metrics registry (repro.obs.registry) and the
interval algebra (repro.obs.intervals)."""

import pytest

from repro.obs import intervals as iv
from repro.obs.registry import (
    Gauge,
    MetricsRegistry,
    SpanList,
    TimeWeightedHistogram,
    ValueStats,
)


# -------------------------------------------------------------------- Gauge

def test_gauge_time_weighted_mean():
    gauge = Gauge("depth")
    gauge.set(0, 2.0)
    gauge.set(10, 4.0)   # level 2 held for 10 ns
    gauge.set(30, 0.0)   # level 4 held for 20 ns
    assert gauge.time_weighted_mean() == pytest.approx(
        (2.0 * 10 + 4.0 * 20) / 30)
    assert gauge.high_water == 4.0
    assert gauge.low_water == 0.0
    assert gauge.time_at_level() == {2.0: 10.0, 4.0: 20.0}


def test_gauge_mean_extends_tail_to_until():
    gauge = Gauge("depth")
    gauge.set(0, 10.0)
    gauge.set(10, 0.0)
    # 10 ns at level 10, then 30 ns at level 0.
    assert gauge.time_weighted_mean(until=40) == pytest.approx(2.5)


def test_gauge_rejects_time_travel():
    gauge = Gauge("depth")
    gauge.set(10, 1.0)
    with pytest.raises(ValueError):
        gauge.set(5, 2.0)


def test_gauge_add_is_relative():
    gauge = Gauge("depth")
    gauge.add(0, 3.0)
    gauge.add(5, -1.0)
    assert gauge.last_value == 2.0


def test_empty_gauge_is_benign():
    gauge = Gauge("depth")
    assert gauge.time_weighted_mean() == 0.0
    assert gauge.to_dict()["high_water"] == 0.0


# ------------------------------------------------- TimeWeightedHistogram

def test_histogram_buckets_by_upper_bound():
    hist = TimeWeightedHistogram(bounds=[1, 4])
    hist.observe(0, 5.0)    # <= 1
    hist.observe(1, 2.0)    # <= 1 (inclusive upper edge)
    hist.observe(3, 7.0)    # <= 4
    hist.observe(9, 1.0)    # overflow
    assert hist.to_dict() == {"le_1": 7.0, "le_4": 7.0, "inf": 1.0}


def test_histogram_from_gauge():
    gauge = Gauge("depth")
    gauge.set(0, 0.0)
    gauge.set(10, 5.0)
    gauge.set(15, 0.0)
    hist = TimeWeightedHistogram.from_gauge(gauge, bounds=[2])
    assert hist.to_dict() == {"le_2": 10.0, "inf": 5.0}


def test_histogram_rejects_bad_input():
    with pytest.raises(ValueError):
        TimeWeightedHistogram(bounds=[])
    hist = TimeWeightedHistogram(bounds=[1])
    with pytest.raises(ValueError):
        hist.observe(0, -1.0)


# --------------------------------------------------------------- ValueStats

def test_value_stats_summary():
    stats = ValueStats()
    for value in (3.0, 1.0, 2.0):
        stats.observe(value)
    assert stats.count == 3
    assert stats.min == 1.0
    assert stats.max == 3.0
    assert stats.mean == pytest.approx(2.0)


def test_empty_value_stats_to_dict():
    assert ValueStats().to_dict() == {
        "count": 0, "total": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0}


# ----------------------------------------------------------------- SpanList

def test_span_list_coalesces_adjacent():
    spans = SpanList("busy")
    spans.add(0, 5)
    spans.add(5, 10)    # touching -> merged
    spans.add(20, 30)
    assert spans.spans == [(0, 10), (20, 30)]
    assert spans.busy_time() == 20
    assert spans.count == 3


def test_span_list_merges_out_of_order_overlap():
    # Spans recorded at *end* time arrive out of start order when they
    # overlap (two kernels on one GPU); the union must stay disjoint.
    spans = SpanList("busy")
    spans.add(10, 30)
    spans.add(0, 15)
    spans.add(40, 50)
    spans.add(29, 41)
    assert spans.spans == [(0, 50)]
    assert spans.busy_time() == 50


def test_span_list_rejects_negative_span():
    spans = SpanList("busy")
    with pytest.raises(ValueError):
        spans.add(10, 5)


def test_span_list_bounds():
    spans = SpanList("busy")
    assert spans.bounds() is None
    spans.add(5, 8)
    assert spans.bounds() == (5, 8)


# ---------------------------------------------------------- MetricsRegistry

def test_registry_scopes_are_keyed_and_reused():
    registry = MetricsRegistry()
    scope = registry.scope(0, "dma")
    assert registry.scope(0, "dma") is scope
    assert registry.get(1, "dma") is None
    registry.scope(1, "dma").count("triggers", 2)
    registry.scope(0, "dma").count("triggers")
    assert registry.counter_total("dma", "triggers") == 3
    assert registry.gpus() == [0, 1]
    assert registry.components() == ["dma"]
    assert len(registry) == 2


def test_registry_end_time_spans_all_metric_kinds():
    registry = MetricsRegistry()
    registry.scope(0, "dma").gauge("depth").set(100, 1.0)
    registry.scope(0, "link").span("wire", 50, 250)
    registry.scope(0, "gemm").series("stage_end").record(300, 0)
    assert registry.end_time() == 300


def test_registry_snapshot_shape():
    registry = MetricsRegistry()
    scope = registry.scope(2, "tracker")
    scope.count("regions_completed", 4)
    scope.observe("trigger_latency_ns", 12.5)
    scope.gauge("live_regions").set(0, 1)
    snapshot = registry.snapshot()
    assert snapshot["scopes"][0]["gpu"] == 2
    assert snapshot["scopes"][0]["counters"] == {"regions_completed": 4.0}
    assert snapshot["scopes"][0]["observations"][
        "trigger_latency_ns"]["count"] == 1


# -------------------------------------------------------- interval algebra

def test_interval_merge_and_total():
    merged = iv.merge([(5, 10), (0, 6), (20, 25)])
    assert merged == [(0, 10), (20, 25)]
    assert iv.total(merged) == 15


def test_interval_intersect():
    a = [(0, 10), (20, 30)]
    b = [(5, 25)]
    assert iv.intersect(a, b) == [(5, 10), (20, 25)]
    assert iv.intersect(a, []) == []


def test_interval_subtract():
    a = [(0, 10), (20, 30)]
    b = [(5, 25)]
    assert iv.subtract(a, b) == [(0, 5), (25, 30)]
    assert iv.subtract(a, []) == iv.merge(a)
    assert iv.subtract([], a) == []


def test_interval_clip():
    spans = [(0, 10), (20, 30)]
    assert iv.clip(spans, 5, 25) == [(5, 10), (20, 25)]
    assert iv.clip(spans, 11, 19) == []


def test_interval_partition_identity():
    # hidden + exposed must exactly tile the comm intervals.
    comm = [(0, 10), (15, 30)]
    compute = [(5, 20)]
    hidden = iv.intersect(comm, compute)
    exposed = iv.subtract(comm, compute)
    assert iv.total(hidden) + iv.total(exposed) == pytest.approx(
        iv.total(comm))
