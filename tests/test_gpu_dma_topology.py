"""Unit tests for DMA engine + topologies (repro.gpu.dma, repro.interconnect)."""

import pytest

from repro.config import table1_system
from repro.gpu.dma import DMACommand
from repro.interconnect.topology import FullyConnectedTopology, RingTopology
from repro.memory.request import AccessKind
from repro.sim import Environment, SimulationError


def make_ring(n_gpus=4, quantum=8 * 1024):
    env = Environment()
    system = table1_system(n_gpus=n_gpus).with_fidelity(quantum_bytes=quantum)
    return env, RingTopology(env, system)


def command(dst, chunk=0, slices=((0, 32 * 1024), (1, 32 * 1024)),
            op=AccessKind.UPDATE, read=True, cid="c0"):
    return DMACommand(command_id=cid, dst_gpu_id=dst, chunk_id=chunk,
                      wg_slices=tuple(slices), op=op, read_source=read)


# ------------------------------------------------------------------ topology

def test_ring_edges_both_directions():
    env, topo = make_ring(4)
    assert topo.n_gpus == 4
    assert (0, 3) in topo.links and (3, 0) in topo.links
    assert (0, 1) in topo.links and (1, 0) in topo.links
    assert (0, 2) not in topo.links


def test_ring_neighbor_math_matches_figure7():
    env, topo = make_ring(4)
    # GPU-0 sends to GPU-3 (Figure 7).
    assert topo.next_gpu(0) == 3
    assert topo.prev_gpu(0) == 1
    assert topo.next_gpu(3) == 2


def test_fully_connected_has_all_pairs():
    env = Environment()
    system = table1_system(n_gpus=4)
    topo = FullyConnectedTopology(env, system)
    assert len(topo.links) == 4 * 3


def test_link_lookup_errors():
    env, topo = make_ring(4)
    with pytest.raises(SimulationError):
        topo.link(0, 2)
    with pytest.raises(SimulationError):
        topo.gpus[0].link_to(2)
    with pytest.raises(SimulationError):
        topo.gpus[0].peer(2)


def test_gpu_self_link_rejected():
    env, topo = make_ring(4)
    with pytest.raises(SimulationError):
        topo.gpus[0].connect(topo.gpus[0], topo.link(0, 1))


# ----------------------------------------------------------------------- DMA

def test_dma_program_and_trigger_moves_bytes():
    env, topo = make_ring(4)
    src, dst = topo.gpus[0], topo.gpus[3]
    cmd = command(dst=3)
    src.dma.program(cmd)
    done = src.dma.trigger("c0")
    env.run()
    assert done.fired
    assert src.dma.bytes_moved == cmd.nbytes
    # Local DMA reads + remote NMC updates were accounted.
    assert src.mc.counters.get("rs.read") == cmd.nbytes
    assert dst.mc.counters.get("rs.update") == cmd.nbytes


def test_dma_without_source_read_skips_local_reads():
    env, topo = make_ring(4)
    src, dst = topo.gpus[1], topo.gpus[0]
    cmd = command(dst=0, read=False, op=AccessKind.WRITE)
    src.dma.program(cmd)
    src.dma.trigger("c0")
    env.run()
    assert src.mc.counters.get("rs.read") == 0
    assert dst.mc.counters.get("rs.write") == cmd.nbytes


def test_dma_remote_updates_carry_wg_metadata():
    env, topo = make_ring(4)
    src, dst = topo.gpus[0], topo.gpus[3]
    seen = []
    dst.mc.add_tracker_observer(lambda r: seen.append((r.wg_id, r.chunk_id)))
    cmd = command(dst=3, chunk=2, slices=((7, 16 * 1024),))
    src.dma.program(cmd)
    src.dma.trigger("c0")
    env.run()
    assert seen and all(wg == 7 and chunk == 2 for wg, chunk in seen)


def test_dma_completion_time_includes_link_serialization():
    env, topo = make_ring(4)
    system = topo.system
    src = topo.gpus[0]
    nbytes = 1024 * 1024
    cmd = command(dst=3, slices=((0, nbytes),), read=False)
    src.dma.program(cmd)
    src.dma.trigger("c0")
    env.run()
    serialization = nbytes / system.link.bandwidth
    assert env.now >= serialization + system.link.latency_ns


def test_dma_double_trigger_rejected():
    env, topo = make_ring(4)
    src = topo.gpus[0]
    src.dma.program(command(dst=3))
    src.dma.trigger("c0")
    with pytest.raises(SimulationError, match="twice"):
        src.dma.trigger("c0")


def test_dma_unprogrammed_trigger_rejected():
    env, topo = make_ring(4)
    with pytest.raises(SimulationError, match="unprogrammed"):
        topo.gpus[0].dma.trigger("nope")


def test_dma_duplicate_program_rejected():
    env, topo = make_ring(4)
    src = topo.gpus[0]
    src.dma.program(command(dst=3))
    with pytest.raises(SimulationError, match="already"):
        src.dma.program(command(dst=3))


def test_dma_command_validation():
    with pytest.raises(ValueError):
        command(dst=1, op=AccessKind.READ)
    with pytest.raises(ValueError):
        DMACommand("x", 1, 0, wg_slices=())
    with pytest.raises(ValueError):
        command(dst=1, slices=((0, 0),))
    env, topo = make_ring(4)
    with pytest.raises(SimulationError, match="local"):
        topo.gpus[0].dma.program(command(dst=0))


def test_dma_to_self_distance_two_requires_link():
    env, topo = make_ring(4)
    src = topo.gpus[0]
    src.dma.program(command(dst=2))  # no ring link 0->2
    src.dma.trigger("c0")
    with pytest.raises(SimulationError, match="no link"):
        env.run()


def test_concurrent_dmas_share_link_bandwidth():
    env, topo = make_ring(4)
    src = topo.gpus[0]
    nbytes = 512 * 1024
    for i in range(2):
        src.dma.program(command(dst=3, cid=f"c{i}",
                                slices=((i, nbytes),), read=False))
    src.dma.trigger("c0")
    src.dma.trigger("c1")
    env.run()
    serialization = 2 * nbytes / topo.system.link.bandwidth
    assert env.now >= serialization  # serialized on the same wire
