"""Integration tests for the sub-layer suite driver (the heart of the
Figures 15/16/18 reproduction)."""

import pytest

from repro.config import table1_system
from repro.experiments.common import (
    run_sublayer,
    run_sublayer_suite,
    scaled_shape,
    sublayer_cases,
)
from repro.gpu.wavefront import GEMMShape
from repro.models import zoo


SYSTEM = table1_system(n_gpus=4).with_fidelity(quantum_bytes=32 * 1024)
# A small shape with FC-like compute/comm balance.
SHAPE = GEMMShape(2048, 1024, 2048, name="test-fc")


@pytest.fixture(scope="module")
def suite():
    return run_sublayer_suite(SYSTEM, SHAPE)


def test_all_configs_present(suite):
    assert set(suite.times) == {
        "Sequential", "T3", "T3-MCA", "Ideal-GEMM-RS-Overlap",
        "Ideal-RS+NMC",
    }
    assert all(t > 0 for t in suite.times.values())


def test_sequential_is_sum_of_parts(suite):
    assert suite.times["Sequential"] == pytest.approx(
        suite.gemm_time + suite.rs_time + suite.ag_time)


def test_paper_ordering_of_configurations(suite):
    """Sequential >= T3 >= T3-MCA >= Ideal-Overlap >= Ideal-RS+NMC is the
    structural result of Figure 16 (T3 vs T3-MCA can tie on uncontended
    shapes; ideals can only be faster)."""
    seq = suite.times["Sequential"]
    t3 = suite.times["T3"]
    mca = suite.times["T3-MCA"]
    ideal = suite.times["Ideal-GEMM-RS-Overlap"]
    ideal_nmc = suite.times["Ideal-RS+NMC"]
    assert seq > t3 * 1.02          # fusion hides real RS time
    assert mca <= t3 * 1.05         # MCA never materially hurts
    assert ideal_nmc <= ideal * 1.0001
    assert ideal <= seq


def test_speedups_in_paper_band(suite):
    """T3-MCA sub-layer speedups: the paper reports 10-47%."""
    s = suite.speedup("T3-MCA")
    assert 1.05 < s < 1.7


def test_t3_within_reach_of_ideal(suite):
    """T3-MCA geomean is ~5% below Ideal-Overlap in the paper."""
    ideal = suite.speedup("Ideal-GEMM-RS-Overlap")
    mca = suite.speedup("T3-MCA")
    assert mca > ideal * 0.80


def test_data_movement_reduced(suite):
    """Figure 18: T3 cuts per-GPU DRAM traffic (22% geomean, max 36%)."""
    reduction = suite.data_movement_reduction("T3-MCA")
    assert 0.05 < reduction < 0.5


def test_rs_read_reduction_matches_ring_algebra(suite):
    """RS reads shrink from (2N-1) to (N-2) chunks: 2.33x at N=4."""
    base = suite.traffic["Sequential"].rs_read
    t3 = suite.traffic["T3"].rs_read
    n = SYSTEM.n_gpus
    assert base / t3 == pytest.approx((2 * n - 1) / (n - 2), rel=0.05)


def test_ag_traffic_unchanged(suite):
    """Figure 18: AG reads/writes are constant between baseline and T3."""
    base = suite.traffic["Sequential"]
    t3 = suite.traffic["T3-MCA"]
    assert t3.ag_read == pytest.approx(base.ag_read, rel=0.01)
    assert t3.ag_write == pytest.approx(base.ag_write, rel=0.01)


def test_gemm_reads_reduced_by_llc_bypass(suite):
    """T3's write bypass frees LLC for inputs -> fewer GEMM DRAM reads."""
    assert suite.traffic["T3"].gemm_read <= \
        suite.traffic["Sequential"].gemm_read * 1.001


def test_scaled_shape_preserves_balance():
    shape = GEMMShape(16384, 4256, 2128)
    small = scaled_shape(shape, 8)
    assert small.m == 2048
    assert (small.n, small.k) == (shape.n, shape.k)
    assert scaled_shape(shape, 1) == shape
    tiny = scaled_shape(GEMMShape(512, 64, 64), 1000)
    assert tiny.m == 256  # floor


def test_sublayer_cases_cover_figure15_grid():
    cases = sublayer_cases()
    assert len(cases) == 2 * 2 * 4  # 2 models x 2 TPs x 4 sub-layers
    labels = {c.label for c in cases}
    assert "Mega-GPT-2/OP/TP8" in labels
    assert "T-NLG/FC-1/TP16" in labels


def test_run_sublayer_single_config():
    system = table1_system(n_gpus=4).with_fidelity(quantum_bytes=64 * 1024)
    sub = zoo.t_nlg().sublayer("OP", tp=4)
    suite = run_sublayer(system, sub, config="T3", scale=8)
    assert set(suite.times) == {"Sequential", "T3"}
    assert suite.speedup("T3") > 1.0
