"""Tests for consumer-side fusion: AG overlapped with its consumer GEMM
(Section 7.2)."""

import pytest

from repro.config import table1_system
from repro.gpu.wavefront import GEMMShape
from repro.interconnect.topology import RingTopology
from repro.sim import Environment
from repro.t3.consumer import FusedAGConsumerGEMM, sequential_ag_then_gemm


def make_topo(n_gpus=4, quantum=16 * 1024):
    env = Environment()
    system = table1_system(n_gpus=n_gpus).with_fidelity(quantum_bytes=quantum)
    return env, RingTopology(env, system)


SHAPE = GEMMShape(2048, 1024, 1024, name="consumer")


def test_fused_ag_gemm_completes():
    env, topo = make_topo()
    fused = FusedAGConsumerGEMM(topo, SHAPE, n_cus=8)
    result = fused.run()
    assert result.duration > 0
    assert len(result.gemm_results) == 4


def test_all_gates_fire_in_arrival_order():
    env, topo = make_topo()
    fused = FusedAGConsumerGEMM(topo, SHAPE, n_cus=8)
    result = fused.run()
    n = topo.system.n_gpus
    for rank in range(n):
        gates = result.gate_times[rank]
        assert set(gates) == set(range(n)) - {rank}
        # Ring-arrival order: chunk rank+1 lands before rank+2, etc.
        order = [(rank + offset) % n for offset in range(1, n)]
        times = [gates[c] for c in order]
        assert times == sorted(times)


def test_fused_beats_sequential_ag_then_gemm():
    """The point of Section 7.2: a long-running consumer hides the AG."""
    env1, topo1 = make_topo()
    fused = FusedAGConsumerGEMM(topo1, SHAPE, n_cus=8).run()
    env2, topo2 = make_topo()
    sequential = sequential_ag_then_gemm(topo2, SHAPE, n_cus=8)
    speedup = sequential / fused.duration
    assert speedup > 1.1


def test_first_stage_starts_before_ag_finishes():
    """The consumer's own-chunk stages are not gated; compute starts
    immediately while the ring is still moving data."""
    env, topo = make_topo()
    fused = FusedAGConsumerGEMM(topo, SHAPE, n_cus=8)
    result = fused.run()
    for rank, kernel in enumerate(fused.kernels):
        first_stage_end = kernel.result.stage_ends[0]
        last_gate = max(result.gate_times[rank].values())
        assert first_stage_end < last_gate


def test_gemm_never_reads_unarrived_chunks():
    """A gated stage's reads are issued only after its gate fires: the
    tracker regions complete before any stage touching them computes."""
    env, topo = make_topo()
    fused = FusedAGConsumerGEMM(topo, SHAPE, n_cus=8)
    result = fused.run()
    for rank, (grid, kernel) in enumerate(zip(fused.grids, fused.kernels)):
        gates = result.gate_times[rank]
        for stage in grid.stages:
            foreign = [c for c in stage.chunk_bytes if c != rank]
            if not foreign:
                continue
            gate_time = max(gates[c] for c in foreign)
            stage_end = kernel.result.stage_ends[stage.index]
            assert stage_end >= gate_time


def test_stage_gate_length_validation():
    env, topo = make_topo()
    from repro.gpu.gemm import GEMMKernel
    from repro.memory.cache import estimate_gemm_traffic
    from repro.gpu.wavefront import TileGrid

    grid = TileGrid(SHAPE, topo.system.gemm, n_cus=8)
    traffic = estimate_gemm_traffic(grid, topo.system.memory, False)
    with pytest.raises(ValueError, match="gate slot"):
        GEMMKernel(grid, traffic, stage_gates=[None])


def test_fused_ag_gemm_eight_gpus():
    env, topo = make_topo(n_gpus=8, quantum=32 * 1024)
    fused = FusedAGConsumerGEMM(topo, GEMMShape(4096, 1024, 512), n_cus=16)
    result = fused.run()
    assert len(result.gemm_results) == 8
