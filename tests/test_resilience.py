"""Unit tests for the resilience layer: policy ladder, detection
monitors, plan repair, the runtime's recovery bookkeeping, and the chaos
campaign's registration/determinism."""

import pytest

from repro.collectives.plan import (
    direct_rs_plan,
    hierarchical_rs_plan,
    ring_reduce_scatter_plan,
)
from repro.config import table1_system
from repro.experiments import chaos
from repro.faults import FaultPlan
from repro.resilience import (
    LadderRung,
    ResiliencePolicy,
    ResilienceRuntime,
    RunState,
)
from repro.resilience.detect import (
    Diagnosis,
    Ewma,
    LinkFinding,
    LinkHealthMonitor,
    StragglerDetector,
    StragglerFinding,
)
from repro.resilience.policy import CollectiveStateMachine, ScenarioLadder
from repro.resilience.repair import (
    demote_rank,
    exclude_rank,
    repair_for_diagnosis,
    reroute_off_link,
)

# ------------------------------------------------------------------ policy


def test_policy_rejects_bad_knobs():
    with pytest.raises(ValueError, match="deadline_slack"):
        ResiliencePolicy(deadline_slack=0.5)
    with pytest.raises(ValueError, match="backoff"):
        ResiliencePolicy(backoff=0.9)
    with pytest.raises(ValueError, match="ewma_alpha"):
        ResiliencePolicy(ewma_alpha=0.0)
    with pytest.raises(ValueError, match="budgets"):
        ResiliencePolicy(max_reissues_per_command=-1)
    with pytest.raises(ValueError, match="thresholds"):
        ResiliencePolicy(link_degraded_threshold=1.0)


def test_policy_escalation_doubles_deadlines_and_budgets():
    base = ResiliencePolicy()
    first = base.escalated(1)
    assert first.deadline_slack == base.deadline_slack * 2
    assert first.deadline_floor_ns == base.deadline_floor_ns * 2
    assert first.max_reissues_per_command == \
        base.max_reissues_per_command * 2
    assert first.max_deadline_extensions == \
        base.max_deadline_extensions + 1
    second = base.escalated(2)
    assert second.deadline_slack == base.deadline_slack * 4
    with pytest.raises(ValueError, match="1-based"):
        base.escalated(0)


def test_state_machine_validates_transitions():
    machine = CollectiveStateMachine()
    assert machine.state is RunState.HEALTHY
    assert not machine.ever_degraded
    machine.to(RunState.DEGRADED)
    machine.to(RunState.RECOVERED)
    machine.to(RunState.DEGRADED)      # a later fault re-degrades
    machine.to(RunState.FAILED)
    assert machine.ever_degraded
    assert len(machine.transitions) == 4
    with pytest.raises(ValueError, match="illegal"):
        machine.to(RunState.HEALTHY)   # FAILED is terminal


def test_state_machine_same_state_is_a_noop():
    machine = CollectiveStateMachine()
    machine.to(RunState.HEALTHY)
    assert machine.transitions == []
    with pytest.raises(ValueError, match="illegal"):
        machine.to(RunState.RECOVERED)  # healthy cannot skip degraded


def test_ladder_walks_escalation_order():
    ladder = ScenarioLadder(max_retries=1)
    assert ladder.next_rung() is LadderRung.RETRY
    assert ladder.retry_attempt == 1
    assert ladder.next_rung() is LadderRung.REPAIR
    assert ladder.next_rung() is LadderRung.FALLBACK
    assert ladder.next_rung() is LadderRung.DEAD


def test_ladder_skips_repair_when_no_repair_available():
    ladder = ScenarioLadder(max_retries=1)
    assert ladder.next_rung(can_repair=False) is LadderRung.RETRY
    assert ladder.next_rung(can_repair=False) is LadderRung.FALLBACK


def test_ladder_honours_retry_budget():
    ladder = ScenarioLadder(max_retries=2)
    assert ladder.next_rung() is LadderRung.RETRY
    assert ladder.next_rung() is LadderRung.RETRY
    assert ladder.retry_attempt == 2
    assert ladder.next_rung() is LadderRung.REPAIR
    none = ScenarioLadder(max_retries=0)
    assert none.next_rung() is LadderRung.REPAIR
    with pytest.raises(ValueError):
        ScenarioLadder(max_retries=-1)


# --------------------------------------------------------------- detection


def test_ewma_smooths_towards_samples():
    ewma = Ewma(alpha=0.5)
    assert ewma.observe(4.0) == 4.0      # first sample seeds the average
    assert ewma.observe(8.0) == 6.0
    assert ewma.samples == 2


def test_link_monitor_needs_a_peer_baseline():
    monitor = LinkHealthMonitor(ResiliencePolicy())
    for _ in range(4):
        monitor.observe(0, 1, observed_ns=50.0, expected_ns=10.0)
    assert monitor.findings() == []      # one link has no peers


def test_link_monitor_flags_the_degraded_outlier():
    policy = ResiliencePolicy()
    monitor = LinkHealthMonitor(policy)
    for _ in range(policy.min_samples):
        for (src, dst) in ((0, 1), (1, 2), (2, 3)):
            monitor.observe(src, dst, observed_ns=12.0, expected_ns=10.0)
        monitor.observe(3, 0, observed_ns=48.0, expected_ns=10.0)
    findings = monitor.findings()
    assert [(f.src, f.dst) for f in findings] == [(3, 0)]
    assert findings[0].service_ratio > policy.link_degraded_threshold


def test_link_monitor_ignores_immature_links():
    policy = ResiliencePolicy(min_samples=3)
    monitor = LinkHealthMonitor(policy)
    for (src, dst) in ((0, 1), (1, 2)):
        for _ in range(3):
            monitor.observe(src, dst, observed_ns=12.0, expected_ns=10.0)
    monitor.observe(2, 0, observed_ns=99.0, expected_ns=10.0)  # 1 sample
    assert monitor.findings() == []


def test_straggler_detector_flags_relative_outlier():
    policy = ResiliencePolicy()
    detector = StragglerDetector(policy)
    for _ in range(policy.min_samples):
        for gpu in range(3):
            detector.observe(gpu, 100.0)
        detector.observe(3, 400.0)
    findings = detector.findings()
    assert [f.gpu_id for f in findings] == [3]
    assert findings[0].latency_ratio > policy.straggler_threshold
    lone = StragglerDetector(policy)
    for _ in range(4):
        lone.observe(0, 500.0)
    assert lone.findings() == []         # a fleet of one has no baseline


def test_diagnosis_summary_names_the_faults():
    healthy = Diagnosis()
    assert healthy.healthy and healthy.summary() == "healthy"
    sick = Diagnosis(
        degraded_links=[LinkFinding(src=3, dst=0, service_ratio=4.0,
                                    samples=4)],
        stragglers=[StragglerFinding(gpu_id=1, latency_ratio=2.0,
                                     samples=4)])
    assert not sick.healthy
    assert "3->0" in sick.summary() and "rank 1" in sick.summary()


# ------------------------------------------------------------------ repair


def test_reroute_reverses_ring_off_degraded_edge():
    plan = ring_reduce_scatter_plan(4)
    result = reroute_off_link(plan, 1, 0)
    assert result.action == "reversed" and result.changed
    edges = {(rp.rank, s.dst) for rp in result.plan.ranks
             for s in rp.steps}
    assert (1, 0) not in edges


def test_reroute_unused_edge_is_unchanged():
    plan = ring_reduce_scatter_plan(4)   # forward edges r -> r-1 only
    result = reroute_off_link(plan, 0, 2)
    assert result.action == "unchanged" and not result.changed


def test_reroute_two_rank_ring_cannot_avoid_the_edge():
    plan = ring_reduce_scatter_plan(2)   # forward == backward at N=2
    result = reroute_off_link(plan, 1, 0)
    assert result.action == "unchanged"
    assert "cannot avoid" in result.detail


def test_reroute_direct_plan_is_honest_unchanged():
    plan = direct_rs_plan(4)
    edges = {(rp.rank, s.dst) for rp in plan.ranks for s in rp.steps}
    src, dst = sorted(edges)[0]
    result = reroute_off_link(plan, src, dst)
    assert result.action == "unchanged"


def test_demote_rotates_graceful_chunked_ring():
    plan = ring_reduce_scatter_plan(8, n_chunks=4)
    result = demote_rank(plan, 2)
    assert result.action == "rotated"
    result.plan.validate()
    assert result.plan.n_chunks == 4


def test_demote_full_ring_is_unchanged():
    plan = ring_reduce_scatter_plan(4)
    assert demote_rank(plan, 1).action == "unchanged"
    with pytest.raises(ValueError):
        demote_rank(plan, 9)


def test_exclude_rebuilds_over_survivors():
    result = exclude_rank(ring_reduce_scatter_plan(4), 2)
    assert result.action == "rebuilt" and result.plan.n_ranks == 3
    # 2x4 minus one rank no longer divides: degrades to a flat ring.
    hier = exclude_rank(hierarchical_rs_plan(2, 4), 5)
    assert hier.plan.n_ranks == 7 and hier.plan.collective == "ring-rs"
    with pytest.raises(ValueError, match="2-rank"):
        exclude_rank(ring_reduce_scatter_plan(2), 0)


def test_repair_for_diagnosis_prefers_the_worst_link():
    plan = ring_reduce_scatter_plan(4)
    diagnosis = Diagnosis(
        degraded_links=[LinkFinding(src=1, dst=0, service_ratio=4.0,
                                    samples=4)],
        stragglers=[StragglerFinding(gpu_id=2, latency_ratio=2.0,
                                     samples=4)])
    assert repair_for_diagnosis(plan, diagnosis).action == "reversed"
    straggler_only = Diagnosis(
        stragglers=[StragglerFinding(gpu_id=2, latency_ratio=2.0,
                                     samples=4)])
    result = repair_for_diagnosis(
        ring_reduce_scatter_plan(8, n_chunks=4), straggler_only)
    assert result.action == "rotated"
    assert repair_for_diagnosis(plan, Diagnosis()).action == "unchanged"


# ----------------------------------------------------------------- runtime


def test_runtime_starts_dormant_and_arms_on_fault():
    runtime = ResilienceRuntime()
    assert not runtime.armed
    assert runtime.machine.state is RunState.HEALTHY
    runtime.on_fault_observed("dropped-dma", gpu_id=1)
    assert runtime.armed
    assert runtime.detections == 1
    assert runtime.machine.state is RunState.DEGRADED
    runtime.on_fault_observed("dropped-dma", gpu_id=1)
    assert runtime.detections == 2       # arming is idempotent


def test_runtime_reporting_defaults():
    runtime = ResilienceRuntime()
    assert runtime.dma_reissues == 0
    assert runtime.tracker_restores == 0
    assert runtime.mean_time_to_recover_ns() is None
    assert "state=healthy" in runtime.summary()


def test_runtime_recovers_dropped_completion_end_to_end():
    """A dropped DMA completion kills the bare fused run but the
    resilient one re-issues the notification and finishes."""
    scenario = chaos.ChaosScenario(
        index=0, kind="dropped-dma", severity="mild",
        topology=chaos.TOPOLOGIES[0], scheduler="T3-MCA", seed=0,
        plan=FaultPlan.dropped_dma(gpu_id=1, max_events=1, seed=7),
        detail="unit drop recovery")
    system = table1_system(n_gpus=scenario.topology.n_gpus)
    bare = chaos._attempt_fused(scenario, system, resilience=None)
    assert not bare.ok
    resilient = chaos._attempt_fused(scenario, system,
                                     resilience=ResiliencePolicy())
    assert resilient.survived
    assert resilient.runtime.dma_reissues >= 1
    assert resilient.runtime.mean_time_to_recover_ns() > 0
    assert resilient.runtime.machine.state is RunState.RECOVERED


# ------------------------------------------------------------------- chaos


def test_chaos_registered_in_runner():
    from repro.experiments.runner import EXPERIMENTS
    assert "chaos" in EXPERIMENTS


def test_chaos_campaign_grid_is_deterministic():
    first = chaos.campaign_scenarios(seeds=1)
    second = chaos.campaign_scenarios(seeds=1)
    assert len(first) == (len(chaos.FAULT_KINDS) * len(chaos.SEVERITIES)
                          * len(chaos.TOPOLOGIES) * len(chaos.SCHEDULERS))
    assert [s.index for s in first] == list(range(len(first)))
    assert [(s.kind, s.severity, s.detail) for s in first] == \
        [(s.kind, s.severity, s.detail) for s in second]


def test_chaos_link_faults_target_used_edges():
    for spec in chaos.TOPOLOGIES:
        edges = set(chaos._ring_edges(spec))
        for seed in range(3):
            plan, detail = chaos._fault_for("degraded-link", "severe",
                                            spec, seed)
            entry = plan.links[0]
            assert (entry.src, entry.dst) in edges, detail
