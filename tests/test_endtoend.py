"""Unit tests for the end-to-end iteration model (repro.models.endtoend)."""

import pytest

from repro.config import table1_system
from repro.models import zoo
from repro.models.endtoend import (
    Phase,
    apply_sublayer_speedups,
    attention_time,
    gemm_time,
    iteration_breakdown,
)
from repro.gpu.wavefront import GEMMShape


def bd(model, tp, phase=Phase.TRAINING):
    return iteration_breakdown(model, tp, table1_system(n_gpus=tp), phase)


# ------------------------------------------------------------ operator costs

def test_gemm_time_compute_bound_scales_with_flops():
    system = table1_system()
    small = gemm_time(GEMMShape(4096, 4096, 1024), system)
    big = gemm_time(GEMMShape(4096, 4096, 4096), system)
    assert 3.0 < (big - 2000) / (small - 2000) < 4.5


def test_attention_time_decreases_with_tp():
    system8 = table1_system(8)
    model = zoo.megatron_gpt2()
    assert attention_time(model, 16, system8) < attention_time(model, 8, system8)


# --------------------------------------------------------------- breakdowns

def test_breakdown_has_four_sliced_groups_in_training():
    breakdown = bd(zoo.t_nlg(), 8)
    groups = {op.group for op in breakdown.per_layer_ops if op.group}
    assert groups == {"OP", "FC-2", "FC-1", "IP"}


def test_prompt_phase_has_only_forward_groups():
    breakdown = bd(zoo.t_nlg(), 8, Phase.PROMPT)
    groups = {op.group for op in breakdown.per_layer_ops if op.group}
    assert groups == {"OP", "FC-2"}


def test_each_group_contains_gemm_rs_ag():
    breakdown = bd(zoo.megatron_gpt2(), 8)
    for group in ("OP", "FC-2", "FC-1", "IP"):
        cats = sorted(op.category for op in breakdown.per_layer_ops
                      if op.group == group)
        assert cats == ["ag", "rs", "sliced-gemm"]


def test_total_time_scales_with_layers():
    breakdown = bd(zoo.t_nlg(), 8)
    assert breakdown.total_time() == pytest.approx(
        breakdown.layer_time() * 78)


def test_comm_fraction_in_paper_band():
    """Section 2.4: Mega-GPT-2 / T-NLG spend up to 34% / 43% of time on
    communication; very large models up to 46%."""
    for model, tp, hi in [
        (zoo.megatron_gpt2(), 8, 0.40), (zoo.megatron_gpt2(), 16, 0.45),
        (zoo.t_nlg(), 8, 0.48), (zoo.t_nlg(), 16, 0.52),
    ]:
        for phase in (Phase.TRAINING, Phase.PROMPT):
            frac = bd(model, tp, phase).comm_fraction()
            assert 0.10 < frac < hi, (model.name, tp, phase, frac)


def test_large_model_comm_fraction():
    for model in zoo.large_models():
        frac = bd(model, 32, Phase.PROMPT).comm_fraction()
        assert 0.15 < frac < 0.55


def test_futuristic_models_communication_heavy():
    frac_1t = bd(zoo.future_1t(), 64, Phase.PROMPT).comm_fraction()
    assert 0.2 < frac_1t < 0.6


def test_attention_fraction_matches_unfused_mlperf_claim():
    """Section 6.3: non-fused attention is 40-45% of (prompt) execution.

    We accept a 30-50% band across the two small models."""
    for model in zoo.small_models():
        frac = bd(model, 8, Phase.PROMPT).attention_fraction()
        assert 0.28 < frac < 0.52, (model.name, frac)


def test_sliced_fraction_exceeds_comm_fraction():
    breakdown = bd(zoo.t_nlg(), 8)
    assert breakdown.sliced_fraction() > breakdown.comm_fraction()
    assert breakdown.sliced_fraction() < 0.8


def test_category_times_sum_to_total():
    breakdown = bd(zoo.megatron_gpt2(), 16)
    assert sum(breakdown.time_by_category().values()) == pytest.approx(
        breakdown.total_time())


def test_tp_mismatch_rejected():
    with pytest.raises(ValueError, match="n_gpus=tp"):
        iteration_breakdown(zoo.t_nlg(), 8, table1_system(n_gpus=16))
    with pytest.raises(ValueError):
        iteration_breakdown(zoo.t_nlg(), 1, table1_system(n_gpus=8))


# ------------------------------------------------------------------ speedups

def test_apply_speedups_identity():
    breakdown = bd(zoo.t_nlg(), 8)
    assert apply_sublayer_speedups(breakdown, {}) == pytest.approx(1.0)
    assert apply_sublayer_speedups(
        breakdown, {g: 1.0 for g in ("OP", "FC-2", "FC-1", "IP")}
    ) == pytest.approx(1.0)


def test_apply_speedups_bounded_by_group_share():
    breakdown = bd(zoo.t_nlg(), 8)
    share = breakdown.sliced_fraction()
    huge = apply_sublayer_speedups(
        breakdown, {g: 1e9 for g in ("OP", "FC-2", "FC-1", "IP")})
    # Amdahl: even infinite sub-layer speedup is capped by the share.
    assert huge == pytest.approx(1.0 / (1.0 - share), rel=1e-3)


def test_apply_speedups_realistic_band():
    """A ~1.3x sub-layer speedup must land end-to-end in the paper's
    Figure 19 ballpark (7-15%)."""
    for phase in (Phase.TRAINING, Phase.PROMPT):
        breakdown = bd(zoo.t_nlg(), 16, phase)
        e2e = apply_sublayer_speedups(
            breakdown, {g: 1.3 for g in ("OP", "FC-2", "FC-1", "IP")})
        assert 1.04 < e2e < 1.25, (phase, e2e)


def test_prompt_speedup_exceeds_training_speedup():
    """Section 6.3: inference benefits more (no AR-free backprop work).

    Holds when the same sub-layer speedup is applied to both phases."""
    speedups = {g: 1.3 for g in ("OP", "FC-2", "FC-1", "IP")}
    train = apply_sublayer_speedups(bd(zoo.t_nlg(), 16), speedups)
    prompt = apply_sublayer_speedups(
        bd(zoo.t_nlg(), 16, Phase.PROMPT),
        {g: 1.3 for g in ("OP", "FC-2")})
    # Prompt applies to fwd groups only but over a fwd-only denominator.
    assert prompt > 1.0 and train > 1.0


def test_apply_speedups_validation():
    breakdown = bd(zoo.t_nlg(), 8)
    with pytest.raises(ValueError):
        apply_sublayer_speedups(breakdown, {"OP": 0.0})
