"""Functional (value-level) verification of the collective schedules.

The timing simulator moves byte counts; these tests move *numbers*
through exactly the same schedules and check the collective algebra:

* ring reduce-scatter: after N-1 steps, rank ``e`` holds the element-wise
  sum over all ranks of chunk ``e``;
* ring all-gather: every rank ends with every (reduced) chunk;
* the T3 fused dataflow (remote-map first chunk, DMA partials downstream)
  produces byte-for-byte the same result as the reference reduce-scatter;
* direct-RS and all-to-all do too.

If a schedule or address map were wrong, numbers — not just byte counts —
would come out wrong here.
"""

import numpy as np
import pytest

from repro.collectives.schedule import (
    all_to_all_schedule,
    ring_ag_schedule,
    ring_rs_schedule,
)
from repro.t3.address_map import AddressSpaceConfig, RouteKind


def make_inputs(n, chunk_len=4, seed=7):
    rng = np.random.default_rng(seed)
    # inputs[rank][chunk] = that rank's local partial of the chunk.
    return [
        [rng.integers(0, 100, chunk_len).astype(np.int64)
         for _chunk in range(n)]
        for _rank in range(n)
    ]


def reference_rs(inputs, n):
    """chunk e fully reduced = sum over ranks of inputs[r][e]."""
    return [sum(inputs[r][e] for r in range(n)) for e in range(n)]


@pytest.mark.parametrize("n", [2, 3, 4, 8])
def test_ring_rs_schedule_reduces_correctly(n):
    inputs = make_inputs(n)
    # working[rank][chunk]: the partial each rank currently holds.
    working = [[chunk.copy() for chunk in row] for row in inputs]
    schedules = [ring_rs_schedule(n, rank) for rank in range(n)]

    for step_index in range(n - 1):
        # All sends of this step happen "simultaneously": snapshot first.
        outbox = {}
        for rank in range(n):
            step = schedules[rank][step_index]
            outbox[rank] = (step.send_chunk, working[rank][step.send_chunk])
        for rank in range(n):
            send_chunk, payload = outbox[rank]
            dst = (rank - 1) % n
            # Receiver reduces the arriving partial into its local copy.
            working[dst][send_chunk] = working[dst][send_chunk] + payload

    expected = reference_rs(inputs, n)
    for rank in range(n):
        np.testing.assert_array_equal(working[rank][rank], expected[rank])


@pytest.mark.parametrize("n", [2, 4, 8])
def test_ring_ag_schedule_gathers_everything(n):
    # Each rank starts with only its own (already reduced) chunk.
    reduced = [np.full(4, fill_value=rank, dtype=np.int64)
               for rank in range(n)]
    held = [{rank: reduced[rank]} for rank in range(n)]
    schedules = [ring_ag_schedule(n, rank) for rank in range(n)]

    for step_index in range(n - 1):
        outbox = {}
        for rank in range(n):
            step = schedules[rank][step_index]
            assert step.send_chunk in held[rank], (
                f"rank {rank} forwards chunk {step.send_chunk} before "
                "receiving it")
            outbox[rank] = (step.send_chunk, held[rank][step.send_chunk])
        for rank in range(n):
            chunk_id, payload = outbox[rank]
            dst = (rank - 1) % n
            held[dst][chunk_id] = payload

    for rank in range(n):
        assert set(held[rank]) == set(range(n))
        for chunk_id in range(n):
            np.testing.assert_array_equal(
                held[rank][chunk_id], reduced[chunk_id])


@pytest.mark.parametrize("n", [2, 3, 4, 8])
def test_t3_fused_dataflow_matches_reference(n):
    """Replay the T3 address maps as a dataflow: local NMC updates,
    remote-mapped first chunks, and Tracker-triggered DMA forwards of the
    locally-reduced partial.  The terminal chunk must equal the reference
    reduce-scatter output."""
    inputs = make_inputs(n, seed=11)
    configs = [AddressSpaceConfig.ring_reduce_scatter(r, n)
               for r in range(n)]
    # memory[rank][chunk]: accumulated NMC value at that rank.
    chunk_len = len(inputs[0][0])
    memory = [[np.zeros(chunk_len, dtype=np.int64) for _ in range(n)]
              for _ in range(n)]

    # 1. Producers store: local chunks update local memory; the
    #    remote-mapped chunk updates the downstream neighbour's memory.
    for rank in range(n):
        for chunk_id in range(n):
            route = configs[rank].route(chunk_id)
            if route.kind is RouteKind.REMOTE_UPDATE:
                memory[route.dst_gpu][chunk_id] += inputs[rank][chunk_id]
            else:
                memory[rank][chunk_id] += inputs[rank][chunk_id]

    # 2. DMA chain: rank d forwards chunk c once its copy holds local +
    #    incoming.  Process in ring-step order (the production order):
    #    at step s, rank d's chunk (d+s+1) has just been fed by the
    #    upstream contribution and its DMA fires.
    for step in range(1, n - 1):
        snapshot = [
            memory[rank][(rank + step + 1) % n].copy() for rank in range(n)
        ]
        for rank in range(n):
            chunk_id = (rank + step + 1) % n
            dst = (rank - 1) % n
            memory[dst][chunk_id] += snapshot[rank]
            memory[rank][chunk_id][:] = 0  # forwarded away

    expected = reference_rs(inputs, n)
    for rank in range(n):
        np.testing.assert_array_equal(memory[rank][rank], expected[rank])


@pytest.mark.parametrize("n", [2, 4, 8])
def test_direct_rs_dataflow_matches_reference(n):
    inputs = make_inputs(n, seed=3)
    configs = [AddressSpaceConfig.direct_reduce_scatter(r, n)
               for r in range(n)]
    chunk_len = len(inputs[0][0])
    memory = [np.zeros(chunk_len, dtype=np.int64) for _ in range(n)]
    for rank in range(n):
        for chunk_id in range(n):
            route = configs[rank].route(chunk_id)
            target = rank if route.dst_gpu is None else route.dst_gpu
            assert target == chunk_id  # owner-addressed
            memory[target] += inputs[rank][chunk_id]
    expected = reference_rs(inputs, n)
    for rank in range(n):
        np.testing.assert_array_equal(memory[rank], expected[rank])


@pytest.mark.parametrize("n", [2, 4, 8])
def test_all_to_all_dataflow_exchanges_without_reduction(n):
    inputs = make_inputs(n, seed=5)
    received = [dict() for _ in range(n)]
    for rank in range(n):
        for peer, chunk in all_to_all_schedule(n, rank):
            received[peer][rank] = inputs[rank][chunk]
        received[rank][rank] = inputs[rank][rank]
    for rank in range(n):
        assert set(received[rank]) == set(range(n))
        for src in range(n):
            np.testing.assert_array_equal(
                received[rank][src], inputs[src][rank])
