"""Regression tests for the event-loop bugs fixed in the hot-path
overhaul, plus property-based equivalence of the two schedulers.

Each regression test failed against the pre-overhaul engine:

* ``interrupt()`` on a never-resumed process double-stepped it — the
  boot event resumed the generator normally *and* the interrupt threw
  into it;
* a waiter interrupted during ``Resource.acquire()`` leaked its unit
  (queued grants stayed in the wait queue; granted-but-uncollected
  grants swallowed the unit), permanently shrinking the resource;
* ``AnyOf`` losers and ``AllOf`` pending children kept the composite's
  dead callbacks subscribed after the composite triggered.
"""

from hypothesis import given, settings, strategies as st

from repro.sim import (
    Environment,
    Event,
    Interrupt,
    Resource,
    Store,
)


# ------------------------------------------------------- Process.interrupt

def test_interrupt_never_resumed_process_single_step():
    """Interrupting a process before its boot event fires must not run
    its body: the interrupt replaces the first resume, not joins it."""
    env = Environment()
    log = []

    def victim():
        log.append("ran")
        yield env.timeout(10)
        log.append("done")

    def driver():
        process = env.process(victim())
        process.interrupt("early")
        try:
            yield process
        except Interrupt as exc:
            log.append(("interrupted", exc.cause))

    env.process(driver())
    env.run()
    assert log == [("interrupted", "early")]


def test_interrupt_after_resume_still_works():
    env = Environment()
    log = []

    def victim():
        log.append("ran")
        try:
            yield env.timeout(100)
        except Interrupt as exc:
            log.append(("interrupted", exc.cause, env.now))

    def killer(process):
        yield env.timeout(5)
        process.interrupt("late")

    process = env.process(victim())
    env.process(killer(process))
    env.run()
    assert log == ["ran", ("interrupted", "late", 5)]


# ------------------------------------------------------- Resource.acquire

def test_interrupted_queued_acquire_does_not_leak_unit():
    """A waiter interrupted while queued must cancel its request: the
    unit freed later goes back to the pool, not to the dead waiter."""
    env = Environment()
    resource = Resource(env, capacity=1)
    log = []

    def holder():
        yield from resource.acquire(10)
        log.append(("holder released", env.now))

    def waiter():
        try:
            yield from resource.acquire(5)
        except Interrupt:
            log.append(("waiter interrupted", env.now))

    def killer(process):
        yield env.timeout(3)
        process.interrupt()

    env.process(holder())
    env.process(killer(env.process(waiter())))
    env.run()
    assert log == [("waiter interrupted", 3), ("holder released", 10)]
    assert resource.in_use == 0
    assert resource.available == 1
    assert resource.queue_length == 0


def test_straggler_plus_interrupt_does_not_leak_unit():
    """Fault-injection variant: the holder is a straggler (its hold is
    stretched by the injected compute factor, as the GEMM seam does) and
    the waiter times out and interrupts itself out of the queue.  The
    resource must come back whole once the straggler finishes."""
    from repro.faults import FaultInjector, FaultPlan

    env = Environment()
    env.faults = FaultInjector(
        FaultPlan.straggler(gpu_id=0, factor=4.0, seed=3))
    resource = Resource(env, capacity=1)
    log = []

    def straggler_holder():
        hold = 5 * env.faults.compute_factor(0, env.now)
        yield from resource.acquire(hold)
        log.append(("holder released", env.now))

    def impatient_waiter():
        try:
            yield from resource.acquire(1)
            log.append(("waiter held", env.now))
        except Interrupt:
            log.append(("waiter gave up", env.now))

    def watchdog(process):
        # Fires before the slowed holder releases (t=20), after the
        # un-faulted release time (t=5) — only the straggler makes the
        # waiter give up.
        yield env.timeout(10)
        if process.is_alive:
            process.interrupt("too slow")

    env.process(straggler_holder())
    waiter = env.process(impatient_waiter())
    env.process(watchdog(waiter))
    env.run()
    assert log == [("waiter gave up", 10), ("holder released", 20)]
    assert resource.available == 1
    assert resource.queue_length == 0


def test_abandoned_granted_request_returns_unit():
    env = Environment()
    resource = Resource(env, capacity=1)
    grant = resource.request()  # granted immediately
    assert resource.in_use == 1
    grant._abandon()  # waiter died before collecting the unit
    assert resource.in_use == 0


def test_unit_reaches_next_waiter_after_interrupt():
    """With two queued waiters, interrupting the first must route the
    freed unit to the second (not lose it behind the dead grant)."""
    env = Environment()
    resource = Resource(env, capacity=1)
    log = []

    def holder():
        yield from resource.acquire(10)

    def waiter(name):
        try:
            yield from resource.acquire(1)
            log.append((name, "held", env.now))
        except Interrupt:
            log.append((name, "interrupted", env.now))

    def killer(process):
        yield env.timeout(2)
        process.interrupt()

    env.process(holder())
    env.process(killer(env.process(waiter("first"))))
    env.process(waiter("second"))
    env.run()
    assert log == [("first", "interrupted", 2), ("second", "held", 11)]
    assert resource.available == 1


# ------------------------------------------------------- composite detach

def test_any_of_detaches_loser_callbacks():
    env = Environment()
    slow = env.timeout(100)
    fast = env.timeout(1)

    def proc():
        yield env.any_of([slow, fast])

    env.process(proc())
    env.run(until=10)
    # The loser has not fired; the composite's callback must be gone.
    assert slow._callbacks == []


def test_all_of_failure_detaches_pending_children():
    env = Environment()
    pending = env.timeout(100)
    failing = Event(env)
    log = []

    def proc():
        try:
            yield env.all_of([pending, failing])
        except RuntimeError:
            log.append(env.now)

    def failer():
        yield env.timeout(1)
        failing.fail(RuntimeError("child failed"))

    env.process(proc())
    env.process(failer())
    env.run(until=10)
    assert log == [1]
    assert pending._callbacks == []


# --------------------------------------------- scheduler equivalence (PBT)

_STEP = st.one_of(
    st.tuples(st.just("timeout"), st.integers(0, 7)),
    st.tuples(st.just("acquire"), st.integers(1, 5)),
    st.tuples(st.just("put"), st.integers(0, 9)),
    st.tuples(st.just("get"), st.just(0)),
)

_PROGRAM = st.lists(st.lists(_STEP, max_size=5), min_size=1, max_size=4)


def _execute(scheduler, program):
    env = Environment(scheduler=scheduler)
    resource = Resource(env, capacity=2)
    store = Store(env)
    log = []

    def runner(pid, steps):
        for index, step in enumerate(steps):
            op, arg = step
            if op == "timeout":
                yield env.timeout(arg)
            elif op == "acquire":
                yield from resource.acquire(arg)
            elif op == "put":
                store.put(arg)
            else:  # "get" — may block forever; the run just ends then
                item = yield store.get()
                log.append((pid, index, "got", item, env.now))
            log.append((pid, index, env.now))

    for pid, steps in enumerate(program):
        env.process(runner(pid, steps))
    env.run()
    return env.now, env.events_fired, log


@settings(deadline=None, max_examples=40)
@given(program=_PROGRAM)
def test_optimized_scheduler_matches_legacy(program):
    """Both schedulers run any program to the same end time, event
    count, and execution trace — the bit-identity contract at the
    engine level."""
    assert _execute("optimized", program) == _execute("legacy", program)


# --------------------------------- schedule() ordering edge cases


def test_schedule_same_time_events_fire_fifo():
    """Events landing on the *current* timestamp (zero delay, or a delay
    small enough that ``now + delay == now`` in float) must fire in
    scheduling order.  This is the tuple-ordering edge case the old
    duplicated ``heappush`` sites each handled with their own seq
    counter; ``Environment.schedule`` is now the single seam."""
    for scheduler in ("optimized", "legacy"):
        env = Environment(scheduler=scheduler)
        log = []
        events = [Event(env) for _ in range(8)]
        for index, event in enumerate(events):
            event.add_callback(
                lambda ev, index=index: log.append((index, env.now)))

        def proc():
            yield env.timeout(5)
            for index, event in enumerate(events):
                # Alternate exact-zero and denormal-small delays: both
                # round to the current timestamp and must stay FIFO.
                env.schedule(event, 0.0 if index % 2 == 0 else 1e-300)

        env.process(proc())
        env.run()
        assert log == [(i, 5) for i in range(8)], scheduler


def test_schedule_rejects_negative_delay():
    from repro.sim.engine import SimulationError

    env = Environment()
    try:
        env.schedule(Event(env), -1.0)
    except SimulationError:
        pass
    else:  # pragma: no cover - failure path
        raise AssertionError("negative delay must raise")


def test_schedule_interleaves_future_and_now_events():
    """A future event scheduled *before* same-time events must still
    fire after them once the clock reaches its timestamp, and same-time
    events enqueued by a firing event run before the clock advances."""
    env = Environment()
    log = []

    def proc():
        yield env.timeout(3)
        log.append(("first", env.now))
        follow = Event(env)
        follow.add_callback(lambda ev: log.append(("follow", env.now)))
        env.schedule(follow)  # same timestamp: runs before t=7 below
        yield env.timeout(4)
        log.append(("second", env.now))

    env.process(proc())
    env.run()
    assert log == [("first", 3), ("follow", 3), ("second", 7)]


# ----------------------- converted state machines (model-layer PBT)


_TINY_HIDDEN = st.sampled_from([512, 1024])
_TINY_SEQ = st.sampled_from([256, 512])
_TINY_TP = st.sampled_from([2, 4])
_TINY_SUBLAYER = st.sampled_from(["OP", "FC-2", "IP"])


@settings(deadline=None, max_examples=6)
@given(hidden=_TINY_HIDDEN, seq_len=_TINY_SEQ, tp=_TINY_TP,
       sublayer=_TINY_SUBLAYER)
def test_converted_machines_match_legacy_on_sublayer_cases(
        hidden, seq_len, tp, sublayer):
    """End-to-end equivalence over the converted GEMM/DMA/link state
    machines: a random sub-layer case simulated under both schedulers
    must produce an identical suite payload (all config times, traffic)
    and identical telemetry snapshots (which embed event ordering via
    time-stamped series and end_time)."""
    from repro.config import table1_system
    from repro.experiments.common import run_sublayer_suite
    from repro.models.transformer import TransformerConfig
    from repro.sim.engine import set_default_scheduler

    model = TransformerConfig(name="pbt", hidden=hidden, n_layers=1,
                              seq_len=seq_len, batch=1)
    sub = model.sublayer(sublayer, tp)
    system = table1_system(n_gpus=tp)

    def run_once(scheduler):
        previous = set_default_scheduler(scheduler)
        try:
            registries = {}
            suite = run_sublayer_suite(
                system, sub.gemm, label=sub.label,
                configs=["Sequential", "T3", "T3-MCA"],
                obs_sink=registries)
            snapshots = {name: registry.snapshot()
                         for name, registry in registries.items()}
            return suite.to_dict(), snapshots
        finally:
            set_default_scheduler(previous)

    assert run_once("optimized") == run_once("legacy")
