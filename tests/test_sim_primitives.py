"""Unit tests for waitable primitives (repro.sim.primitives)."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Environment,
    Pipe,
    Resource,
    SimulationError,
    Store,
)


# ---------------------------------------------------------------- AllOf/AnyOf

def test_all_of_waits_for_all():
    env = Environment()
    results = []

    def proc():
        values = yield env.all_of([env.timeout(5, "a"), env.timeout(9, "b")])
        results.append((env.now, values))

    env.process(proc())
    env.run()
    assert results == [(9, ["a", "b"])]


def test_all_of_empty_fires_immediately():
    env = Environment()
    done = []

    def proc():
        values = yield env.all_of([])
        done.append((env.now, values))

    env.process(proc())
    env.run()
    assert done == [(0, [])]


def test_any_of_fires_on_first():
    env = Environment()
    results = []

    def proc():
        index, value = yield env.any_of([env.timeout(9, "slow"),
                                         env.timeout(2, "fast")])
        results.append((env.now, index, value))

    env.process(proc())
    env.run()
    assert results == [(2, 1, "fast")]


def test_any_of_requires_events():
    env = Environment()
    with pytest.raises(SimulationError):
        AnyOf(env, [])


def test_all_of_propagates_failure():
    env = Environment()
    bad = env.event()
    caught = []

    def proc():
        try:
            yield AllOf(env, [env.timeout(100), bad])
        except RuntimeError as exc:
            caught.append(str(exc))

    env.process(proc())
    bad.fail(RuntimeError("child failed"))
    env.run()
    assert caught == ["child failed"]


# ------------------------------------------------------------------ Resource

def test_resource_grants_up_to_capacity():
    env = Environment()
    res = Resource(env, capacity=2)
    grants = []

    def proc(tag):
        yield res.request()
        grants.append((tag, env.now))
        yield env.timeout(10)
        res.release()

    for tag in "abc":
        env.process(proc(tag))
    env.run()
    assert grants == [("a", 0), ("b", 0), ("c", 10)]


def test_resource_fifo_order():
    env = Environment()
    res = Resource(env, capacity=1)
    order = []

    def proc(tag, hold):
        yield res.request()
        order.append(tag)
        yield env.timeout(hold)
        res.release()

    for tag in "abcd":
        env.process(proc(tag, 1))
    env.run()
    assert order == ["a", "b", "c", "d"]


def test_resource_acquire_helper():
    env = Environment()
    res = Resource(env, capacity=1)
    times = []

    def proc():
        yield from res.acquire(hold=4)
        times.append(env.now)

    env.process(proc())
    env.process(proc())
    env.run()
    assert times == [4, 8]
    assert res.in_use == 0


def test_resource_release_when_idle_raises():
    env = Environment()
    res = Resource(env, capacity=1)
    with pytest.raises(SimulationError):
        res.release()


def test_resource_capacity_validation():
    env = Environment()
    with pytest.raises(SimulationError):
        Resource(env, capacity=0)


def test_resource_counts():
    env = Environment()
    res = Resource(env, capacity=3)

    def holder():
        yield res.request()
        yield env.timeout(100)

    env.process(holder())
    env.process(holder())
    env.run(until=1)
    assert res.in_use == 2
    assert res.available == 1
    assert res.queue_length == 0


# --------------------------------------------------------------------- Store

def test_store_put_then_get():
    env = Environment()
    store = Store(env)
    got = []

    def consumer():
        item = yield store.get()
        got.append((env.now, item))

    def producer():
        yield env.timeout(4)
        yield store.put("x")

    env.process(consumer())
    env.process(producer())
    env.run()
    assert got == [(4, "x")]


def test_store_get_before_put_blocks():
    env = Environment()
    store = Store(env)
    got = []

    def consumer():
        item = yield store.get()
        got.append(item)

    env.process(consumer())
    env.run()
    assert got == []  # still blocked
    store.put("late")
    env.run()
    assert got == ["late"]


def test_store_fifo_ordering():
    env = Environment()
    store = Store(env)
    for i in range(5):
        store.put(i)
    out = []

    def consumer():
        for _ in range(5):
            item = yield store.get()
            out.append(item)

    env.process(consumer())
    env.run()
    assert out == [0, 1, 2, 3, 4]


def test_store_capacity_blocks_putter():
    env = Environment()
    store = Store(env, capacity=1)
    log = []

    def producer():
        yield store.put("a")
        log.append(("put-a", env.now))
        yield store.put("b")
        log.append(("put-b", env.now))

    def consumer():
        yield env.timeout(10)
        item = yield store.get()
        log.append((f"got-{item}", env.now))

    env.process(producer())
    env.process(consumer())
    env.run()
    assert ("put-a", 0) in log
    assert ("put-b", 10) in log  # unblocked only after the get


def test_store_try_get():
    env = Environment()
    store = Store(env)
    assert store.try_get() is None
    store.put(7)
    assert store.try_get() == 7
    assert store.try_get() is None


def test_store_len_and_items():
    env = Environment()
    store = Store(env)
    store.put(1)
    store.put(2)
    assert len(store) == 2
    assert store.items == (1, 2)


# ---------------------------------------------------------------------- Pipe

def test_pipe_transfer_time_includes_latency():
    env = Environment()
    pipe = Pipe(env, bandwidth_bytes_per_ns=10.0, latency_ns=100.0)
    arrivals = []

    def proc():
        yield pipe.transfer(1000)  # 100 ns serialization + 100 ns latency
        arrivals.append(env.now)

    env.process(proc())
    env.run()
    assert arrivals == [200.0]


def test_pipe_serializes_transfers():
    env = Environment()
    pipe = Pipe(env, bandwidth_bytes_per_ns=1.0, latency_ns=0.0)
    arrivals = []

    def proc(tag):
        yield pipe.transfer(100)
        arrivals.append((tag, env.now))

    env.process(proc("first"))
    env.process(proc("second"))
    env.run()
    assert arrivals == [("first", 100.0), ("second", 200.0)]


def test_pipe_pipelines_latency():
    # Two back-to-back transfers share the wire sequentially but latency
    # overlaps: second arrival is serialization-gated, not latency-gated.
    env = Environment()
    pipe = Pipe(env, bandwidth_bytes_per_ns=1.0, latency_ns=50.0)
    arrivals = []

    def proc():
        first = pipe.transfer(100)
        second = pipe.transfer(100)
        yield env.all_of([first, second])
        arrivals.append(env.now)

    env.process(proc())
    env.run()
    assert arrivals == [250.0]  # 200 serialization + 50 latency


def test_pipe_tracks_bytes_and_utilization():
    env = Environment()
    pipe = Pipe(env, bandwidth_bytes_per_ns=2.0)
    pipe.transfer(100)
    env.run()
    assert pipe.bytes_sent == 100
    assert pipe.utilization(elapsed_ns=100) == pytest.approx(0.5)


def test_pipe_validation():
    env = Environment()
    with pytest.raises(SimulationError):
        Pipe(env, bandwidth_bytes_per_ns=0)
    with pytest.raises(SimulationError):
        Pipe(env, bandwidth_bytes_per_ns=1, latency_ns=-1)
    pipe = Pipe(env, bandwidth_bytes_per_ns=1)
    with pytest.raises(SimulationError):
        pipe.transfer(-5)
