"""Perfetto counter-track export tests (repro.obs.perfetto): synthetic
unit checks plus an end-to-end save/load round trip from a real fused
GEMM-RS run with both a TraceRecorder and a MetricsRegistry attached."""

import json

import pytest

from repro.analysis.trace import TraceRecorder
from repro.config import table1_system
from repro.experiments.common import _fresh_topology, scaled_shape
from repro.models import zoo
from repro.obs import MetricsRegistry
from repro.obs.perfetto import (
    COUNTER_GROUP,
    counter_events,
    load_counter_tracks,
    merge_into_trace,
    save_merged,
)
from repro.t3.fusion import FusedGEMMRS


# ------------------------------------------------------------- unit level

def small_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    gauge = registry.scope(0, "dma").gauge("queue_depth")
    gauge.set(0, 1.0)
    gauge.set(1000, 2.0)
    gauge.set(2500, 0.0)
    series = registry.scope(1, "gemm").series("stage_end")
    series.record(4000, 0)
    return registry


def test_counter_events_tracks_and_unit_conversion():
    events = counter_events(small_registry())
    tracks = {event["name"] for event in events}
    assert tracks == {"gpu0.dma.queue_depth", "gpu1.gemm.stage_end"}
    assert all(event["ph"] == "C" for event in events)
    assert all(event["pid"] == COUNTER_GROUP for event in events)
    gauge_ts = [event["ts"] for event in events
                if event["name"] == "gpu0.dma.queue_depth"]
    assert gauge_ts == [0.0, 1.0, 2.5]  # ns -> us


def test_counter_events_global_prefix_for_unowned_scope():
    registry = MetricsRegistry()
    registry.scope(-1, "sweep").gauge("inflight").set(0, 3.0)
    (event,) = counter_events(registry)
    assert event["name"] == "global.sweep.inflight"


def test_counter_events_subsampling_keeps_endpoints():
    registry = MetricsRegistry()
    gauge = registry.scope(0, "dma").gauge("depth")
    for t in range(100):
        gauge.set(t * 10, float(t))
    events = counter_events(registry, max_samples_per_track=5)
    assert len(events) == 5
    assert events[0]["args"]["value"] == 0.0
    assert events[-1]["args"]["value"] == 99.0


def test_merge_into_trace_appends_sorted_counters():
    spans = [{"name": "k", "ph": "X", "ts": 0.0, "dur": 1.0}]
    merged = merge_into_trace(spans, small_registry())
    assert merged[0] is spans[0]
    counter_ts = [event["ts"] for event in merged if event["ph"] == "C"]
    assert counter_ts == sorted(counter_ts)


def test_save_merged_and_load_counter_tracks(tmp_path):
    trace = TraceRecorder()
    trace.span("kernel", "gemm", 0, 5000, track="gpu0")
    path = tmp_path / "merged.json"
    save_merged(str(path), trace, small_registry())
    tracks = load_counter_tracks(str(path))
    assert set(tracks) == {"gpu0.dma.queue_depth", "gpu1.gemm.stage_end"}
    payload = json.loads(path.read_text())
    assert payload["displayTimeUnit"] == "ns"
    span_events = [event for event in payload["traceEvents"]
                   if event.get("ph") == "X"]
    assert len(span_events) == 1


# ----------------------------------------------- end-to-end round trip

@pytest.fixture(scope="module")
def merged_trace_path(tmp_path_factory):
    """Run a small fused GEMM-RS with trace + registry and save merged."""
    from repro.experiments.sublayer_sweep import FAST_SCALE

    sub = zoo.t_nlg().sublayer("OP", 4)
    system = table1_system(n_gpus=sub.tp)
    tiles_n = max(1, sub.gemm.n // system.gemm.macro_tile_n)
    rows_needed = -(-sub.tp // tiles_n)
    shape = scaled_shape(sub.gemm, FAST_SCALE,
                         min_m=rows_needed * system.gemm.macro_tile_m)
    registry = MetricsRegistry()
    env, topo = _fresh_topology(system, "mca", obs=registry)
    trace = TraceRecorder()
    env.trace = trace
    FusedGEMMRS(topo, shape, calibrate_mca=True).run()
    path = tmp_path_factory.mktemp("perfetto") / "run.json"
    trace.save(str(path), registry=registry)
    return str(path)


def test_round_trip_counter_tracks_are_monotonic(merged_trace_path):
    tracks = load_counter_tracks(merged_trace_path)
    assert tracks, "real run produced no counter tracks"
    for name, events in tracks.items():
        timestamps = [event["ts"] for event in events]
        assert timestamps == sorted(timestamps), (
            f"track {name} has out-of-order timestamps")


def test_round_trip_counters_align_with_spans(merged_trace_path):
    """Counter samples must land inside the span timeline (shared clock,
    shared microsecond unit) — a ns/us mixup would blow them 1000x out."""
    with open(merged_trace_path) as handle:
        payload = json.load(handle)
    spans = [event for event in payload["traceEvents"]
             if event.get("ph") == "X"]
    counters = [event for event in payload["traceEvents"]
                if event.get("ph") == "C"]
    assert spans and counters
    span_lo = min(event["ts"] for event in spans)
    span_hi = max(event["ts"] + event["dur"] for event in spans)
    counter_hi = max(event["ts"] for event in counters)
    assert counter_hi <= span_hi + 1e-6
    assert all(event["ts"] >= span_lo - 1e-6 for event in counters)


def test_round_trip_expected_tracks_present(merged_trace_path):
    tracks = load_counter_tracks(merged_trace_path)
    components = {name.split(".")[1] for name in tracks}
    # DMA queue depth, DRAM occupancy and GEMM stage markers all export.
    assert {"dma", "dram", "gemm"} <= components
