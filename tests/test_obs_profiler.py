"""Unit tests for the overlap profiler (repro.obs.profiler) on small
synthetic registries with known-by-construction decompositions."""

import pytest

from repro.obs.profiler import (
    OverlapBreakdown,
    OverlapReport,
    attribute_stages,
    comm_spans,
    compute_spans,
    decompose,
    profile_case,
    stage_boundaries,
)
from repro.obs.registry import MetricsRegistry


def overlapped_registry() -> MetricsRegistry:
    """Compute 0..100; link comm 50..150; dram comm 140..160.

    comm union = [50, 160]; hidden = [50, 100] (50 ns);
    exposed = [100, 160] (60 ns).
    """
    registry = MetricsRegistry()
    registry.scope(0, "compute").span("kernel", 0, 100)
    registry.scope(0, "link").span("wire", 50, 150)
    registry.scope(1, "dram").span("comm_service", 140, 160)
    return registry


def sequential_registry() -> MetricsRegistry:
    """Compute 0..100, then comm 100..160: nothing hidden."""
    registry = MetricsRegistry()
    registry.scope(0, "compute").span("kernel", 0, 100)
    registry.scope(0, "link").span("wire", 100, 160)
    return registry


def test_compute_and_comm_span_extraction():
    registry = overlapped_registry()
    assert compute_spans(registry) == [(0, 100)]
    assert comm_spans(registry) == [(50, 160)]


def test_decompose_overlapped_run():
    b = decompose(overlapped_registry())
    assert b.total_ns == 160
    assert b.compute_ns == 100
    assert b.comm_ns == 110
    assert b.hidden_ns == 50
    assert b.exposed_ns == 60
    assert b.hidden_ns + b.exposed_ns == pytest.approx(b.comm_ns)
    assert b.overlap_efficiency == pytest.approx(50 / 110)


def test_decompose_sequential_run_hides_nothing():
    b = decompose(sequential_registry())
    assert b.hidden_ns == 0
    assert b.exposed_ns == 60
    assert b.overlap_efficiency == 0.0


def test_decompose_total_can_be_pinned():
    assert decompose(overlapped_registry(), total_ns=500).total_ns == 500


def test_decompose_empty_registry():
    b = decompose(MetricsRegistry())
    assert b == OverlapBreakdown(0.0, 0.0, 0.0, 0.0, 0.0)
    assert b.overlap_efficiency == 0.0


def test_stage_boundaries_take_slowest_gpu():
    registry = MetricsRegistry()
    registry.scope(0, "gemm").series("stage_end").record(80, 0)
    registry.scope(0, "gemm").series("stage_end").record(150, 1)
    registry.scope(1, "gemm").series("stage_end").record(90, 0)
    registry.scope(1, "gemm").series("stage_end").record(140, 1)
    assert stage_boundaries(registry) == [90, 150]


def test_attribute_stages_tiles_the_run():
    registry = overlapped_registry()
    registry.scope(0, "gemm").series("stage_end").record(60, 0)
    registry.scope(0, "gemm").series("stage_end").record(100, 1)
    stages = attribute_stages(registry)
    assert [s.stage for s in stages] == [0, 1]
    # Window 0: [0, 60) -> compute 60, hidden [50, 60) = 10, exposed 0.
    assert stages[0].compute_ns == 60
    assert stages[0].hidden_ns == 10
    assert stages[0].exposed_ns == 0
    assert stages[0].dominant == "compute"
    # Window 1: [60, 100) -> compute 40, hidden 40, exposed 0.
    assert stages[1].compute_ns == 40
    assert stages[1].hidden_ns == 40
    assert stages[1].start_ns == stages[0].end_ns


def test_attribute_stages_without_gemm_series():
    assert attribute_stages(overlapped_registry()) == []


def test_profile_case_pins_totals_from_suite_times():
    case = profile_case(
        "toy", {"Sequential": sequential_registry(),
                "T3-MCA": overlapped_registry()},
        times={"Sequential": 1000.0, "T3-MCA": 700.0})
    assert case.configs["Sequential"].breakdown.total_ns == 1000.0
    assert case.configs["T3-MCA"].breakdown.total_ns == 700.0
    assert case.hidden_ns("T3-MCA") == 50
    assert case.exposed_ns("Sequential") == 60


def make_report() -> OverlapReport:
    report = OverlapReport(fast=True)
    report.add(profile_case("toy", {
        "Sequential": sequential_registry(),
        "T3-MCA": overlapped_registry(),
    }))
    return report


def test_report_strict_hiding_verdict():
    report = make_report()
    assert report.check_strict_hiding("T3-MCA", "Sequential")
    # A config absent from every case cannot claim the invariant.
    assert not report.check_strict_hiding("T3", "Sequential")
    assert not OverlapReport().check_strict_hiding()


def test_report_strict_hiding_fails_on_a_tie():
    report = OverlapReport()
    report.add(profile_case("toy", {
        "Sequential": sequential_registry(),
        "T3-MCA": sequential_registry(),   # identical -> tie, not strict
    }))
    assert not report.check_strict_hiding("T3-MCA", "Sequential")


def test_report_exposed_reduction_table():
    summary = make_report().exposed_reduction_table().summary()
    # Sequential exposes 60 ns, T3-MCA 60 ns too in this toy -> ratio 1.
    geo, mx = summary["T3-MCA"]
    assert geo == pytest.approx(1.0)
    assert mx == pytest.approx(1.0)


def test_report_exposed_reduction_floors_zero_exposure():
    registry = MetricsRegistry()
    registry.scope(0, "compute").span("kernel", 0, 200)
    registry.scope(0, "link").span("wire", 50, 150)  # fully hidden
    report = OverlapReport()
    report.add(profile_case("toy", {
        "Sequential": sequential_registry(), "T3-MCA": registry}))
    geo, _mx = report.exposed_reduction_table().summary()["T3-MCA"]
    assert geo == pytest.approx(60.0)  # 60 / floor(1.0)


def test_report_to_dict_and_render():
    report = make_report()
    payload = report.to_dict()
    assert payload["strict_hiding"] == {"T3-MCA": True}
    assert payload["cases"][0]["label"] == "toy"
    text = report.render()
    assert "T3-MCA: strictly more comm hidden" in text
    assert "toy" in text
