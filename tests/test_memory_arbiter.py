"""Unit tests for arbitration policies (repro.memory.arbiter)."""

import pytest

from repro.config import MCAConfig
from repro.memory.arbiter import (
    ArbiterState,
    ComputePriorityPolicy,
    MCAPolicy,
    RoundRobinPolicy,
    make_policy,
)
from repro.memory.request import Stream


def state(compute=0, comm=0, occupancy=0, capacity=32, now=0.0):
    return ArbiterState(compute, comm, occupancy, capacity, now)


# ----------------------------------------------------------------- factory

def test_make_policy_dispatch():
    assert isinstance(make_policy("round-robin"), RoundRobinPolicy)
    assert isinstance(make_policy("compute-priority"), ComputePriorityPolicy)
    assert isinstance(make_policy("mca", MCAConfig()), MCAPolicy)


def test_make_policy_errors():
    with pytest.raises(ValueError):
        make_policy("mca")  # missing config
    with pytest.raises(ValueError):
        make_policy("nonsense")


# -------------------------------------------------------------- round-robin

def test_round_robin_alternates():
    policy = RoundRobinPolicy()
    first = policy.choose(state(compute=1, comm=1))
    policy.on_issue(first, 0)
    second = policy.choose(state(compute=1, comm=1))
    assert {first, second} == {Stream.COMPUTE, Stream.COMM}


def test_round_robin_falls_back_when_empty():
    policy = RoundRobinPolicy()
    policy.on_issue(Stream.COMM, 0)
    # Preferred is compute, but compute queue is empty -> comm again.
    assert policy.choose(state(compute=0, comm=3)) is Stream.COMM
    assert policy.choose(state(compute=0, comm=0)) is None


# --------------------------------------------------------- compute-priority

def test_compute_priority_always_prefers_compute():
    policy = ComputePriorityPolicy()
    assert policy.choose(state(compute=1, comm=9)) is Stream.COMPUTE
    assert policy.choose(state(compute=0, comm=9)) is Stream.COMM
    assert policy.choose(state()) is None


# ---------------------------------------------------------------------- MCA

def test_mca_defaults_to_most_conservative_threshold():
    policy = MCAPolicy(MCAConfig())
    assert policy.threshold == 5


def test_mca_calibration_maps_intensity_to_threshold():
    cfg = MCAConfig()
    policy = MCAPolicy(cfg)
    policy.calibrate(0.9)
    assert policy.threshold == 5  # memory hungry -> strict gate
    policy.calibrate(0.6)
    assert policy.threshold == 10
    policy.calibrate(0.3)
    assert policy.threshold == 30
    policy.calibrate(0.1)
    assert policy.threshold is None  # compute bound -> unlimited


def test_mca_calibration_rejects_negative():
    policy = MCAPolicy(MCAConfig())
    with pytest.raises(ValueError):
        policy.calibrate(-0.1)


def test_mca_gates_comm_on_occupancy():
    policy = MCAPolicy(MCAConfig())
    policy.calibrate(0.9)  # threshold 5
    # Compute empty, comm waiting, occupancy below threshold -> comm.
    assert policy.choose(state(comm=2, occupancy=4)) is Stream.COMM
    # Occupancy at threshold -> comm is held back.
    assert policy.choose(state(comm=2, occupancy=5)) is None
    assert policy.choose(state(comm=2, occupancy=20)) is None


def test_mca_unlimited_threshold_never_gates():
    policy = MCAPolicy(MCAConfig())
    policy.calibrate(0.05)  # threshold None
    assert policy.choose(state(comm=1, occupancy=31)) is Stream.COMM


def test_mca_compute_always_wins_when_not_starved():
    policy = MCAPolicy(MCAConfig())
    assert policy.choose(state(compute=1, comm=5, occupancy=0)) is Stream.COMPUTE


def test_mca_starvation_promotes_comm():
    cfg = MCAConfig(starvation_limit_ns=100.0)
    policy = MCAPolicy(cfg)
    policy.on_issue(Stream.COMM, now=0.0)
    # Before the limit: compute wins.
    assert policy.choose(state(compute=1, comm=1, now=50.0)) is Stream.COMPUTE
    # After the limit: comm is force-issued despite compute waiting.
    assert policy.choose(state(compute=1, comm=1, now=200.0)) is Stream.COMM
    policy.on_issue(Stream.COMM, now=200.0)
    # Timer reset.
    assert policy.choose(state(compute=1, comm=1, now=250.0)) is Stream.COMPUTE


def test_mca_idle_returns_none():
    policy = MCAPolicy(MCAConfig())
    assert policy.choose(state()) is None
