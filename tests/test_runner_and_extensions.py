"""Tests for the CLI runner and the Section-7 extension experiments."""

import pytest

from repro.config import table1_system
from repro.experiments import extensions, related_work
from repro.experiments.runner import EXPERIMENTS, main
from repro.models import zoo
from repro.models.endtoend import (
    Phase,
    iteration_breakdown,
    nmc_following_ops_speedup,
)


# ------------------------------------------------------------------- runner

def test_every_registered_experiment_is_callable():
    expected = {"table1", "table2", "table3", "figure4", "figure6",
                "figure14", "figure15", "figure16", "figure16-large",
                "figure17", "figure18", "figure19", "figure20",
                "generation", "precision", "following-ops",
                "consumer-fusion", "in-switch", "dp-overlap",
                "fault-sweep", "scaleout", "chaos", "adaptive"}
    assert expected == set(EXPERIMENTS)


def test_cli_runs_cheap_experiment(capsys):
    assert main(["table3"]) == 0
    out = capsys.readouterr().out
    assert "T3-MCA" in out
    assert "finished in" in out


def test_cli_rejects_unknown_experiment():
    with pytest.raises(SystemExit):
        main(["figure99"])


# ------------------------------------------------------- generation (7.3)

def test_generation_breakdown_structure():
    breakdown = iteration_breakdown(zoo.t_nlg(), 8, table1_system(8),
                                    Phase.GENERATION)
    groups = {op.group for op in breakdown.per_layer_ops if op.group}
    assert groups == {"OP", "FC-2"}
    # Decode is memory-bound: weights dominate -> a single token's layer
    # time is micro-seconds scale, far below prompt time.
    prompt = iteration_breakdown(zoo.t_nlg(), 8, table1_system(8),
                                 Phase.PROMPT)
    assert breakdown.total_time() < prompt.total_time() / 10


def test_generation_comm_is_latency_bound():
    """At tiny payloads the AR cost is ~2(N-1) link latencies."""
    breakdown = iteration_breakdown(zoo.t_nlg(), 8, table1_system(8),
                                    Phase.GENERATION)
    ar_time = breakdown.time_by_category()["rs"] / breakdown.n_layers * 2
    floor = 2 * 7 * 500.0  # 2(N-1) x 500 ns
    assert ar_time > floor * 0.9


def test_generation_study_rows():
    result = extensions.run_generation()
    assert len(result.rows) == 7  # 2 models x 2 TPs + 3 large models
    assert "7.3" in result.render()


# --------------------------------------------------------- precision (7.5)

def test_precision_study_shapes():
    result = extensions.run_precision(fast=True)
    fp16, fp8 = result.row("fp16"), result.row("fp8")
    # Compute shrinks ~quadratically, comm ~linearly.
    assert fp8.gemm_us < fp16.gemm_us / 2.5
    assert fp8.rs_us > fp16.rs_us / 3.0
    assert "7.5" in result.render()


# ------------------------------------------------------ following-ops (7.6)

def test_following_ops_speedup_bounds():
    for tp in (8, 16):
        breakdown = iteration_breakdown(zoo.t_nlg(), tp, table1_system(tp))
        s = nmc_following_ops_speedup(breakdown)
        assert 1.0 < s < 1.2


def test_following_ops_grows_with_tp():
    """Sub-array shrinks by 1/N: bigger TP -> bigger §7.6 win."""
    s8 = nmc_following_ops_speedup(
        iteration_breakdown(zoo.t_nlg(), 8, table1_system(8)))
    s16 = nmc_following_ops_speedup(
        iteration_breakdown(zoo.t_nlg(), 16, table1_system(16)))
    assert s16 > s8


# ---------------------------------------------------------- in-switch table

def test_related_work_structure():
    result = related_work.run(fast=True)
    assert len(result.rows) == 4
    assert result.geomean("t3") > 1.0
    assert result.geomean("in-switch") > 1.0
    assert "in-switch" in result.render()
