"""Shared test fixtures.

The sub-layer sweep persists results under ``~/.cache/repro-t3`` by
default; tests must never touch (or be poisoned by) a developer's real
cache, so the whole session is pointed at a throwaway directory before
``repro`` builds its first :class:`SweepCache`.
"""

import os
import tempfile

_CACHE_DIR = tempfile.mkdtemp(prefix="repro-t3-test-cache-")
os.environ["REPRO_T3_CACHE_DIR"] = _CACHE_DIR
