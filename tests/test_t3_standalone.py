"""Tests for the standalone NMC reduce-scatter and the DP-overlap study."""

import pytest

from repro import units
from repro.collectives.baseline import RingReduceScatter
from repro.config import table1_system
from repro.experiments import dp_overlap
from repro.interconnect.topology import RingTopology
from repro.sim import Environment
from repro.t3.standalone import NMCReduceScatter


def make_topo(n_gpus=4, quantum=32 * 1024, policy="compute-priority"):
    env = Environment()
    system = table1_system(n_gpus=n_gpus).with_fidelity(quantum_bytes=quantum)
    return env, RingTopology(env, system, policy_name=policy)


def test_nmc_rs_completes_on_all_ranks():
    env, topo = make_topo()
    rs = NMCReduceScatter(topo, nbytes_total=4 * units.MiB)
    result = rs.run()
    assert set(result.per_rank_terminal) == {0, 1, 2, 3}
    assert result.duration > 0


def test_nmc_rs_uses_no_compute_stream_traffic():
    """Fully DMA-driven: every access is on the communication stream."""
    env, topo = make_topo()
    NMCReduceScatter(topo, nbytes_total=4 * units.MiB).run()
    for gpu in topo.gpus:
        from repro.memory.request import Stream
        assert gpu.mc.outstanding(Stream.COMPUTE) == 0
        # Reads = N-1 chunks forwarded; updates = N-1 incoming chunks.
        chunk = units.MiB
        assert gpu.mc.counters.get("rs.read") == pytest.approx(3 * chunk)
        assert gpu.mc.counters.get("rs.update") == pytest.approx(3 * chunk)
        assert gpu.mc.counters.get("rs.write") == 0


def test_nmc_rs_moves_less_data_than_cu_rs():
    """Section 7.4 / Figure 10: NMC halves the reduce-scatter's DRAM
    traffic relative to the CU-driven kernel."""
    env1, topo1 = make_topo()
    NMCReduceScatter(topo1, nbytes_total=4 * units.MiB).run()
    nmc_bytes = topo1.gpus[0].mc.total_bytes()
    env2, topo2 = make_topo()
    RingReduceScatter(topo2, nbytes_total=4 * units.MiB).run()
    cu_bytes = topo2.gpus[0].mc.total_bytes()
    assert nmc_bytes < cu_bytes * 0.7


def test_nmc_rs_is_at_least_as_fast_as_cu_rs():
    env1, topo1 = make_topo(quantum=64 * 1024)
    nmc = NMCReduceScatter(topo1, nbytes_total=16 * units.MiB).run().duration
    env2, topo2 = make_topo(quantum=64 * 1024)
    cu = RingReduceScatter(topo2, nbytes_total=16 * units.MiB).run().duration
    assert nmc <= cu * 1.05


def test_nmc_rs_all_dmas_triggered_exactly_once():
    env, topo = make_topo()
    rs = NMCReduceScatter(topo, nbytes_total=4 * units.MiB)
    rs.run()
    n = topo.system.n_gpus
    for gpu in topo.gpus:
        assert len(gpu.dma.triggered_commands) == n - 1


def test_nmc_rs_eight_gpus():
    env, topo = make_topo(n_gpus=8)
    result = NMCReduceScatter(topo, nbytes_total=8 * units.MiB).run()
    assert len(result.per_rank_terminal) == 8


# ------------------------------------------------------------- dp_overlap

@pytest.fixture(scope="module")
def dp_result():
    return dp_overlap.run(fast=True)


def test_dp_overlap_strategies_present(dp_result):
    assert {r.strategy for r in dp_result.rows} == {
        "CU-split", "NMC-RS/RR", "NMC-RS/MCA"}


def test_nmc_substrate_removes_cu_interference(dp_result):
    """With the RS on DMA+NMC the GEMM keeps all CUs: no slowdown from
    compute sharing, unlike the CU-split strategy."""
    cu = dp_result.row("CU-split")
    nmc = dp_result.row("NMC-RS/MCA")
    assert cu.gemm_slowdown > 1.03
    assert nmc.gemm_slowdown < cu.gemm_slowdown
    assert nmc.makespan_us <= cu.makespan_us


def test_dp_overlap_render(dp_result):
    text = dp_result.render()
    assert "NMC-RS/MCA" in text and "isolated GEMM" in text
    with pytest.raises(KeyError):
        dp_result.row("nope")
