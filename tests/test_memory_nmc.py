"""Unit tests for NMC functional invariants (repro.memory.nmc)."""

import pytest

from repro.memory.nmc import ChunkLedger, ReductionBuffer, ReductionError


def make_buffer(n_chunks=4, nbytes=1000, expected=2):
    return ReductionBuffer({i: nbytes for i in range(n_chunks)}, expected)


def test_whole_contributions_complete_chunk():
    buf = make_buffer(expected=2)
    buf.contribute_whole(0, "local-gemm")
    assert not buf.is_complete(0)
    buf.contribute_whole(0, "dma-in")
    assert buf.is_complete(0)


def test_seal_requires_completion():
    buf = make_buffer(expected=2)
    buf.contribute_whole(1, "local-gemm")
    with pytest.raises(ReductionError, match="too early"):
        buf.seal(1)
    buf.contribute_whole(1, "dma-in")
    buf.seal(1)


def test_contribution_after_seal_is_a_race():
    buf = make_buffer(expected=1)
    buf.contribute_whole(2, "local-gemm")
    buf.seal(2)
    with pytest.raises(ReductionError, match="after"):
        buf.contribute_whole(2, "late-dma")


def test_too_many_contributions_detected():
    buf = make_buffer(expected=1)
    buf.contribute_whole(0, "a")
    with pytest.raises(ReductionError, match="expected 1"):
        buf.contribute_whole(0, "b")


def test_partial_contributions_accumulate_bytes():
    buf = make_buffer(nbytes=1000, expected=2)
    # First whole-chunk contribution arrives in 4 quanta.
    for _ in range(4):
        buf.contribute(3, 250, "local-gemm")
    assert buf.ledgers[3].contribution_count == 1
    for _ in range(4):
        buf.contribute(3, 250, "dma-in")
    assert buf.is_complete(3)
    buf.seal(3)


def test_unknown_chunk_rejected():
    buf = make_buffer(n_chunks=2)
    with pytest.raises(ReductionError, match="unknown"):
        buf.contribute_whole(9, "x")


def test_all_sealed_and_summary():
    buf = make_buffer(n_chunks=2, expected=1)
    buf.contribute_whole(0, "a")
    buf.seal(0)
    assert not buf.all_sealed()
    buf.contribute_whole(1, "a")
    buf.seal(1)
    assert buf.all_sealed()
    assert buf.summary() == [(0, 1, True), (1, 1, True)]


def test_expected_contributions_validation():
    with pytest.raises(ReductionError):
        ReductionBuffer({0: 10}, expected_contributions=0)


def test_ledger_properties():
    ledger = ChunkLedger(chunk_id=0, expected_contributions=2, nbytes=100)
    assert not ledger.complete
    ledger.contributions.extend(["a", "b"])
    assert ledger.complete
