"""Unit tests for the memory controller (repro.memory.controller)."""

import pytest

from repro.config import table1_system
from repro.memory.controller import MemoryController
from repro.memory.request import AccessKind, MemRequest, Stream
from repro.sim import Environment


def make_mc(env, policy="compute-priority", quantum=1024, record=False,
            n_channels=2):
    import dataclasses

    system = table1_system().with_fidelity(
        quantum_bytes=quantum, record_traffic=record)
    system = system.replace(
        memory=dataclasses.replace(system.memory, n_channels=n_channels))
    return MemoryController(env, system, policy_name=policy)


def test_submit_returns_completion_event():
    env = Environment()
    mc = make_mc(env)
    request = MemRequest(AccessKind.READ, Stream.COMPUTE, 512, "gemm")
    done = mc.submit(request)
    env.run()
    assert done.fired
    assert request.serviced_at is not None


def test_submit_bulk_quantizes():
    env = Environment()
    mc = make_mc(env, quantum=1024)
    events = mc.submit_bulk(AccessKind.READ, Stream.COMPUTE, 2500, "gemm")
    assert len(events) == 3  # 1024 + 1024 + 452
    env.run()
    assert mc.counters.get("gemm.read") == 2500


def test_submit_bulk_zero_bytes_is_noop():
    env = Environment()
    mc = make_mc(env)
    assert mc.submit_bulk(AccessKind.READ, Stream.COMPUTE, 0, "gemm") == []


def test_counters_accumulate_by_label_and_kind():
    env = Environment()
    mc = make_mc(env)
    mc.submit_bulk(AccessKind.READ, Stream.COMPUTE, 1000, "gemm")
    mc.submit_bulk(AccessKind.WRITE, Stream.COMPUTE, 2000, "gemm")
    mc.submit_bulk(AccessKind.UPDATE, Stream.COMM, 3000, "rs")
    env.run()
    assert mc.counters.get("gemm.read") == 1000
    assert mc.counters.get("gemm.write") == 2000
    assert mc.counters.get("rs.update") == 3000
    assert mc.total_bytes("gemm") == 3000
    assert mc.total_bytes() == 6000


def test_channel_interleaving_uses_all_channels():
    env = Environment()
    mc = make_mc(env, n_channels=2)
    mc.submit_bulk(AccessKind.READ, Stream.COMPUTE, 8 * 1024, "gemm")
    env.run()
    assert all(c.bytes_serviced > 0 for c in mc.channels)


def test_aggregate_bandwidth_matches_config():
    """N quanta spread over channels should drain at ~HBM bandwidth."""
    env = Environment()
    mc = make_mc(env, quantum=64 * 1024, n_channels=8)
    total = 8 * 64 * 1024
    mc.submit_bulk(AccessKind.READ, Stream.COMPUTE, total, "gemm")
    env.run()
    expected = total / mc.config.memory.effective_bandwidth
    assert env.now == pytest.approx(expected, rel=0.01)


def test_drain_waits_for_stream():
    env = Environment()
    mc = make_mc(env)
    mc.submit_bulk(AccessKind.WRITE, Stream.COMPUTE, 4096, "gemm")
    drained_at = []

    def waiter():
        yield mc.drain(Stream.COMPUTE)
        drained_at.append(env.now)

    env.process(waiter())
    env.run()
    assert drained_at and drained_at[0] > 0
    assert mc.outstanding(Stream.COMPUTE) == 0


def test_drain_on_idle_stream_fires_immediately():
    env = Environment()
    mc = make_mc(env)
    fired = []

    def waiter():
        yield mc.drain(Stream.COMM)
        fired.append(env.now)

    env.process(waiter())
    env.run()
    assert fired == [0]


def test_drain_all_covers_both_streams():
    env = Environment()
    mc = make_mc(env)
    mc.submit_bulk(AccessKind.WRITE, Stream.COMPUTE, 2048, "gemm")
    mc.submit_bulk(AccessKind.UPDATE, Stream.COMM, 2048, "rs")
    done = []

    def waiter():
        yield mc.drain_all()
        done.append(env.now)

    env.process(waiter())
    env.run()
    assert done and mc.idle


def test_tracker_observer_sees_writes_and_updates_only():
    env = Environment()
    mc = make_mc(env)
    seen = []
    mc.add_tracker_observer(lambda r: seen.append(r.kind))
    mc.submit_bulk(AccessKind.READ, Stream.COMPUTE, 1024, "gemm")
    mc.submit_bulk(AccessKind.WRITE, Stream.COMPUTE, 1024, "gemm",
                   wg_id=3, wf_id=1)
    mc.submit_bulk(AccessKind.UPDATE, Stream.COMM, 1024, "rs",
                   wg_id=3, wf_id=2)
    env.run()
    assert AccessKind.READ not in seen
    assert seen.count(AccessKind.WRITE) == 1
    assert seen.count(AccessKind.UPDATE) == 1


def test_calibration_computes_intensity_and_forwards():
    env = Environment()
    mc = make_mc(env, policy="mca")
    intensity = mc.calibrate(read_bytes=500_000, write_bytes=500_000,
                             duration_ns=2000)
    # 1e6 bytes / 2000 ns = 500 B/ns over a 650 B/ns effective HBM -> 0.77.
    assert intensity == pytest.approx(500.0 / 650.0)
    for channel in mc.channels:
        assert channel.policy.threshold == 5  # memory hungry -> strict


def test_calibration_validation():
    env = Environment()
    mc = make_mc(env, policy="mca")
    with pytest.raises(ValueError):
        mc.calibrate(1, 1, 0)


def test_traffic_recording_and_merge():
    env = Environment()
    mc = make_mc(env, record=True)
    mc.submit_bulk(AccessKind.READ, Stream.COMPUTE, 2048, "gemm")
    mc.submit_bulk(AccessKind.WRITE, Stream.COMPUTE, 1024, "gemm")
    env.run()
    assert mc.traffic["gemm.read"].total() == 2048
    merged = mc.merged_traffic(["gemm.read", "gemm.write"])
    assert merged.total() == 3072
    # Merged series is time-ordered.
    assert merged.times == sorted(merged.times)


def test_traffic_not_recorded_by_default():
    env = Environment()
    mc = make_mc(env, record=False)
    mc.submit_bulk(AccessKind.READ, Stream.COMPUTE, 2048, "gemm")
    env.run()
    assert mc.traffic == {}
