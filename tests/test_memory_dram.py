"""Unit tests for the HBM channel model (repro.memory.dram)."""

import pytest

from repro.memory.arbiter import ComputePriorityPolicy, MCAPolicy, RoundRobinPolicy
from repro.memory.dram import HBMChannel
from repro.memory.request import AccessKind, MemRequest, Stream
from repro.config import MCAConfig
from repro.sim import Environment


def make_channel(env, bw=100.0, depth=4, ccdwl=2.0, policy=None, on_serviced=None):
    return HBMChannel(
        env, channel_id=0, bandwidth_bytes_per_ns=bw, queue_depth=depth,
        ccdwl_factor=ccdwl, policy=policy or ComputePriorityPolicy(),
        on_serviced=on_serviced,
    )


def req(kind=AccessKind.READ, stream=Stream.COMPUTE, nbytes=1000, label="gemm"):
    return MemRequest(kind=kind, stream=stream, nbytes=nbytes, label=label)


def test_single_request_service_time():
    env = Environment()
    channel = make_channel(env, bw=100.0)
    r = req(nbytes=1000)  # 10 ns at 100 B/ns
    channel.submit(r)
    env.run()
    assert r.serviced_at == pytest.approx(10.0)
    assert channel.bytes_serviced == 1000
    assert channel.busy_time == pytest.approx(10.0)


def test_update_pays_ccdwl_penalty():
    env = Environment()
    channel = make_channel(env, bw=100.0, ccdwl=2.0)
    write = req(kind=AccessKind.WRITE, nbytes=1000)
    update = req(kind=AccessKind.UPDATE, nbytes=1000)
    assert channel.service_time(write) == pytest.approx(10.0)
    assert channel.service_time(update) == pytest.approx(20.0)


def test_requests_serviced_fifo_within_stream():
    env = Environment()
    channel = make_channel(env)
    done_order = []
    requests = [req(nbytes=100) for _ in range(5)]
    for i, r in enumerate(requests):
        channel.submit(r)
        r.done.add_callback(lambda ev, i=i: done_order.append(i))
    env.run()
    assert done_order == [0, 1, 2, 3, 4]


def test_compute_priority_starves_comm_under_load():
    env = Environment()
    channel = make_channel(env, policy=ComputePriorityPolicy())
    comm = req(stream=Stream.COMM, nbytes=100, label="rs")
    channel.submit(comm)
    computes = [req(nbytes=100) for _ in range(10)]
    for r in computes:
        channel.submit(r)
    env.run()
    # Comm was submitted first and wins the first issue slot, but any
    # compute requests present thereafter go ahead of nothing -- with
    # compute-priority the comm request issued at t=0 only because compute
    # queue was empty at submission time.
    assert comm.serviced_at is not None
    assert all(r.serviced_at is not None for r in computes)


def test_dram_queue_backpressure_limits_occupancy():
    env = Environment()
    channel = make_channel(env, bw=1.0, depth=2)
    for _ in range(10):
        channel.submit(req(nbytes=100))
    env.run(until=50)
    # At most depth + 1 requests can be issued+in-service at once.
    assert channel.dram_occupancy <= 3
    env.run()
    assert channel.idle


def test_mca_channel_holds_comm_while_compute_flows():
    env = Environment()
    policy = MCAPolicy(MCAConfig(starvation_limit_ns=1e9))
    policy.calibrate(0.9)  # strict threshold 5
    channel = make_channel(env, bw=1.0, depth=16, policy=policy)

    compute_reqs = [req(nbytes=50) for _ in range(8)]
    comm_reqs = [req(stream=Stream.COMM, nbytes=50, label="rs")
                 for _ in range(8)]
    for r in compute_reqs + comm_reqs:
        channel.submit(r)
    env.run()
    last_compute = max(r.serviced_at for r in compute_reqs)
    first_comm = min(r.serviced_at for r in comm_reqs)
    # All compute requests finish before any comm request is serviced:
    # occupancy stays >= threshold while compute floods the queue.
    assert first_comm > last_compute


def test_round_robin_interleaves_streams():
    env = Environment()
    channel = make_channel(env, bw=1.0, depth=2, policy=RoundRobinPolicy())
    compute_reqs = [req(nbytes=10) for _ in range(4)]
    comm_reqs = [req(stream=Stream.COMM, nbytes=10, label="rs")
                 for _ in range(4)]
    for pair in zip(compute_reqs, comm_reqs):
        for r in pair:
            channel.submit(r)
    env.run()
    # Comm is not starved: its last service is interleaved, not after all
    # compute requests.
    assert max(r.serviced_at for r in comm_reqs) <= \
        max(r.serviced_at for r in compute_reqs) + 10


def test_on_serviced_callback_fires_per_request():
    env = Environment()
    seen = []
    channel = make_channel(env, on_serviced=lambda r: seen.append(r.req_id))
    submitted = [req(nbytes=10) for _ in range(3)]
    for r in submitted:
        channel.submit(r)
    env.run()
    assert seen == [r.req_id for r in submitted]


def test_channel_validation():
    env = Environment()
    with pytest.raises(ValueError):
        make_channel(env, bw=0)
    with pytest.raises(ValueError):
        make_channel(env, depth=0)
    with pytest.raises(ValueError):
        make_channel(env, ccdwl=0.5)


def test_request_validation():
    with pytest.raises(ValueError):
        req(nbytes=0)


def test_utilization_accounting():
    env = Environment()
    channel = make_channel(env, bw=10.0)
    channel.submit(req(nbytes=100))  # 10 ns busy
    env.run()
    assert channel.utilization(20.0) == pytest.approx(0.5)
    assert channel.utilization(0) == 0.0
