"""Unit tests for GEMM geometry (repro.gpu.wavefront)."""

import pytest

from repro.config import GEMMKernelConfig
from repro.gpu.wavefront import GEMMShape, TileGrid, WavefrontTile, split_evenly


KCFG = GEMMKernelConfig()  # 128x128 macro tiles, 4 WFs/WG, 1 WG/CU


# ----------------------------------------------------------------- GEMMShape

def test_shape_flops_and_bytes():
    shape = GEMMShape(m=256, n=128, k=64)
    assert shape.flops == 2 * 256 * 128 * 64
    assert shape.a_bytes == 256 * 64 * 2
    assert shape.b_bytes == 64 * 128 * 2
    assert shape.output_bytes == 256 * 128 * 2


def test_shape_validation():
    with pytest.raises(ValueError):
        GEMMShape(0, 1, 1)
    with pytest.raises(ValueError):
        GEMMShape(1, 1, 1, element_bytes=0)


def test_tp_slicing_preserves_output(subtests=None):
    shape = GEMMShape(m=1024, n=1024, k=4096, name="fc2")
    sliced = shape.tp_sliced(8)
    assert sliced.k == 512
    assert sliced.m == shape.m and sliced.n == shape.n
    assert sliced.output_bytes == shape.output_bytes  # Figure 5 invariant
    assert "tp8" in sliced.name


def test_tp_slicing_validation():
    shape = GEMMShape(4, 4, 4)
    with pytest.raises(ValueError):
        shape.tp_sliced(0)
    with pytest.raises(ValueError):
        shape.tp_sliced(8)  # k=4 cannot be sliced 8 ways


# --------------------------------------------------------------- split_evenly

def test_split_evenly_balanced():
    assert split_evenly(10, 4) == [3, 3, 2, 2]
    assert split_evenly(8, 4) == [2, 2, 2, 2]


def test_split_evenly_validation():
    with pytest.raises(ValueError):
        split_evenly(3, 4)
    with pytest.raises(ValueError):
        split_evenly(3, 0)


# ------------------------------------------------------------------ TileGrid

def make_grid(m=1024, n=512, k=256, n_cus=4, n_chunks=1, offset=0,
              stagger=True):
    return TileGrid(GEMMShape(m, n, k), KCFG, n_cus=n_cus,
                    n_chunks=n_chunks, chunk_offset=offset, stagger=stagger)


def test_grid_tile_counts():
    grid = make_grid(m=1024, n=512)
    assert grid.tiles_m == 8
    assert grid.tiles_n == 4
    assert grid.n_wgs == 32
    assert grid.wgs_per_stage == 4
    assert grid.n_stages == 8


def test_grid_ragged_edges_round_up():
    grid = make_grid(m=1000, n=500)
    assert grid.tiles_m == 8  # ceil(1000/128)
    assert grid.tiles_n == 4


def test_tp_slicing_keeps_grid_identical():
    """Figure 5: slicing K changes per-WG work, not the WG grid/stages."""
    full = make_grid(k=4096)
    sliced = TileGrid(GEMMShape(1024, 512, 4096).tp_sliced(16), KCFG, n_cus=4)
    assert (full.tiles_m, full.tiles_n) == (sliced.tiles_m, sliced.tiles_n)
    assert full.n_stages == sliced.n_stages
    assert full.n_wgs == sliced.n_wgs


def test_wg_sequence_covers_all_wgs_exactly_once():
    grid = make_grid(n_chunks=4)
    wg_ids = [wg for wg, *_ in grid.wg_sequence()]
    assert sorted(wg_ids) == list(range(grid.n_wgs))


def test_chunk_ranges_partition_wgs():
    grid = make_grid(n_chunks=4)
    covered = []
    for start, count in grid.chunk_ranges:
        covered.extend(range(start, start + count))
    assert covered == list(range(grid.n_wgs))


def test_chunk_of_wg():
    grid = make_grid(n_chunks=4)  # 32 WGs -> 8 per chunk
    assert grid.chunk_of_wg(0) == 0
    assert grid.chunk_of_wg(7) == 0
    assert grid.chunk_of_wg(8) == 1
    assert grid.chunk_of_wg(31) == 3
    with pytest.raises(ValueError):
        grid.chunk_of_wg(32)
    assert grid.chunk_wgs(1) == list(range(8, 16))


def test_sub_tile_row_chunking_supported():
    """TP=32 on a 16-tile-row output (the paper's GPT-3 case) chunks at
    sub-row granularity."""
    grid = make_grid(m=2048, n=12288 // 4, n_chunks=32)
    assert grid.n_chunks == 32
    total = sum(grid.chunk_bytes_total(c) for c in range(32))
    assert total == grid.n_wgs * grid.wg_tile_bytes


def test_chunk_bytes_total_sums_to_output():
    grid = make_grid(n_chunks=4)
    total = sum(grid.chunk_bytes_total(c) for c in range(4))
    # Tile-granular accounting: ragged edges count as full tiles.
    assert total == grid.n_wgs * grid.wg_tile_bytes


def test_staggered_chunk_order_rotates_with_rank():
    """Each device starts with its ring successor's chunk and ends with its
    own (Section 4.4 staggering)."""
    for rank in range(4):
        grid = make_grid(n_chunks=4, offset=rank)
        order = grid.chunk_order()
        assert order[0] == (rank + 1) % 4
        assert order[-1] == rank
        assert sorted(order) == [0, 1, 2, 3]


def test_stagger_disabled_gives_identity_order():
    grid = make_grid(n_chunks=4, offset=2, stagger=False)
    assert grid.chunk_order() == [0, 1, 2, 3]


def test_stages_partition_wgs():
    grid = make_grid(n_chunks=4, offset=1)
    stage_wgs = [wg for stage in grid.stages for wg in stage.wg_ids]
    assert sorted(stage_wgs) == list(range(grid.n_wgs))
    assert all(s.n_wgs <= grid.wgs_per_stage for s in grid.stages)


def test_stage_chunk_bytes_sum_to_output():
    grid = make_grid(n_chunks=4)
    total = sum(stage.output_bytes for stage in grid.stages)
    assert total == grid.n_wgs * grid.wg_tile_bytes


def test_new_tile_rows_sum_to_tiles_m():
    grid = make_grid(n_chunks=4, offset=3)
    assert sum(s.new_tile_rows for s in grid.stages) == grid.tiles_m


def test_stage_for_chunk_completion_monotonic_in_device_order():
    grid = make_grid(n_chunks=4, offset=0)
    order = grid.chunk_order()
    completion = [grid.stage_for_chunk_completion(c) for c in order]
    assert completion == sorted(completion)


def test_wf_tiles_partition_wg_tile():
    grid = make_grid()
    tiles = grid.wf_tiles(wg_id=5, chunk_id=0)
    assert len(tiles) == KCFG.wfs_per_wg
    assert sum(t.nbytes for t in tiles) == grid.wg_tile_bytes
    assert {t.wf_id for t in tiles} == set(range(KCFG.wfs_per_wg))


def test_wavefront_tracker_index_and_tag():
    tile = WavefrontTile(wg_id=300, wf_id=2, nbytes=8192, chunk_id=1)
    assert tile.tracker_index(256) == 44  # 300 % 256
    assert tile.tracker_tag(256) == (1, 2)  # 300 // 256


def test_grid_validation():
    with pytest.raises(ValueError):
        make_grid(n_cus=0)
    with pytest.raises(ValueError):
        make_grid(n_chunks=0)
    with pytest.raises(ValueError):
        # 32 WG tiles cannot be chunked 64 ways.
        make_grid(n_chunks=64)
