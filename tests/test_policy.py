"""Overlap-policy layer tests (repro.policy).

The static half of the contract — :class:`StaticPaperPolicy` reproduces
the pre-refactor inline arbiter decision-for-decision — is checked here
property-based (hypothesis drives random calibration/arbitration
histories against an inline reference implementation); the byte-level
whole-simulation half lives in ``scripts/smoke_policy.py``.  The rest
covers the adaptive controller's mechanics, decision-log record/replay,
config validation, policy resolution, and the ``policy-decisions``
trace-analysis pass.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.trace import TraceSpan
from repro.config import (
    MCAConfig,
    OverlapPolicyConfig,
    set_default_overlap_policy,
    table1_system,
)
from repro.memory.arbiter import ArbiterState, MCAPolicy
from repro.memory.request import Stream
from repro.policy import (
    AdaptiveMcaPolicy,
    Decision,
    DecisionLog,
    RecordedPolicy,
    StaticPaperPolicy,
    make_overlap_policy,
    paper_threshold_index,
    resolve_overlap_policy,
)
from repro.trace.passes import pass_policy_decisions
from repro.trace.query import TraceQuery


class FakeEnv:
    """The attributes a policy reads off an environment, nothing else."""

    def __init__(self):
        self._now = 0.0
        self.trace = None
        self.obs = None
        self.overlap = None


def arbiter_state(occupancy, now, compute_waiting=0, comm_waiting=1,
                  capacity=48):
    return ArbiterState(compute_waiting, comm_waiting, occupancy,
                        capacity, now)


def adaptive(**overrides):
    return AdaptiveMcaPolicy(OverlapPolicyConfig(kind="adaptive",
                                                 **overrides))


# -- static bit-equivalence (the tentpole's transparency contract) --------


class InlineReferenceArbiter:
    """The pre-refactor MCA decision logic, inlined verbatim: the
    Section 4.5 intensity->threshold table, the occupancy gate, and the
    starvation guard, with no policy layer in sight."""

    def __init__(self, config: MCAConfig):
        self.config = config
        self.threshold = config.occupancy_thresholds[0]
        self._last_comm_issue = 0.0

    def calibrate(self, memory_intensity):
        thresholds = self.config.occupancy_thresholds
        for breakpoint_value, threshold in zip(
                self.config.intensity_breakpoints, thresholds):
            if memory_intensity >= breakpoint_value:
                self.threshold = threshold
                return
        self.threshold = thresholds[-1]

    def choose(self, state):
        if state.compute_waiting > 0:
            if (state.comm_waiting > 0
                    and state.now - self._last_comm_issue
                    > self.config.starvation_limit_ns):
                return Stream.COMM
            return Stream.COMPUTE
        if state.comm_waiting > 0 and (
                self.threshold is None
                or state.dram_occupancy < self.threshold):
            return Stream.COMM
        return None

    def on_issue(self, stream, now):
        if stream is Stream.COMM:
            self._last_comm_issue = now


history = st.lists(
    st.one_of(
        st.tuples(st.just("calibrate"),
                  st.floats(min_value=0.0, max_value=1.5,
                            allow_nan=False)),
        st.tuples(st.just("round"),
                  st.integers(min_value=0, max_value=3),    # compute
                  st.integers(min_value=0, max_value=3),    # comm
                  st.integers(min_value=0, max_value=40),   # occupancy
                  st.floats(min_value=0.0, max_value=900.0,
                            allow_nan=False))),              # time delta
    min_size=1, max_size=80)


@given(events=history)
@settings(max_examples=120, deadline=None)
def test_static_policy_matches_inline_reference(events):
    """Any interleaving of calibrations and arbitration rounds yields
    the same thresholds and the same stream decisions as the
    pre-refactor inline arbiter."""
    config = MCAConfig()
    refactored = MCAPolicy(config)          # default StaticPaperPolicy
    reference = InlineReferenceArbiter(config)
    now = 0.0
    for event in events:
        if event[0] == "calibrate":
            refactored.calibrate(event[1])
            reference.calibrate(event[1])
            assert refactored.threshold == reference.threshold
            continue
        _, compute, comm, occupancy, delta = event
        now += delta
        choices = []
        for policy in (refactored, reference):
            state = ArbiterState(compute, comm, occupancy, 48, now)
            choice = policy.choose(state)
            if choice is not None:
                policy.on_issue(choice, now)
            choices.append(choice)
        assert choices[0] is choices[1], (
            f"diverged at t={now}: compute={compute} comm={comm} "
            f"occupancy={occupancy} threshold={reference.threshold}")


@given(intensity=st.floats(min_value=0.0, max_value=2.0, allow_nan=False))
@settings(max_examples=80, deadline=None)
def test_paper_threshold_index_matches_first_match_semantics(intensity):
    config = MCAConfig()
    index = paper_threshold_index(config, intensity)
    expected = len(config.occupancy_thresholds) - 1
    for position, breakpoint_value in enumerate(
            config.intensity_breakpoints):
        if intensity >= breakpoint_value:
            expected = position
            break
    assert index == expected


def test_static_policy_records_calibration_decisions():
    policy = StaticPaperPolicy(record=True)
    site = policy.register_mca_site(0, 2, MCAConfig())
    policy.on_calibration(site, 0.8)
    log = policy.decision_log()
    assert len(log) == 1
    decision = log.decisions[0]
    assert decision.kind == "threshold"
    assert decision.value == 5
    assert decision.channel == 2


# -- config validation (MCAConfig + OverlapPolicyConfig) ------------------


def test_mca_config_rejects_mismatched_lengths():
    with pytest.raises(ValueError, match="one more occupancy threshold"):
        MCAConfig(occupancy_thresholds=(5, 10, None),
                  intensity_breakpoints=(0.75, 0.5, 0.25))
    with pytest.raises(ValueError, match="one more occupancy threshold"):
        MCAConfig(occupancy_thresholds=(5, 10, 30, None),
                  intensity_breakpoints=(0.75, 0.5))


def test_mca_config_rejects_non_decreasing_breakpoints():
    with pytest.raises(ValueError, match="strictly"):
        MCAConfig(intensity_breakpoints=(0.25, 0.5, 0.75))
    with pytest.raises(ValueError, match="strictly"):
        MCAConfig(intensity_breakpoints=(0.75, 0.75, 0.25))


def test_mca_config_defaults_are_valid_and_round_trip():
    config = MCAConfig()
    assert MCAConfig.from_dict(config.to_dict()) == config


def test_overlap_policy_config_validation():
    with pytest.raises(ValueError, match="unknown overlap policy"):
        OverlapPolicyConfig(kind="oracle")
    with pytest.raises(ValueError, match="decision_log_path"):
        OverlapPolicyConfig(kind="recorded")
    with pytest.raises(ValueError, match="ewma_alpha"):
        OverlapPolicyConfig(ewma_alpha=0.0)
    with pytest.raises(ValueError, match="retune_interval_ns"):
        OverlapPolicyConfig(retune_interval_ns=0.0)
    with pytest.raises(ValueError, match="watermarks"):
        OverlapPolicyConfig(relax_watermark=0.1, tighten_watermark=0.2)
    with pytest.raises(ValueError, match="pacing_max_gap_ns"):
        OverlapPolicyConfig(pacing_max_gap_ns=-1.0)
    with pytest.raises(ValueError, match="pacing_occupancy_watermark"):
        OverlapPolicyConfig(pacing_occupancy_watermark=1.0)
    with pytest.raises(ValueError, match="eagerness_max_delay_ns"):
        OverlapPolicyConfig(eagerness_max_delay_ns=-5.0)


def test_default_policy_kind_hook_round_trips():
    previous = set_default_overlap_policy("adaptive")
    try:
        assert previous == "static"
        assert OverlapPolicyConfig().kind == "adaptive"
        assert table1_system(n_gpus=4).policy.kind == "adaptive"
    finally:
        set_default_overlap_policy(previous)
    assert OverlapPolicyConfig().kind == "static"
    with pytest.raises(ValueError, match="unknown overlap policy"):
        set_default_overlap_policy("oracle")


def test_policy_selection_lands_in_the_cache_key():
    base = table1_system(n_gpus=4)
    assert base.to_dict() != base.with_policy("adaptive").to_dict()
    assert base.with_policy("adaptive").to_dict() \
        != base.with_policy("adaptive", ewma_alpha=0.2).to_dict()
    # with_policy is non-destructive: the base config is unchanged.
    assert base.policy.kind == "static"


# -- decision log ---------------------------------------------------------


def test_decision_log_save_load_round_trip(tmp_path):
    log = DecisionLog(policy="adaptive-mca")
    log.append(Decision(seq=1, t_ns=0.0, kind="threshold", gpu=0,
                        channel=2, value=10, reason="relax"))
    log.append(Decision(seq=2, t_ns=5.5, kind="pacing", gpu=1,
                        channel=-1, value=3.5, reason="occupancy"))
    log.append(Decision(seq=3, t_ns=9.0, kind="threshold", gpu=0,
                        channel=2, value=None, reason="relax"))
    path = log.save(tmp_path / "decisions.json")
    loaded = DecisionLog.load(path)
    assert loaded.policy == "adaptive-mca"
    assert [d.to_dict() for d in loaded.decisions] \
        == [d.to_dict() for d in log.decisions]


def test_decision_log_rejects_foreign_payloads():
    with pytest.raises(ValueError, match="t3-decision-log"):
        DecisionLog.from_json('{"schema": "other", "decisions": []}')


# -- the adaptive controller ----------------------------------------------


def test_adaptive_relaxes_up_the_ladder_under_sustained_deferrals():
    policy = adaptive(retune_interval_ns=10.0)
    env = FakeEnv()
    policy.bind(env)
    site = policy.register_mca_site(0, 0, MCAConfig())
    policy.on_calibration(site, 1.0)
    assert site.threshold == 5         # memory-hungry kernel: tight gate
    seen = set()
    now = 0.0
    for _ in range(400):
        now += 1.0
        env._now = now
        policy.comm_admission(site, arbiter_state(40, now))
        seen.add(site.threshold)
    # Occupancy 40 defeats every finite threshold: the controller must
    # walk the whole ladder to unlimited.
    assert None in seen
    assert policy.retunes >= 3
    assert site.index >= site.base_index


def test_adaptive_never_tightens_below_the_static_pick():
    policy = adaptive(retune_interval_ns=10.0)
    site = policy.register_mca_site(0, 0, MCAConfig())
    policy.on_calibration(site, 1.0)
    now = 0.0
    for _ in range(200):
        now += 1.0
        assert policy.comm_admission(site, arbiter_state(0, now))
    # Every round admitted: deferral evidence never accumulates, and the
    # index is already at the static base, so nothing ever moves.
    assert site.threshold == 5
    assert policy.retunes == 0


def test_adaptive_decays_back_to_the_static_pick():
    policy = adaptive(retune_interval_ns=10.0)
    site = policy.register_mca_site(0, 0, MCAConfig())
    policy.on_calibration(site, 1.0)
    now = 0.0
    for _ in range(100):                      # relax phase: always denied
        now += 1.0
        policy.comm_admission(site, arbiter_state(40, now))
    assert site.index > site.base_index
    for _ in range(600):                      # calm phase: always granted
        now += 1.0
        policy.comm_admission(site, arbiter_state(0, now))
    assert site.index == site.base_index
    assert site.threshold == 5


def test_adaptive_retunes_are_rate_limited():
    policy = adaptive(retune_interval_ns=1e6)
    site = policy.register_mca_site(0, 0, MCAConfig())
    policy.on_calibration(site, 1.0)
    now = 0.0
    for _ in range(200):
        now += 1.0
        policy.comm_admission(site, arbiter_state(40, now))
    assert policy.retunes == 0
    assert site.threshold == 5


def test_calibration_resets_the_controller():
    policy = adaptive(retune_interval_ns=10.0)
    site = policy.register_mca_site(0, 0, MCAConfig())
    policy.on_calibration(site, 1.0)
    now = 0.0
    for _ in range(200):
        now += 1.0
        policy.comm_admission(site, arbiter_state(40, now))
    assert site.index > site.base_index
    policy.on_calibration(site, 1.0)          # new kernel, same intensity
    assert site.threshold == 5
    assert site.ewma_deferral == 0.0


def test_pacing_gap_scales_with_gpu_occupancy():
    policy = adaptive(pacing_max_gap_ns=100.0,
                      pacing_occupancy_watermark=0.5)
    site = policy.register_mca_site(0, 0, MCAConfig())
    policy.on_calibration(site, 0.0)          # compute-bound: unlimited
    now = 0.0
    for _ in range(100):                      # saturate the occupancy EWMA
        now += 1.0
        policy.comm_admission(site, arbiter_state(48, now, capacity=48))
    gap = policy.dma_pacing_gap(0, command=None)
    assert 0.0 < gap <= 100.0
    # A GPU the policy has no occupancy evidence for is never paced.
    assert policy.dma_pacing_gap(1, command=None) == 0.0


def test_pacing_and_eagerness_disabled_by_default():
    policy = adaptive()
    assert policy.dma_pacing_gap(0, command=None) == 0.0
    assert policy.trigger_fire_delay(0, block=None) == 0.0


def test_trigger_delay_follows_tracker_pressure():
    policy = adaptive(eagerness_max_delay_ns=50.0)
    for _ in range(50):
        policy.observe_tracker_pressure(0, live_regions=8, capacity=8)
    delay = policy.trigger_fire_delay(0, block=None)
    assert 0.0 < delay <= 50.0
    assert policy.trigger_fire_delay(1, block=None) == 0.0
    policy.observe_tracker_pressure(2, live_regions=1, capacity=0)  # no-op


# -- record / replay ------------------------------------------------------


def test_recorded_policy_replays_the_threshold_trajectory():
    config = OverlapPolicyConfig(kind="adaptive", record_decisions=True,
                                 retune_interval_ns=10.0)
    occupancies = [20, 35, 3, 40, 0, 40, 40, 12] * 40

    def drive(policy):
        env = FakeEnv()
        policy.bind(env)
        site = policy.register_mca_site(0, 0, MCAConfig())
        env._now = 0.0
        policy.on_calibration(site, 1.0)
        admissions, thresholds = [], []
        now = 0.0
        for occupancy in occupancies:
            now += 1.0
            env._now = now
            admissions.append(policy.comm_admission(
                site, arbiter_state(occupancy, now)))
            thresholds.append(site.threshold)
        return admissions, thresholds

    original = AdaptiveMcaPolicy(config)
    admissions, thresholds = drive(original)
    log = original.decision_log()
    assert log is not None and len(log) > 1
    assert log.policy == "adaptive-mca"

    replay = RecordedPolicy(log)
    replayed_admissions, replayed_thresholds = drive(replay)
    assert replayed_admissions == admissions
    assert replayed_thresholds == thresholds
    assert replay.pending == 0
    assert replay.replayed == len(log)


def test_recorded_policy_round_trips_through_disk(tmp_path):
    log = DecisionLog(policy="adaptive-mca")
    log.append(Decision(seq=1, t_ns=0.0, kind="threshold", gpu=0,
                        channel=0, value=30, reason="calibration"))
    path = log.save(tmp_path / "log.json")
    policy = make_overlap_policy(OverlapPolicyConfig(
        kind="recorded", decision_log_path=str(path)))
    assert isinstance(policy, RecordedPolicy)
    site = policy.register_mca_site(0, 0, MCAConfig())
    # The unbound replay treats registration as t=inf: the t=0 decision
    # is due immediately.
    assert site.threshold == 30


# -- construction and resolution ------------------------------------------


def test_make_overlap_policy_dispatch():
    assert isinstance(make_overlap_policy(OverlapPolicyConfig(
        kind="static")), StaticPaperPolicy)
    built = make_overlap_policy(OverlapPolicyConfig(kind="adaptive"))
    assert isinstance(built, AdaptiveMcaPolicy)
    assert built.log is None
    recording = make_overlap_policy(OverlapPolicyConfig(
        kind="adaptive", record_decisions=True))
    assert recording.decision_log() is not None


def test_resolve_overlap_policy_attaches_once_and_respects_preattached():
    system = table1_system(n_gpus=4)
    env = FakeEnv()
    policy = resolve_overlap_policy(env, system)
    assert env.overlap is policy
    assert policy.env is env
    assert isinstance(policy, StaticPaperPolicy)
    assert resolve_overlap_policy(env, system) is policy

    pre = AdaptiveMcaPolicy(OverlapPolicyConfig(kind="adaptive"))
    env2 = FakeEnv()
    env2.overlap = pre
    assert resolve_overlap_policy(env2, system) is pre
    assert pre.env is env2


def test_mca_policy_under_adaptive_overlap_exposes_live_threshold():
    """The arbiter's ``threshold`` property follows the site, so the
    gate-tagged counters stay correct across retunes."""
    overlap = adaptive(retune_interval_ns=10.0)
    policy = MCAPolicy(MCAConfig(), overlap=overlap, gpu_id=3,
                       channel_id=1)
    policy.calibrate(1.0)
    assert policy.threshold == 5
    now = 0.0
    for _ in range(400):
        now += 1.0
        policy.choose(arbiter_state(40, now))
    assert policy.threshold != 5
    site = overlap.sites[0]
    assert (site.gpu_id, site.channel_id) == (3, 1)


# -- the policy-decisions trace pass --------------------------------------


def instant(t_ns, gpu, value, reason, kind="threshold"):
    shown = "inf" if value is None else f"{value:g}"
    return TraceSpan(
        name=f"{kind}={shown}", category="policy", start_ns=t_ns,
        end_ns=t_ns, track=f"gpu{gpu}.policy", group="policy",
        args={"kind": kind, "gpu": gpu, "channel": 0,
              "value": "inf" if value is None else value,
              "reason": reason, "policy": "adaptive-mca"})


def test_policy_decisions_pass_joins_gate_counters():
    spans = [
        instant(0.0, 0, 5, "calibration"),
        instant(100.0, 0, 10, "relax"),
        instant(250.0, 0, None, "relax"),
        instant(0.0, 1, 5, "calibration"),
        instant(300.0, 1, 4.0, "occupancy", kind="pacing"),
    ]
    snapshot = {"scopes": [
        {"component": "arbiter", "gpu": 0, "counters": {
            "comm_grants.t5": 10.0, "comm_deferrals.t5": 30.0,
            "comm_grants.t10": 12.0, "comm_deferrals.t10": 4.0,
            "comm_grants.tinf": 7.0}},
        {"component": "dma", "gpu": 0, "counters": {"slices": 9.0}},
    ]}
    result = pass_policy_decisions(
        TraceQuery(spans, registry_snapshot=snapshot))
    data = result.data
    assert data["decisions"] == 5
    assert data["by_kind"] == {"threshold": 4, "pacing": 1}
    assert data["by_reason"] == {"calibration": 2, "relax": 2,
                                 "occupancy": 1}
    assert data["per_gpu"]["gpu0"]["thresholds_visited"] == [5, 10, "inf"]
    assert data["per_gpu"]["gpu0"]["last_threshold"] == "inf"
    assert data["per_gpu"]["gpu1"]["decisions"] == 1
    assert data["gate_by_threshold"]["5"] == {"grants": 10.0,
                                              "deferrals": 30.0}
    assert data["gate_by_threshold"]["inf"] == {"grants": 7.0,
                                                "deferrals": 0.0}
    assert "75.0% held" in result.text
    assert "ladder 5 -> 10 -> inf" in result.text


def test_policy_decisions_pass_without_policy_instants():
    result = pass_policy_decisions(TraceQuery([]))
    assert result.data["decisions"] == 0
    assert "no policy instants" in result.text


def test_policy_decisions_pass_without_registry_snapshot():
    result = pass_policy_decisions(
        TraceQuery([instant(0.0, 0, 5, "calibration")]))
    assert result.data["gate_by_threshold"] == {}
    assert "gate join skipped" in result.text


# -- runner surface -------------------------------------------------------


def test_runner_registers_the_adaptive_experiment():
    from repro.experiments.runner import EXPERIMENTS, _trace_capable
    assert "adaptive" in EXPERIMENTS
    assert _trace_capable("adaptive")


def test_runner_rejects_unknown_policy_flag():
    from repro.experiments.runner import main
    with pytest.raises(SystemExit):
        main(["table1", "--policy", "oracle"])
