"""Tests for the sweep execution layer: the process-pool case runner and
the persistent content-addressed result cache."""

import dataclasses
import json

import pytest

from repro.config import SystemConfig, table1_system
from repro.experiments import executor, sublayer_sweep
from repro.experiments.common import SublayerSuite
from repro.experiments.executor import CaseSpec, SweepCache, run_cases
from repro.models import zoo

#: a cheap case set: TP=4, only the two simulated configurations.
CONFIGS = ("Sequential", "T3")


def _specs(names=("OP", "FC-2")):
    system = table1_system(n_gpus=4)
    return [
        CaseSpec(sub=zoo.t_nlg().sublayer(name, 4),
                 scale=sublayer_sweep.FAST_SCALE,
                 system=system, configs=CONFIGS)
        for name in names
    ]


def _assert_identical(a: SublayerSuite, b: SublayerSuite) -> None:
    """Bit-for-bit equality of everything a figure consumes."""
    assert a.label == b.label
    assert a.shape == b.shape
    assert a.system == b.system
    assert (a.gemm_time, a.rs_time, a.ag_time) == \
        (b.gemm_time, b.rs_time, b.ag_time)
    assert a.times == b.times
    assert a.traffic == b.traffic


# ------------------------------------------------------------ fingerprints

def test_case_fingerprint_is_content_addressed():
    spec_a, spec_b = _specs(), _specs()
    # Independently-constructed equal cases share one key ...
    assert spec_a[0].fingerprint() == spec_b[0].fingerprint()
    # ... and any ingredient change produces a different one.
    assert spec_a[0].fingerprint() != spec_a[1].fingerprint()
    rescaled = dataclasses.replace(spec_a[0], scale=1)
    assert rescaled.fingerprint() != spec_a[0].fingerprint()
    resys = dataclasses.replace(
        spec_a[0], system=spec_a[0].system.with_fidelity(quantum_bytes=1))
    assert resys.fingerprint() != spec_a[0].fingerprint()


def test_case_spec_requires_frozen_hashable_system():
    @dataclasses.dataclass
    class MutableSystem:  # looks like a config, but is mutable
        n_gpus: int = 4

    with pytest.raises(TypeError, match="frozen"):
        CaseSpec(sub=zoo.t_nlg().sublayer("OP", 4), scale=8,
                 system=MutableSystem(), configs=CONFIGS)


def test_code_fingerprint_is_stable_within_process():
    assert executor.code_fingerprint() == executor.code_fingerprint()
    assert len(executor.code_fingerprint()) == 64


# ------------------------------------------------- parallel vs serial runs

@pytest.fixture(scope="module")
def serial_reference(tmp_path_factory):
    cache = SweepCache(tmp_path_factory.mktemp("serial-cache"))
    return run_cases(_specs(), jobs=1, cache=cache)


def test_parallel_results_match_serial_bit_for_bit(serial_reference,
                                                   tmp_path):
    parallel = run_cases(_specs(), jobs=2, cache=SweepCache(tmp_path))
    assert len(parallel) == len(serial_reference)
    for serial_suite, parallel_suite in zip(serial_reference, parallel):
        _assert_identical(serial_suite, parallel_suite)


def test_results_preserve_case_order(serial_reference):
    labels = [suite.label for suite in serial_reference]
    assert labels == ["T-NLG/OP/TP4", "T-NLG/FC-2/TP4"]


# ----------------------------------------------------------- cache behavior

def test_cache_hit_on_second_run(serial_reference, tmp_path):
    cache = SweepCache(tmp_path)
    first = run_cases(_specs(), jobs=1, cache=cache)
    assert cache.stats.misses == 2
    assert cache.stats.simulated == 2
    assert cache.stats.stores == 2
    assert len(cache) == 2

    # A fresh cache object over the same directory (== a new process).
    warm = SweepCache(tmp_path)
    second = run_cases(_specs(), jobs=1, cache=warm)
    assert warm.stats.hits == 2
    assert warm.stats.misses == 0
    assert warm.stats.simulated == 0
    for a, b in zip(first, second):
        _assert_identical(a, b)


def test_cache_invalidates_on_code_fingerprint_change(serial_reference,
                                                      tmp_path,
                                                      monkeypatch):
    cache = SweepCache(tmp_path)
    run_cases(_specs(), jobs=1, cache=cache)
    assert cache.stats.simulated == 2

    monkeypatch.setattr(executor, "code_fingerprint",
                        lambda: "f" * 64)
    stale = SweepCache(tmp_path)
    run_cases(_specs(), jobs=1, cache=stale)
    assert stale.stats.hits == 0           # old entries never returned
    assert stale.stats.simulated == 2


def test_cache_survives_and_drops_corrupt_entries(tmp_path):
    cache = SweepCache(tmp_path)
    [spec] = _specs(names=("OP",))
    key = spec.fingerprint()
    suite = run_cases([spec], jobs=1, cache=cache)[0]

    # Round-trips through JSON exactly.
    restored = SublayerSuite.from_dict(
        json.loads((tmp_path / f"{key}.json").read_text()))
    _assert_identical(suite, restored)

    # A truncated entry is dropped, not fatal.
    (tmp_path / f"{key}.json").write_text("{not json")
    recovering = SweepCache(tmp_path)
    assert recovering.get(key) is None
    assert not (tmp_path / f"{key}.json").exists()


def test_disabled_cache_never_touches_disk(tmp_path):
    cache = SweepCache(tmp_path, enabled=False)
    [spec] = _specs(names=("OP",))
    run_cases([spec], jobs=1, cache=cache)
    assert len(cache) == 0
    assert cache.stats.misses == 1
    assert cache.stats.simulated == 1


def test_clear_removes_entries(tmp_path):
    cache = SweepCache(tmp_path)
    run_cases(_specs(names=("OP",)), jobs=1, cache=cache)
    assert len(cache) == 1
    assert cache.clear() == 1
    assert len(cache) == 0


# ----------------------------------------------------- sweep-level plumbing

def test_run_sweep_jobs_matches_serial(tmp_path):
    cases = [zoo.t_nlg().sublayer(n, 4) for n in ("OP", "FC-2")]
    serial = sublayer_sweep.run_sweep(cases=cases, jobs=1,
                                      configs=CONFIGS)
    sublayer_sweep.clear_cache()
    sublayer_sweep.clear_disk_cache()
    parallel = sublayer_sweep.run_sweep(cases=cases, jobs=2,
                                        configs=CONFIGS)
    for a, b in zip(serial, parallel):
        _assert_identical(a, b)
    sublayer_sweep.clear_cache()
    sublayer_sweep.clear_disk_cache()


def test_configure_rejects_bad_jobs():
    with pytest.raises(ValueError, match="jobs"):
        sublayer_sweep.configure(jobs=0)


def test_suite_dict_roundtrip_is_exact(serial_reference):
    for suite in serial_reference:
        clone = SublayerSuite.from_dict(
            json.loads(json.dumps(suite.to_dict())))
        _assert_identical(suite, clone)


def test_system_config_roundtrip_and_content_hash():
    system = table1_system(n_gpus=16).with_fidelity(quantum_bytes=4096)
    clone = SystemConfig.from_dict(json.loads(json.dumps(system.to_dict())))
    assert clone == system
    assert clone.content_hash() == system.content_hash()
    assert clone.content_hash() != table1_system(16).content_hash()


# ------------------------------------------------- crash-tolerant execution

def _canned_suite(sub, scale, system, configs=None, faults=None,
                  check_invariants=False):
    """A stand-in simulation result (no actual simulation)."""
    import repro.experiments.common as common
    return common.SublayerSuite(
        label=sub.label, shape=sub.gemm, system=system,
        gemm_time=3.0, rs_time=2.0, ag_time=1.0,
        times={"Sequential": 6.0, "T3": 4.0}, traffic={})


def _install_worker_failure(monkeypatch, failure):
    """Make simulate_case fail in pool workers but succeed in the parent.

    ``run_cases`` submits the module-level ``_simulate_payload`` (always
    picklable); with the fork start method the workers inherit this
    monkeypatched ``simulate_case``, so only child processes fail and the
    in-process serial retry succeeds.
    """
    import os

    parent_pid = os.getpid()

    def fake_simulate(sub, scale, system, configs=None, faults=None,
                      check_invariants=False):
        if os.getpid() != parent_pid:
            failure()
        return _canned_suite(sub, scale, system, configs, faults,
                             check_invariants)

    monkeypatch.setattr(sublayer_sweep, "simulate_case", fake_simulate)


def test_killed_worker_falls_back_to_serial(monkeypatch, tmp_path):
    import os

    # A hard crash (os._exit) breaks the whole pool: BrokenProcessPool.
    _install_worker_failure(monkeypatch, lambda: os._exit(13))
    cache = SweepCache(tmp_path)
    with pytest.warns(executor.SweepExecutionWarning,
                      match="retrying in-process"):
        results = run_cases(_specs(), jobs=2, cache=cache)
    assert [suite.label for suite in results] == \
        ["T-NLG/OP/TP4", "T-NLG/FC-2/TP4"]
    assert all(suite.times == {"Sequential": 6.0, "T3": 4.0}
               for suite in results)
    # Retried results still land in the cache.
    assert cache.stats.simulated == 2
    assert len(cache) == 2


def test_worker_exception_falls_back_to_serial(monkeypatch, tmp_path):
    def explode():
        raise ValueError("synthetic worker failure")

    _install_worker_failure(monkeypatch, explode)
    with pytest.warns(executor.SweepExecutionWarning,
                      match="ValueError"):
        results = run_cases(_specs(), jobs=2, cache=SweepCache(tmp_path))
    assert len(results) == 2


def test_hung_worker_times_out_and_falls_back(monkeypatch, tmp_path):
    import time as _time

    _install_worker_failure(monkeypatch, lambda: _time.sleep(3.0))
    with pytest.warns(executor.SweepExecutionWarning):
        results = run_cases(_specs(names=("OP", "FC-2")), jobs=2,
                            cache=SweepCache(tmp_path), timeout_s=0.5)
    assert len(results) == 2


def test_error_in_serial_retry_propagates(monkeypatch, tmp_path):
    import os

    parent_pid = os.getpid()

    def always_fail(sub, scale, system, configs=None, faults=None,
                    check_invariants=False):
        raise ValueError("fails everywhere")

    monkeypatch.setattr(sublayer_sweep, "simulate_case", always_fail)
    with pytest.warns(executor.SweepExecutionWarning):
        with pytest.raises(ValueError, match="fails everywhere"):
            run_cases(_specs(), jobs=2, cache=SweepCache(tmp_path))


def test_serial_path_is_untouched_by_worker_failures(monkeypatch, tmp_path):
    # jobs=1 never builds a pool, so a child-only failure never triggers.
    import os
    _install_worker_failure(monkeypatch, lambda: os._exit(13))
    results = run_cases(_specs(names=("OP",)), jobs=1,
                        cache=SweepCache(tmp_path))
    assert len(results) == 1


# ------------------------------------- shared deadline + bounded retries

def test_negative_max_retries_rejected(tmp_path):
    with pytest.raises(ValueError, match="max_retries"):
        run_cases(_specs(names=("OP",)), jobs=1,
                  cache=SweepCache(tmp_path), max_retries=-1)


def test_timeout_is_a_shared_batch_deadline(monkeypatch, tmp_path):
    """N hung workers cost ~timeout_s total, not N x timeout_s."""
    import time as _time

    _install_worker_failure(monkeypatch, lambda: _time.sleep(5.0))
    specs = _specs(names=("OP", "FC-2")) + _specs(names=("FC-1", "IP"))
    started = _time.monotonic()
    with pytest.warns(executor.SweepExecutionWarning):
        results = run_cases(specs, jobs=2, cache=SweepCache(tmp_path),
                            timeout_s=0.5)
    elapsed = _time.monotonic() - started
    assert len(results) == 4               # serial retry recovered all
    # Per-future sequential timeouts would wait >= 4 x 0.5s in the pool
    # alone; the shared deadline bounds collection to ~0.5s (plus serial
    # re-simulation, which uses the canned stub and is instant).
    assert elapsed < 1.9, f"batch deadline not shared: {elapsed:.1f}s"


def test_retry_serial_retries_each_case_individually():
    """One persistently-failing case must not starve the others."""
    attempts = {}

    def run_serial(cases):
        [(index, spec, key)] = cases
        attempts[index] = attempts.get(index, 0) + 1
        if index == 1:                     # case 1 fails every round
            raise ValueError("case 1 keeps failing")

    cases = [(0, None, "k0"), (1, None, "k1"), (2, None, "k2")]
    with pytest.raises(ValueError, match="case 1 keeps failing"):
        executor._retry_serial(cases, run_serial,
                               first_error=RuntimeError("from the pool"),
                               max_retries=3, backoff_s=0.0,
                               sleep=lambda _s: None)
    # Cases 0 and 2 succeeded in round 1 and were not re-attempted;
    # case 1 got all three rounds before its error propagated.
    assert attempts == {0: 1, 1: 3, 2: 1}


def test_retry_serial_backoff_is_exponential():
    delays = []

    def run_serial(cases):
        raise ValueError("never succeeds")

    with pytest.raises(ValueError):
        executor._retry_serial([(0, None, "k0")], run_serial,
                               first_error=None, max_retries=4,
                               backoff_s=0.5, sleep=delays.append)
    # No sleep before round 1; then 0.5 * 2**(round-2) between rounds.
    assert delays == [0.5, 1.0, 2.0]


def test_retry_serial_zero_retries_propagates_pool_error():
    marker = RuntimeError("original pool failure")

    def run_serial(cases):           # pragma: no cover - must not run
        raise AssertionError("no retry rounds were requested")

    with pytest.raises(RuntimeError, match="original pool failure"):
        executor._retry_serial([(0, None, "k0")], run_serial,
                               first_error=marker, max_retries=0,
                               backoff_s=0.5, sleep=lambda _s: None)


def test_run_cases_max_retries_zero_raises_worker_error(monkeypatch,
                                                        tmp_path):
    def explode():
        raise ValueError("synthetic worker failure")

    _install_worker_failure(monkeypatch, explode)
    with pytest.warns(executor.SweepExecutionWarning):
        with pytest.raises(ValueError, match="synthetic worker failure"):
            run_cases(_specs(), jobs=2, cache=SweepCache(tmp_path),
                      max_retries=0)
