"""Bench-trajectory schema tests (repro.obs.bench) plus validation of
the checked-in results/BENCH_0003.json trajectory point."""

import json
import pathlib
import subprocess
import sys

import pytest

from repro.obs.bench import (
    BENCH_MODES,
    BENCH_SCHEMA,
    BENCH_SCHEMA_VERSION,
    build_payload,
    validate,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def experiment(**overrides):
    entry = {
        "case": "Mega-GPT-2/FC-2/TP8",
        "wall_clock_s": 2.5,
        "speedups": {"T3": 1.3, "T3-MCA": 1.33},
        "overlap_efficiency": {"Sequential": 0.0, "T3-MCA": 0.82},
    }
    entry.update(overrides)
    return entry


def chaos(**overrides):
    entry = {
        "scenarios": 240,
        "survival_rate": 1.0,
        "baseline_survival_rate": 0.6,
        "mttr_ns": 6004.0,
        "retained_speedup": 1.17,
        "invariant_violations": 0,
        "watchdog_hangs": 0,
    }
    entry.update(overrides)
    return entry


def policy_suite(**overrides):
    entry = {
        "static_exposed_ns": 517600.0,
        "adaptive_exposed_ns": 512600.0,
        "adaptive_wins": True,
    }
    entry.update(overrides)
    return entry


def policy(**overrides):
    entry = {
        "suites": {
            "degraded-link": policy_suite(),
            "straggler": policy_suite(static_exposed_ns=220600.0,
                                      adaptive_exposed_ns=216200.0),
        },
        "adaptive_wins": True,
        "geomean_exposed_reduction": 0.0147,
    }
    entry.update(overrides)
    return entry


def throughput(**overrides):
    entry = {
        "pure_sim_cases_per_second": 0.6,
        "profiled_cases_per_second": 0.4,
    }
    entry.update(overrides)
    return entry


def surrogate(**overrides):
    entry = {
        "n_scored": 144,
        "n_simulated": 31,
        "simulated_fraction": 0.2153,
        "train_mae_rel": 0.0247,
        "audit_mae_rel": 0.0173,
        "audit_geomean_rel": 0.0172,
        "audit_n": 20,
    }
    entry.update(overrides)
    return entry


def payload(**overrides):
    base = {
        "schema": BENCH_SCHEMA,
        "schema_version": BENCH_SCHEMA_VERSION,
        "mode": "fast",
        "captured_at": "2026-08-07T00:00:00+00:00",
        "host": {"platform": "linux", "python": "3.11"},
        "wall_clock_s": 10.0,
        "cases_per_second": 0.4,
        "throughput": throughput(),
        "chaos": chaos(),
        "policy": policy(),
        "surrogate": surrogate(),
        "experiments": [experiment()],
    }
    base.update(overrides)
    return base


def test_valid_payload_passes():
    assert validate(payload()) == []


def test_build_payload_round_trips():
    built = build_payload(
        mode="smoke",
        captured_at="2026-08-07T00:00:00+00:00",
        host={"platform": "linux"},
        wall_clock_s=1.0,
        cases_per_second=1.0,
        throughput=throughput(),
        chaos=chaos(),
        policy=policy(),
        surrogate=surrogate(),
        experiments=[experiment()],
    )
    assert built["schema"] == BENCH_SCHEMA
    assert validate(built) == []


def test_build_payload_raises_on_invalid():
    with pytest.raises(ValueError, match="mode"):
        build_payload(mode="warp", captured_at="t", host={},
                      wall_clock_s=1.0, cases_per_second=1.0,
                      throughput=throughput(), chaos=chaos(),
                      policy=policy(), surrogate=surrogate(),
                      experiments=[experiment()])


def test_non_dict_payload_rejected():
    assert validate([]) != []
    assert validate(None) != []


def test_missing_top_level_keys_reported():
    bad = payload()
    del bad["captured_at"], bad["experiments"]
    errors = validate(bad)
    assert any("captured_at" in error for error in errors)
    assert any("experiments" in error for error in errors)


def test_schema_identity_enforced():
    assert any("schema" in e for e in validate(payload(schema="other")))
    assert validate(payload(schema_version=BENCH_SCHEMA_VERSION + 1)) != []


def test_mode_must_be_known():
    for mode in BENCH_MODES:
        assert validate(payload(mode=mode)) == []
    assert validate(payload(mode="turbo")) != []


def test_wall_clock_must_be_positive_number():
    assert validate(payload(wall_clock_s=0)) != []
    assert validate(payload(wall_clock_s=True)) != []  # bools rejected
    assert validate(payload(wall_clock_s="3s")) != []


def test_cases_per_second_must_be_positive_number():
    assert validate(payload(cases_per_second=0)) != []
    assert validate(payload(cases_per_second=-1.0)) != []
    assert validate(payload(cases_per_second=True)) != []
    missing = payload()
    del missing["cases_per_second"]
    assert any("cases_per_second" in e for e in validate(missing))


def test_experiments_must_be_non_empty():
    assert validate(payload(experiments=[])) != []
    assert validate(payload(experiments="none")) != []


def test_experiment_field_validation():
    assert validate(payload(experiments=[experiment(case="")])) != []
    assert validate(payload(experiments=[experiment(speedups={})])) != []
    assert validate(payload(
        experiments=[experiment(speedups={"T3": -1.0})])) != []
    bad = experiment()
    del bad["overlap_efficiency"]
    errors = validate(payload(experiments=[bad]))
    assert any("overlap_efficiency" in error for error in errors)


def test_overlap_efficiency_bounded_to_unit_interval():
    assert validate(payload(experiments=[
        experiment(overlap_efficiency={"T3-MCA": 1.0})])) == []
    assert validate(payload(experiments=[
        experiment(overlap_efficiency={"T3-MCA": 1.2})])) != []
    assert validate(payload(experiments=[
        experiment(overlap_efficiency={"T3-MCA": -0.1})])) != []
    assert validate(payload(experiments=[
        experiment(overlap_efficiency={"T3-MCA": True})])) != []


def test_chaos_block_required():
    missing = payload()
    del missing["chaos"]
    assert any("chaos" in e for e in validate(missing))
    assert validate(payload(chaos="fine")) != []


def test_chaos_missing_keys_reported():
    bad = chaos()
    del bad["survival_rate"], bad["mttr_ns"]
    errors = validate(payload(chaos=bad))
    assert any("survival_rate" in error for error in errors)
    assert any("mttr_ns" in error for error in errors)


def test_chaos_scenarios_must_be_positive_int():
    assert validate(payload(chaos=chaos(scenarios=0))) != []
    assert validate(payload(chaos=chaos(scenarios=2.5))) != []
    assert validate(payload(chaos=chaos(scenarios=True))) != []


def test_chaos_rates_bounded_to_unit_interval():
    assert validate(payload(chaos=chaos(survival_rate=1.2))) != []
    assert validate(payload(chaos=chaos(baseline_survival_rate=-0.1))) != []
    assert validate(payload(chaos=chaos(survival_rate=0.0,
                                        baseline_survival_rate=0.0))) == []


def test_chaos_mttr_and_retained_speedup_nullable():
    # Null is legal: a slice where no scenario needed recovery.
    assert validate(payload(chaos=chaos(mttr_ns=None,
                                        retained_speedup=None))) == []
    assert validate(payload(chaos=chaos(mttr_ns=-1.0))) != []
    assert validate(payload(chaos=chaos(retained_speedup=0))) != []


def test_chaos_violation_counts_non_negative_ints():
    assert validate(payload(chaos=chaos(invariant_violations=-1))) != []
    assert validate(payload(chaos=chaos(watchdog_hangs=1.5))) != []
    assert validate(payload(chaos=chaos(invariant_violations=2,
                                        watchdog_hangs=1))) == []


def test_policy_block_required():
    missing = payload()
    del missing["policy"]
    assert any("policy" in e for e in validate(missing))
    assert validate(payload(policy="adaptive")) != []


def test_policy_missing_keys_reported():
    bad = policy()
    del bad["suites"], bad["geomean_exposed_reduction"]
    errors = validate(payload(policy=bad))
    assert any("suites" in error for error in errors)
    assert any("geomean_exposed_reduction" in error for error in errors)


def test_policy_suites_must_be_non_empty_objects():
    assert validate(payload(policy=policy(suites={}))) != []
    assert validate(payload(policy=policy(
        suites={"straggler": "fine"}))) != []
    incomplete = policy_suite()
    del incomplete["adaptive_exposed_ns"]
    errors = validate(payload(policy=policy(
        suites={"straggler": incomplete})))
    assert any("adaptive_exposed_ns" in error for error in errors)


def test_policy_suite_field_validation():
    assert validate(payload(policy=policy(suites={
        "straggler": policy_suite(static_exposed_ns=-1.0)}))) != []
    assert validate(payload(policy=policy(suites={
        "straggler": policy_suite(adaptive_wins="yes")}))) != []
    # Zero exposure is legal (a fully-hidden suite).
    assert validate(payload(policy=policy(suites={
        "straggler": policy_suite(static_exposed_ns=0,
                                  adaptive_exposed_ns=0,
                                  adaptive_wins=False)}))) == []


def test_throughput_block_required():
    missing = payload()
    del missing["throughput"]
    assert any("throughput" in e for e in validate(missing))
    assert validate(payload(throughput="fast")) != []


def test_throughput_fields_must_be_positive_numbers():
    assert validate(payload(throughput=throughput(
        pure_sim_cases_per_second=0))) != []
    assert validate(payload(throughput=throughput(
        profiled_cases_per_second=-1.0))) != []
    assert validate(payload(throughput=throughput(
        pure_sim_cases_per_second=True))) != []
    incomplete = throughput()
    del incomplete["profiled_cases_per_second"]
    errors = validate(payload(throughput=incomplete))
    assert any("profiled_cases_per_second" in error for error in errors)


def test_surrogate_block_required():
    missing = payload()
    del missing["surrogate"]
    assert any("surrogate" in e for e in validate(missing))
    assert validate(payload(surrogate="calibrated")) != []


def test_surrogate_counts_and_fraction_validated():
    assert validate(payload(surrogate=surrogate(n_scored=0))) != []
    assert validate(payload(surrogate=surrogate(n_simulated=-1))) != []
    assert validate(payload(surrogate=surrogate(n_simulated=2.5))) != []
    assert validate(payload(surrogate=surrogate(
        simulated_fraction=1.5))) != []
    # A zero-simulation point (pre-fitted model) is representable.
    assert validate(payload(surrogate=surrogate(
        n_simulated=0, simulated_fraction=0.0))) == []


def test_surrogate_error_fields_validated():
    assert validate(payload(surrogate=surrogate(
        audit_geomean_rel=-0.1))) != []
    assert validate(payload(surrogate=surrogate(
        train_mae_rel=True))) != []
    incomplete = surrogate()
    del incomplete["audit_n"]
    errors = validate(payload(surrogate=incomplete))
    assert any("audit_n" in error for error in errors)
    # Errors above 1.0 are representable (a bad fit is reportable; CI's
    # assertion, not the schema's, is the quality gate).
    assert validate(payload(surrogate=surrogate(
        audit_mae_rel=2.0))) == []


def test_policy_verdict_and_reduction_validation():
    assert validate(payload(policy=policy(adaptive_wins="true"))) != []
    # A regression (negative reduction) is representable — the gate on
    # winning is CI's assertion, not the schema's.
    assert validate(payload(policy=policy(adaptive_wins=False,
                            geomean_exposed_reduction=-0.05))) == []
    assert validate(payload(policy=policy(
        geomean_exposed_reduction=1.0))) != []
    assert validate(payload(policy=policy(
        geomean_exposed_reduction=True))) != []


def test_smoke_capture_populates_cases_per_second(tmp_path):
    """End-to-end: a smoke bench capture records positive throughput
    figures (pure-sim and profiled cases/second) plus the chaos
    survival, overlap-policy and surrogate metrics, and validates under
    schema v5."""
    out = tmp_path / "bench.json"
    subprocess.run(
        [sys.executable, str(REPO_ROOT / "scripts" / "bench.py"),
         "--smoke", "--out", str(out)],
        check=True, capture_output=True, timeout=600)
    data = json.loads(out.read_text())
    assert validate(data) == []
    assert data["mode"] == "smoke"
    assert data["cases_per_second"] > 0
    assert data["cases_per_second"] == pytest.approx(
        len(data["experiments"]) / data["wall_clock_s"], rel=0.05)
    assert data["throughput"]["profiled_cases_per_second"] == \
        data["cases_per_second"]
    assert data["throughput"]["pure_sim_cases_per_second"] > 0
    assert data["chaos"]["scenarios"] >= 60
    assert data["chaos"]["survival_rate"] >= 0.95
    assert data["chaos"]["invariant_violations"] == 0
    assert data["chaos"]["watchdog_hangs"] == 0
    assert data["policy"]["adaptive_wins"] is True
    assert set(data["policy"]["suites"]) >= {"degraded-link", "straggler"}
    assert data["surrogate"]["n_scored"] >= data["surrogate"]["n_simulated"]
    assert data["surrogate"]["audit_n"] >= 1


def test_checked_in_trajectory_point_is_valid():
    path = REPO_ROOT / "results" / "BENCH_0003.json"
    data = json.loads(path.read_text())
    assert validate(data) == []
    assert data["mode"] == "fast"
    assert data["cases_per_second"] > 0
    assert data["experiments"], "trajectory point has no experiments"
    for entry in data["experiments"]:
        assert 0.0 <= entry["overlap_efficiency"]["T3-MCA"] <= 1.0
        assert "hidden_comm_ns" in entry
    assert data["chaos"]["scenarios"] >= 200
    assert data["chaos"]["survival_rate"] >= 0.95
    assert data["chaos"]["invariant_violations"] == 0
    assert data["chaos"]["watchdog_hangs"] == 0
    assert data["policy"]["adaptive_wins"] is True
    assert data["policy"]["geomean_exposed_reduction"] > 0
    for suite in ("degraded-link", "straggler"):
        assert data["policy"]["suites"][suite]["adaptive_wins"] is True
    # v5: the engine-throughput split and the surrogate audit block.
    assert data["throughput"]["profiled_cases_per_second"] == \
        data["cases_per_second"]
    assert data["throughput"]["pure_sim_cases_per_second"] > 0
    assert data["surrogate"]["simulated_fraction"] <= 0.9
    assert data["surrogate"]["audit_geomean_rel"] <= 0.05
