"""Tests for the ``runner trace`` subcommand and ``--trace`` plumbing."""

import json

import pytest

from repro.analysis.trace import TraceRecorder
from repro.config import table1_system
from repro.experiments import runner
from repro.gpu.wavefront import GEMMShape
from repro.interconnect.topology import RingTopology
from repro.obs import MetricsRegistry
from repro.sim import Environment
from repro.t3.fusion import FusedGEMMRS
from repro.trace.cli import main as trace_cli
from repro.trace.passes import PASSES


@pytest.fixture(scope="module")
def trace_file(tmp_path_factory):
    env = Environment()
    registry = MetricsRegistry()
    env.obs = registry
    env.trace = TraceRecorder(record_dram=True)
    system = table1_system(n_gpus=4).with_fidelity(quantum_bytes=16 * 1024)
    topo = RingTopology(env, system)
    FusedGEMMRS(topo, GEMMShape(1024, 512, 256), n_cus=4).run()
    path = tmp_path_factory.mktemp("cli") / "run.trace.json"
    env.trace.save(str(path), registry=registry)
    return path


# ----------------------------------------------------------- trace CLI

def test_default_runs_every_pass(trace_file, capsys):
    assert trace_cli([str(trace_file)]) == 0
    out = capsys.readouterr().out
    assert "compute" in out and "critical path" in out


def test_list_passes_needs_no_file(capsys):
    assert trace_cli(["--list-passes"]) == 0
    out = capsys.readouterr().out
    for name in PASSES:
        assert name in out


def test_json_to_stdout(trace_file, capsys):
    assert trace_cli([str(trace_file), "--pass", "summary",
                      "--json", "-"]) == 0
    out = capsys.readouterr().out
    payload = json.loads(out[out.index("{"):])
    assert payload["trace"] == str(trace_file)
    assert [p["pass"] for p in payload["passes"]] == ["summary"]


def test_json_to_file_creates_parents(trace_file, tmp_path, capsys):
    target = tmp_path / "deep" / "dir" / "report.json"
    assert trace_cli([str(trace_file), "--pass", "decomposition",
                      "--json", str(target)]) == 0
    capsys.readouterr()
    payload = json.loads(target.read_text())
    assert payload["passes"][0]["pass"] == "decomposition"
    assert payload["passes"][0]["hidden_ns"] >= 0


def test_timeline_flag_renders(trace_file, capsys):
    assert trace_cli([str(trace_file), "--pass", "summary",
                      "--timeline", "--width", "80"]) == 0
    out = capsys.readouterr().out
    assert "(us)" in out


def test_tracks_filter_and_window(trace_file, capsys):
    assert trace_cli([str(trace_file), "--pass", "summary", "--timeline",
                      "--tracks", "dma", "--window", "0:20"]) == 0
    out = capsys.readouterr().out
    assert ".dma" in out


def test_missing_file_is_an_error(capsys):
    assert trace_cli(["/nonexistent/run.trace.json"]) == 2
    assert "no such trace file" in capsys.readouterr().err


def test_unknown_pass_is_an_error(trace_file, capsys):
    assert trace_cli([str(trace_file), "--pass", "nonsense"]) == 2
    assert "nonsense" in capsys.readouterr().err


def test_unmatched_tracks_is_an_error(trace_file, capsys):
    assert trace_cli([str(trace_file), "--pass", "summary", "--timeline",
                      "--tracks", "zzz"]) == 2
    assert "no tracks match" in capsys.readouterr().err


def test_bad_window_rejected(trace_file, capsys):
    with pytest.raises(SystemExit):
        trace_cli([str(trace_file), "--window", "20:0"])
    assert "LO < HI" in capsys.readouterr().err


# ------------------------------------------------- runner integration

def test_runner_delegates_trace_subcommand(trace_file, capsys):
    assert runner.main(["trace", str(trace_file),
                        "--pass", "summary"]) == 0
    assert "spans by category" in capsys.readouterr().out


def test_runner_trace_rejects_all(capsys):
    assert runner.main(["all", "--trace", "out.json"]) == 2
    assert "single experiment" in capsys.readouterr().err


def test_runner_trace_rejects_unsupported_experiment(capsys):
    assert runner.main(["figure16", "--trace", "out.json"]) == 2
    err = capsys.readouterr().err
    assert "not supported" in err and "scaleout" in err


def test_trace_capable_covers_wired_experiments():
    capable = {name for name in runner.EXPERIMENTS
               if runner._trace_capable(name)}
    assert {"scaleout", "chaos", "fault-sweep"} <= capable
    assert "figure16" not in capable
