"""Tests for the Section 7 extensions: split-K tracking and fused
all-to-all."""

import pytest

from repro.config import table1_system
from repro.gpu.wavefront import GEMMShape
from repro.interconnect.topology import FullyConnectedTopology, RingTopology
from repro.sim import Environment
from repro.t3.address_map import AddressSpaceConfig, RouteKind
from repro.t3.fusion import FusedGEMMRS


def make_env(n_gpus=4, topo_cls=RingTopology):
    env = Environment()
    system = table1_system(n_gpus=n_gpus).with_fidelity(
        quantum_bytes=16 * 1024)
    return env, topo_cls(env, system)


# --------------------------------------------------------- split-K (7.7)

def test_split_k_expectations_in_address_map():
    config = AddressSpaceConfig.ring_reduce_scatter(rank=0, n_gpus=4,
                                                    split_k=3)
    # Chunk (rank+2) receives the upstream neighbour's fine-grained
    # remote stores: split_k local + split_k incoming.
    assert config.route(2).expected_updates == 6
    # DMA-fed chunks: split_k local + one reduced DMA contribution.
    assert config.route(3).expected_updates == 4
    assert config.route(0).expected_updates == 4  # own chunk (DMA-fed)


def test_split_k_n2_own_chunk_is_remote_fed():
    config = AddressSpaceConfig.ring_reduce_scatter(rank=1, n_gpus=2,
                                                    split_k=2)
    # With two GPUs the peer remote-maps straight into our own chunk.
    assert config.route(1).expected_updates == 4


def test_split_k_fused_run_completes():
    env, topo = make_env()
    fused = FusedGEMMRS(topo, GEMMShape(1024, 512, 256), n_cus=4, split_k=2)
    result = fused.run()
    assert len(result.per_rank_terminal) == 4
    # Local GEMM updates double: split_k partial updates per element.
    chunk = fused.grids[0].chunk_bytes_total(0)
    for gpu in topo.gpus:
        assert gpu.mc.counters.get("gemm.update") == pytest.approx(
            2 * 3 * chunk)


def test_split_k_triggers_exactly_once_per_chunk():
    """Section 7.7's hazard: naive tracking would fire the DMA after the
    first of the split-K updates; the deduced update count prevents it."""
    env, topo = make_env()
    fused = FusedGEMMRS(topo, GEMMShape(1024, 512, 256), n_cus=4, split_k=3)
    fused.run()
    for rank, gpu in enumerate(topo.gpus):
        expected = len(fused.address_configs[rank].dma_chunks())
        assert len(gpu.dma.triggered_commands) == expected


def test_split_k_validation():
    env, topo = make_env()
    with pytest.raises(ValueError):
        FusedGEMMRS(topo, GEMMShape(512, 512, 128), split_k=0)
    with pytest.raises(ValueError):
        AddressSpaceConfig.ring_reduce_scatter(0, 4, split_k=0)
    env2, topo2 = make_env(topo_cls=FullyConnectedTopology)
    with pytest.raises(ValueError, match="ring-RS"):
        FusedGEMMRS(topo2, GEMMShape(512, 512, 128),
                    collective="direct-rs", split_k=2)


# ------------------------------------------------------- all-to-all (7.2)

def test_all_to_all_address_map():
    config = AddressSpaceConfig.all_to_all(rank=1, n_gpus=4)
    assert config.remote_chunks() == [0, 2, 3]
    assert config.route(0).op == "store"
    assert config.route(0).dst_gpu == 0
    assert config.route(1).kind is RouteKind.LOCAL_TERMINAL
    assert config.route(1).expected_updates == 1


def test_all_to_all_fused_run():
    env, topo = make_env(topo_cls=FullyConnectedTopology)
    fused = FusedGEMMRS(topo, GEMMShape(1024, 512, 256), n_cus=4,
                        collective="all-to-all")
    result = fused.run()
    assert len(result.per_rank_terminal) == 4
    chunk = fused.grids[0].chunk_bytes_total(0)
    for gpu in topo.gpus:
        # Exchanged data arrives as plain stores, not NMC updates.
        assert gpu.mc.counters.get("a2a.write") == pytest.approx(3 * chunk)
        assert gpu.mc.counters.get("a2a.update") == 0
        # Own chunk written locally once (no reduction).
        assert gpu.mc.counters.get("gemm.write") == pytest.approx(chunk)
        assert gpu.dma.programmed_commands == []


def test_all_to_all_no_ccdwl_penalty():
    """Stores are serviced at CCDL, not the doubled CCDWL — the NMC
    penalty only applies to reducing collectives."""
    from repro.memory.dram import HBMChannel
    from repro.memory.arbiter import ComputePriorityPolicy
    from repro.memory.request import AccessKind, MemRequest, Stream

    env = Environment()
    channel = HBMChannel(env, 0, bandwidth_bytes_per_ns=100, queue_depth=4,
                         ccdwl_factor=2.0, policy=ComputePriorityPolicy())
    store = MemRequest(AccessKind.WRITE, Stream.COMM, 1000, "a2a")
    update = MemRequest(AccessKind.UPDATE, Stream.COMM, 1000, "rs")
    assert channel.service_time(store) * 2 == channel.service_time(update)


def test_all_to_all_route_op_validation():
    from repro.t3.address_map import ChunkRoute

    with pytest.raises(ValueError, match="op"):
        ChunkRoute(0, RouteKind.LOCAL_TERMINAL, op="xor")
