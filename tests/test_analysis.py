"""Unit tests for repro.analysis (metrics + traffic reduction)."""

import pytest

from repro.analysis.metrics import SpeedupTable, speedup
from repro.analysis.traffic import DramBreakdown, collect_breakdown
from repro.config import table1_system
from repro.interconnect.topology import RingTopology
from repro.memory.request import AccessKind, Stream
from repro.sim import Environment


# ------------------------------------------------------------------ metrics

def test_speedup_basic():
    assert speedup(200, 100) == 2.0
    with pytest.raises(ValueError):
        speedup(0, 1)
    with pytest.raises(ValueError):
        speedup(1, -1)


def test_speedup_table_reductions():
    table = SpeedupTable()
    table.add("a", "T3", 1.2)
    table.add("a", "MCA", 1.3)
    table.add("b", "T3", 1.2)
    table.add("b", "MCA", 1.4)
    assert table.configs() == ["T3", "MCA"]
    assert table.geomean("T3") == pytest.approx(1.2)
    assert table.max("MCA") == pytest.approx(1.4)
    summary = table.summary()
    assert summary["MCA"][0] == pytest.approx((1.3 * 1.4) ** 0.5)


def test_speedup_table_render_contains_rows():
    table = SpeedupTable()
    table.add("case-1", "T3", 1.25)
    text = table.render("My Title")
    assert "My Title" in text
    assert "case-1" in text
    assert "1.250" in text
    assert "geomean" in text and "max" in text


def test_speedup_table_rejects_nonpositive():
    table = SpeedupTable()
    with pytest.raises(ValueError):
        table.add("x", "T3", 0.0)


# ------------------------------------------------------------------ traffic

def test_dram_breakdown_totals():
    b = DramBreakdown(gemm_read=10, gemm_write=20, rs_read=30,
                      rs_write=40, ag_read=50, ag_write=60)
    assert b.total == 210
    assert b.reads == 90
    assert b.writes == 120
    assert b.as_dict()["rs_write"] == 40


def test_collect_breakdown_averages_and_merges_updates():
    env = Environment()
    system = table1_system(n_gpus=2).with_fidelity(quantum_bytes=1024)
    topo = RingTopology(env, system)
    topo.gpus[0].mc.submit_bulk(AccessKind.WRITE, Stream.COMPUTE, 1000,
                                "gemm")
    topo.gpus[0].mc.submit_bulk(AccessKind.UPDATE, Stream.COMPUTE, 500,
                                "gemm")
    topo.gpus[1].mc.submit_bulk(AccessKind.READ, Stream.COMM, 2000, "rs")
    env.run()
    breakdown = collect_breakdown(topo.gpus)
    # Averaged over the two GPUs; updates fold into writes.
    assert breakdown.gemm_write == pytest.approx(750)
    assert breakdown.rs_read == pytest.approx(1000)


def test_collect_breakdown_requires_gpus():
    with pytest.raises(ValueError):
        collect_breakdown([])
