"""Failure-path tests for the simulation engine (repro.sim.engine):
watchdog limits, the diagnostic dump, deadlock detection, double
triggers and exception propagation."""

import pytest

from repro.sim import Environment, SimulationError


def spinner(env):
    """A process that never finishes: one event per ns, forever."""
    while True:
        yield env.timeout(1.0)


# ------------------------------------------------------------------ watchdog

def test_watchdog_max_events_converts_spin_into_error():
    env = Environment()
    env.configure_watchdog(max_events=100)
    env.process(spinner(env), name="spinner")
    with pytest.raises(SimulationError, match="watchdog: .* events fired"):
        env.run()
    assert env.events_fired == 101  # the limit-breaking event was counted


def test_watchdog_max_sim_ns_converts_runaway_clock_into_error():
    env = Environment()
    env.configure_watchdog(max_sim_ns=50.0)
    env.process(spinner(env), name="spinner")
    with pytest.raises(SimulationError,
                       match=r"watchdog: simulated time reached"):
        env.run()
    assert env.now > 50.0


def test_watchdog_limits_do_not_fire_on_healthy_runs():
    env = Environment()
    env.configure_watchdog(max_events=1000, max_sim_ns=1e9)

    def worker(env):
        yield env.timeout(10.0)
        return "done"

    proc = env.process(worker(env))
    assert env.run_until_process(proc) == "done"


@pytest.mark.parametrize("kwargs", [
    {"max_events": 0},
    {"max_events": -5},
    {"max_sim_ns": 0.0},
    {"max_sim_ns": -1.0},
])
def test_watchdog_rejects_non_positive_limits(kwargs):
    with pytest.raises(SimulationError):
        Environment().configure_watchdog(**kwargs)


# ------------------------------------------------------------ diagnostic dump

def test_dump_lists_pending_events_and_blocked_processes():
    env = Environment()
    gate = env.event()  # never fired

    def waiter(env):
        yield gate

    env.process(waiter(env), name="stuck-waiter")
    env.timeout(123.0)
    env.run(until=1.0)  # boot the process, leave the timeout pending

    dump = env.diagnostic_dump()
    assert "--- simulation diagnostic dump ---" in dump
    assert "pending events: 1" in dump
    assert "pending t=123.0" in dump
    assert "unfinished processes: 1" in dump
    assert "blocked stuck-waiter" in dump


def test_dump_truncates_long_pending_lists():
    env = Environment()
    for _ in range(25):
        env.timeout(1.0)
    dump = env.diagnostic_dump(max_pending=10)
    assert "... and 15 more" in dump


def test_dump_includes_registered_component_diagnostics():
    env = Environment()
    env.add_diagnostic(lambda: "widget: 3 gizmos outstanding")
    assert "widget: 3 gizmos outstanding" in env.diagnostic_dump()


def test_watchdog_error_message_carries_the_dump():
    env = Environment()
    env.configure_watchdog(max_events=10)
    env.add_diagnostic(lambda: "component-state-marker")
    env.process(spinner(env), name="spinner")
    with pytest.raises(SimulationError) as excinfo:
        env.run()
    message = str(excinfo.value)
    assert "simulation diagnostic dump" in message
    assert "component-state-marker" in message
    assert "blocked spinner" in message


# ----------------------------------------------------------- deadlock & misc

def test_deadlock_error_names_process_and_dumps_state():
    env = Environment()
    gate = env.event()

    def waiter(env):
        yield gate

    proc = env.process(waiter(env), name="doomed")
    with pytest.raises(SimulationError) as excinfo:
        env.run_until_process(proc)
    message = str(excinfo.value)
    assert "deadlock" in message
    assert "doomed" in message
    assert "simulation diagnostic dump" in message


def test_double_trigger_raises():
    env = Environment()
    event = env.event()
    event.succeed()
    with pytest.raises(SimulationError, match="already been triggered"):
        event.succeed()
    with pytest.raises(SimulationError, match="already been triggered"):
        event.fail(RuntimeError("too late"))


def test_process_exception_propagates_through_run_until_process():
    env = Environment()

    def exploder(env):
        yield env.timeout(1.0)
        raise ValueError("boom at t=1")

    proc = env.process(exploder(env))
    # A subscriber routes the exception through the fail path (the
    # process event fails instead of the exception escaping the loop).
    proc.add_callback(lambda ev: None)
    with pytest.raises(ValueError, match="boom at t=1"):
        env.run_until_process(proc)
    assert proc.triggered and not proc.ok


def test_unwatched_process_exception_escapes_the_event_loop():
    env = Environment()

    def exploder(env):
        yield env.timeout(1.0)
        raise ValueError("unhandled")

    env.process(exploder(env))
    with pytest.raises(ValueError, match="unhandled"):
        env.run()


def test_events_fired_counts_every_step():
    env = Environment()
    for _ in range(5):
        env.timeout(1.0)
    env.run()
    assert env.events_fired == 5
