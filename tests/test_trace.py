"""Tests for the Chrome-trace exporter (repro.analysis.trace)."""

import json

import pytest

from repro.analysis.trace import TraceRecorder, TraceSpan
from repro.config import table1_system
from repro.gpu.wavefront import GEMMShape
from repro.interconnect.topology import RingTopology
from repro.sim import Environment
from repro.t3.fusion import FusedGEMMRS


def traced_fused_run(record_dram=False):
    env = Environment()
    env.trace = TraceRecorder(record_dram=record_dram)
    system = table1_system(n_gpus=4).with_fidelity(quantum_bytes=16 * 1024)
    topo = RingTopology(env, system)
    fused = FusedGEMMRS(topo, GEMMShape(1024, 512, 256), n_cus=4)
    fused.run()
    return env.trace


def test_span_validation():
    with pytest.raises(ValueError):
        TraceSpan("bad", "cat", start_ns=10, end_ns=5, track="t")


def test_recorder_collects_fused_run_spans():
    trace = traced_fused_run()
    summary = trace.summary()
    assert summary["kernel"] == 4          # one GEMM per GPU
    assert summary["dma"] == 4 * 2         # N-2 DMA commands per GPU
    assert summary["link"] > 0
    assert "dram" not in summary           # off by default


def test_dram_spans_optional():
    trace = traced_fused_run(record_dram=True)
    assert len(trace.by_category("dram")) > 0


def test_chrome_events_structure():
    trace = traced_fused_run()
    events = trace.to_chrome_events()
    complete = [e for e in events if e["ph"] == "X"]
    meta = [e for e in events if e["ph"] == "M"]
    assert len(complete) == len(trace)
    assert meta, "thread-name metadata missing"
    for event in complete:
        assert event["dur"] > 0
        assert {"name", "cat", "ts", "pid", "tid"} <= set(event)
    # Kernel spans live in the 'compute' group on per-GPU tracks.
    kernel_tracks = {
        e["tid"] for e in complete if e["cat"] == "kernel"
    }
    assert len(kernel_tracks) == 4


def test_save_round_trips_as_json(tmp_path):
    trace = traced_fused_run()
    path = tmp_path / "trace.json"
    trace.save(str(path))
    payload = json.loads(path.read_text())
    assert "traceEvents" in payload
    assert len(payload["traceEvents"]) >= len(trace)


def test_tracing_off_by_default_costs_nothing():
    env = Environment()
    assert env.trace is None
    system = table1_system(n_gpus=4).with_fidelity(quantum_bytes=16 * 1024)
    topo = RingTopology(env, system)
    fused = FusedGEMMRS(topo, GEMMShape(512, 512, 128), n_cus=4)
    fused.run()  # must not crash without a recorder


def test_dma_spans_carry_chunk_args():
    trace = traced_fused_run()
    for span in trace.by_category("dma"):
        assert span.args is not None
        assert "chunk" in span.args and "bytes" in span.args


def test_zero_length_spans_export_as_instants():
    trace = TraceRecorder()
    trace.span("tick", "marker", start_ns=5.0, end_ns=5.0, track="t")
    events = trace.to_chrome_events()
    instants = [e for e in events if e["ph"] == "i"]
    assert len(instants) == 1
    assert instants[0]["s"] == "t"
    assert not [e for e in events if e["ph"] == "X"]


def test_events_carry_exact_ns_args():
    trace = traced_fused_run()
    events = trace.to_chrome_events()
    for event in events:
        if event["ph"] != "X":
            continue
        args = event["args"]
        assert args["end_ns"] - args["start_ns"] > 0
        assert event["ts"] == pytest.approx(args["start_ns"] / 1e3)


def test_save_is_byte_deterministic(tmp_path):
    trace = traced_fused_run(record_dram=True)
    first = tmp_path / "a.json"
    second = tmp_path / "b" / "nested.json"  # parent dirs auto-created
    trace.save(str(first))
    trace.save(str(second))
    assert first.read_bytes() == second.read_bytes()


def test_load_round_trips_spans(tmp_path):
    trace = traced_fused_run(record_dram=True)
    path = tmp_path / "trace.json"
    trace.save(str(path))
    loaded = TraceRecorder.load(str(path))
    assert sorted(s.sort_key() for s in loaded.spans) == \
        sorted(s.sort_key() for s in trace.spans)
    resaved = tmp_path / "again.json"
    loaded.save(str(resaved))
    assert resaved.read_bytes() == path.read_bytes()
