"""Observational-transparency and fault-incidence telemetry tests.

The registry's contract: attaching it changes *nothing* the simulator
computes — results and event counts are bit-identical with telemetry on
or off — while a populated registry reports what actually happened,
including how many planned faults were observed firing."""

import pytest

from repro.config import table1_system
from repro.experiments import sublayer_sweep
from repro.faults import ComputeSlowdown, FaultInjector, FaultPlan
from repro.models import zoo
from repro.obs import MetricsRegistry

SYSTEM = table1_system(n_gpus=4)
SUB = zoo.t_nlg().sublayer("OP", 4)
CONFIGS = ["Sequential", "T3-MCA"]


def simulate(obs_sink=None, faults=None):
    return sublayer_sweep.simulate_case(
        SUB, sublayer_sweep.FAST_SCALE, SYSTEM, CONFIGS,
        obs_sink=obs_sink, faults=faults)


# ------------------------------------------------------------ transparency

def test_results_identical_with_registry_attached():
    plain = simulate()
    sink = {}
    observed = simulate(obs_sink=sink)
    assert observed.times == plain.times
    assert observed.traffic == plain.traffic
    assert sorted(sink) == sorted(CONFIGS)


def test_registries_populated_per_config():
    sink = {}
    simulate(obs_sink=sink)
    mca = sink["T3-MCA"]
    assert {"compute", "dma", "dram", "gemm", "link",
            "tracker", "trigger"} <= set(mca.components())
    # Fused run: the Tracker completed regions and the trigger fired DMAs.
    assert mca.counter_total("tracker", "regions_completed") > 0
    assert mca.counter_total("trigger", "dma_fires") > 0
    # Sequential never programs the Tracker.
    assert sink["Sequential"].counter_total(
        "tracker", "regions_completed") == 0


def test_arbiter_telemetry_present_for_mca():
    sink = {}
    simulate(obs_sink=sink)
    arbiter = sink["T3-MCA"].scopes("arbiter")
    assert arbiter, "MCA run recorded no arbiter scopes"
    grants = sum(
        value for scope in arbiter
        for name, value in scope.counters.items()
        if name.startswith("comm_grants.") or name == "compute_grants")
    assert grants > 0


# --------------------------------------------------- fault-incidence obs

def test_observed_incidence_counts_straggler_windows():
    plan = FaultPlan(seed=7, compute=(
        ComputeSlowdown(gpu_id=1, factor=2.0),))
    planned = plan.planned_incidence()
    assert planned["straggler_windows"] == 1

    sink = {}
    result = simulate(obs_sink=sink, faults=plan)
    assert result.times["Sequential"] > 0

    # The injector in each simulated config saw the slowdown fire; its
    # obs mirror puts the same counts in the per-GPU faults scope.
    mca = sink["T3-MCA"]
    fired = mca.counter_total("faults", "straggler_slowdowns")
    assert fired > 0


def test_injector_counts_mirror_into_registry():
    plan = FaultPlan(compute=(ComputeSlowdown(gpu_id=0, factor=1.5),))
    injector = FaultInjector(plan)
    registry = MetricsRegistry()
    injector.bind_obs(registry)
    factor = injector.compute_factor(gpu_id=0, now=0.0)
    assert factor == pytest.approx(1.5)
    incidence = injector.observed_incidence()
    assert incidence["straggler_slowdowns"] == 1
    assert registry.counter_total("faults", "straggler_slowdowns") == 1
    # Un-matched GPU: no fault, no count.
    injector.compute_factor(gpu_id=3, now=0.0)
    assert injector.observed_incidence()["straggler_slowdowns"] == 1


def test_observed_incidence_without_registry():
    plan = FaultPlan(compute=(ComputeSlowdown(factor=2.0),))
    injector = FaultInjector(plan)
    injector.compute_factor(gpu_id=0, now=0.0)
    # Counts accumulate even when no registry is bound.
    assert injector.observed_incidence() == {"straggler_slowdowns": 1}


def test_empty_plan_observes_nothing():
    injector = FaultInjector(FaultPlan())
    injector.compute_factor(gpu_id=0, now=0.0)
    assert injector.observed_incidence() == {}
    assert FaultPlan().planned_incidence() == {
        "straggler_windows": 0, "link_faults": 0,
        "dma_fault_budget": 0, "tracker_pressure_rules": 0}
