"""Tests for the fault-injection harness and the invariant checker
(repro.faults): plans, the injector's determinism, the injection seams,
transparency of the empty plan, and the fault-sweep experiment."""

import json

import pytest

from repro.config import TrackerConfig, table1_system
from repro.experiments import fault_sweep, sublayer_sweep
from repro.faults import (
    ANY,
    ComputeSlowdown,
    DMACompletionFault,
    FaultInjector,
    FaultPlan,
    InvariantChecker,
    InvariantViolation,
    LinkDegradation,
    TrackerPressure,
)
from repro.gpu.dma import DMACommand
from repro.interconnect.topology import RingTopology
from repro.memory.request import AccessKind, MemRequest, Stream
from repro.models import zoo
from repro.sim import Environment, SimulationError
from repro.t3.tracker import Tracker

#: cheap integration case: T-NLG OP at TP=4, fast-mode token scaling.
SYSTEM = table1_system(n_gpus=4)
SUB = zoo.t_nlg().sublayer("OP", 4)
CONFIGS = ["Sequential", "T3"]


def simulate(faults=None, check_invariants=False):
    return sublayer_sweep.simulate_case(
        SUB, sublayer_sweep.FAST_SCALE, SYSTEM, CONFIGS,
        faults=faults, check_invariants=check_invariants)


def update(wg, nbytes):
    return MemRequest(kind=AccessKind.UPDATE, stream=Stream.COMPUTE,
                      nbytes=nbytes, label="gemm", wg_id=wg)


# ------------------------------------------------------------------ FaultPlan

def test_plan_roundtrips_through_json():
    plan = FaultPlan(
        seed=42,
        compute=(ComputeSlowdown(gpu_id=2, factor=1.5, start_ns=10.0,
                                 end_ns=20.0),),
        links=(LinkDegradation(src=0, dst=ANY, bandwidth_factor=0.5,
                               stall_ns=5.0, stall_probability=0.25),),
        dma=(DMACompletionFault(action="delay", delay_ns=100.0,
                                max_events=3),),
        tracker=(TrackerPressure(gpu_id=1, evict_every=4),),
    )
    clone = FaultPlan.from_dict(json.loads(json.dumps(plan.to_dict())))
    assert clone == plan
    assert not plan.is_empty
    assert FaultPlan().is_empty


def test_plan_accepts_lists_and_type_checks():
    plan = FaultPlan(compute=[ComputeSlowdown(factor=2.0)])
    assert isinstance(plan.compute, tuple)
    with pytest.raises(TypeError, match="ComputeSlowdown"):
        FaultPlan(compute=(LinkDegradation(),))


@pytest.mark.parametrize("bad", [
    lambda: ComputeSlowdown(factor=0.5),
    lambda: ComputeSlowdown(start_ns=-1.0),
    lambda: ComputeSlowdown(start_ns=5.0, end_ns=5.0),
    lambda: LinkDegradation(bandwidth_factor=0.0),
    lambda: LinkDegradation(bandwidth_factor=1.5),
    lambda: LinkDegradation(stall_probability=2.0),
    lambda: DMACompletionFault(action="explode"),
    lambda: DMACompletionFault(action="delay", delay_ns=0.0),
    lambda: DMACompletionFault(max_events=0),
    lambda: TrackerPressure(evict_every=0),
])
def test_plan_validation_rejects_bad_entries(bad):
    with pytest.raises((ValueError, TypeError)):
        bad()


# --------------------------------------------------------------- FaultInjector

def test_empty_plan_returns_exact_identity_values():
    injector = FaultInjector(FaultPlan())
    assert injector.compute_factor(0, 0.0) == 1.0
    assert injector.link_parameters(0, 1, 75.0, 700.0) == (75.0, 700.0)
    assert injector.transfer_stall(0, 1, 0.0) == 0.0
    assert injector.dma_completion_fault(0, "cmd") is None
    assert injector.tracker_eviction_due(0) is False
    assert injector.summary() == "no faults applied"


def test_injector_rejects_non_plan():
    with pytest.raises(TypeError, match="FaultPlan"):
        FaultInjector({"seed": 0})


def test_compute_factor_respects_gpu_and_window():
    plan = FaultPlan(compute=(
        ComputeSlowdown(gpu_id=1, factor=2.0, start_ns=100.0, end_ns=200.0),
    ))
    injector = FaultInjector(plan)
    assert injector.compute_factor(1, 150.0) == 2.0
    assert injector.compute_factor(1, 50.0) == 1.0     # before window
    assert injector.compute_factor(1, 200.0) == 1.0    # window is half-open
    assert injector.compute_factor(0, 150.0) == 1.0    # other GPU


def test_stall_draws_are_deterministic_and_order_independent():
    plan = FaultPlan(seed=7, links=(
        LinkDegradation(stall_ns=10.0, stall_probability=0.5),))
    a, b = FaultInjector(plan), FaultInjector(plan)
    # Same per-link draw sequences even when links are queried in a
    # different interleaving.
    seq_a = [a.transfer_stall(0, 1, 0.0) for _ in range(8)]
    b_other = [b.transfer_stall(2, 3, 0.0) for _ in range(8)]
    seq_b = [b.transfer_stall(0, 1, 0.0) for _ in range(8)]
    assert seq_a == seq_b
    assert any(seq_a) and not all(seq_a)  # probabilistic, seeded
    # A different seed produces a different decision sequence.
    c = FaultInjector(FaultPlan(seed=8, links=plan.links))
    assert [c.transfer_stall(0, 1, 0.0) for _ in range(8)] != seq_a


def test_dma_fault_budget_is_consumed():
    injector = FaultInjector(FaultPlan.dropped_dma(max_events=2))
    assert injector.dma_completion_fault(0, "x").action == "drop"
    assert injector.dma_completion_fault(1, "y").action == "drop"
    assert injector.dma_completion_fault(0, "z") is None
    assert injector.summary() == "dma-drop x2"


def test_dma_fault_filters_on_command_substring():
    plan = FaultPlan(dma=(DMACompletionFault(
        action="drop", command_substr="chunk2"),))
    injector = FaultInjector(plan)
    assert injector.dma_completion_fault(0, "rs.chunk1") is None
    assert injector.dma_completion_fault(0, "rs.chunk2") is not None


def test_tracker_pressure_counts_per_gpu():
    injector = FaultInjector(FaultPlan(tracker=(
        TrackerPressure(evict_every=3),)))
    due = [injector.tracker_eviction_due(0) for _ in range(6)]
    assert due == [False, False, True, False, False, True]
    # Counters are per (fault, gpu): GPU 1 starts fresh.
    assert injector.tracker_eviction_due(1) is False


# --------------------------------------------------------- invariant checker

def test_tracker_overshoot_is_a_violation():
    env = Environment()
    env.invariants = InvariantChecker(env)
    tracker = Tracker(TrackerConfig(), env=env, gpu_id=0)
    tracker.program_region(0, -1, expected_bytes=100)
    with pytest.raises(InvariantViolation, match="overshoot"):
        tracker.observe(update(0, 150))


def test_negative_credit_is_a_violation():
    env = Environment()
    env.invariants = InvariantChecker(env)
    tracker = Tracker(TrackerConfig(), env=env, gpu_id=0)
    tracker.program_region(0, -1, expected_bytes=100)
    # MemRequest itself rejects negative sizes, so exercise the credit
    # path directly — the checker is the backstop for internal bugs.
    with pytest.raises(InvariantViolation, match="monotonicity"):
        tracker._credit(0, -1, -10)


def test_double_fire_is_a_violation():
    env = Environment()
    checker = InvariantChecker(env)
    checker.on_trigger_fired("DMA command c0")
    with pytest.raises(InvariantViolation, match="single-fire"):
        checker.on_trigger_fired("DMA command c0")


def test_violation_message_carries_diagnostic_dump():
    env = Environment()
    checker = InvariantChecker(env)
    checker.on_trigger_fired("block b")
    with pytest.raises(InvariantViolation,
                       match="simulation diagnostic dump"):
        checker.on_trigger_fired("block b")


# -------------------------------------------------- integer-byte regression

def test_tracker_fractional_credit_never_fires_early():
    """Regression: float accumulation used to satisfy the old
    ``received >= expected - 1e-6`` epsilon before the last update."""
    tracker = Tracker(TrackerConfig())
    fired = []
    tracker.add_completion_listener(fired.append)
    tracker.program_region(0, -1, expected_bytes=100)
    # 1000 fractional credits that float-sum to ~99.9999999: integer
    # flooring keeps every one at zero credit.
    for _ in range(1000):
        tracker.observe(update(0, 0.0999999999))
    assert fired == []
    entry_set = tracker._set_for(0)
    assert entry_set[(0, -1)].received_bytes == 0
    # Whole bytes complete the region exactly at the threshold.
    tracker.observe(update(0, 99))
    assert fired == []
    tracker.observe(update(0, 1))
    assert fired == [(0, -1)]


def test_program_region_rounds_expected_bytes_to_int():
    tracker = Tracker(TrackerConfig())
    tracker.program_region(3, -1, expected_bytes=100.4)
    fired = []
    tracker.add_completion_listener(fired.append)
    tracker.observe(update(3, 100))
    assert fired == [(3, -1)]


# ------------------------------------------------------------ injection seams

def test_degraded_link_slows_only_matching_pipes():
    env = Environment()
    env.faults = FaultInjector(FaultPlan.degraded_link(0, ANY, 0.5))
    topo = RingTopology(env, SYSTEM)
    healthy = RingTopology(Environment(), SYSTEM)
    for key, pipe in topo.links.items():
        expected = healthy.links[key].bandwidth * (0.5 if key[0] == 0
                                                   else 1.0)
        assert pipe.bandwidth == expected
        assert pipe.endpoints == key


def test_duplicate_dma_completion_is_absorbed_exactly_once():
    env = Environment()
    env.invariants = InvariantChecker(env)
    env.faults = FaultInjector(FaultPlan(dma=(
        DMACompletionFault(action="duplicate"),)))
    topo = RingTopology(env, SYSTEM)
    src = topo.gpus[0]
    src.dma.program(DMACommand(command_id="c0", dst_gpu_id=3, chunk_id=0,
                               wg_slices=((0, 32 * 1024),)))
    done = src.dma.trigger("c0")
    env.run()
    assert done.fired                       # delivered exactly once
    assert src.dma.duplicates_absorbed == 1
    assert env.invariants.duplicates_absorbed == 1


def test_delayed_dma_completion_arrives_late():
    def finish_time(plan):
        env = Environment()
        if plan is not None:
            env.faults = FaultInjector(plan)
        topo = RingTopology(env, SYSTEM)
        src = topo.gpus[0]
        src.dma.program(DMACommand(command_id="c0", dst_gpu_id=3,
                                   chunk_id=0,
                                   wg_slices=((0, 32 * 1024),)))
        done = src.dma.trigger("c0")
        finished = []
        done.add_callback(lambda ev: finished.append(env.now))
        env.run()
        assert finished
        return finished[0]

    healthy = finish_time(None)
    delayed = finish_time(FaultPlan(dma=(
        DMACompletionFault(action="delay", delay_ns=500.0),)))
    assert delayed == pytest.approx(healthy + 500.0)


def test_forced_eviction_loses_the_region():
    env = Environment()
    env.faults = FaultInjector(FaultPlan(tracker=(
        TrackerPressure(evict_every=2),)))
    tracker = Tracker(TrackerConfig(), env=env, gpu_id=0)
    tracker.program_region(0, -1, expected_bytes=100)
    tracker.program_region(1, -1, expected_bytes=100)  # evicts region 0
    assert tracker.stats.forced_evictions == 1
    assert tracker.pending_regions() == [(1, -1)]
    assert ("tracker-evict", 0, (0, -1)) in env.faults.applied


# --------------------------------------------------------- end-to-end runs

def test_empty_plan_and_invariants_are_bit_identical():
    baseline = simulate()
    checked = simulate(faults=FaultPlan(), check_invariants=True)
    assert checked.times == baseline.times
    assert checked.traffic == baseline.traffic
    assert (checked.gemm_time, checked.rs_time, checked.ag_time) == \
        (baseline.gemm_time, baseline.rs_time, baseline.ag_time)


def test_straggler_slows_results_deterministically():
    healthy = simulate()
    slow_a = simulate(faults=FaultPlan.straggler(0, 2.0),
                      check_invariants=True)
    slow_b = simulate(faults=FaultPlan.straggler(0, 2.0),
                      check_invariants=True)
    assert slow_a.times == slow_b.times            # seeded, replayable
    for name in CONFIGS:
        assert slow_a.times[name] > healthy.times[name]


def test_dropped_dma_hang_becomes_diagnosable_error():
    with pytest.raises(SimulationError) as excinfo:
        simulate(faults=FaultPlan.dropped_dma(), check_invariants=True)
    message = str(excinfo.value)
    assert "dropped DMA completions" in message
    assert "simulation diagnostic dump" in message
    assert "pending" in message
    assert "tracker" in message


# ------------------------------------------------------- fault-sweep figure

def test_fault_sweep_runs_and_renders(tmp_path):
    cases = [SUB]
    result = fault_sweep.run(fast=True, cases=cases,
                             straggler_factors=(1.0, 2.0),
                             link_factors=(1.0, 0.5))
    again = fault_sweep.run(fast=True, cases=cases,
                            straggler_factors=(1.0, 2.0),
                            link_factors=(1.0, 0.5))
    assert [(p.kind, p.severity, p.label, p.speedup)
            for p in result.points] == \
        [(p.kind, p.severity, p.label, p.speedup) for p in again.points]

    text = result.render()
    assert "Fault sweep" in text
    assert "compute slowdown" in text
    assert "bandwidth fraction" in text
    assert SUB.label in text

    # Injected severities actually bite: both configurations slow down.
    healthy = {(p.kind, p.label): p for p in result.points
               if p.severity == 1.0}
    degraded = [p for p in result.points if p.severity != 1.0]
    assert degraded
    for point in degraded:
        reference = healthy[(point.kind, point.label)]
        assert point.sequential_time > reference.sequential_time
        assert point.t3_time > reference.t3_time


def test_fault_sweep_registered_in_runner():
    from repro.experiments.runner import EXPERIMENTS
    assert "fault-sweep" in EXPERIMENTS


# ----------------------------------------------- window boundary semantics

def test_in_window_is_half_open():
    """Fault windows are [start, end): inclusive start, exclusive end."""
    from repro.faults.plan import _in_window

    assert _in_window(100.0, 200.0, 100.0)        # exactly start: in
    assert _in_window(100.0, 200.0, 199.999)      # inside: in
    assert not _in_window(100.0, 200.0, 200.0)    # exactly end: out
    assert not _in_window(100.0, 200.0, 99.999)   # before start: out
    assert _in_window(100.0, None, 1e18)          # open-ended window
    assert not _in_window(100.0, None, 0.0)


def test_compute_slowdown_window_boundaries_match_in_window():
    fault = ComputeSlowdown(gpu_id=0, factor=2.0, start_ns=50.0,
                            end_ns=80.0)
    assert not fault.matches(0, 49.999)
    assert fault.matches(0, 50.0)
    assert fault.matches(0, 79.999)
    assert not fault.matches(0, 80.0)


def test_link_stall_window_boundaries_match_in_window():
    fault = LinkDegradation(src=0, dst=1, stall_ns=100.0,
                            start_ns=10.0, end_ns=20.0)
    assert not fault.stalls_at(9.999)
    assert fault.stalls_at(10.0)
    assert fault.stalls_at(19.999)
    assert not fault.stalls_at(20.0)
    # A zero-stall entry never stalls, whatever the window says.
    assert not LinkDegradation(src=0, dst=1).stalls_at(15.0)


# -------------------------------------- planned vs observed incidence

def test_planned_incidence_skips_identity_entries():
    """No-op draws (factor 1.0, undegraded links, p=0 stalls) are legal
    to plan but can never fire; planned_incidence must agree with the
    injector that nothing can happen."""
    plan = FaultPlan(
        compute=(ComputeSlowdown(gpu_id=0, factor=1.0),),
        links=(LinkDegradation(src=0, dst=1),                # identity
               LinkDegradation(src=0, dst=1, stall_ns=50.0,
                               stall_probability=0.0)),      # p=0 stall
    )
    incidence = plan.planned_incidence()
    assert incidence["straggler_windows"] == 0
    assert incidence["link_faults"] == 0
    assert incidence["dma_fault_budget"] == 0
    assert incidence["tracker_pressure_rules"] == 0


def test_planned_incidence_counts_effective_entries():
    plan = FaultPlan(
        compute=(ComputeSlowdown(gpu_id=0, factor=1.5),
                 ComputeSlowdown(gpu_id=1, factor=1.0)),     # identity
        links=(LinkDegradation(src=0, dst=1, bandwidth_factor=0.5),
               LinkDegradation(src=1, dst=2, extra_latency_ns=100.0),
               LinkDegradation(src=2, dst=3, stall_ns=50.0,
                               stall_probability=0.5)),
        dma=(DMACompletionFault(action="drop", max_events=2),
             DMACompletionFault(action="delay", delay_ns=10.0,
                                max_events=3)),
        tracker=(TrackerPressure(gpu_id=0, evict_every=4),),
    )
    incidence = plan.planned_incidence()
    assert incidence["straggler_windows"] == 1
    assert incidence["link_faults"] == 3
    assert incidence["dma_fault_budget"] == 5
    assert incidence["tracker_pressure_rules"] == 1


def test_identity_plan_observed_incidence_is_empty():
    """An all-identity plan fires nothing through a real simulation, in
    agreement with its planned incidence of zero everywhere."""
    plan = FaultPlan(
        compute=(ComputeSlowdown(gpu_id=ANY, factor=1.0),),
        links=(LinkDegradation(src=ANY, dst=ANY),),
    )
    assert all(count == 0 for count in plan.planned_incidence().values())
    baseline = simulate()
    noop = simulate(faults=plan)
    assert noop.times == baseline.times
    assert noop.traffic == baseline.traffic
