"""Edge-case coverage: GPU launch bookkeeping, engine corners, memory
controller details, figure-module internals."""

import pytest

from repro.config import table1_system
from repro.experiments.figure17 import TrafficSeries
from repro.gpu.gemm import GEMMKernel
from repro.gpu.wavefront import GEMMShape, TileGrid
from repro.interconnect.topology import RingTopology
from repro.memory.cache import estimate_gemm_traffic
from repro.memory.request import AccessKind, Stream
from repro.sim import Environment, Resource, SimulationError


def small_topo(n_gpus=2, quantum=8 * 1024):
    env = Environment()
    system = table1_system(n_gpus=n_gpus).with_fidelity(quantum_bytes=quantum)
    return env, RingTopology(env, system)


# --------------------------------------------------------------- GPU.launch

def test_launch_records_interval():
    env, topo = small_topo()
    gpu = topo.gpus[0]
    shape = GEMMShape(256, 256, 128)
    grid = TileGrid(shape, topo.system.gemm, n_cus=2)
    traffic = estimate_gemm_traffic(grid, topo.system.memory, False)
    kernel = GEMMKernel(grid, traffic, n_cus=2)
    proc = gpu.launch(kernel, name="my-gemm")
    env.run_until_process(proc)
    tags = [tag for tag in gpu.intervals.intervals if tag.startswith("my-gemm")]
    assert len(tags) == 1
    start, end = gpu.intervals.span(tags[0])
    assert end > start


def test_launch_two_kernels_sequentially_tracked():
    env, topo = small_topo()
    gpu = topo.gpus[0]
    shape = GEMMShape(256, 256, 128)
    for i in range(2):
        grid = TileGrid(shape, topo.system.gemm, n_cus=2)
        traffic = estimate_gemm_traffic(grid, topo.system.memory, False)
        proc = gpu.launch(GEMMKernel(grid, traffic, n_cus=2), name="k")
        env.run_until_process(proc)
    tags = [t for t in gpu.intervals.intervals if t.startswith("k#")]
    assert len(tags) == 2


# ------------------------------------------------------------ engine corners

def test_resource_handoff_preserves_capacity_accounting():
    env = Environment()
    res = Resource(env, capacity=1)
    order = []

    def user(tag):
        yield res.request()
        order.append(tag)
        yield env.timeout(1)
        res.release()

    for tag in range(5):
        env.process(user(tag))
    env.run()
    assert order == [0, 1, 2, 3, 4]
    assert res.in_use == 0
    assert res.available == 1


def test_nested_process_chain_returns_through_layers():
    env = Environment()

    def leaf():
        yield env.timeout(1)
        return "leaf"

    def middle():
        value = yield env.process(leaf())
        return value + "+middle"

    def root():
        value = yield env.process(middle())
        return value + "+root"

    proc = env.process(root())
    assert env.run_until_process(proc) == "leaf+middle+root"


def test_all_of_with_already_fired_events():
    env = Environment()
    done = env.event()
    done.succeed("x")
    env.run()
    collected = []

    def proc():
        values = yield env.all_of([done, env.timeout(5, "y")])
        collected.append(values)

    env.process(proc())
    env.run()
    assert collected == [["x", "y"]]


# --------------------------------------------------------- memory controller

def test_merged_traffic_handles_missing_keys():
    env, topo = small_topo()
    mc = topo.gpus[0].mc
    merged = mc.merged_traffic(["nope.read", "also.missing"])
    assert len(merged) == 0


def test_quantum_exact_multiple_has_no_remainder_request():
    env, topo = small_topo(quantum=1024)
    mc = topo.gpus[0].mc
    events = mc.submit_bulk(AccessKind.READ, Stream.COMPUTE, 4096, "gemm")
    assert len(events) == 4
    env.run()
    assert mc.counters.get("gemm.read") == 4096


def test_fractional_bytes_round_up_to_one_request():
    env, topo = small_topo(quantum=1024)
    mc = topo.gpus[0].mc
    events = mc.submit_bulk(AccessKind.READ, Stream.COMPUTE, 0.5, "gemm")
    assert len(events) == 1


# ------------------------------------------------------------ TrafficSeries

def test_traffic_series_sparkline_shapes():
    series = TrafficSeries("x", bin_starts=[0, 1, 2, 3],
                           bytes_per_bin=[0, 10, 5, 10])
    line = series.sparkline(width=4)
    assert len(line) == 4
    assert line[0] == " "       # zero bin
    assert series.peak == 10
    assert series.total == 25


def test_traffic_series_empty():
    series = TrafficSeries("x", bin_starts=[], bytes_per_bin=[])
    assert series.sparkline() == ""
    assert series.peak == 0.0


# ------------------------------------------------------------ kernel corners

def test_gemm_with_single_wave_config():
    env, topo = small_topo()
    system = topo.system.with_fidelity(gemm_waves_per_stage=1)
    env2 = Environment()
    topo2 = RingTopology(env2, system)
    shape = GEMMShape(512, 256, 128)
    grid = TileGrid(shape, system.gemm, n_cus=2)
    traffic = estimate_gemm_traffic(grid, system.memory, False)
    proc = topo2.gpus[0].launch(GEMMKernel(grid, traffic, n_cus=2))
    result = env2.run_until_process(proc)
    assert result.duration > 0


def test_zero_launch_overhead():
    env, topo = small_topo()
    shape = GEMMShape(256, 256, 128)
    grid = TileGrid(shape, topo.system.gemm, n_cus=2)
    traffic = estimate_gemm_traffic(grid, topo.system.memory, False)
    kernel = GEMMKernel(grid, traffic, n_cus=2, launch_overhead_ns=0.0)
    proc = topo.gpus[0].launch(kernel)
    result = env.run_until_process(proc)
    assert result.start == 0.0


def test_link_lookup_error_message_names_gpus():
    env, topo = small_topo()
    with pytest.raises(SimulationError, match="GPU 0 has no link to GPU 5"):
        topo.gpus[0].link_to(5)
