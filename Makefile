PYTHON ?= python
export PYTHONPATH := src

.PHONY: test lint check smoke-cache smoke-faults smoke-obs smoke-engine \
	smoke-chaos smoke-trace smoke-policy smoke-surrogate bench profile \
	results clean-cache

test:
	$(PYTHON) -m pytest -x -q

# Lint gate (ruff, configured in pyproject.toml).  Skips gracefully when
# ruff is not installed locally; CI always installs and enforces it.
lint:
	@if $(PYTHON) -m ruff --version >/dev/null 2>&1; then \
		$(PYTHON) -m ruff check src tests scripts benchmarks examples; \
	else \
		echo "ruff not installed (pip install -e '.[lint]'); skipping"; \
	fi

# Everything CI runs: the tier-1 suite plus lint and the smoke tests.
check: test lint smoke-cache smoke-faults smoke-obs smoke-engine \
	smoke-chaos smoke-trace smoke-policy smoke-surrogate

# Cache smoke test: figure16 twice; the second run must hit the persistent
# sweep cache (zero simulations), be much faster, and render identically.
smoke-cache:
	$(PYTHON) scripts/smoke_cache.py

# Fault-harness smoke test: empty-plan transparency, seeded-fault
# determinism, and dropped-DMA hang diagnosability.
smoke-faults:
	$(PYTHON) scripts/smoke_faults.py

# Telemetry smoke test: identical results and engine event counts with
# the metrics registry attached vs. absent.
smoke-obs:
	$(PYTHON) scripts/smoke_obs.py

# Engine smoke test: the optimized scheduler renders bit-identical
# results (plain, fault-injected, telemetry-attached) to the legacy
# reference scheduler.
smoke-engine:
	$(PYTHON) scripts/smoke_engine.py

# Resilience smoke test: fault-free byte-identity with the runtime
# attached vs absent, dropped-completion recovery, ladder fallback, and
# a seeded mini chaos campaign (100% resilient survival).
smoke-chaos:
	$(PYTHON) scripts/smoke_chaos.py

# Trace smoke test: post-hoc decomposition of a saved trace matches the
# live profiler bit-for-bit, save byte-determinism, loader round-trip,
# headless timeline render, and the `runner trace` CLI.
smoke-trace:
	$(PYTHON) scripts/smoke_trace.py

# Policy smoke test: StaticPaperPolicy is bit-identical to the
# pre-refactor inline arbiter, no decision logic remains inline, the
# adaptive policy survives a chaos slice and strictly reduces exposed
# communication on the faulty suites.
smoke-policy:
	$(PYTHON) scripts/smoke_policy.py

# Surrogate smoke test: triage simulates only a bounded subset, the
# predicted frontier contains a near-best design (full grid simulated as
# ground truth) with every pick above the grid median, and the audit
# slice's relative error stays under the bench-gated bound.
smoke-surrogate:
	$(PYTHON) scripts/smoke_surrogate.py

# Capture a bench trajectory point (results/BENCH_0003.json) and
# validate it against the schema.
bench:
	$(PYTHON) scripts/bench.py
	$(PYTHON) scripts/bench.py --check results/BENCH_0003.json

# Overlap profile of the sweep cases (CASE filters by label substring,
# e.g. `make profile CASE=fc2`); writes profile-report.json.
CASE ?=
profile:
	$(PYTHON) -m repro.experiments.runner profile figure16 \
		$(if $(CASE),--config $(CASE)) --profile profile-report.json

# Regenerate results/ (fast mode).  JOBS workers for cache misses.
JOBS ?= 1
results:
	$(PYTHON) scripts/capture_results.py --jobs $(JOBS)

clean-cache:
	$(PYTHON) -c "from repro.experiments.sublayer_sweep import \
clear_disk_cache; print(f'{clear_disk_cache()} entries removed')"
