PYTHON ?= python
export PYTHONPATH := src

.PHONY: test smoke-cache results clean-cache

test:
	$(PYTHON) -m pytest -x -q

# Cache smoke test: figure16 twice; the second run must hit the persistent
# sweep cache (zero simulations), be much faster, and render identically.
smoke-cache:
	$(PYTHON) scripts/smoke_cache.py

# Regenerate results/ (fast mode).  JOBS workers for cache misses.
JOBS ?= 1
results:
	$(PYTHON) scripts/capture_results.py --jobs $(JOBS)

clean-cache:
	$(PYTHON) -c "from repro.experiments.sublayer_sweep import \
clear_disk_cache; print(f'{clear_disk_cache()} entries removed')"
