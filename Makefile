PYTHON ?= python
export PYTHONPATH := src

.PHONY: test check smoke-cache smoke-faults results clean-cache

test:
	$(PYTHON) -m pytest -x -q

# Everything CI runs: the tier-1 suite plus both smoke tests.
check: test smoke-cache smoke-faults

# Cache smoke test: figure16 twice; the second run must hit the persistent
# sweep cache (zero simulations), be much faster, and render identically.
smoke-cache:
	$(PYTHON) scripts/smoke_cache.py

# Fault-harness smoke test: empty-plan transparency, seeded-fault
# determinism, and dropped-DMA hang diagnosability.
smoke-faults:
	$(PYTHON) scripts/smoke_faults.py

# Regenerate results/ (fast mode).  JOBS workers for cache misses.
JOBS ?= 1
results:
	$(PYTHON) scripts/capture_results.py --jobs $(JOBS)

clean-cache:
	$(PYTHON) -c "from repro.experiments.sublayer_sweep import \
clear_disk_cache; print(f'{clear_disk_cache()} entries removed')"
