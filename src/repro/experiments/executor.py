"""Sweep execution layer: parallel case running + a persistent cache.

Every figure of the reproduction funnels through the sub-layer sweep, and
every sweep case — one ``(sub-layer, system, scale, configs)`` tuple — is
an independent, deterministic simulation.  This module exploits both
properties:

* :func:`run_cases` fans a case list out over a
  ``concurrent.futures.ProcessPoolExecutor`` (``jobs`` workers), so a
  sweep is bounded by its slowest case rather than the sum of all cases;
* :class:`SweepCache` is a content-addressed on-disk store (JSON files
  under ``~/.cache/repro-t3`` by default, overridable via ``--cache-dir``
  or ``$REPRO_T3_CACHE_DIR``) keyed by a stable hash of the case, the
  full :class:`~repro.config.SystemConfig`, the token scale, and a
  fingerprint of the ``repro`` sources — so results survive the process
  and stale entries self-invalidate when the simulator changes.

Workers only simulate; the parent process performs all cache reads and
writes, which keeps the hit/miss/store counters exact and avoids
concurrent-writer races.  Writes are atomic (temp file + ``os.replace``)
so an interrupted sweep never leaves a truncated entry behind.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pathlib
import time
import warnings
from concurrent.futures import ProcessPoolExecutor, TimeoutError as \
    FutureTimeoutError
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.config import SystemConfig
from repro.experiments.common import SublayerSuite
from repro.faults import FaultPlan
from repro.models.transformer import SubLayer


class SweepExecutionWarning(UserWarning):
    """A sweep worker failed; execution fell back to in-process serial."""

#: environment override for the default cache location.
CACHE_DIR_ENV = "REPRO_T3_CACHE_DIR"

_CODE_FINGERPRINT: Optional[str] = None


def default_cache_dir() -> pathlib.Path:
    """``$REPRO_T3_CACHE_DIR`` if set, else ``~/.cache/repro-t3``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return pathlib.Path(env).expanduser()
    return pathlib.Path.home() / ".cache" / "repro-t3"


def code_fingerprint() -> str:
    """Hex digest over the contents of every ``repro`` source file.

    Any edit to the simulator changes the fingerprint and therefore every
    cache key, so stale on-disk entries can never be returned after a
    source change.  Computed once per process.
    """
    global _CODE_FINGERPRINT
    if _CODE_FINGERPRINT is None:
        package_root = pathlib.Path(__file__).resolve().parent.parent
        digest = hashlib.sha256()
        for path in sorted(package_root.rglob("*.py")):
            digest.update(str(path.relative_to(package_root)).encode())
            digest.update(path.read_bytes())
        _CODE_FINGERPRINT = digest.hexdigest()
    return _CODE_FINGERPRINT


@dataclasses.dataclass(frozen=True)
class CaseSpec:
    """One fully-resolved sweep case (the unit of caching and dispatch).

    ``system`` is the final simulated system — any TP-default resolution
    or full-mode fidelity coarsening has already been applied by the
    caller — so a spec is self-contained: equal specs simulate equal
    worlds and may share one cache entry.
    """

    sub: SubLayer
    scale: int
    system: SystemConfig
    configs: Tuple[str, ...] = ()
    #: optional fault plan injected into every simulated configuration;
    #: part of the cache key (a faulted run must never alias a clean one).
    faults: Optional[FaultPlan] = None
    #: attach an InvariantChecker to every run (observationally
    #: transparent, but keyed separately so violations re-check).
    check_invariants: bool = False

    def __post_init__(self) -> None:
        # The cache key hashes the system's *content*; that is only sound
        # while SystemConfig stays a frozen (hence hashable, by-value)
        # dataclass.  Guard against a future un-freezing regression.
        params = getattr(type(self.system), "__dataclass_params__", None)
        if params is None or not params.frozen:
            raise TypeError(
                "CaseSpec requires a frozen SystemConfig; a mutable system "
                "could change between keying and simulation")
        hash(self.system)  # raises if any field became unhashable

    def to_payload(self) -> Dict[str, object]:
        """JSON-ready description (also what gets hashed into the key)."""
        return {
            "sub": self.sub.to_dict(),
            "scale": self.scale,
            "system": self.system.to_dict(),
            "configs": list(self.configs),
            "faults": self.faults.to_dict() if self.faults else None,
            "check_invariants": self.check_invariants,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "CaseSpec":
        faults = payload.get("faults")
        return cls(
            sub=SubLayer.from_dict(payload["sub"]),
            scale=payload["scale"],
            system=SystemConfig.from_dict(payload["system"]),
            configs=tuple(payload["configs"]),
            faults=FaultPlan.from_dict(faults) if faults else None,
            check_invariants=payload.get("check_invariants", False),
        )

    def fingerprint(self) -> str:
        """Stable content hash of the case *and* the simulator version."""
        body = json.dumps(self.to_payload(), sort_keys=True)
        digest = hashlib.sha256()
        digest.update(code_fingerprint().encode())
        digest.update(body.encode("utf-8"))
        return digest.hexdigest()


@dataclasses.dataclass
class CacheStats:
    """Counters for one runner invocation (reset via ``reset``)."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    simulated: int = 0

    def reset(self) -> None:
        self.hits = self.misses = self.stores = self.simulated = 0

    def snapshot(self) -> "CacheStats":
        return dataclasses.replace(self)

    def delta(self, earlier: "CacheStats") -> "CacheStats":
        return CacheStats(
            hits=self.hits - earlier.hits,
            misses=self.misses - earlier.misses,
            stores=self.stores - earlier.stores,
            simulated=self.simulated - earlier.simulated,
        )

    def render(self) -> str:
        return (f"{self.hits} hit{'s' if self.hits != 1 else ''}, "
                f"{self.misses} miss{'es' if self.misses != 1 else ''}, "
                f"{self.simulated} simulated")


class SweepCache:
    """Content-addressed persistent store of :class:`SublayerSuite`.

    One JSON file per case under ``directory``, named by the case
    fingerprint.  A disabled cache (``enabled=False``) still counts
    misses/simulations so the runner report stays meaningful.
    """

    def __init__(self, directory: Optional[pathlib.Path] = None,
                 enabled: bool = True) -> None:
        self.directory = pathlib.Path(directory) if directory \
            else default_cache_dir()
        self.enabled = enabled
        self.stats = CacheStats()

    def _path(self, key: str) -> pathlib.Path:
        return self.directory / f"{key}.json"

    def get(self, key: str) -> Optional[SublayerSuite]:
        """The cached suite for ``key``, or None (counted as a miss)."""
        if self.enabled:
            path = self._path(key)
            try:
                data = json.loads(path.read_text())
                suite = SublayerSuite.from_dict(data)
            except FileNotFoundError:
                pass
            except (json.JSONDecodeError, KeyError, TypeError):
                # Corrupt / half-written legacy entry: drop it and re-run.
                path.unlink(missing_ok=True)
            else:
                self.stats.hits += 1
                return suite
        self.stats.misses += 1
        return None

    def put(self, key: str, suite: SublayerSuite) -> None:
        if not self.enabled:
            return
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self._path(key)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(suite.to_dict(), sort_keys=True))
        os.replace(tmp, path)
        self.stats.stores += 1

    def clear(self) -> int:
        """Delete every cache entry; returns the number removed."""
        removed = 0
        if self.directory.is_dir():
            for path in self.directory.glob("*.json"):
                path.unlink(missing_ok=True)
                removed += 1
        return removed

    def __len__(self) -> int:
        if not self.directory.is_dir():
            return 0
        return sum(1 for _ in self.directory.glob("*.json"))


def _simulate_payload(payload: Dict[str, object]) -> Dict[str, object]:
    """Worker entry point: rebuild the case, simulate, return a dict.

    Takes/returns plain dicts so the pool pickles only JSON-shaped data —
    the exact representation the disk cache stores, which guarantees the
    parallel path cannot diverge from a cache round-trip.
    """
    from repro.experiments import sublayer_sweep

    spec = CaseSpec.from_payload(payload)
    suite = sublayer_sweep.simulate_case(
        spec.sub, spec.scale, spec.system, list(spec.configs) or None,
        faults=spec.faults, check_invariants=spec.check_invariants)
    return suite.to_dict()


def run_cases(specs: Sequence[CaseSpec],
              jobs: int = 1,
              cache: Optional[SweepCache] = None,
              progress: Optional[Callable[[str], None]] = None,
              timeout_s: Optional[float] = None,
              max_retries: int = 1,
              retry_backoff_s: float = 0.5,
              _sleep: Callable[[float], None] = time.sleep,
              ) -> List[SublayerSuite]:
    """Run (or recall) every case; returns suites in ``specs`` order.

    Cached cases are served from ``cache``; the remainder are simulated —
    in-process when ``jobs <= 1`` or there is a single miss, else across a
    ``ProcessPoolExecutor`` with ``jobs`` workers.  Results are written
    back to the cache by the parent process only.

    ``timeout_s`` is a **shared deadline for the whole parallel batch**,
    not a per-case allowance: results are collected until
    ``timeout_s`` seconds after submission, after which every
    still-outstanding case is treated as failed.  (Collecting each future
    with its own full ``timeout_s`` would let a sweep of N stuck cases
    wait N x ``timeout_s``.)

    The parallel path is crash-tolerant: a worker that dies (OOM-kill,
    segfault, ``BrokenProcessPool``), raises, or times out does not abort
    the sweep — the affected cases are retried in-process and serial,
    with a :class:`SweepExecutionWarning`, up to ``max_retries`` rounds
    with exponential backoff (``retry_backoff_s * 2**(round-1)`` between
    rounds).  The default (one round, like the original single retry)
    means only a case that *also* fails in-process propagates its error
    (a genuine simulation bug rather than a host problem).  Results
    already computed and cached by healthy workers are kept either way.
    """
    if max_retries < 0:
        raise ValueError("max_retries cannot be negative")
    results: List[Optional[SublayerSuite]] = [None] * len(specs)
    pending: List[Tuple[int, CaseSpec, str]] = []
    for index, spec in enumerate(specs):
        key = spec.fingerprint()
        cached = cache.get(key) if cache is not None else None
        if cached is not None:
            results[index] = cached
            continue
        pending.append((index, spec, key))

    if progress and specs:
        progress(f"sweep: {len(specs) - len(pending)} cached, "
                 f"{len(pending)} to simulate "
                 f"(jobs={max(1, jobs)})")

    def finish(index: int, spec: CaseSpec, key: str,
               suite: SublayerSuite, elapsed: float) -> None:
        results[index] = suite
        if cache is not None:
            cache.stats.simulated += 1
            cache.put(key, suite)
        if progress:
            progress(f"  case {spec.sub.label} done in {elapsed:.1f}s")

    def run_serial(cases: Sequence[Tuple[int, CaseSpec, str]]) -> None:
        for index, spec, key in cases:
            started = time.time()
            suite = SublayerSuite.from_dict(
                _simulate_payload(spec.to_payload()))
            finish(index, spec, key, suite, time.time() - started)

    simulate_started = time.time()
    if len(pending) <= 1 or jobs <= 1:
        run_serial(pending)
    else:
        failed = _run_parallel(pending, min(jobs, len(pending)), finish,
                               timeout_s)
        if failed:
            cases, first_error = failed
            warnings.warn(
                f"{len(cases)} sweep case(s) failed in worker processes "
                f"({type(first_error).__name__}: {first_error}); retrying "
                f"in-process serially (up to {max_retries} round(s))",
                SweepExecutionWarning, stacklevel=2)
            if progress:
                progress(f"  retrying {len(cases)} failed case(s) "
                         "in-process")
            _retry_serial(cases, run_serial, first_error,
                          max_retries=max_retries,
                          backoff_s=retry_backoff_s, sleep=_sleep,
                          progress=progress)
    if progress and pending:
        elapsed = time.time() - simulate_started
        if elapsed > 0:
            progress(f"sweep throughput: {len(pending) / elapsed:.3f} "
                     f"cases/s ({len(pending)} simulated in {elapsed:.1f}s)")
    return [suite for suite in results if suite is not None]


def _retry_serial(cases: Sequence[Tuple[int, CaseSpec, str]],
                  run_serial: Callable[[Sequence[Tuple[int, CaseSpec, str]]],
                                       None],
                  first_error: Optional[BaseException],
                  max_retries: int,
                  backoff_s: float,
                  sleep: Callable[[float], None],
                  progress: Optional[Callable[[str], None]] = None) -> None:
    """In-process serial retry rounds with exponential backoff.

    Every case gets attempted each round (one failing case must not
    starve the rest of their retries); a case that fails in all
    ``max_retries`` rounds propagates the first error seen for it.  With
    ``max_retries == 0`` the parallel-path error propagates immediately.
    """
    if max_retries == 0:
        raise first_error if first_error is not None else \
            RuntimeError("sweep cases failed with no recorded error")
    remaining = list(cases)
    for attempt in range(1, max_retries + 1):
        if attempt > 1:
            delay = backoff_s * (2 ** (attempt - 2))
            if delay > 0:
                if progress:
                    progress(f"  retry round {attempt}/{max_retries} in "
                             f"{delay:.1f}s")
                sleep(delay)
        still_failed: List[Tuple[int, CaseSpec, str]] = []
        error: Optional[BaseException] = None
        for case in remaining:
            try:
                run_serial([case])
            except Exception as exc:
                still_failed.append(case)
                error = error or exc
        if not still_failed:
            return
        remaining = still_failed
        if attempt == max_retries:
            raise error


def _run_parallel(pending: Sequence[Tuple[int, CaseSpec, str]],
                  workers: int,
                  finish: Callable[[int, CaseSpec, str, SublayerSuite, float],
                                   None],
                  timeout_s: Optional[float],
                  ) -> Optional[Tuple[List[Tuple[int, CaseSpec, str]],
                                      BaseException]]:
    """Fan ``pending`` over a process pool; collect per-case failures.

    ``timeout_s`` bounds the **whole batch**: one deadline is fixed at
    submission and every future is collected against the time remaining
    to it, so N stuck workers cost ``timeout_s`` total rather than
    ``N x timeout_s`` (the futures are collected sequentially, and a
    fresh per-future timeout would restart the clock on each).

    Returns ``None`` when every case succeeded, else ``(failed_cases,
    first_error)``.  A ``BrokenProcessPool`` poisons every outstanding
    future, so all of them land in ``failed_cases`` and are retried by the
    caller; the pool is shut down without waiting so a wedged worker
    cannot hang the sweep.
    """
    failed: List[Tuple[int, CaseSpec, str]] = []
    first_error: Optional[BaseException] = None
    pool = ProcessPoolExecutor(max_workers=workers)
    healthy = True
    try:
        started = time.time()
        deadline = None if timeout_s is None \
            else time.monotonic() + timeout_s
        futures = [(index, spec, key,
                    pool.submit(_simulate_payload, spec.to_payload()))
                   for index, spec, key in pending]
        for index, spec, key, future in futures:
            try:
                remaining = None if deadline is None \
                    else max(0.0, deadline - time.monotonic())
                suite = SublayerSuite.from_dict(future.result(remaining))
            except FutureTimeoutError as exc:
                future.cancel()
                healthy = False
                failed.append((index, spec, key))
                first_error = first_error or exc
            except Exception as exc:
                failed.append((index, spec, key))
                first_error = first_error or exc
            else:
                finish(index, spec, key, suite, time.time() - started)
    finally:
        # After a timeout a worker may be wedged mid-simulation; waiting
        # on it would hang the parent, so orphan it instead.
        pool.shutdown(wait=healthy, cancel_futures=True)
    if failed:
        return failed, first_error
    return None
