"""Quantitative companion to Table 3: T3-MCA vs in-switch reduction.

The paper's closest hardware alternative (Klenk et al., ISCA'20) reduces
in the network switch, speeding the collective itself by up to 2x — but
the communication stays *serialized* behind the producer GEMM.  This
study prices that difference on the paper's sub-layers:

* ``Sequential``      — GEMM, then ring-RS, then ring-AG;
* ``In-switch``       — GEMM, then a 2x-faster AR (still serialized);
* ``T3-MCA``          — fused GEMM-RS + sequential AG.

T3 wins whenever the GEMM is long enough to hide the RS — i.e. everywhere
except extremely communication-skewed layers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.config import table1_system
from repro.experiments.sublayer_sweep import run_sweep
from repro.models import zoo
from repro.sim.stats import geomean

#: collective speedup the in-switch hardware provides (paper: "up to 2x").
IN_SWITCH_FACTOR = 2.0


@dataclass(frozen=True)
class RelatedWorkRow:
    case: str
    in_switch_speedup: float
    t3_mca_speedup: float


@dataclass
class RelatedWorkResult:
    rows: List[RelatedWorkRow]

    def render(self) -> str:
        lines = [
            "Table 3 companion — in-switch (2x collectives, serialized) "
            "vs T3-MCA",
            f"{'case':24} {'in-switch':>10} {'T3-MCA':>8} {'winner':>9}",
        ]
        for r in self.rows:
            winner = "T3-MCA" if r.t3_mca_speedup > r.in_switch_speedup \
                else "in-switch"
            lines.append(f"{r.case:24} {r.in_switch_speedup:>10.3f} "
                         f"{r.t3_mca_speedup:>8.3f} {winner:>9}")
        lines.append(
            f"geomean: in-switch {self.geomean('in-switch'):.3f} vs "
            f"T3-MCA {self.geomean('t3'):.3f}")
        return "\n".join(lines)

    def geomean(self, which: str) -> float:
        if which == "in-switch":
            return geomean([r.in_switch_speedup for r in self.rows])
        return geomean([r.t3_mca_speedup for r in self.rows])

    def t3_win_count(self) -> int:
        return sum(1 for r in self.rows
                   if r.t3_mca_speedup > r.in_switch_speedup)


def run(fast: bool = True, jobs: int | None = None) -> RelatedWorkResult:
    subs = [model.sublayer(name, 8)
            for model in zoo.small_models() for name in ("OP", "FC-2")]
    suites = run_sweep(fast=fast, cases=subs, jobs=jobs,
                       system_for_tp=lambda tp: table1_system(n_gpus=tp))
    rows: List[RelatedWorkRow] = []
    for sub, suite in zip(subs, suites):
        sequential = suite.times["Sequential"]
        # In-switch: the AR (RS+AG) runs 2x faster, still serialized.
        in_switch = (suite.gemm_time
                     + (suite.rs_time + suite.ag_time)
                     / IN_SWITCH_FACTOR)
        rows.append(RelatedWorkRow(
            case=sub.label,
            in_switch_speedup=sequential / in_switch,
            t3_mca_speedup=suite.speedup("T3-MCA"),
        ))
    return RelatedWorkResult(rows)
