"""Fault sweep: how much fault pressure can T3's overlap absorb?

The paper's speedups (Figure 16) assume a healthy machine.  This
experiment degrades it on purpose, two ways:

* **straggler** — one GPU's compute slowed by a factor (kernel-launch
  jitter, thermal throttling, a noisy neighbour);
* **link degradation** — GPU 0's ring send link cut to a fraction of its
  bandwidth (a flaky retimer, a downtrained PCIe/xGMI lane).

For each severity we re-run Sequential and T3-MCA on a pair of
Figure-16 sub-layers and report T3-MCA's speedup.  Because a fused
GEMM-RS serializes each ring step behind *both* the producer GEMM slice
and the forwarded partials, a straggler or slow link hurts T3 more than
it hurts the already-serialized baseline — the interesting number is the
severity where the speedup crosses 1.0 and overlap stops paying.

Every faulty run is keyed by its :class:`~repro.faults.FaultPlan` in the
persistent sweep cache, so repeated invocations are cheap and, because
fault injection is seeded and hash-drawn, bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.sublayer_sweep import run_sweep
from repro.faults import ANY, FaultPlan
from repro.models import zoo
from repro.models.transformer import SubLayer

#: compute-slowdown factors applied to GPU 0 (1.0 = healthy).
STRAGGLER_FACTORS: Tuple[float, ...] = (1.0, 1.1, 1.25, 1.5, 2.0)

#: bandwidth fractions applied to GPU 0's send link (1.0 = healthy).
LINK_FACTORS: Tuple[float, ...] = (1.0, 0.75, 0.5, 0.25)

#: the two configurations every severity is measured with.
CONFIGS: Tuple[str, ...] = ("Sequential", "T3-MCA")

#: deterministic seed for every injected plan (severity is the sweep
#: variable; the seed only feeds probabilistic knobs like stalls).
SWEEP_SEED = 1729


@dataclass
class FaultPoint:
    """One (fault kind, severity, sub-layer) measurement."""

    kind: str                 # "straggler" | "link"
    severity: float           # slowdown factor or bandwidth fraction
    label: str                # sub-layer label
    sequential_time: float
    t3_time: float

    @property
    def speedup(self) -> float:
        return self.sequential_time / self.t3_time

    @property
    def overlap_pays(self) -> bool:
        return self.speedup > 1.0


@dataclass
class FaultSweepResult:
    """All measurements, grouped for rendering."""

    points: List[FaultPoint] = field(default_factory=list)

    def by_kind(self, kind: str) -> List[FaultPoint]:
        return [p for p in self.points if p.kind == kind]

    def breakeven(self, kind: str, label: str) -> Optional[float]:
        """First severity (in sweep order) where overlap stops paying."""
        for point in self.by_kind(kind):
            if point.label == label and not point.overlap_pays:
                return point.severity
        return None

    def render(self) -> str:
        lines = ["Fault sweep — T3-MCA speedup under injected faults",
                 "(speedup over Sequential; * marks overlap no longer "
                 "paying)"]
        for kind, header, fmt in (
                ("straggler", "GPU-0 compute slowdown factor", "x{:.2f}"),
                ("link", "GPU-0 send-link bandwidth fraction", "{:.0%}")):
            points = self.by_kind(kind)
            if not points:
                continue
            lines.append("")
            lines.append(header)
            labels = sorted({p.label for p in points})
            severities = sorted({p.severity for p in points},
                                reverse=(kind == "link"))
            width = max(len(label) for label in labels) + 2
            head = " " * 12 + "".join(f"{label:>{width}}"
                                      for label in labels)
            lines.append(head)
            table: Dict[Tuple[float, str], FaultPoint] = {
                (p.severity, p.label): p for p in points}
            for severity in severities:
                row = f"  {fmt.format(severity):>8}  "
                for label in labels:
                    point = table[(severity, label)]
                    cell = f"{point.speedup:.3f}" + \
                        ("" if point.overlap_pays else "*")
                    row += f"{cell:>{width}}"
                lines.append(row)
        lines.append("")
        for label in sorted({p.label for p in self.points}):
            frontier = []
            for kind, describe in (("straggler", "slowdown x{:.2f}"),
                                   ("link", "bandwidth {:.0%}")):
                severity = self.breakeven(kind, label)
                if severity is not None:
                    frontier.append(describe.format(severity))
            verdict = ("overlap stops paying at " + ", ".join(frontier)
                       if frontier else "overlap pays at every severity "
                       "swept")
            lines.append(f"  {label}: {verdict}")
        return "\n".join(lines)


def default_cases() -> List[SubLayer]:
    """Two representative Figure-16 sub-layers (Mega-GPT-2, TP=8): the
    attention output projection and the MLP's second GEMM."""
    subs = zoo.megatron_gpt2().ar_sublayers(8)
    return [s for s in subs if s.name in ("OP", "FC-2")]


def _plan_for(kind: str, severity: float) -> Optional[FaultPlan]:
    if severity == 1.0:
        return None  # healthy baseline: identical to the normal sweep
    if kind == "straggler":
        return FaultPlan.straggler(gpu_id=0, factor=severity,
                                   seed=SWEEP_SEED)
    # Every egress link of GPU 0 — in a ring that is exactly its one
    # send link (rank sends downstream to rank-1), whatever the TP degree.
    return FaultPlan.degraded_link(src=0, dst=ANY,
                                   bandwidth_factor=severity,
                                   seed=SWEEP_SEED)


def _save_trace(sub: SubLayer, fast: bool, kind: str, severity: float,
                trace_out: str) -> None:
    """Re-simulate one faulty case off the cache path with trace + obs
    attached, and save the T3-MCA run's decomposition-grade trace."""
    from repro.experiments.sublayer_sweep import FAST_SCALE, simulate_case
    from repro.config import table1_system
    trace_sink: dict = {}
    obs_sink: dict = {}
    simulate_case(sub, FAST_SCALE if fast else 1,
                  table1_system(n_gpus=sub.tp), configs=list(CONFIGS),
                  faults=_plan_for(kind, severity), check_invariants=True,
                  obs_sink=obs_sink, trace_sink=trace_sink)
    trace_sink["T3-MCA"].save(trace_out, registry=obs_sink["T3-MCA"])


def run(fast: bool = True, jobs: Optional[int] = None,
        cases: Optional[Sequence[SubLayer]] = None,
        straggler_factors: Sequence[float] = STRAGGLER_FACTORS,
        link_factors: Sequence[float] = LINK_FACTORS,
        trace_out: Optional[str] = None) -> FaultSweepResult:
    """Sweep fault severities; ``trace_out`` additionally saves a trace
    of the first case's T3-MCA run at the *worst* straggler severity (a
    fresh, uncached simulation — the sweep's cached results are payload
    only and carry no spans)."""
    selected = list(cases) if cases is not None else default_cases()
    result = FaultSweepResult()
    for kind, severities in (("straggler", straggler_factors),
                             ("link", link_factors)):
        for severity in severities:
            suites = run_sweep(fast=fast, cases=selected,
                               configs=list(CONFIGS), jobs=jobs,
                               faults=_plan_for(kind, severity),
                               check_invariants=True)
            for suite in suites:
                result.points.append(FaultPoint(
                    kind=kind, severity=severity, label=suite.label,
                    sequential_time=suite.times["Sequential"],
                    t3_time=suite.times["T3-MCA"]))
    if trace_out is not None and selected:
        _save_trace(selected[0], fast, "straggler",
                    list(straggler_factors)[-1], trace_out)
    return result
