"""Figure 14: reduce-scatter simulator validation.

The paper validates its multi-GPU Accel-Sim extension against a 4x MI210
node over 6-192 MiB ring reduce-scatters (6% geomean error versus the
ideal y=x line).  Our reference is the closed-form ring-RS model (see
DESIGN.md substitutions); the event-driven simulator must track it across
the same size sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro import units
from repro.collectives.api import ring_rs_time
from repro.collectives.baseline import RingReduceScatter
from repro.config import table1_system
from repro.interconnect.topology import RingTopology
from repro.sim import Environment
from repro.sim.stats import geomean

#: the paper's validation sweep (6 MB - 192 MB on four GPUs).
SIZES_MIB: Tuple[int, ...] = (6, 12, 24, 48, 96, 192)


@dataclass(frozen=True)
class ValidationPoint:
    size_mib: int
    simulated_us: float
    reference_us: float

    @property
    def error(self) -> float:
        return abs(self.simulated_us - self.reference_us) / self.reference_us


@dataclass
class ValidationResult:
    points: List[ValidationPoint]

    @property
    def geomean_error(self) -> float:
        return geomean([max(p.error, 1e-6) for p in self.points])

    def render(self) -> str:
        lines = [
            "Figure 14 — ring-RS validation (4 GPUs, simulated vs reference)",
            f"{'size':>8} {'simulated':>12} {'reference':>12} {'error':>8}",
        ]
        for p in self.points:
            lines.append(
                f"{p.size_mib:>6}MB {p.simulated_us:>10.1f}us "
                f"{p.reference_us:>10.1f}us {100 * p.error:>7.2f}%")
        lines.append(f"geomean error = {100 * self.geomean_error:.2f}% "
                     "(paper: 6%)")
        return "\n".join(lines)


def run(fast: bool = True) -> ValidationResult:
    sizes = SIZES_MIB[:4] if fast else SIZES_MIB
    system = table1_system(n_gpus=4)
    points: List[ValidationPoint] = []
    for size_mib in sizes:
        nbytes = size_mib * units.MiB
        env = Environment()
        topo = RingTopology(env, system)
        simulated = RingReduceScatter(topo, nbytes_total=nbytes).run().duration
        reference = ring_rs_time(nbytes, system)
        points.append(ValidationPoint(
            size_mib=size_mib,
            simulated_us=simulated / 1e3,
            reference_us=reference / 1e3,
        ))
    return ValidationResult(points)
