"""Section 7 extension studies: generation phase, lower precision, NMC
for following operators, and consumer-side AG fusion.

These go beyond the paper's figures — they quantify the discussion
sections with the same machinery.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List

from repro.config import table1_system
from repro.experiments.common import scaled_shape, run_sublayer_suite
from repro.gpu.wavefront import GEMMShape
from repro.interconnect.topology import RingTopology
from repro.models import zoo
from repro.models.endtoend import (
    Phase,
    iteration_breakdown,
    nmc_following_ops_speedup,
)
from repro.sim import Environment
from repro.t3.consumer import FusedAGConsumerGEMM, sequential_ag_then_gemm


# ------------------------------------------------ generation phase (7.3)

@dataclass
class GenerationRow:
    model: str
    tp: int
    comm_fraction: float
    per_token_us: float
    hidden_speedup: float   # end-to-end if the ARs are fully hidden


@dataclass
class GenerationResult:
    rows: List[GenerationRow]

    def render(self) -> str:
        lines = [
            "Section 7.3 — generation (decode) phase",
            f"{'model':12} {'tp':>3} {'us/token':>9} {'comm%':>7} "
            f"{'AR-hidden speedup':>18}",
        ]
        for r in self.rows:
            lines.append(
                f"{r.model:12} {r.tp:>3} {r.per_token_us:>9.1f} "
                f"{100 * r.comm_fraction:>6.1f}% {r.hidden_speedup:>18.3f}")
        return "\n".join(lines)


def run_generation(fast: bool = True) -> GenerationResult:
    del fast
    rows = []
    for model in zoo.small_models() + zoo.large_models():
        for tp in zoo.TP_SETUPS[model.name]:
            system = table1_system(n_gpus=tp)
            breakdown = iteration_breakdown(model, tp, system,
                                            Phase.GENERATION)
            total = breakdown.total_time()
            comm = breakdown.comm_time()
            rows.append(GenerationRow(
                model=model.name, tp=tp,
                comm_fraction=comm / total,
                per_token_us=total / 1e3,
                hidden_speedup=total / (total - comm),
            ))
    return GenerationResult(rows)


# ------------------------------------------------- lower precision (7.5)

@dataclass
class PrecisionRow:
    precision: str
    gemm_us: float
    rs_us: float
    t3_speedup: float
    ideal_speedup: float


@dataclass
class PrecisionResult:
    rows: List[PrecisionRow]

    def render(self) -> str:
        lines = [
            "Section 7.5 — lower precision (T-NLG FC-2, TP=8)",
            f"{'precision':>10} {'GEMM':>9} {'RS':>9} {'T3-MCA':>8} "
            f"{'ideal':>8}",
        ]
        for r in self.rows:
            lines.append(
                f"{r.precision:>10} {r.gemm_us:>7.0f}us {r.rs_us:>7.0f}us "
                f"{r.t3_speedup:>8.3f} {r.ideal_speedup:>8.3f}")
        return "\n".join(lines)

    def row(self, precision: str) -> PrecisionRow:
        for r in self.rows:
            if r.precision == precision:
                return r
        raise KeyError(precision)


def run_precision(fast: bool = True) -> PrecisionResult:
    """FP16 vs FP8: compute drops ~quadratically with precision (doubled
    rate on half-width operands) while communication shrinks only
    linearly — so overlap matters *more* at lower precision."""
    scale = 8 if fast else 1
    sub = zoo.t_nlg().sublayer("FC-2", 8)
    rows: List[PrecisionRow] = []
    for name, flops_factor, element_bytes in (
        ("fp16", 1.0, 2),
        ("fp8", 4.0, 1),
    ):
        base = table1_system(n_gpus=8)
        system = base.replace(compute=dataclasses.replace(
            base.compute,
            flops_per_cu_per_cycle=(base.compute.flops_per_cu_per_cycle
                                    * flops_factor)))
        shape = scaled_shape(
            dataclasses.replace(sub.gemm, element_bytes=element_bytes),
            scale)
        suite = run_sublayer_suite(
            system, shape, label=f"FC-2/{name}",
            configs=["Sequential", "T3-MCA", "Ideal-GEMM-RS-Overlap"])
        rows.append(PrecisionRow(
            precision=name,
            gemm_us=suite.gemm_time / 1e3,
            rs_us=suite.rs_time / 1e3,
            t3_speedup=suite.speedup("T3-MCA"),
            ideal_speedup=suite.speedup("Ideal-GEMM-RS-Overlap"),
        ))
    return PrecisionResult(rows)


# ------------------------------------- NMC for following operators (7.6)

@dataclass
class FollowingOpsRow:
    model: str
    tp: int
    phase: str
    speedup: float


@dataclass
class FollowingOpsResult:
    rows: List[FollowingOpsRow]

    def render(self) -> str:
        lines = [
            "Section 7.6 — NMC execution of post-AR operators",
            f"{'model':12} {'tp':>3} {'phase':>9} {'extra speedup':>14}",
        ]
        for r in self.rows:
            lines.append(f"{r.model:12} {r.tp:>3} {r.phase:>9} "
                         f"{r.speedup:>14.3f}")
        return "\n".join(lines)


def run_following_ops(fast: bool = True) -> FollowingOpsResult:
    del fast
    rows = []
    for model in zoo.small_models():
        for tp in zoo.TP_SETUPS[model.name]:
            system = table1_system(n_gpus=tp)
            for phase in (Phase.TRAINING, Phase.PROMPT):
                breakdown = iteration_breakdown(model, tp, system, phase)
                rows.append(FollowingOpsRow(
                    model=model.name, tp=tp, phase=phase.value,
                    speedup=nmc_following_ops_speedup(breakdown)))
    return FollowingOpsResult(rows)


# ------------------------------------------ consumer-side fusion (7.2)

@dataclass
class ConsumerFusionRow:
    case: str
    sequential_us: float
    fused_us: float

    @property
    def speedup(self) -> float:
        return self.sequential_us / self.fused_us


@dataclass
class ConsumerFusionStudy:
    rows: List[ConsumerFusionRow]

    def render(self) -> str:
        lines = [
            "Section 7.2 — all-gather overlapped with its consumer GEMM",
            f"{'case':24} {'sequential':>11} {'fused':>9} {'speedup':>8}",
        ]
        for r in self.rows:
            lines.append(f"{r.case:24} {r.sequential_us:>9.0f}us "
                         f"{r.fused_us:>7.0f}us {r.speedup:>8.3f}")
        return "\n".join(lines)


def run_consumer_fusion(fast: bool = True) -> ConsumerFusionStudy:
    scale = 8 if fast else 2
    rows: List[ConsumerFusionRow] = []
    for model in zoo.small_models():
        # An FC-1-like consumer: the all-gathered [T, H] activations feed
        # a long column-parallel GEMM.
        tp = 8
        shape = scaled_shape(
            GEMMShape(model.tokens, 4 * model.hidden // tp, model.hidden,
                      name=f"{model.name}.fc1-consumer"),
            scale)
        system = table1_system(n_gpus=tp).with_fidelity(
            quantum_bytes=32 * 1024)

        env_f = Environment()
        fused = FusedAGConsumerGEMM(
            RingTopology(env_f, system), shape).run()
        env_s = Environment()
        sequential = sequential_ag_then_gemm(
            RingTopology(env_s, system), shape)
        rows.append(ConsumerFusionRow(
            case=f"{model.name}/FC-1-consumer/TP{tp}",
            sequential_us=sequential / 1e3,
            fused_us=fused.duration / 1e3,
        ))
    return ConsumerFusionStudy(rows)
