"""Figure 18: per-sub-layer DRAM access breakdown, baseline vs T3.

The paper's headline reductions (Section 6.2):

* total data movement: -22% geomean, max -36%;
* RS reads shrink 2.4x geomean (2.5x TP=8, 2.2x TP=16) — structurally
  ``(2N-1)/(N-2)`` chunks;
* GEMM+RS writes shrink ~10% geomean (one chunk in 2N);
* GEMM reads shrink 1.56x geomean from the LLC write bypass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.analysis.traffic import DramBreakdown
from repro.experiments.sublayer_sweep import run_sweep
from repro.sim.stats import geomean


@dataclass(frozen=True)
class Figure18Row:
    case: str
    baseline: DramBreakdown
    t3: DramBreakdown

    @property
    def total_reduction(self) -> float:
        return 1.0 - self.t3.total / self.baseline.total

    @property
    def rs_read_ratio(self) -> float:
        if self.t3.rs_read == 0:
            return float("inf")
        return self.baseline.rs_read / self.t3.rs_read

    @property
    def gemm_read_ratio(self) -> float:
        return self.baseline.gemm_read / self.t3.gemm_read

    @property
    def write_ratio(self) -> float:
        base = self.baseline.gemm_write + self.baseline.rs_write
        new = self.t3.gemm_write + self.t3.rs_write
        return base / new


@dataclass
class Figure18Result:
    rows: List[Figure18Row]

    def render(self) -> str:
        lines = [
            "Figure 18 — per-GPU DRAM accesses (MB), Sequential vs T3-MCA",
            f"{'case':24} {'base total':>11} {'T3 total':>10} "
            f"{'saved':>7} {'RSrd x':>7} {'GEMMrd x':>9} {'wr x':>6}",
        ]
        for r in self.rows:
            lines.append(
                f"{r.case:24} {r.baseline.total / 1e6:>9.0f}MB "
                f"{r.t3.total / 1e6:>8.0f}MB {100 * r.total_reduction:>6.1f}% "
                f"{r.rs_read_ratio:>7.2f} {r.gemm_read_ratio:>9.2f} "
                f"{r.write_ratio:>6.2f}")
        lines.append(
            f"geomean saved = {100 * (1 - geomean([1 - r.total_reduction for r in self.rows])):.1f}% "
            f"(paper: 22%, max 36%)")
        lines.append(
            f"geomean RS-read ratio = {self.geomean_rs_read_ratio():.2f}x "
            "(paper: 2.4x)")
        lines.append(
            f"geomean GEMM-read ratio = {self.geomean_gemm_read_ratio():.2f}x "
            "(paper: 1.56x)")
        return "\n".join(lines)

    def geomean_total_reduction(self) -> float:
        return 1 - geomean([1 - r.total_reduction for r in self.rows])

    def max_total_reduction(self) -> float:
        return max(r.total_reduction for r in self.rows)

    def geomean_rs_read_ratio(self) -> float:
        return geomean([r.rs_read_ratio for r in self.rows])

    def geomean_gemm_read_ratio(self) -> float:
        return geomean([r.gemm_read_ratio for r in self.rows])

    def geomean_write_ratio(self) -> float:
        return geomean([r.write_ratio for r in self.rows])


def run(fast: bool = True, large: bool = False,
        jobs: int | None = None) -> Figure18Result:
    suites = run_sweep(fast=fast, large=large, jobs=jobs)
    rows = [
        Figure18Row(case=s.label,
                    baseline=s.traffic["Sequential"],
                    t3=s.traffic["T3-MCA"])
        for s in suites
    ]
    return Figure18Result(rows)
