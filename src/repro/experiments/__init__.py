"""Experiment runners — one module per paper table / figure.

Every module exposes ``run(fast: bool = True)`` returning a result object
with a ``render()`` method that prints the same rows/series the paper
reports.  ``fast=True`` scales workloads down (fewer tokens, coarser
simulation quantum) for CI; ``fast=False`` runs paper-scale shapes.

See DESIGN.md section 4 for the experiment index.
"""

from repro.experiments.common import (
    SublayerSuite,
    run_sublayer,
    run_sublayer_suite,
    sublayer_cases,
)

__all__ = [
    "SublayerSuite",
    "run_sublayer",
    "run_sublayer_suite",
    "sublayer_cases",
]
