"""The sub-layer experiment driver shared by Figures 15-18.

For one sliced sub-layer (a GEMM + its all-reduce), run every Section 5.3
configuration and collect times + DRAM traffic:

* **Sequential** — co-simulate the GEMM on all GPUs, then ring-RS, then
  ring-AG (each kernel serialized, as on today's GPUs);
* **T3** — fused GEMM-RS (compute-priority arbitration) + sequential AG;
* **T3-MCA** — fused GEMM-RS with the MCA policy + sequential AG;
* **Ideal-GEMM-RS-Overlap** — ``max(GEMM, RS)`` of the *isolated*
  simulated times + AG (no contention, Section 5.3);
* **Ideal-RS+NMC** — ``max(GEMM, RS_NMC)`` + AG, where RS_NMC is the
  closed-form near-memory-compute RS.

The suite is the unit every sub-layer figure reduces over.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.traffic import DramBreakdown, collect_breakdown
from repro.collectives.baseline import RingAllGather, RingReduceScatter
from repro.collectives.api import rs_with_nmc_time
from repro.config import SystemConfig
from repro.faults import FaultInjector, FaultPlan, InvariantChecker
from repro.gpu.gemm import GEMMKernel
from repro.gpu.wavefront import GEMMShape, TileGrid
from repro.interconnect.topology import RingTopology
from repro.memory.cache import estimate_gemm_traffic
from repro.models.transformer import SubLayer
from repro.models import zoo
from repro.sim import Environment
from repro.t3.configs import CONFIGS, RunConfig, config_by_name
from repro.t3.fusion import FusedGEMMRS

#: every configuration name ``run_sublayer_suite`` understands, in the
#: Section 5.3 order.  Requests are validated against this set so a typo
#: (e.g. ``"T3-mca"``) fails immediately instead of surfacing later as a
#: ``KeyError`` in ``SublayerSuite.speedup``.
KNOWN_CONFIG_NAMES: Tuple[str, ...] = tuple(c.name for c in CONFIGS)


@dataclass
class SublayerSuite:
    """All configuration results for one sub-layer."""

    label: str
    shape: GEMMShape
    system: SystemConfig
    #: isolated kernel times (the Figure 15 distribution).
    gemm_time: float = 0.0
    rs_time: float = 0.0
    ag_time: float = 0.0
    #: config name -> total GEMM+RS+AG time.
    times: Dict[str, float] = field(default_factory=dict)
    #: config name -> per-GPU DRAM breakdown.
    traffic: Dict[str, DramBreakdown] = field(default_factory=dict)

    def speedup(self, config: str) -> float:
        return self.times["Sequential"] / self.times[config]

    def data_movement_reduction(self, config: str = "T3-MCA") -> float:
        """Fractional DRAM traffic saved vs Sequential (Figure 18)."""
        base = self.traffic["Sequential"].total
        new = self.traffic[config].total
        return 1.0 - new / base

    # -- serialization (the on-disk sweep cache payload) --------------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "label": self.label,
            "shape": self.shape.to_dict(),
            "system": self.system.to_dict(),
            "gemm_time": self.gemm_time,
            "rs_time": self.rs_time,
            "ag_time": self.ag_time,
            "times": dict(self.times),
            "traffic": {name: bd.as_dict()
                        for name, bd in self.traffic.items()},
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SublayerSuite":
        return cls(
            label=data["label"],
            shape=GEMMShape.from_dict(data["shape"]),
            system=SystemConfig.from_dict(data["system"]),
            gemm_time=data["gemm_time"],
            rs_time=data["rs_time"],
            ag_time=data["ag_time"],
            times=dict(data["times"]),
            traffic={name: DramBreakdown.from_dict(bd)
                     for name, bd in data["traffic"].items()},
        )


def scaled_shape(shape: GEMMShape, scale: int, min_m: int = 256) -> GEMMShape:
    """Shrink the token (M) dimension for fast runs; K/N untouched so the
    compute-vs-communication balance is preserved.  ``min_m`` keeps the
    output chunkable (ring fusion needs >= one tile row per device).

    The unscaled ``shape`` must itself satisfy ``min_m`` — a shape whose M
    is already below the floor cannot be chunked into enough tile rows no
    matter the scale, and silently clamping (the old behavior) let ring
    fusion fail much later with an opaque error.
    """
    if shape.m < min_m:
        raise ValueError(
            f"GEMM shape {shape.name or shape} has m={shape.m} < min_m="
            f"{min_m}: the output cannot be chunked into enough macro-tile "
            f"rows for ring fusion; reduce tp, enlarge the batch/sequence, "
            f"or shrink the kernel's macro_tile_m")
    if scale <= 1:
        return shape
    new_m = max(shape.m // scale, min_m, 256)
    return dataclasses.replace(shape, m=min(new_m, shape.m))


def _attach_resilience(env: Environment, resilience) -> None:
    """Attach a :class:`~repro.resilience.ResilienceRuntime` when asked.

    ``resilience`` is falsy (off), ``True`` (default policy) or a
    :class:`~repro.resilience.ResiliencePolicy`.  Attaching before the
    topology wires matters: static link degradation is recorded at wiring
    time and must reach the runtime's fault-observed feed.
    """
    if not resilience:
        return
    from repro.resilience import ResiliencePolicy, ResilienceRuntime
    policy = resilience if isinstance(resilience, ResiliencePolicy) else None
    ResilienceRuntime(policy).attach(env)


def _fresh_topology(system: SystemConfig, policy: str,
                    record_traffic: bool = False,
                    faults: Optional[FaultPlan] = None,
                    check_invariants: bool = False,
                    obs=None,
                    resilience=None,
                    trace=None,
                    ) -> Tuple[Environment, RingTopology]:
    env = Environment()
    if obs is not None:
        env.obs = obs
    if trace is not None:
        env.trace = trace
    if faults is not None:
        env.faults = FaultInjector(faults)
        env.faults.bind_env(env)
        if obs is not None:
            env.faults.bind_obs(obs)
    if check_invariants:
        env.invariants = InvariantChecker(env)
    _attach_resilience(env, resilience)
    if record_traffic:
        system = system.with_fidelity(record_traffic=True)
    return env, RingTopology(env, system, policy_name=policy)


def _run_sequential(system: SystemConfig, shape: GEMMShape,
                    record_traffic: bool = False,
                    faults: Optional[FaultPlan] = None,
                    check_invariants: bool = False,
                    obs=None, resilience=None, trace=None):
    """GEMM on all GPUs, then ring-RS, then ring-AG; returns parts."""
    env, topo = _fresh_topology(system, "compute-priority", record_traffic,
                                faults, check_invariants, obs, resilience,
                                trace)
    kernels = []
    for gpu in topo.gpus:
        grid = TileGrid(shape, system.gemm, n_cus=system.compute.n_cus)
        traffic = estimate_gemm_traffic(grid, system.memory,
                                        bypass_writes=False)
        kernels.append(GEMMKernel(grid, traffic))
    procs = [gpu.launch(k) for gpu, k in zip(topo.gpus, kernels)]
    env.run()
    if any(not p.fired for p in procs):
        raise RuntimeError("sequential GEMM never finished\n"
                           + env.diagnostic_dump())
    gemm_time = max(k.result.duration for k in kernels)

    rs = RingReduceScatter(topo, nbytes_total=shape.output_bytes)
    rs_time = rs.run().duration
    ag = RingAllGather(topo, nbytes_total=shape.output_bytes)
    ag_time = ag.run().duration
    if env.invariants is not None:
        env.invariants.check_all()
    return topo, gemm_time, rs_time, ag_time


def _run_fused(system: SystemConfig, shape: GEMMShape, config: RunConfig,
               record_traffic: bool = False,
               faults: Optional[FaultPlan] = None,
               check_invariants: bool = False,
               obs=None, resilience=None, trace=None):
    env, topo = _fresh_topology(system, config.mc_policy, record_traffic,
                                faults, check_invariants, obs, resilience,
                                trace)
    fused = FusedGEMMRS(topo, shape,
                        calibrate_mca=(config.mc_policy == "mca"))
    fused_result = fused.run()
    ag = RingAllGather(topo, nbytes_total=shape.output_bytes)
    ag_time = ag.run().duration
    if env.invariants is not None:
        env.invariants.check_all()
    total = fused_result.duration + ag_time
    return topo, fused, total


def run_sublayer_suite(system: SystemConfig, shape: GEMMShape,
                       label: str = "",
                       configs: Optional[List[str]] = None,
                       record_traffic: bool = False,
                       faults: Optional[FaultPlan] = None,
                       check_invariants: bool = False,
                       obs_sink: Optional[Dict[str, object]] = None,
                       resilience=None,
                       trace_sink: Optional[Dict[str, object]] = None,
                       ) -> SublayerSuite:
    """Run every requested configuration on one sub-layer GEMM shape.

    ``faults`` injects a :class:`~repro.faults.FaultPlan` into every
    simulated configuration (each gets a fresh, identically-seeded
    injector); ``check_invariants`` attaches an
    :class:`~repro.faults.InvariantChecker` to every run.  Both are
    observationally transparent when the plan is empty / checks pass.

    ``obs_sink`` (a mutable mapping) opts into telemetry: each simulated
    configuration runs with a fresh
    :class:`~repro.obs.MetricsRegistry` attached, stored into the sink
    under the configuration name.  Registries are recorded per-run and
    are not cacheable, so profiled suites must bypass the sweep cache
    (see ``repro.experiments.profile``).  Recording is passive: the
    returned suite is identical with or without a sink.

    ``resilience`` (falsy, ``True``, or a
    :class:`~repro.resilience.ResiliencePolicy`) attaches a
    :class:`~repro.resilience.ResilienceRuntime` to every run.  The
    runtime stays dormant — and the suite byte-identical — until a fault
    actually manifests, at which point it recovers lost DMA completions
    and evicted Tracker regions in-run.

    ``trace_sink`` mirrors ``obs_sink`` for execution traces: each
    simulated configuration runs with a fresh decomposition-grade
    :class:`~repro.analysis.trace.TraceRecorder` (``record_dram=True``)
    attached, stored under the configuration name.  Like registries,
    recorders are per-run state — traced suites must bypass the sweep
    cache.
    """
    wanted = configs or list(KNOWN_CONFIG_NAMES)
    unknown = [name for name in wanted if name not in KNOWN_CONFIG_NAMES]
    if unknown:
        raise ValueError(
            f"unknown configuration name(s) {unknown!r}; choose from "
            f"{list(KNOWN_CONFIG_NAMES)}")

    def _registry(name: str):
        if obs_sink is None:
            return None
        from repro.obs import MetricsRegistry
        obs_sink[name] = MetricsRegistry()
        return obs_sink[name]

    def _trace(name: str):
        if trace_sink is None:
            return None
        from repro.analysis.trace import TraceRecorder
        trace_sink[name] = TraceRecorder(record_dram=True)
        return trace_sink[name]

    suite = SublayerSuite(label=label or shape.name, shape=shape,
                          system=system)

    topo, gemm_t, rs_t, ag_t = _run_sequential(system, shape, record_traffic,
                                               faults, check_invariants,
                                               obs=_registry("Sequential"),
                                               resilience=resilience,
                                               trace=_trace("Sequential"))
    suite.gemm_time, suite.rs_time, suite.ag_time = gemm_t, rs_t, ag_t
    suite.times["Sequential"] = gemm_t + rs_t + ag_t
    suite.traffic["Sequential"] = collect_breakdown(topo.gpus)

    for name in ("T3", "T3-MCA"):
        if name not in wanted:
            continue
        topo_f, _fused, total = _run_fused(
            system, shape, config_by_name(name), record_traffic,
            faults, check_invariants, obs=_registry(name),
            resilience=resilience, trace=_trace(name))
        suite.times[name] = total
        suite.traffic[name] = collect_breakdown(topo_f.gpus)

    if "Ideal-GEMM-RS-Overlap" in wanted:
        suite.times["Ideal-GEMM-RS-Overlap"] = max(gemm_t, rs_t) + ag_t
        suite.traffic["Ideal-GEMM-RS-Overlap"] = suite.traffic["Sequential"]
    if "Ideal-RS+NMC" in wanted:
        nmc_rs = rs_with_nmc_time(shape.output_bytes, system)
        suite.times["Ideal-RS+NMC"] = max(gemm_t, nmc_rs) + ag_t
        suite.traffic["Ideal-RS+NMC"] = suite.traffic["Sequential"]
    return suite


def run_sublayer(system: SystemConfig, sublayer: SubLayer,
                 config: str = "T3-MCA", scale: int = 1) -> SublayerSuite:
    """Public API entry: run one model sub-layer under one configuration
    (plus Sequential, which every speedup is measured against)."""
    shape = scaled_shape(sublayer.gemm, scale)
    configs = ["Sequential"] if config == "Sequential" else ["Sequential",
                                                             config]
    return run_sublayer_suite(system, shape, label=sublayer.label,
                              configs=configs)


def sublayer_cases(tp_degrees: Tuple[int, ...] = (8, 16),
                   models=None) -> List[SubLayer]:
    """The Figures 15/16/18 case list: OP/FC-2 (fwd) and FC-1/IP (bwd) of
    Mega-GPT-2 and T-NLG at TP = 8 and 16."""
    selected = models if models is not None else zoo.small_models()
    cases: List[SubLayer] = []
    for model in selected:
        for tp in tp_degrees:
            cases.extend(model.ar_sublayers(tp))
    return cases
