"""Chaos campaign: the resilience layer vs a seeded fault barrage.

Every scenario injects one fault (kind x severity x topology x
scheduler x seed, all drawn deterministically from the campaign seed)
into a fused GEMM-RS and measures three things:

* the **no-response baseline** — the same fused run without the
  resilience layer.  Dropped DMA completions and Tracker evictions
  deadlock it (diagnosed by the drain check / watchdog, never a hang);
* the **resilient run** — a :class:`~repro.resilience.ResilienceRuntime`
  attached, walking the :class:`~repro.resilience.ScenarioLadder` on
  failure: RUN -> RETRY (escalated deadlines/budgets) -> REPAIR (the
  plan rebuilt around the runtime's diagnosis) -> FALLBACK (plan-driven
  Sequential on the same faulty machine);
* a **Sequential reference** under the identical fault plan, so retained
  speedup means "how much of T3's win survives the fault *and* the
  recovery overhead".

The report (``results/chaos.txt``) aggregates survival rate, MTTR (mean
time-to-recover over every in-run recovery action), rung distribution
and retained speedup per fault kind, plus the campaign-wide acceptance
numbers: zero invariant violations, zero watchdog hangs, resilient
survival >= 95%.

Scenarios run under a generous event-count watchdog so a regression can
never hang the campaign — a deadlock surfaces as a diagnosed failure.
Nothing here touches the sweep cache: every run is faulty by design and
simulated fresh.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.collectives.baseline import PlannedReduceScatter
from repro.config import SystemConfig, table1_system
from repro.faults import (
    FaultInjector,
    FaultPlan,
    InvariantChecker,
    InvariantViolation,
    LinkDegradation,
    TrackerPressure,
)
from repro.gpu.gemm import GEMMKernel
from repro.gpu.wavefront import GEMMShape, TileGrid
from repro.interconnect.topology import (
    HierarchicalRingTopology,
    RingTopology,
)
from repro.memory.cache import estimate_gemm_traffic
from repro.resilience import (
    LadderRung,
    RepairResult,
    ResiliencePolicy,
    ResilienceRuntime,
    ScenarioLadder,
    repair_for_diagnosis,
)
from repro.sim import Environment
from repro.sim.engine import SimulationError
from repro.t3.fusion import FusedGEMMRS

#: deterministic root seed; every scenario's draws derive from it.
CAMPAIGN_SEED = 747

#: the fault kinds swept (one injected fault per scenario).
FAULT_KINDS: Tuple[str, ...] = ("dropped-dma", "tracker-pressure",
                                "degraded-link", "link-stall", "straggler")

#: severity names, index-aligned with the per-kind parameter tables.
SEVERITIES: Tuple[str, ...] = ("mild", "moderate", "severe")

#: per-kind severity parameters (mild, moderate, severe).
DROP_EVENTS = (1, 2, 3)                  # dropped completions
EVICT_EVERY = (8, 5, 3)                  # force-evict cadence
BANDWIDTH_FACTORS = (0.5, 0.25, 0.1)     # degraded-link fraction
STALLS = ((4_000.0, 0.3), (8_000.0, 0.5), (16_000.0, 0.8))  # (ns, prob)
STRAGGLER_FACTORS = (1.5, 2.0, 3.0)      # compute slowdown

#: the two fused schedulers exercised per scenario.
SCHEDULERS: Tuple[str, ...] = ("T3", "T3-MCA")

#: seeds per (kind, severity, topology, scheduler) cell.
FAST_SEEDS = 4
FULL_SEEDS = 8

#: chunkable-but-quick shape: 4x4 macro tiles on the Table-1 system.
CHAOS_SHAPE = GEMMShape(m=512, n=512, k=512, name="chaos-512")

#: event budget per run — two orders of magnitude above a healthy run
#: (~3k events), so only a genuine runaway trips it.
WATCHDOG_EVENTS = 2_000_000


@dataclass(frozen=True)
class TopologySpec:
    """One campaign topology: a flat ring or a node-grouped hierarchy."""

    name: str
    n_gpus: int
    gpus_per_node: Optional[int] = None


TOPOLOGIES: Tuple[TopologySpec, ...] = (
    TopologySpec("ring-4", 4),
    TopologySpec("hier-2x4", 8, gpus_per_node=4),
)


def _draw(seed: int, *key) -> int:
    """Deterministic 64-bit draw from the campaign seed + a key tuple."""
    payload = repr((CAMPAIGN_SEED, seed) + key).encode()
    return int.from_bytes(hashlib.sha256(payload).digest()[:8], "big")


@dataclass(frozen=True)
class ChaosScenario:
    """One fully-resolved campaign cell."""

    index: int
    kind: str
    severity: str
    topology: TopologySpec
    scheduler: str
    seed: int
    plan: FaultPlan
    detail: str


def _ring_edges(spec: TopologySpec) -> List[Tuple[int, int]]:
    """The directed edges a ring-RS plan on ``spec`` can use (forward
    intra edges, node closures and rails for hierarchies) — the pool a
    link fault's target is drawn from, so every injected link fault hits
    an edge the collective actually exercises."""
    n = spec.n_gpus
    if not spec.gpus_per_node:
        return [(r, (r - 1) % n) for r in range(n)]
    per = spec.gpus_per_node
    n_nodes = n // per
    edges: List[Tuple[int, int]] = []
    for k in range(n_nodes):
        base = k * per
        # forward intra-node ring (position g sends to g-1, wrapping via
        # the node-closure link).
        for g in range(per):
            edges.append((base + g, base + (g - 1) % per))
        # inter-node rails: same position, next node down.
        for g in range(per):
            edges.append((base + g, ((k - 1) % n_nodes) * per + g))
    return edges


def _fault_for(kind: str, severity: str, spec: TopologySpec,
               seed: int) -> Tuple[FaultPlan, str]:
    """Build the scenario's fault plan; targets are seeded draws."""
    level = SEVERITIES.index(severity)
    draw = _draw(seed, kind, severity, spec.name)
    if kind == "dropped-dma":
        gpu = draw % spec.n_gpus
        events = DROP_EVENTS[level]
        return (FaultPlan.dropped_dma(gpu_id=gpu, max_events=events,
                                      seed=seed),
                f"drop {events} completion(s) on gpu{gpu}")
    if kind == "tracker-pressure":
        gpu = draw % spec.n_gpus
        every = EVICT_EVERY[level]
        return (FaultPlan(seed=seed, tracker=(
                    TrackerPressure(gpu_id=gpu, evict_every=every),)),
                f"force-evict every {every}th region on gpu{gpu}")
    if kind == "degraded-link":
        edges = _ring_edges(spec)
        src, dst = edges[draw % len(edges)]
        factor = BANDWIDTH_FACTORS[level]
        return (FaultPlan.degraded_link(src=src, dst=dst,
                                        bandwidth_factor=factor, seed=seed),
                f"link {src}->{dst} at {factor:.0%} bandwidth")
    if kind == "link-stall":
        edges = _ring_edges(spec)
        src, dst = edges[draw % len(edges)]
        stall_ns, prob = STALLS[level]
        return (FaultPlan(seed=seed, links=(LinkDegradation(
                    src=src, dst=dst, stall_ns=stall_ns,
                    stall_probability=prob),)),
                f"link {src}->{dst} stalls {stall_ns:.0f}ns @ p={prob}")
    if kind == "straggler":
        gpu = draw % spec.n_gpus
        factor = STRAGGLER_FACTORS[level]
        return (FaultPlan.straggler(gpu_id=gpu, factor=factor, seed=seed),
                f"gpu{gpu} computes {factor}x slower")
    raise ValueError(f"unknown chaos fault kind {kind!r}")


def campaign_scenarios(seeds: int = FAST_SEEDS) -> List[ChaosScenario]:
    """The full deterministic scenario grid, in a stable order."""
    scenarios: List[ChaosScenario] = []
    index = 0
    for kind in FAULT_KINDS:
        for severity in SEVERITIES:
            for spec in TOPOLOGIES:
                for scheduler in SCHEDULERS:
                    for seed in range(seeds):
                        plan, detail = _fault_for(kind, severity, spec,
                                                  seed)
                        scenarios.append(ChaosScenario(
                            index=index, kind=kind, severity=severity,
                            topology=spec, scheduler=scheduler, seed=seed,
                            plan=plan, detail=detail))
                        index += 1
    return scenarios


# -- per-scenario execution ----------------------------------------------------


@dataclass
class Attempt:
    """One simulated run inside a scenario (any rung)."""

    ok: bool
    duration: float = 0.0
    error: str = ""
    runtime: Optional[ResilienceRuntime] = None
    plan: Optional[object] = None        # the fused CollectivePlan used
    invariant_violation: bool = False
    watchdog: bool = False

    @property
    def survived(self) -> bool:
        return self.ok and not self.invariant_violation


def _build_env(spec: TopologySpec, system: SystemConfig, mc_policy: str,
               plan: FaultPlan,
               resilience: Optional[ResiliencePolicy],
               check_invariants: bool = True,
               trace=None, obs=None):
    """Fresh environment + topology for one run.  The resilience runtime
    attaches *before* the topology wires so statically-degraded links are
    reported to its fault-observed feed."""
    env = Environment()
    env.configure_watchdog(max_events=WATCHDOG_EVENTS)
    if trace is not None:
        env.trace = trace
    if obs is not None:
        env.obs = obs
    env.faults = FaultInjector(plan)
    env.faults.bind_env(env)
    if obs is not None:
        env.faults.bind_obs(obs)
    if check_invariants:
        env.invariants = InvariantChecker(env)
    runtime = (ResilienceRuntime(resilience).attach(env)
               if resilience is not None else None)
    if spec.gpus_per_node:
        topo = HierarchicalRingTopology(env, system, spec.gpus_per_node,
                                        policy_name=mc_policy)
    else:
        topo = RingTopology(env, system, policy_name=mc_policy)
    return env, topo, runtime


def _attempt_fused(scenario: ChaosScenario, system: SystemConfig,
                   resilience: Optional[ResiliencePolicy],
                   plan_override=None, trace=None, obs=None) -> Attempt:
    """One fused GEMM-RS run; failures come back diagnosed, not raised."""
    mca = scenario.scheduler == "T3-MCA"
    env, topo, runtime = _build_env(
        scenario.topology, system, "mca" if mca else "compute-priority",
        scenario.plan, resilience, trace=trace, obs=obs)
    collective_plan = None
    try:
        fused = FusedGEMMRS(topo, CHAOS_SHAPE, calibrate_mca=mca,
                            plan=plan_override)
        collective_plan = fused.plan
        result = fused.run()
    except (SimulationError, RuntimeError) as exc:
        return Attempt(ok=False, error=str(exc), runtime=runtime,
                       plan=collective_plan,
                       watchdog="watchdog" in str(exc).lower())
    attempt = Attempt(ok=True, duration=result.duration, runtime=runtime,
                      plan=collective_plan)
    try:
        env.invariants.check_all()
    except InvariantViolation as exc:
        attempt.invariant_violation = True
        attempt.error = str(exc)
    return attempt


def _plan_driven_time(scenario: ChaosScenario,
                      system: SystemConfig) -> float:
    """Sequential GEMM + plan-driven reduce-scatter on the same faulty
    machine — both the FALLBACK rung and the retained-speedup reference.
    Runs in a fresh environment (no armed deadline timers, no DMA
    engines for the faults to kill)."""
    env, topo, _ = _build_env(scenario.topology, system,
                              "compute-priority", scenario.plan,
                              resilience=None)
    kernels = []
    for gpu in topo.gpus:
        grid = TileGrid(CHAOS_SHAPE, system.gemm,
                        n_cus=system.compute.n_cus)
        traffic = estimate_gemm_traffic(grid, system.memory,
                                        bypass_writes=False)
        kernels.append(GEMMKernel(grid, traffic))
    procs = [gpu.launch(k) for gpu, k in zip(topo.gpus, kernels)]
    env.run()
    if any(not p.fired for p in procs):
        raise SimulationError("chaos fallback GEMM never finished\n"
                              + env.diagnostic_dump())
    gemm_time = max(k.result.duration for k in kernels)
    rs = PlannedReduceScatter(topo, CHAOS_SHAPE.output_bytes)
    rs_time = rs.run().duration
    if env.invariants is not None:
        env.invariants.check_all()
    return gemm_time + rs_time


@dataclass
class ScenarioOutcome:
    """Everything measured for one scenario."""

    scenario: ChaosScenario
    baseline_survived: bool
    baseline_time: Optional[float]
    baseline_error: str
    resilient_survived: bool
    resilient_time: Optional[float]
    rung: LadderRung
    repair_action: str
    sequential_time: Optional[float]
    detections: int
    recoveries: int
    mttr_ns: Optional[float]
    invariant_violation: bool
    watchdog_hang: bool

    @property
    def retained_speedup(self) -> Optional[float]:
        if not self.resilient_survived or not self.sequential_time \
                or not self.resilient_time:
            return None
        return self.sequential_time / self.resilient_time

    @property
    def baseline_speedup(self) -> Optional[float]:
        if not self.baseline_survived or not self.sequential_time \
                or not self.baseline_time:
            return None
        return self.sequential_time / self.baseline_time


def _maybe_repair(attempt: Attempt) -> Optional[RepairResult]:
    """A plan repair derived from the failed attempt's diagnosis, when
    the monitors saw anything actionable."""
    if attempt.runtime is None or attempt.plan is None:
        return None
    repair = repair_for_diagnosis(attempt.plan,
                                  attempt.runtime.diagnosis())
    return repair if repair.changed else None


def run_scenario(scenario: ChaosScenario,
                 system: SystemConfig) -> ScenarioOutcome:
    """Baseline, resilient ladder walk and Sequential reference for one
    scenario."""
    baseline = _attempt_fused(scenario, system, resilience=None)
    try:
        sequential_time: Optional[float] = _plan_driven_time(scenario,
                                                             system)
    except (SimulationError, RuntimeError):
        sequential_time = None

    policy = ResiliencePolicy()
    ladder = ScenarioLadder(max_retries=1)
    runtimes: List[ResilienceRuntime] = []
    repair_action = ""

    current = _attempt_fused(scenario, system, resilience=policy)
    if current.runtime is not None:
        runtimes.append(current.runtime)
    ladder.settled(LadderRung.RUN, current.survived)
    rung = LadderRung.RUN
    while not current.survived:
        repair = _maybe_repair(current)
        rung = ladder.next_rung(can_repair=repair is not None)
        if rung is LadderRung.DEAD:
            break
        if rung is LadderRung.RETRY:
            current = _attempt_fused(
                scenario, system,
                resilience=policy.escalated(ladder.retry_attempt))
        elif rung is LadderRung.REPAIR:
            repair_action = repair.action
            current = _attempt_fused(scenario, system, resilience=policy,
                                     plan_override=repair.plan)
        else:  # FALLBACK: plan-driven Sequential on the faulty machine
            if sequential_time is not None:
                current = Attempt(ok=True, duration=sequential_time)
            else:
                current = Attempt(ok=False,
                                  error="fallback Sequential failed too")
        if current.runtime is not None:
            runtimes.append(current.runtime)
        ladder.settled(rung, current.survived)

    records = [r for rt in runtimes for r in rt.recoveries]
    mttr = (sum(r.time_to_recover_ns for r in records) / len(records)
            if records else None)
    return ScenarioOutcome(
        scenario=scenario,
        baseline_survived=baseline.survived,
        baseline_time=baseline.duration if baseline.survived else None,
        baseline_error=baseline.error.splitlines()[0] if baseline.error
        else "",
        resilient_survived=current.survived,
        resilient_time=current.duration if current.survived else None,
        rung=rung,
        repair_action=repair_action,
        sequential_time=sequential_time,
        detections=sum(rt.detections for rt in runtimes),
        recoveries=len(records),
        mttr_ns=mttr,
        invariant_violation=(baseline.invariant_violation
                             or current.invariant_violation),
        watchdog_hang=baseline.watchdog or current.watchdog,
    )


# -- campaign aggregation ------------------------------------------------------


@dataclass
class ChaosResult:
    """The whole campaign, with the acceptance numbers precomputed."""

    outcomes: List[ScenarioOutcome] = field(default_factory=list)

    @property
    def n_scenarios(self) -> int:
        return len(self.outcomes)

    @property
    def survival_rate(self) -> float:
        if not self.outcomes:
            return 0.0
        return (sum(o.resilient_survived for o in self.outcomes)
                / len(self.outcomes))

    @property
    def baseline_survival_rate(self) -> float:
        if not self.outcomes:
            return 0.0
        return (sum(o.baseline_survived for o in self.outcomes)
                / len(self.outcomes))

    @property
    def invariant_violations(self) -> int:
        return sum(o.invariant_violation for o in self.outcomes)

    @property
    def watchdog_hangs(self) -> int:
        return sum(o.watchdog_hang for o in self.outcomes)

    def mttr_ns(self) -> Optional[float]:
        """Campaign MTTR: mean time-to-recover over every in-run
        recovery action (re-issued completions, restored regions)."""
        with_recoveries = [o for o in self.outcomes if o.mttr_ns is not None]
        if not with_recoveries:
            return None
        total = sum(o.mttr_ns * o.recoveries for o in with_recoveries)
        count = sum(o.recoveries for o in with_recoveries)
        return total / count if count else None

    def mean_retained_speedup(self) -> Optional[float]:
        ratios = [o.retained_speedup for o in self.outcomes
                  if o.retained_speedup is not None]
        return sum(ratios) / len(ratios) if ratios else None

    def mean_baseline_speedup(self) -> Optional[float]:
        ratios = [o.baseline_speedup for o in self.outcomes
                  if o.baseline_speedup is not None]
        return sum(ratios) / len(ratios) if ratios else None

    def rung_distribution(self) -> Dict[str, int]:
        dist: Dict[str, int] = {}
        for o in self.outcomes:
            rung = o.rung.value if o.resilient_survived else "dead"
            dist[rung] = dist.get(rung, 0) + 1
        return dist

    def summary(self) -> Dict[str, object]:
        """The bench-schema payload (see ``repro.obs.bench`` v3)."""
        return {
            "scenarios": self.n_scenarios,
            "survival_rate": round(self.survival_rate, 4),
            "baseline_survival_rate": round(self.baseline_survival_rate,
                                            4),
            "mttr_ns": self.mttr_ns(),
            "retained_speedup": self.mean_retained_speedup(),
            "invariant_violations": self.invariant_violations,
            "watchdog_hangs": self.watchdog_hangs,
        }

    def render(self) -> str:
        lines = ["Chaos campaign — resilience layer vs seeded faults",
                 f"({self.n_scenarios} scenarios: "
                 f"{len(FAULT_KINDS)} fault kinds x "
                 f"{len(SEVERITIES)} severities x "
                 f"{len(TOPOLOGIES)} topologies x "
                 f"{len(SCHEDULERS)} schedulers x seeds; "
                 f"shape {CHAOS_SHAPE.name})", ""]
        header = (f"  {'fault kind':<18}{'severity':<10}"
                  f"{'baseline':>9}  {'resilient':>9}  {'recoveries':>10}"
                  f"  {'mttr(ns)':>9}  {'retained':>8}")
        lines.append(header)
        for kind in FAULT_KINDS:
            for severity in SEVERITIES:
                cell = [o for o in self.outcomes
                        if o.scenario.kind == kind
                        and o.scenario.severity == severity]
                if not cell:
                    continue
                base = sum(o.baseline_survived for o in cell)
                res = sum(o.resilient_survived for o in cell)
                recs = sum(o.recoveries for o in cell)
                mttrs = [o.mttr_ns for o in cell if o.mttr_ns is not None]
                weights = [o.recoveries for o in cell
                           if o.mttr_ns is not None]
                mttr = (sum(m * w for m, w in zip(mttrs, weights))
                        / sum(weights)) if weights and sum(weights) else None
                ratios = [o.retained_speedup for o in cell
                          if o.retained_speedup is not None]
                retained = sum(ratios) / len(ratios) if ratios else None
                lines.append(
                    f"  {kind:<18}{severity:<10}"
                    f"{f'{base}/{len(cell)}':>9}  "
                    f"{f'{res}/{len(cell)}':>9}  {recs:>10}  "
                    + (f"{mttr:>9.0f}" if mttr is not None
                       else f"{'-':>9}")
                    + (f"  {retained:>8.3f}" if retained is not None
                       else f"  {'-':>8}"))
        lines.append("")
        dist = self.rung_distribution()
        rungs = ", ".join(f"{name}={dist[name]}" for name in
                          ("run", "retry", "repair", "fallback", "dead")
                          if name in dist)
        lines.append(f"  survival rungs: {rungs}")
        mttr = self.mttr_ns()
        retained = self.mean_retained_speedup()
        base_speedup = self.mean_baseline_speedup()
        lines.append(
            f"  survival rate: resilient {self.survival_rate:.1%} vs "
            f"no-response baseline {self.baseline_survival_rate:.1%}")
        lines.append(
            "  MTTR: " + (f"{mttr:.0f} ns over "
                          f"{sum(o.recoveries for o in self.outcomes)} "
                          "in-run recoveries" if mttr is not None
                          else "no in-run recoveries"))
        lines.append(
            "  retained T3 speedup vs Sequential (same faults): "
            + (f"{retained:.3f}x resilient" if retained is not None
               else "n/a")
            + (f" vs {base_speedup:.3f}x baseline (survivors only)"
               if base_speedup is not None else ""))
        lines.append(
            f"  invariant violations: {self.invariant_violations}; "
            f"watchdog hangs: {self.watchdog_hangs}")
        return "\n".join(lines)


#: per-TP system cache (table-1 systems are pure config; safe to share).
_SYSTEMS: Dict[int, SystemConfig] = {}


def _system_for(n_gpus: int) -> SystemConfig:
    if n_gpus not in _SYSTEMS:
        _SYSTEMS[n_gpus] = table1_system(n_gpus=n_gpus)
    return _SYSTEMS[n_gpus]


def trace_scenario(scenario: ChaosScenario, system: SystemConfig,
                   trace_out: str) -> None:
    """Save a decomposition-grade trace of one scenario's resilient
    fused attempt: spans + fault/resilience incident markers + counter
    tracks + registry snapshot, the input to ``runner trace``."""
    from repro.analysis.trace import TraceRecorder
    from repro.obs import MetricsRegistry
    trace = TraceRecorder(record_dram=True)
    registry = MetricsRegistry()
    _attempt_fused(scenario, system, resilience=ResiliencePolicy(),
                   trace=trace, obs=registry)
    trace.save(trace_out, registry=registry)


def run(fast: bool = True, seeds: Optional[int] = None,
        progress=None, trace_out: Optional[str] = None) -> ChaosResult:
    """Run the campaign (240 scenarios fast, 480 full).

    ``trace_out`` additionally saves a trace of one representative
    scenario's resilient run (the first severe dropped-DMA T3-MCA cell —
    faults manifest *and* recoveries fire, so the incident overlay has
    something to show).
    """
    n_seeds = seeds if seeds is not None else (FAST_SEEDS if fast
                                               else FULL_SEEDS)
    result = ChaosResult()
    scenarios = campaign_scenarios(seeds=n_seeds)
    for scenario in scenarios:
        outcome = run_scenario(scenario,
                               _system_for(scenario.topology.n_gpus))
        result.outcomes.append(outcome)
        if progress is not None:
            progress(outcome)
    if trace_out is not None:
        representative = next(
            (s for s in scenarios if s.kind == "dropped-dma"
             and s.severity == "severe" and s.scheduler == "T3-MCA"),
            scenarios[0])
        trace_scenario(representative,
                       _system_for(representative.topology.n_gpus),
                       trace_out)
    return result
