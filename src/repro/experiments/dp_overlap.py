"""Section 7.2 study: coarse-grained (data-parallel) overlap.

In DP, the gradient reduce-scatter overlaps with *independent* backward
GEMMs — no fusion needed.  The question is interference: today the
collective takes CUs from the GEMM (Figure 6) and its traffic contends in
DRAM.  T3's substrate removes the CU cost entirely (DMA + NMC) and MCA
tames the memory contention — the claim this experiment prices:

* ``CU-split``  — GEMM on 72 CUs concurrent with a CU-driven RS on 8;
* ``NMC-RS/RR`` — GEMM on all 80 CUs concurrent with the zero-CU
  NMC reduce-scatter, round-robin memory arbitration;
* ``NMC-RS/MCA``— same with communication-aware arbitration.

Reported per strategy: makespan (both must finish) and the GEMM's
slowdown versus isolated execution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.collectives.baseline import RingReduceScatter
from repro.config import SystemConfig, table1_system
from repro.experiments.common import scaled_shape
from repro.gpu.gemm import GEMMKernel
from repro.gpu.wavefront import GEMMShape, TileGrid
from repro.interconnect.topology import RingTopology
from repro.memory.cache import estimate_gemm_traffic
from repro.models import zoo
from repro.sim import Environment
from repro.t3.standalone import NMCReduceScatter


@dataclass(frozen=True)
class DPOverlapRow:
    strategy: str
    makespan_us: float
    gemm_slowdown: float
    rs_us: float


@dataclass
class DPOverlapResult:
    rows: List[DPOverlapRow]
    gemm_isolated_us: float

    def render(self) -> str:
        lines = [
            "Section 7.2 — DP-style overlap: independent GEMM vs gradient RS",
            f"(isolated GEMM: {self.gemm_isolated_us:.0f}us)",
            f"{'strategy':14} {'makespan':>9} {'GEMM x':>7} {'RS':>9}",
        ]
        for r in self.rows:
            lines.append(f"{r.strategy:14} {r.makespan_us:>7.0f}us "
                         f"{r.gemm_slowdown:>7.2f} {r.rs_us:>7.0f}us")
        return "\n".join(lines)

    def row(self, strategy: str) -> DPOverlapRow:
        for r in self.rows:
            if r.strategy == strategy:
                return r
        raise KeyError(strategy)


def _gemm_kernels(system: SystemConfig, topo: RingTopology,
                  shape: GEMMShape, n_cus: int) -> List[GEMMKernel]:
    kernels = []
    for _gpu in topo.gpus:
        grid = TileGrid(shape, system.gemm, n_cus=n_cus)
        traffic = estimate_gemm_traffic(grid, system.memory,
                                        bypass_writes=False)
        kernels.append(GEMMKernel(grid, traffic, n_cus=n_cus))
    return kernels


def _run_concurrent(system: SystemConfig, shape: GEMMShape, rs_bytes: int,
                    policy: str, gemm_cus: int, rs_mode: str):
    env = Environment()
    topo = RingTopology(env, system, policy_name=policy)
    kernels = _gemm_kernels(system, topo, shape, gemm_cus)
    gemm_procs = [gpu.launch(k) for gpu, k in zip(topo.gpus, kernels)]
    if rs_mode == "cu":
        rs = RingReduceScatter(topo, nbytes_total=rs_bytes,
                               n_cus=system.compute.n_cus - gemm_cus)
        rs_procs = rs.launch()
        env.run()
        rs_end = max(rs.result.per_rank_end.values())
    else:
        rs = NMCReduceScatter(topo, nbytes_total=rs_bytes)
        rs.launch()
        env.run()
        rs_end = max(rs.result.per_rank_terminal.values())
    if any(not p.fired for p in gemm_procs):
        raise RuntimeError("concurrent GEMM never finished")
    gemm_time = max(k.result.duration for k in kernels)
    makespan = env.now
    return makespan, gemm_time, rs_end


def run(fast: bool = True) -> DPOverlapResult:
    scale = 8 if fast else 2
    shape = scaled_shape(zoo.t_nlg().sublayer("FC-2", 8).gemm, scale)
    system = table1_system(n_gpus=8)
    rs_bytes = shape.output_bytes  # gradient-sized payload

    # Isolated GEMM reference (all 80 CUs, no collective).
    env = Environment()
    topo = RingTopology(env, system)
    kernels = _gemm_kernels(system, topo, shape, system.compute.n_cus)
    for gpu, kernel in zip(topo.gpus, kernels):
        gpu.launch(kernel)
    env.run()
    gemm_isolated = max(k.result.duration for k in kernels)

    rows: List[DPOverlapRow] = []
    for strategy, policy, gemm_cus, rs_mode in (
        ("CU-split", "round-robin", 72, "cu"),
        ("NMC-RS/RR", "round-robin", 80, "nmc"),
        ("NMC-RS/MCA", "mca", 80, "nmc"),
    ):
        makespan, gemm_time, rs_end = _run_concurrent(
            system, shape, rs_bytes, policy, gemm_cus, rs_mode)
        rows.append(DPOverlapRow(
            strategy=strategy,
            makespan_us=makespan / 1e3,
            gemm_slowdown=gemm_time / gemm_isolated,
            rs_us=rs_end / 1e3,
        ))
    return DPOverlapResult(rows, gemm_isolated_us=gemm_isolated / 1e3)
