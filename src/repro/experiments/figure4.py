"""Figure 4: fraction of iteration time in "Sliced GEMM -> AR" vs rest.

For every model/TP/phase the paper stacks the time spent in the sliced
sub-layers (their GEMMs plus the reduce-scatter and all-gather halves of
the all-reduce) against everything else.  This runner reduces the
end-to-end operator model the same way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.config import table1_system
from repro.models import zoo
from repro.models.endtoend import Phase, iteration_breakdown


@dataclass(frozen=True)
class Figure4Row:
    model: str
    tp: int
    phase: str
    sliced_fraction: float      # "Sliced GEMM -> AR" share
    rs_fraction: float
    ag_fraction: float
    comm_fraction: float
    total_ms: float


@dataclass
class Figure4Result:
    rows: List[Figure4Row]

    def render(self) -> str:
        lines = [
            "Figure 4 — time in sliced-GEMM->AR vs rest (per iteration)",
            f"{'model':12} {'tp':>3} {'phase':>9} {'sliced%':>8} "
            f"{'RS%':>6} {'AG%':>6} {'comm%':>7} {'total':>10}",
        ]
        for r in self.rows:
            lines.append(
                f"{r.model:12} {r.tp:>3} {r.phase:>9} "
                f"{100 * r.sliced_fraction:>7.1f}% "
                f"{100 * r.rs_fraction:>5.1f}% {100 * r.ag_fraction:>5.1f}% "
                f"{100 * r.comm_fraction:>6.1f}% {r.total_ms:>8.1f}ms"
            )
        return "\n".join(lines)

    def max_comm_fraction(self, model: str) -> float:
        return max(r.comm_fraction for r in self.rows if r.model == model)


def run(fast: bool = True) -> Figure4Result:
    """``fast`` is accepted for interface uniformity; the model is
    analytic and always cheap."""
    del fast
    rows: List[Figure4Row] = []
    for model in zoo.all_models():
        for tp in zoo.TP_SETUPS[model.name]:
            system = table1_system(n_gpus=tp)
            for phase in (Phase.TRAINING, Phase.PROMPT):
                breakdown = iteration_breakdown(model, tp, system, phase)
                by_cat = breakdown.time_by_category()
                total = breakdown.total_time()
                rows.append(Figure4Row(
                    model=model.name, tp=tp, phase=phase.value,
                    sliced_fraction=breakdown.sliced_fraction(),
                    rs_fraction=by_cat.get("rs", 0.0) / total,
                    ag_fraction=by_cat.get("ag", 0.0) / total,
                    comm_fraction=breakdown.comm_fraction(),
                    total_ms=total / 1e6,
                ))
    return Figure4Result(rows)
