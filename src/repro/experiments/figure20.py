"""Figure 20: T3 on future hardware with 2x compute (Section 7.5).

Compute FLOPs scale faster than network bandwidth; the paper's GPU-2X-CU
configuration doubles the CU count with the network unchanged.  For the
large, compute-dominated FC-2 layers, faster compute shortens the GEMM,
shifting the compute:communication ratio and *increasing* T3's benefit;
for small OP layers the exposed communication grows and the benefit
shrinks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.config import table1_system
from repro.experiments.sublayer_sweep import run_sweep
from repro.models import zoo


@dataclass(frozen=True)
class Figure20Row:
    case: str
    speedup_1x: float       # T3-MCA speedup on the Table 1 GPU
    speedup_2x: float       # T3-MCA speedup on GPU-2X-CU
    ideal_1x: float         # contention-free overlap speedup, Table 1 GPU
    ideal_2x: float         # contention-free overlap speedup, GPU-2X-CU

    @property
    def delta(self) -> float:
        return self.speedup_2x - self.speedup_1x

    @property
    def ideal_delta(self) -> float:
        return self.ideal_2x - self.ideal_1x


@dataclass
class Figure20Result:
    rows: List[Figure20Row]

    def render(self) -> str:
        lines = [
            "Figure 20 — T3-MCA speedups: Table-1 GPU vs GPU-2X-CU",
            f"{'case':24} {'1x CUs':>8} {'2x CUs':>8} {'delta':>8} "
            f"{'ideal1x':>8} {'ideal2x':>8} {'d-ideal':>8}",
        ]
        for r in self.rows:
            lines.append(f"{r.case:24} {r.speedup_1x:>8.3f} "
                         f"{r.speedup_2x:>8.3f} {r.delta:>+8.3f} "
                         f"{r.ideal_1x:>8.3f} {r.ideal_2x:>8.3f} "
                         f"{r.ideal_delta:>+8.3f}")
        return "\n".join(lines)

    def row(self, substr: str) -> Figure20Row:
        for r in self.rows:
            if substr in r.case:
                return r
        raise KeyError(substr)


def run(fast: bool = True, jobs: int | None = None) -> Figure20Result:
    """Large-model shapes are small enough (2K tokens) to simulate at
    full size, which matters here: token-scaling would distort the
    compute:communication balance the figure is about.  Fast mode trims
    the model list instead."""
    models = [zoo.palm()] if fast else zoo.large_models()
    tp = 32
    base_system = table1_system(n_gpus=tp)
    future_system = base_system.scaled_compute(2.0)
    configs = ["Sequential", "T3-MCA"]
    subs = [model.sublayer(name, tp)
            for model in models for name in ("OP", "FC-2")]
    # Both hardware variants of every case in one batched sweep.
    bases = run_sweep(fast=False, cases=subs, configs=configs, jobs=jobs,
                      system_for_tp=lambda _: base_system)
    futures = run_sweep(fast=False, cases=subs, configs=configs, jobs=jobs,
                        system_for_tp=lambda _: future_system)

    def ideal(suite):
        overlapped = max(suite.gemm_time, suite.rs_time) + suite.ag_time
        return suite.times["Sequential"] / overlapped

    rows: List[Figure20Row] = []
    for sub, base, future in zip(subs, bases, futures):
        rows.append(Figure20Row(
            case=sub.label,
            speedup_1x=base.speedup("T3-MCA"),
            speedup_2x=future.speedup("T3-MCA"),
            ideal_1x=ideal(base),
            ideal_2x=ideal(future),
        ))
    return Figure20Result(rows)
