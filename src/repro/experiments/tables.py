"""Tables 1-3: configuration, model zoo, and prior-work comparison.

Table 1 and 2 render the machine / model configurations used everywhere
else (so a reader can diff them against the paper directly); Table 3 is
the qualitative feature matrix contrasting T3-MCA with prior approaches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro import units
from repro.config import SystemConfig, table1_system
from repro.models import zoo


@dataclass
class Table1Result:
    system: SystemConfig

    def render(self) -> str:
        s = self.system
        rows = [
            ("#GPUs", f"{s.n_gpus} (8/16 studied)"),
            ("Inter-GPU interconnect",
             f"ring, {s.link.bidirectional_bandwidth:.0f} GB/s "
             f"bi-directional, {s.link.latency_ns:.0f} ns link latency"),
            ("#CUs", f"{s.compute.n_cus} @ {s.compute.clock_ghz} GHz"),
            ("Per-CU threads", f"{s.compute.threads_per_cu}"),
            ("LLC", f"{s.memory.llc_bytes // units.MiB} MiB, "
                    f"{s.memory.llc_banks} banks"),
            ("HBM", f"{s.memory.hbm_bandwidth / 1000:.0f} TB/s peak, "
                    f"CCDWL = {s.memory.nmc_ccdwl_factor:.0f}x CCDL "
                    "for NMC op-and-store"),
            ("Tracker", f"{s.tracker.n_entries} entries, "
                        f"{s.tracker.ways}-way, "
                        f"{s.tracker.size_bytes // units.KiB} KB"),
            ("MCA thresholds",
             f"{s.mca.occupancy_thresholds} by memory intensity"),
        ]
        width = max(len(k) for k, _ in rows) + 2
        lines = ["Table 1 — simulated system"]
        lines += [f"{k.ljust(width)}{v}" for k, v in rows]
        return "\n".join(lines)


@dataclass
class Table2Result:
    rows: List[Tuple[str, int, int, int, int, Tuple[int, ...]]]

    def render(self) -> str:
        lines = [
            "Table 2 — studied models",
            f"{'model':12} {'H':>6} {'L':>4} {'SL':>5} {'B':>3} "
            f"{'params':>8} {'TP':>8}",
        ]
        for name, h, layers, sl, b, tps in self.rows:
            params = zoo.by_name(name).n_parameters
            lines.append(
                f"{name:12} {h:>6} {layers:>4} {sl:>5} {b:>3} "
                f"{params / 1e9:>7.0f}B {str(list(tps)):>8}")
        return "\n".join(lines)


#: Table 3 — approach -> feature booleans, transcribed from the paper:
#: (GPU support, transparent, overlap, reduce contention,
#:  no extra accelerator, topology independent)
TABLE3_FEATURES: Dict[str, Tuple[bool, bool, bool, bool, bool, bool]] = {
    "In-switch": (True, True, False, False, False, False),
    "ACE": (True, True, False, True, False, False),
    "CoCoNet": (True, False, True, False, True, True),
    "Google Decomposition": (True, False, True, False, True, True),
    "T3-MCA": (True, True, True, True, True, True),
}

TABLE3_COLUMNS = (
    "GPU support",
    "Transparent",
    "Comm. overlap",
    "Reduce contention",
    "No extra accelerator",
    "Topology independent",
)


@dataclass
class Table3Result:
    features: Dict[str, Tuple[bool, ...]]

    def render(self) -> str:
        lines = ["Table 3 — comparison with prior work"]
        header = f"{'approach':22}" + "".join(
            f"{c[:12]:>14}" for c in TABLE3_COLUMNS)
        lines.append(header)
        for approach, flags in self.features.items():
            lines.append(f"{approach:22}" + "".join(
                f"{'yes' if f else 'X':>14}" for f in flags))
        return "\n".join(lines)

    def dominates(self, approach: str = "T3-MCA") -> bool:
        """T3-MCA must have every feature the others lack at least once."""
        ours = self.features[approach]
        return all(ours)


def run_table1(fast: bool = True) -> Table1Result:
    del fast
    return Table1Result(system=table1_system(n_gpus=8))


def run_table2(fast: bool = True) -> Table2Result:
    del fast
    rows = []
    for model in zoo.all_models():
        rows.append((model.name, model.hidden, model.n_layers,
                     model.seq_len, model.batch,
                     zoo.TP_SETUPS[model.name]))
    return Table2Result(rows)


def run_table3(fast: bool = True) -> Table3Result:
    del fast
    return Table3Result(dict(TABLE3_FEATURES))
