"""Scale-out study: fused T3 across nodes (Section 7.8).

The paper's evaluation keeps tensor parallelism inside one node; its
Section 7.8 discussion argues the mechanism generalizes to multi-node
TP where the inter-node hops are the expensive part.  With the
:class:`~repro.collectives.plan.CollectivePlan` layer this is now
runnable: on a :class:`~repro.interconnect.topology.HierarchicalRingTopology`
the fused GEMM-RS programs itself from the two-phase hierarchical plan
(intra-node rings, then per-position inter-node rail rings) and the same
Tracker/Trigger/DMA machinery reduces across nodes.

The experiment compares, for the same 8-GPU sub-layer GEMM:

* **1 node x 8 GPUs** — the paper's single-node setup (flat ring plan);
* **2 nodes x 4 GPUs** — the same 8 ranks split over two nodes joined by
  slow links (plan stages ``intra`` + ``inter``).

Per case, **Sequential** is the co-simulated GEMM followed by the
plan-driven CU reduce-scatter
(:class:`~repro.collectives.baseline.PlannedReduceScatter` — apples to
apples, it walks the same plan); **T3-MCA** is the fused run.  The
hierarchical T3-MCA run reports per-plan-stage overlap attribution:
intra-node communication hides under the GEMM while the inter-node rail
phase — serialized after each chunk's intra reduction — is where the
remaining exposure concentrates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.collectives.baseline import PlannedReduceScatter
from repro.config import SystemConfig, table1_system
from repro.experiments.common import scaled_shape
from repro.faults import InvariantChecker
from repro.gpu.gemm import GEMMKernel
from repro.gpu.wavefront import GEMMShape, TileGrid
from repro.interconnect.topology import (
    HierarchicalRingTopology,
    RingTopology,
    Topology,
)
from repro.memory.cache import estimate_gemm_traffic
from repro.models import zoo
from repro.obs import MetricsRegistry
from repro.obs.profiler import PlanStageSpan, attribute_plan_stages
from repro.sim import Environment
from repro.t3.fusion import FusedGEMMRS


@dataclass
class ScaleoutRow:
    """One topology case of the scale-out comparison."""

    label: str
    n_nodes: int
    gpus_per_node: int
    sequential_us: float
    t3_mca_us: float
    #: plan phases of the fused run, in plan order.
    stage_names: List[str] = field(default_factory=list)
    #: per-phase overlap attribution of the T3-MCA run.
    plan_stages: List[PlanStageSpan] = field(default_factory=list)

    @property
    def speedup(self) -> float:
        return self.sequential_us / self.t3_mca_us


@dataclass
class ScaleoutResult:
    """The rendered scale-out study."""

    case_label: str
    rows: List[ScaleoutRow]

    def row(self, label: str) -> ScaleoutRow:
        for row in self.rows:
            if row.label == label:
                return row
        raise KeyError(label)

    def render(self) -> str:
        lines = [
            "Section 7.8 — scale-out: fused T3 across nodes "
            f"({self.case_label})",
            f"{'case':18} {'Sequential':>11} {'T3-MCA':>9} {'speedup':>8} "
            f"{'plan':>12}",
        ]
        for r in self.rows:
            lines.append(
                f"{r.label:18} {r.sequential_us:>9.1f}us "
                f"{r.t3_mca_us:>7.1f}us {r.speedup:>8.3f} "
                f"{'+'.join(r.stage_names):>12}")
        for r in self.rows:
            if not r.plan_stages:
                continue
            lines.append("")
            lines.append(f"Plan-stage attribution ({r.label}, T3-MCA):")
            for span in r.plan_stages:
                hidden_pct = (100.0 * span.hidden_ns / span.comm_ns
                              if span.comm_ns else 0.0)
                lines.append(
                    f"  {span.stage:>6}: comm={span.comm_ns / 1e3:>7.1f}us  "
                    f"hidden={span.hidden_ns / 1e3:>7.1f}us  "
                    f"exposed={span.exposed_ns / 1e3:>7.1f}us  "
                    f"({hidden_pct:.0f}% hidden)")
        return "\n".join(lines)


def _make_topology(env: Environment, system: SystemConfig,
                   gpus_per_node: int, policy: str) -> Topology:
    if gpus_per_node == system.n_gpus:
        return RingTopology(env, system, policy_name=policy)
    return HierarchicalRingTopology(env, system,
                                    gpus_per_node=gpus_per_node,
                                    policy_name=policy)


def _run_sequential(system: SystemConfig, shape: GEMMShape,
                    gpus_per_node: int) -> float:
    """Co-simulated GEMM on every rank, then the plan-driven CU RS."""
    env = Environment()
    env.invariants = InvariantChecker(env)
    topo = _make_topology(env, system, gpus_per_node, "compute-priority")
    kernels = []
    for gpu in topo.gpus:
        grid = TileGrid(shape, system.gemm, n_cus=system.compute.n_cus)
        traffic = estimate_gemm_traffic(grid, system.memory,
                                        bypass_writes=False)
        kernels.append(GEMMKernel(grid, traffic))
    procs = [gpu.launch(k) for gpu, k in zip(topo.gpus, kernels)]
    env.run()
    if any(not p.fired for p in procs):
        raise RuntimeError("scaleout sequential GEMM never finished\n"
                           + env.diagnostic_dump())
    gemm_time = max(k.result.duration for k in kernels)
    rs = PlannedReduceScatter(topo, nbytes_total=shape.output_bytes)
    rs_time = rs.run().duration
    env.invariants.check_all()
    return gemm_time + rs_time


def _run_fused(system: SystemConfig, shape: GEMMShape, gpus_per_node: int,
               registry: Optional[MetricsRegistry] = None,
               trace=None):
    env = Environment()
    if registry is not None:
        env.obs = registry
    if trace is not None:
        env.trace = trace
    env.invariants = InvariantChecker(env)
    topo = _make_topology(env, system, gpus_per_node, "mca")
    fused = FusedGEMMRS(topo, shape, calibrate_mca=True)
    result = fused.run()
    env.invariants.check_all()
    return fused, result.duration


def run(fast: bool = True,
        trace_out: Optional[str] = None) -> ScaleoutResult:
    """Compare single-node vs two-node fused T3 on one sub-layer GEMM.

    ``trace_out`` saves a decomposition-grade trace (spans + counter
    tracks + registry snapshot) of the **2-node fused T3-MCA run** —
    the case where inter-node exposure concentrates and the post-hoc
    trace analysis (``runner trace``) has the most to say.
    """
    scale = 16 if fast else 1
    sub = zoo.t_nlg().sublayer("FC-2", 8)
    shape = scaled_shape(sub.gemm, scale)
    system = table1_system(n_gpus=8)
    cases = (
        ("1 node x 8 GPUs", 1, 8),
        ("2 nodes x 4 GPUs", 2, 4),
    )
    rows: List[ScaleoutRow] = []
    for label, n_nodes, per in cases:
        sequential = _run_sequential(system, shape, per)
        registry = MetricsRegistry()
        trace = None
        if trace_out is not None and n_nodes > 1:
            from repro.analysis.trace import TraceRecorder
            trace = TraceRecorder(record_dram=True)
        fused, fused_time = _run_fused(system, shape, per, registry, trace)
        if trace is not None:
            trace.save(trace_out, registry=registry)
        rows.append(ScaleoutRow(
            label=label, n_nodes=n_nodes, gpus_per_node=per,
            sequential_us=sequential / 1e3,
            t3_mca_us=fused_time / 1e3,
            stage_names=list(fused.plan.stage_names),
            plan_stages=attribute_plan_stages(
                registry, stage_order=list(fused.plan.stage_names)),
        ))
    return ScaleoutResult(case_label=f"{sub.label}, fast={fast}", rows=rows)
