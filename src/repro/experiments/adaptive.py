"""Adaptive overlap-policy study: does closing the telemetry loop pay?

The static paper policy (:class:`~repro.policy.StaticPaperPolicy`) picks
one MCA occupancy threshold per producer kernel and never revisits it.
:class:`~repro.policy.AdaptiveMcaPolicy` retunes that threshold
mid-kernel from the gate-deferral EWMA sampled at the arbiter sites.
This experiment measures where that adaptivity actually pays, on the
three weak-spot suites the ROADMAP calls out plus a healthy control:

* **degraded-link** — GPU 0's send link at 50% bandwidth (the
  fault-sweep's flaky-retimer scenario): the ring stretches, partials
  arrive late, and a tight static gate keeps deferring the comm that
  the elongated timeline could hide;
* **straggler** — GPU 0's compute slowed 1.5x: same story from the
  compute side;
* **hierarchical** — the scale-out 2-node x 4-GPU fused run, where the
  inter-node rail phase concentrates exposure;
* **mixed** — the healthy Mega-GPT-2 TP=8 sub-layer sequence, the
  control group (adaptivity should at worst break even here).

Every case runs the fused **T3-MCA** configuration twice — once per
policy, explicitly pinned via ``SystemConfig.with_policy`` so the
process-wide ``--policy`` default cannot skew the comparison — and
reports the machine-level **exposed communication time** from
:func:`repro.obs.profiler.decompose`.  The suites run at a finer
memory-transaction quantum (:data:`ADAPTIVE_QUANTUM`) than the figure
sweeps: the occupancy gate arbitrates per request, and at the default
64 KiB quantum a fast-mode chunk is a handful of transactions — too
coarse for per-request admission to be exercised at all.

Runs are uncached by design (each carries a per-run metrics registry,
which the sweep cache cannot hold); ``trace_out`` re-runs the first
straggler case with a trace recorder attached and saves it with the
registry snapshot, so ``runner trace --pass policy-decisions`` can join
the per-decision policy instants against the arbiter's deferral
attribution.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.config import SystemConfig, table1_system
from repro.experiments.fault_sweep import SWEEP_SEED
from repro.experiments.fault_sweep import default_cases as fault_cases
from repro.experiments.sublayer_sweep import FAST_SCALE, simulate_case
from repro.faults import ANY, FaultPlan
from repro.models import zoo
from repro.obs import MetricsRegistry
from repro.obs.profiler import decompose

#: memory-transaction quantum for every policy-study run (see module
#: docstring — the admission gate needs per-request granularity).
ADAPTIVE_QUANTUM = 8 * 1024

#: configurations simulated per case (Sequential anchors the suite; the
#: policies are compared on the fused T3-MCA run).
CONFIGS: Tuple[str, ...] = ("Sequential", "T3-MCA")

#: the two policies under comparison.
POLICY_KINDS: Tuple[str, ...] = ("static", "adaptive")

#: degraded-link severity (bandwidth fraction of GPU 0's send link).
LINK_FACTOR = 0.5

#: straggler severity (GPU 0 compute-slowdown factor).
STRAGGLER_FACTOR = 1.5

#: the suites whose exposed-communication reduction feeds the bench
#: payload's geomean (the faulty suites the acceptance bar is set on).
FAULT_SUITES: Tuple[str, ...] = ("degraded-link", "straggler")


@dataclass
class PolicyMeasure:
    """One policy's measurement of one case's fused T3-MCA run."""

    total_ns: float
    exposed_ns: float
    hidden_ns: float
    retunes: int = 0

    def to_dict(self) -> Dict[str, float]:
        return {"total_ns": self.total_ns, "exposed_ns": self.exposed_ns,
                "hidden_ns": self.hidden_ns, "retunes": self.retunes}


@dataclass
class PolicyCase:
    """Static-vs-adaptive comparison on one case of one suite."""

    suite: str
    label: str
    static: PolicyMeasure
    adaptive: PolicyMeasure

    @property
    def exposed_delta_ns(self) -> float:
        """Exposed-communication time saved by the adaptive policy."""
        return self.static.exposed_ns - self.adaptive.exposed_ns

    @property
    def exposed_reduction(self) -> float:
        """Fraction of static exposure the adaptive policy removed."""
        if self.static.exposed_ns <= 0:
            return 0.0
        return self.exposed_delta_ns / self.static.exposed_ns


@dataclass
class AdaptiveResult:
    """All suites of the policy study, ready to render."""

    fast: bool
    cases: List[PolicyCase] = field(default_factory=list)

    def suite(self, name: str) -> List[PolicyCase]:
        return [case for case in self.cases if case.suite == name]

    def suite_names(self) -> List[str]:
        seen: List[str] = []
        for case in self.cases:
            if case.suite not in seen:
                seen.append(case.suite)
        return seen

    def suite_exposed(self, name: str) -> Tuple[float, float]:
        """(static, adaptive) exposed-communication totals of a suite."""
        selected = self.suite(name)
        return (sum(c.static.exposed_ns for c in selected),
                sum(c.adaptive.exposed_ns for c in selected))

    def adaptive_wins(self, name: str) -> bool:
        """Strictly less suite-level exposed comm under the adaptive
        policy (the acceptance bar for the faulty suites)."""
        static, adaptive = self.suite_exposed(name)
        return adaptive < static

    def geomean_exposed_reduction(self) -> float:
        """Geomean exposed-comm reduction across the faulty suites.

        Computed from the suite-level static/adaptive exposure ratios
        (speedup-style, as ``repro.analysis.metrics`` aggregates), then
        re-expressed as a reduction fraction: 0.01 means the adaptive
        policy removed 1% of the static policy's exposed time.
        """
        logs = []
        for name in FAULT_SUITES:
            static, adaptive = self.suite_exposed(name)
            if static > 0 and adaptive > 0:
                logs.append(math.log(static / adaptive))
        if not logs:
            return 0.0
        return 1.0 - 1.0 / math.exp(sum(logs) / len(logs))

    def to_dict(self) -> Dict[str, object]:
        """The bench payload's ``policy`` block (schema v4)."""
        return {
            "suites": {
                name: {
                    "static_exposed_ns": self.suite_exposed(name)[0],
                    "adaptive_exposed_ns": self.suite_exposed(name)[1],
                    "adaptive_wins": self.adaptive_wins(name),
                }
                for name in self.suite_names()
            },
            "adaptive_wins": all(self.adaptive_wins(name)
                                 for name in FAULT_SUITES),
            "geomean_exposed_reduction": self.geomean_exposed_reduction(),
        }

    def render(self) -> str:
        lines = [
            "Adaptive overlap policy — StaticPaperPolicy vs "
            "AdaptiveMcaPolicy on fused T3-MCA runs",
            "(exposed = communication activity outside every compute "
            f"span; {ADAPTIVE_QUANTUM // 1024} KiB transaction quantum)",
        ]
        descriptions = {
            "degraded-link": f"GPU-0 send link at {LINK_FACTOR:.0%} "
                             "bandwidth",
            "straggler": f"GPU-0 compute slowed x{STRAGGLER_FACTOR:.2f}",
            "hierarchical": "2 nodes x 4 GPUs, inter-node rail plan",
            "mixed": "healthy Mega-GPT-2 TP=8 sub-layer sequence",
        }
        for name in self.suite_names():
            lines.append("")
            lines.append(f"{name} ({descriptions.get(name, '')})")
            lines.append(f"  {'case':24} {'static':>10} {'adaptive':>10} "
                         f"{'delta':>8} {'retunes':>8}")
            for case in self.suite(name):
                lines.append(
                    f"  {case.label:24} "
                    f"{case.static.exposed_ns / 1e3:>8.1f}us "
                    f"{case.adaptive.exposed_ns / 1e3:>8.1f}us "
                    f"{case.exposed_reduction:>+7.2%} "
                    f"{case.adaptive.retunes:>8}")
            static, adaptive = self.suite_exposed(name)
            verdict = ("adaptive wins" if adaptive < static else
                       "tie" if adaptive == static else "adaptive loses")
            lines.append(
                f"  {'suite total':24} {static / 1e3:>8.1f}us "
                f"{adaptive / 1e3:>8.1f}us "
                f"{'':>8} -> {verdict}")
        lines.append("")
        lines.append(
            "geomean exposed-communication reduction (faulty suites): "
            f"{self.geomean_exposed_reduction():.2%}")
        return "\n".join(lines)


def _system(tp: int, kind: str) -> SystemConfig:
    return table1_system(n_gpus=tp).with_policy(kind).with_fidelity(
        quantum_bytes=ADAPTIVE_QUANTUM)


def _retunes(registry: Optional[MetricsRegistry]) -> int:
    if registry is None:
        return 0
    return int(sum(scope.counter("retunes.relax")
                   + scope.counter("retunes.tighten")
                   for scope in registry.scopes("policy")))


def _plan_for(suite: str) -> Optional[FaultPlan]:
    if suite == "degraded-link":
        return FaultPlan.degraded_link(src=0, dst=ANY,
                                       bandwidth_factor=LINK_FACTOR,
                                       seed=SWEEP_SEED)
    if suite == "straggler":
        return FaultPlan.straggler(gpu_id=0, factor=STRAGGLER_FACTOR,
                                   seed=SWEEP_SEED)
    return None


def _measure_sublayer(sub, scale: int, kind: str,
                      faults: Optional[FaultPlan]) -> PolicyMeasure:
    """One fused T3-MCA run of one sub-layer case under one policy."""
    sink: Dict[str, MetricsRegistry] = {}
    suite = simulate_case(sub, scale, _system(sub.tp, kind),
                          configs=list(CONFIGS), faults=faults,
                          check_invariants=True, obs_sink=sink)
    registry = sink["T3-MCA"]
    breakdown = decompose(registry, total_ns=suite.times["T3-MCA"])
    return PolicyMeasure(total_ns=suite.times["T3-MCA"],
                         exposed_ns=breakdown.exposed_ns,
                         hidden_ns=breakdown.hidden_ns,
                         retunes=_retunes(registry))


def _sublayer_suite(result: AdaptiveResult, name: str, cases, scale: int,
                    progress=None) -> None:
    plan = _plan_for(name)
    for sub in cases:
        if progress is not None:
            progress(f"{name}: {sub.label}")
        measures = {kind: _measure_sublayer(sub, scale, kind, plan)
                    for kind in POLICY_KINDS}
        result.cases.append(PolicyCase(
            suite=name, label=sub.label,
            static=measures["static"], adaptive=measures["adaptive"]))


def _hierarchical_suite(result: AdaptiveResult, fast: bool,
                        progress=None) -> None:
    """The scale-out 2-node fused run, once per policy."""
    from repro.experiments.common import scaled_shape
    from repro.experiments.scaleout import _run_fused

    sub = zoo.t_nlg().sublayer("FC-2", 8)
    shape = scaled_shape(sub.gemm, 16 if fast else 1)
    if progress is not None:
        progress(f"hierarchical: {sub.label}")
    measures = {}
    for kind in POLICY_KINDS:
        registry = MetricsRegistry()
        _fused, duration = _run_fused(_system(8, kind), shape,
                                      gpus_per_node=4, registry=registry)
        breakdown = decompose(registry, total_ns=duration)
        measures[kind] = PolicyMeasure(
            total_ns=duration, exposed_ns=breakdown.exposed_ns,
            hidden_ns=breakdown.hidden_ns, retunes=_retunes(registry))
    result.cases.append(PolicyCase(
        suite="hierarchical", label=f"{sub.label} 2x4",
        static=measures["static"], adaptive=measures["adaptive"]))


def _save_trace(fast: bool, trace_out: str) -> None:
    """Re-run the first straggler case under the adaptive policy with a
    trace recorder attached; the saved trace carries the per-decision
    policy instants plus the registry snapshot the ``policy-decisions``
    analysis pass joins them against."""
    sub = fault_cases()[0]
    trace_sink: dict = {}
    obs_sink: dict = {}
    simulate_case(sub, FAST_SCALE if fast else 1,
                  _system(sub.tp, "adaptive"), configs=list(CONFIGS),
                  faults=_plan_for("straggler"), check_invariants=True,
                  obs_sink=obs_sink, trace_sink=trace_sink)
    trace_sink["T3-MCA"].save(trace_out, registry=obs_sink["T3-MCA"])


def quick_policy_point(fast: bool = True) -> AdaptiveResult:
    """The cheap bench probe: just the two faulty suites on the first
    fault case (enough to compute the schema-v4 ``policy`` block)."""
    result = AdaptiveResult(fast=fast)
    scale = FAST_SCALE if fast else 1
    cases = fault_cases()[:1]
    for name in FAULT_SUITES:
        _sublayer_suite(result, name, cases, scale)
    return result


def run(fast: bool = True, trace_out: Optional[str] = None,
        progress=None) -> AdaptiveResult:
    """Run the full four-suite policy study."""
    result = AdaptiveResult(fast=fast)
    scale = FAST_SCALE if fast else 1
    cases = fault_cases()
    for name in FAULT_SUITES:
        _sublayer_suite(result, name, cases, scale, progress=progress)
    _hierarchical_suite(result, fast, progress=progress)
    _sublayer_suite(result, "mixed", zoo.megatron_gpt2().ar_sublayers(8),
                    scale, progress=progress)
    if trace_out is not None:
        _save_trace(fast, trace_out)
    return result
