"""Figure 16 (and Section 6.4): sub-layer speedups over Sequential.

T3, T3-MCA, Ideal-GEMM-RS-Overlap and Ideal-RS+NMC on every case of the
sub-layer grid.  The paper's headline: T3 20% geomean (max 39%), T3-MCA
30% geomean (max 47%), Ideal-Overlap 35% geomean (max 50%); large models
29% geomean (max 35%) with T3-MCA.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.metrics import SpeedupTable
from repro.experiments.sublayer_sweep import run_sweep

CONFIG_ORDER = ("T3", "T3-MCA", "Ideal-GEMM-RS-Overlap", "Ideal-RS+NMC")


@dataclass
class Figure16Result:
    table: SpeedupTable
    large: bool

    def render(self) -> str:
        title = ("Section 6.4 — large-model sub-layer speedups"
                 if self.large else
                 "Figure 16 — sub-layer speedups over Sequential")
        return self.table.render(title)

    def geomean(self, config: str = "T3-MCA") -> float:
        return self.table.geomean(config)

    def max(self, config: str = "T3-MCA") -> float:
        return self.table.max(config)


def run(fast: bool = True, large: bool = False,
        jobs: int | None = None) -> Figure16Result:
    suites = run_sweep(fast=fast, large=large, jobs=jobs)
    table = SpeedupTable()
    for suite in suites:
        for config in CONFIG_ORDER:
            table.add(suite.label, config, suite.speedup(config))
    return Figure16Result(table=table, large=large)
