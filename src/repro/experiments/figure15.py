"""Figure 15: sub-layer runtime distribution between GEMM, RS and AG.

One stacked bar per (model, sub-layer, TP) case, built from the isolated
kernel times of the Sequential configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.experiments.sublayer_sweep import run_sweep


@dataclass(frozen=True)
class Figure15Row:
    case: str
    gemm_us: float
    rs_us: float
    ag_us: float

    @property
    def total_us(self) -> float:
        return self.gemm_us + self.rs_us + self.ag_us

    @property
    def gemm_fraction(self) -> float:
        return self.gemm_us / self.total_us

    @property
    def rs_fraction(self) -> float:
        return self.rs_us / self.total_us

    @property
    def ag_fraction(self) -> float:
        return self.ag_us / self.total_us


@dataclass
class Figure15Result:
    rows: List[Figure15Row]

    def render(self) -> str:
        lines = [
            "Figure 15 — sub-layer runtime distribution (Sequential)",
            f"{'case':24} {'GEMM':>10} {'RS':>10} {'AG':>10} "
            f"{'GEMM%':>7} {'RS%':>6} {'AG%':>6}",
        ]
        for r in self.rows:
            lines.append(
                f"{r.case:24} {r.gemm_us:>8.0f}us {r.rs_us:>8.0f}us "
                f"{r.ag_us:>8.0f}us {100 * r.gemm_fraction:>6.1f}% "
                f"{100 * r.rs_fraction:>5.1f}% {100 * r.ag_fraction:>5.1f}%")
        return "\n".join(lines)


def run(fast: bool = True, large: bool = False,
        jobs: int | None = None) -> Figure15Result:
    suites = run_sweep(fast=fast, large=large, jobs=jobs)
    rows = [
        Figure15Row(
            case=s.label,
            gemm_us=s.gemm_time / 1e3,
            rs_us=s.rs_time / 1e3,
            ag_us=s.ag_time / 1e3,
        )
        for s in suites
    ]
    return Figure15Result(rows)
