"""Figure 6: how CU sharing erodes the benefit of software overlap.

The paper runs GEMM and all-reduce *in isolation* with different CU
splits (72-8, 64-16) and computes the potential-overlap speedup
``(GEMM_80 + AR_80) / max(GEMM_A, AR_B)`` against an ideal where the GEMM
keeps all 80 CUs and the AR is free.  We replicate that methodology with
the event simulator: GEMMs at reduced CU counts, baseline ring collectives
at reduced CU counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.collectives.baseline import RingAllGather, RingReduceScatter
from repro.config import SystemConfig, table1_system
from repro.experiments.common import scaled_shape
from repro.gpu.gemm import GEMMKernel
from repro.gpu.wavefront import GEMMShape, TileGrid
from repro.interconnect.topology import RingTopology
from repro.memory.cache import estimate_gemm_traffic
from repro.models import zoo
from repro.sim import Environment
from repro.sim.stats import geomean

#: (GEMM CUs, AR CUs) splits studied by the paper.
CU_SPLITS: Tuple[Tuple[int, int], ...] = ((72, 8), (64, 16))


@dataclass(frozen=True)
class Figure6Row:
    case: str
    split: str                  # "72-8", "64-16", "ideal"
    gemm_slowdown: float        # vs GEMM on all 80 CUs
    ar_slowdown: float          # vs AR on all 80 CUs
    potential_speedup: float    # overlap speedup vs sequential


@dataclass
class Figure6Result:
    rows: List[Figure6Row]

    def render(self) -> str:
        lines = [
            "Figure 6 — CU-sharing impact on overlap potential",
            f"{'case':24} {'split':>7} {'GEMMx':>7} {'ARx':>7} "
            f"{'overlap speedup':>16}",
        ]
        for r in self.rows:
            lines.append(
                f"{r.case:24} {r.split:>7} {r.gemm_slowdown:>7.2f} "
                f"{r.ar_slowdown:>7.2f} {r.potential_speedup:>16.2f}")
        for split in ("72-8", "64-16", "ideal"):
            values = [r.potential_speedup for r in self.rows
                      if r.split == split]
            lines.append(f"geomean[{split}] = {geomean(values):.2f}x")
        return "\n".join(lines)

    def geomean_speedup(self, split: str) -> float:
        return geomean([r.potential_speedup for r in self.rows
                        if r.split == split])


def _isolated_gemm_time(system: SystemConfig, shape: GEMMShape,
                        n_cus: int) -> float:
    env = Environment()
    topo = RingTopology(env, system)
    grid = TileGrid(shape, system.gemm, n_cus=n_cus)
    traffic = estimate_gemm_traffic(grid, system.memory, bypass_writes=False)
    kernel = GEMMKernel(grid, traffic, n_cus=n_cus)
    proc = topo.gpus[0].launch(kernel)
    env.run_until_process(proc)
    return kernel.result.duration


def _isolated_ar_time(system: SystemConfig, nbytes: int, n_cus: int) -> float:
    env = Environment()
    topo = RingTopology(env, system)
    rs = RingReduceScatter(topo, nbytes_total=nbytes, n_cus=n_cus).run()
    ag = RingAllGather(topo, nbytes_total=nbytes, n_cus=n_cus).run()
    return rs.duration + ag.duration


def run(fast: bool = True) -> Figure6Result:
    system = table1_system(n_gpus=8)
    if not fast:
        # Paper-scale shapes: coarsen the transaction quantum (chunks are
        # tens of MB; see sublayer_sweep.FULL_MODE_QUANTUM).
        system = system.with_fidelity(quantum_bytes=256 * 1024)
    scale = 8 if fast else 1
    rows: List[Figure6Row] = []
    cases = []
    for model in zoo.small_models():
        for sub_name in ("OP", "FC-2"):  # the paper's Attn. / FC-2 pair
            cases.append(model.sublayer(sub_name, tp=8))

    for sub in cases:
        shape = scaled_shape(sub.gemm, scale)
        gemm_full = _isolated_gemm_time(system, shape, n_cus=80)
        ar_full = _isolated_ar_time(system, shape.output_bytes, n_cus=80)
        sequential = gemm_full + ar_full

        gemm_times: Dict[int, float] = {80: gemm_full}
        ar_times: Dict[int, float] = {80: ar_full}
        for gemm_cus, ar_cus in CU_SPLITS:
            gemm_times[gemm_cus] = _isolated_gemm_time(system, shape,
                                                       n_cus=gemm_cus)
            ar_times[ar_cus] = _isolated_ar_time(system, shape.output_bytes,
                                                 n_cus=ar_cus)
            rows.append(Figure6Row(
                case=sub.label,
                split=f"{gemm_cus}-{ar_cus}",
                gemm_slowdown=gemm_times[gemm_cus] / gemm_full,
                ar_slowdown=ar_times[ar_cus] / ar_full,
                potential_speedup=sequential / max(gemm_times[gemm_cus],
                                                   ar_times[ar_cus]),
            ))
        rows.append(Figure6Row(
            case=sub.label, split="ideal",
            gemm_slowdown=1.0, ar_slowdown=1.0,
            potential_speedup=sequential / max(gemm_full, ar_full),
        ))
    return Figure6Result(rows)
