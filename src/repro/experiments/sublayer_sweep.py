"""Shared sub-layer sweep backing Figures 15, 16, 18 and 19.

Runs the Section 5.3 configuration suite over a case list (by default the
paper's eight small-model cases: Mega-GPT-2 and T-NLG, TP 8 and 16, four
sub-layers each).  Results are cached per (case, system, scale) within a
process so the figure modules can share one sweep.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.config import SystemConfig, table1_system
from repro.experiments.common import (
    SublayerSuite,
    run_sublayer_suite,
    scaled_shape,
)
from repro.models import zoo
from repro.models.transformer import SubLayer

_CACHE: Dict[Tuple, SublayerSuite] = {}

#: fast-mode token scaling (shrinks M; K/N/balance preserved).
FAST_SCALE = 8


def default_cases(large: bool = False) -> List[SubLayer]:
    """The paper's case grids: small models x TP {8,16}, or the
    Section 6.4 large models at TP=32."""
    cases: List[SubLayer] = []
    if large:
        for model in zoo.large_models():
            cases.extend(model.ar_sublayers(32))
    else:
        for model in zoo.small_models():
            for tp in (8, 16):
                cases.extend(model.ar_sublayers(tp))
    return cases


#: full-scale runs use a coarser memory-transaction quantum: paper-scale
#: chunks are tens of MB, so 256 KiB transactions keep hundreds of
#: requests per chunk while making full sweeps tractable.
FULL_MODE_QUANTUM = 256 * 1024


def run_case(sub: SubLayer, fast: bool = True,
             system: Optional[SystemConfig] = None,
             configs: Optional[List[str]] = None,
             use_cache: bool = True) -> SublayerSuite:
    base_system = system or table1_system(n_gpus=sub.tp)
    if base_system.n_gpus != sub.tp:
        raise ValueError(
            f"case {sub.label} needs an n_gpus={sub.tp} system")
    if not fast:
        base_system = base_system.with_fidelity(
            quantum_bytes=max(base_system.fidelity.quantum_bytes,
                              FULL_MODE_QUANTUM))
    scale = FAST_SCALE if fast else 1
    key = (sub.label, scale, base_system, tuple(configs or ()))
    if use_cache and key in _CACHE:
        return _CACHE[key]
    # Keep the scaled output chunkable: need >= tp workgroup tiles.
    tiles_n = max(1, sub.gemm.n // base_system.gemm.macro_tile_n)
    rows_needed = -(-sub.tp // tiles_n)  # ceil
    min_m = rows_needed * base_system.gemm.macro_tile_m
    shape = scaled_shape(sub.gemm, scale, min_m=min_m)
    suite = run_sublayer_suite(base_system, shape, label=sub.label,
                               configs=configs)
    if use_cache:
        _CACHE[key] = suite
    return suite


def run_sweep(fast: bool = True, large: bool = False,
              cases: Optional[Sequence[SubLayer]] = None,
              system_for_tp=None) -> List[SublayerSuite]:
    """Run all cases; returns one suite per case, in case order."""
    selected = list(cases) if cases is not None else default_cases(large)
    suites: List[SublayerSuite] = []
    for sub in selected:
        system = system_for_tp(sub.tp) if system_for_tp else None
        suites.append(run_case(sub, fast=fast, system=system))
    return suites


def clear_cache() -> None:
    _CACHE.clear()
