"""Shared sub-layer sweep backing Figures 15, 16, 18 and 19.

Runs the Section 5.3 configuration suite over a case list (by default the
paper's eight small-model cases: Mega-GPT-2 and T-NLG, TP 8 and 16, four
sub-layers each).  Results are cached at two levels:

* an in-process memo (so the figure modules share one sweep within a
  ``capture_results`` / ``runner all`` invocation), and
* the persistent on-disk :class:`~repro.experiments.executor.SweepCache`,
  keyed by a content hash of the case + system + simulator version, so
  repeat runs re-simulate nothing.

``run_sweep(jobs=N)`` dispatches cache misses through a process pool; see
:mod:`repro.experiments.executor`.  The module-level options set by
:func:`configure` let the CLI thread ``--jobs`` / ``--cache-dir`` /
``--no-cache`` through figure modules that call :func:`run_sweep` with no
arguments.
"""

from __future__ import annotations

import dataclasses
import pathlib
from typing import Dict, List, Optional, Sequence

from repro.config import SystemConfig, table1_system
from repro.experiments.common import (
    SublayerSuite,
    run_sublayer_suite,
    scaled_shape,
)
from repro.experiments.executor import (
    CacheStats,
    CaseSpec,
    SweepCache,
    run_cases,
)
from repro.faults import FaultPlan
from repro.models import zoo
from repro.models.transformer import SubLayer

#: in-process memo: case fingerprint -> suite (identical object returned).
_MEMO: Dict[str, SublayerSuite] = {}

#: fast-mode token scaling (shrinks M; K/N/balance preserved).
FAST_SCALE = 8

#: full-scale runs use a coarser memory-transaction quantum: paper-scale
#: chunks are tens of MB, so 256 KiB transactions keep hundreds of
#: requests per chunk while making full sweeps tractable.
FULL_MODE_QUANTUM = 256 * 1024


@dataclasses.dataclass
class SweepOptions:
    """Process-wide sweep execution defaults (set from CLI flags)."""

    jobs: int = 1
    cache_dir: Optional[pathlib.Path] = None
    disk_cache: bool = True


_OPTIONS = SweepOptions()
_DISK_CACHE: Optional[SweepCache] = None


def configure(jobs: Optional[int] = None,
              cache_dir: Optional[str] = None,
              disk_cache: Optional[bool] = None) -> SweepOptions:
    """Set process-wide sweep defaults; returns the effective options.

    Called by ``repro.experiments.runner`` and ``scripts/capture_results``
    so figure modules need no flag plumbing of their own.
    """
    global _DISK_CACHE
    if jobs is not None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        _OPTIONS.jobs = jobs
    if cache_dir is not None:
        _OPTIONS.cache_dir = pathlib.Path(cache_dir).expanduser()
        _DISK_CACHE = None  # rebuild against the new directory
    if disk_cache is not None:
        _OPTIONS.disk_cache = disk_cache
        _DISK_CACHE = None
    return _OPTIONS


def disk_cache() -> SweepCache:
    """The process-wide persistent cache (honoring ``configure``)."""
    global _DISK_CACHE
    if _DISK_CACHE is None:
        _DISK_CACHE = SweepCache(directory=_OPTIONS.cache_dir,
                                 enabled=_OPTIONS.disk_cache)
    return _DISK_CACHE


def cache_stats() -> CacheStats:
    """Live counters of the persistent cache (for the runner report)."""
    return disk_cache().stats


def default_cases(large: bool = False) -> List[SubLayer]:
    """The paper's case grids: small models x TP {8,16}, or the
    Section 6.4 large models at TP=32."""
    cases: List[SubLayer] = []
    if large:
        for model in zoo.large_models():
            cases.extend(model.ar_sublayers(32))
    else:
        for model in zoo.small_models():
            for tp in (8, 16):
                cases.extend(model.ar_sublayers(tp))
    return cases


def _resolve_spec(sub: SubLayer, fast: bool,
                  system: Optional[SystemConfig],
                  configs: Optional[Sequence[str]],
                  faults: Optional[FaultPlan] = None,
                  check_invariants: bool = False) -> CaseSpec:
    """Apply TP defaults and full-mode fidelity; returns the final spec."""
    base_system = system or table1_system(n_gpus=sub.tp)
    if base_system.n_gpus != sub.tp:
        raise ValueError(
            f"case {sub.label} needs an n_gpus={sub.tp} system")
    if not fast:
        base_system = base_system.with_fidelity(
            quantum_bytes=max(base_system.fidelity.quantum_bytes,
                              FULL_MODE_QUANTUM))
    scale = FAST_SCALE if fast else 1
    return CaseSpec(sub=sub, scale=scale, system=base_system,
                    configs=tuple(configs or ()),
                    faults=faults, check_invariants=check_invariants)


def case_shape(sub: SubLayer, scale: int, system: SystemConfig):
    """The exact GEMM shape ``simulate_case`` will run for this case.

    Shared with :mod:`repro.surrogate` so analytic scoring and the event
    simulation can never disagree about the simulated geometry.
    """
    # Keep the scaled output chunkable: need >= tp workgroup tiles.
    tiles_n = max(1, sub.gemm.n // system.gemm.macro_tile_n)
    rows_needed = -(-sub.tp // tiles_n)  # ceil
    min_m = rows_needed * system.gemm.macro_tile_m
    return scaled_shape(sub.gemm, scale, min_m=min_m)


def simulate_case(sub: SubLayer, scale: int, system: SystemConfig,
                  configs: Optional[List[str]] = None,
                  faults: Optional[FaultPlan] = None,
                  check_invariants: bool = False,
                  obs_sink=None, resilience=None,
                  trace_sink=None) -> SublayerSuite:
    """Simulate one fully-resolved case (no caching; executor workers and
    the serial path both land here).  ``obs_sink`` opts into per-config
    telemetry registries — profiled calls must stay off the cache path
    (registries are per-run state, not cacheable payload).  ``resilience``
    attaches a dormant-until-fault recovery runtime (not part of the
    cache key: it is byte-transparent on fault-free runs, and faulted
    chaos runs bypass the cache).  ``trace_sink`` mirrors ``obs_sink``
    with per-config :class:`~repro.analysis.trace.TraceRecorder`\\ s —
    equally uncacheable, equally passive."""
    shape = case_shape(sub, scale, system)
    return run_sublayer_suite(system, shape, label=sub.label,
                              configs=configs, faults=faults,
                              check_invariants=check_invariants,
                              obs_sink=obs_sink, resilience=resilience,
                              trace_sink=trace_sink)


def run_case(sub: SubLayer, fast: bool = True,
             system: Optional[SystemConfig] = None,
             configs: Optional[List[str]] = None,
             use_cache: bool = True,
             faults: Optional[FaultPlan] = None,
             check_invariants: bool = False) -> SublayerSuite:
    """Run one case through the memo + persistent cache."""
    spec = _resolve_spec(sub, fast, system, configs, faults,
                         check_invariants)
    if not use_cache:
        return simulate_case(spec.sub, spec.scale, spec.system,
                             list(spec.configs) or None,
                             faults=spec.faults,
                             check_invariants=spec.check_invariants)
    key = spec.fingerprint()
    if key in _MEMO:
        return _MEMO[key]
    suite = run_cases([spec], jobs=1, cache=disk_cache())[0]
    _MEMO[key] = suite
    return suite


def run_sweep(fast: bool = True, large: bool = False,
              cases: Optional[Sequence[SubLayer]] = None,
              system_for_tp=None,
              configs: Optional[Sequence[str]] = None,
              jobs: Optional[int] = None,
              progress=None,
              faults: Optional[FaultPlan] = None,
              check_invariants: bool = False,
              triage: Optional[str] = None,
              triage_options: Optional[dict] = None):
    """Run all cases; returns one suite per case, in case order.

    ``jobs`` (default: the :func:`configure` setting) bounds the number of
    worker processes used for cache-missing cases; cached cases are never
    re-simulated.  ``system_for_tp`` maps a TP degree to a custom
    :class:`SystemConfig`; ``configs`` restricts the per-case suite.
    ``faults`` / ``check_invariants`` are part of each case's cache key,
    so faulty runs never collide with healthy ones.

    ``triage="surrogate"`` switches to the calibrated-surrogate flow
    (:func:`repro.surrogate.triage.triaged_sweep`): every case is scored
    analytically and only the predicted frontier plus an audit slice is
    simulated.  The return type is then a
    :class:`~repro.surrogate.triage.TriageResult`, not a suite list.
    ``triage_options`` passes keyword arguments (``frontier``,
    ``audit_fraction``, ``seed``, ...) through to the triage.
    """
    selected = list(cases) if cases is not None else default_cases(large)
    if triage is not None:
        if triage != "surrogate":
            raise ValueError(
                f"unknown triage mode {triage!r}; only 'surrogate' exists")
        if faults is not None or check_invariants:
            raise ValueError(
                "surrogate triage calibrates against healthy runs; "
                "faults / invariant checking are full-sweep features")
        from repro.surrogate.triage import triaged_sweep
        return triaged_sweep(
            selected, fast=fast, configs=configs,
            system_for_tp=system_for_tp,
            jobs=jobs if jobs is not None else _OPTIONS.jobs,
            progress=progress, **(triage_options or {}))
    specs: List[CaseSpec] = []
    for sub in selected:
        system = system_for_tp(sub.tp) if system_for_tp else None
        specs.append(_resolve_spec(sub, fast, system, configs,
                                   faults, check_invariants))

    keys = [spec.fingerprint() for spec in specs]
    missing = [(spec, key) for spec, key in zip(specs, keys)
               if key not in _MEMO]
    if missing:
        effective_jobs = jobs if jobs is not None else _OPTIONS.jobs
        fresh = run_cases([spec for spec, _ in missing],
                          jobs=effective_jobs, cache=disk_cache(),
                          progress=progress)
        for (_, key), suite in zip(missing, fresh):
            _MEMO[key] = suite
    return [_MEMO[key] for key in keys]


def clear_cache() -> None:
    """Forget the in-process memo (the on-disk cache is untouched)."""
    _MEMO.clear()


def clear_disk_cache() -> int:
    """Delete every persistent cache entry; returns the number removed."""
    return disk_cache().clear()
