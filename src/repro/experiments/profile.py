"""The ``profile`` experiment: overlap decomposition of the sweep cases.

Runs the simulated Section 5.3 configurations (Sequential, T3, T3-MCA —
the Ideal-* configurations are closed-form, there is no run to profile)
with a fresh :class:`~repro.obs.MetricsRegistry` attached per run, then
reduces each run's telemetry to the paper's overlap decomposition via
:mod:`repro.obs.profiler`.

Profiled runs always bypass the persistent sweep cache: a cached
:class:`~repro.experiments.common.SublayerSuite` carries no registry, so
replaying one would silently produce an empty profile.  Keep profiled
case lists small (``--config`` filters by case label) or expect fresh
simulation time.

CLI::

    python -m repro.experiments.runner profile figure16 --config fc2
    python -m repro.experiments.runner figure16 --profile overlap.json
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, List, Optional, Sequence

from repro.experiments.sublayer_sweep import (
    _resolve_spec,
    default_cases,
    simulate_case,
)
from repro.models.transformer import SubLayer
from repro.obs.profiler import (
    PROFILED_CONFIGS,
    OverlapReport,
    profile_case,
)


def _normalize(text: str) -> str:
    return "".join(ch for ch in text.lower() if ch.isalnum())


def filter_cases(cases: Sequence[SubLayer],
                 case_filter: Optional[str]) -> List[SubLayer]:
    """Select cases whose label contains ``case_filter``, compared with
    case and punctuation stripped — ``fc2`` matches ``.../FC-2/TP8``."""
    if not case_filter:
        return list(cases)
    needle = _normalize(case_filter)
    selected = [sub for sub in cases if needle in _normalize(sub.label)]
    if not selected:
        raise ValueError(
            f"case filter {case_filter!r} matched none of: "
            + ", ".join(sub.label for sub in cases))
    return selected


def run(fast: bool = True, large: bool = False,
        case_filter: Optional[str] = None,
        cases: Optional[Sequence[SubLayer]] = None,
        configs: Sequence[str] = PROFILED_CONFIGS) -> OverlapReport:
    """Profile the (filtered) sweep cases; returns the overlap report."""
    selected = filter_cases(
        list(cases) if cases is not None else default_cases(large),
        case_filter)
    report = OverlapReport(fast=fast)
    for sub in selected:
        spec = _resolve_spec(sub, fast, None, configs)
        registries: Dict[str, object] = {}
        suite = simulate_case(spec.sub, spec.scale, spec.system,
                              list(spec.configs), obs_sink=registries)
        report.add(profile_case(suite.label, registries, times={
            name: suite.times[name] for name in registries
            if name in suite.times
        }))
    return report


def write_report(report: OverlapReport, path) -> pathlib.Path:
    """Dump the report as JSON (the ``--profile out.json`` payload)."""
    target = pathlib.Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(report.to_dict(), indent=2,
                                 sort_keys=True) + "\n")
    return target
