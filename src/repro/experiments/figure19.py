"""Figure 19: end-to-end model speedups with T3 / T3-MCA.

The paper's methodology (Section 5.1.2): scale the sliced-sub-layer
portions of the end-to-end iteration breakdown by the simulated sub-layer
speedups.  Headline: training up to 9% (T3) / 12% (T3-MCA), prompt
inference up to 12% / 15%.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.config import table1_system
from repro.experiments.sublayer_sweep import run_sweep
from repro.models import zoo
from repro.models.endtoend import (
    Phase,
    apply_sublayer_speedups,
    iteration_breakdown,
)

SUBLAYER_NAMES = ("OP", "FC-2", "FC-1", "IP")
FWD_SUBLAYERS = ("OP", "FC-2")


@dataclass(frozen=True)
class Figure19Row:
    model: str
    tp: int
    phase: str
    t3_speedup: float
    t3_mca_speedup: float


@dataclass
class Figure19Result:
    rows: List[Figure19Row]
    #: per (model, tp): sub-layer group speedups fed into the scaling.
    sublayer_speedups: Dict[str, Dict[str, float]]

    def render(self) -> str:
        lines = [
            "Figure 19 — end-to-end model speedups",
            f"{'model':12} {'tp':>3} {'phase':>9} {'T3':>8} {'T3-MCA':>8}",
        ]
        for r in self.rows:
            lines.append(
                f"{r.model:12} {r.tp:>3} {r.phase:>9} "
                f"{r.t3_speedup:>8.3f} {r.t3_mca_speedup:>8.3f}")
        return "\n".join(lines)

    def max_speedup(self, config: str, phase: str) -> float:
        if config == "T3":
            return max(r.t3_speedup for r in self.rows if r.phase == phase)
        return max(r.t3_mca_speedup for r in self.rows if r.phase == phase)


def run(fast: bool = True, large: bool = False,
        jobs: int | None = None) -> Figure19Result:
    combos = []
    if large:
        combos = [(m, 32) for m in zoo.large_models()]
    else:
        for model in zoo.small_models():
            combos.extend([(model, 8), (model, 16)])

    # One batched sweep over every (model, tp, sub-layer) case so misses
    # parallelize across --jobs workers instead of running one by one.
    cases = [model.sublayer(name, tp)
             for model, tp in combos for name in SUBLAYER_NAMES]
    suites = iter(run_sweep(fast=fast, cases=cases, jobs=jobs))

    rows: List[Figure19Row] = []
    all_speedups: Dict[str, Dict[str, float]] = {}
    for model, tp in combos:
        system = table1_system(n_gpus=tp)
        per_group: Dict[str, Dict[str, float]] = {"T3": {}, "T3-MCA": {}}
        for name in SUBLAYER_NAMES:
            suite = next(suites)
            per_group["T3"][name] = suite.speedup("T3")
            per_group["T3-MCA"][name] = suite.speedup("T3-MCA")
        all_speedups[f"{model.name}/TP{tp}"] = dict(per_group["T3-MCA"])

        for phase in (Phase.TRAINING, Phase.PROMPT):
            breakdown = iteration_breakdown(model, tp, system, phase)
            names = SUBLAYER_NAMES if phase is Phase.TRAINING else FWD_SUBLAYERS
            t3 = apply_sublayer_speedups(
                breakdown, {n: per_group["T3"][n] for n in names})
            mca = apply_sublayer_speedups(
                breakdown, {n: per_group["T3-MCA"][n] for n in names})
            rows.append(Figure19Row(
                model=model.name, tp=tp, phase=phase.value,
                t3_speedup=t3, t3_mca_speedup=mca))
    return Figure19Result(rows=rows, sublayer_speedups=all_speedups)
