"""Figure 17: DRAM traffic over time — baseline GEMM vs T3 overlap.

The paper plots, for T-NLG FC-2 (TP=8, SLB=4K), per-interval DRAM traffic:

(a) the isolated GEMM alternates read phases with bursty write phases;
(b) under T3 the same GEMM shares DRAM with RS reads (DMA source reads
    fired as chunks complete) and RS updates (incoming NMC traffic),
    which stall GEMM reads and stretch the kernel.

This runner records per-request traffic timelines and bins them.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.config import table1_system
from repro.experiments.common import _run_fused, _run_sequential
from repro.models import zoo
from repro.t3.configs import config_by_name

#: time bin width for the published series.
BIN_NS = 20_000.0


@dataclass
class TrafficSeries:
    label: str
    bin_starts: List[float]
    bytes_per_bin: List[float]

    @property
    def total(self) -> float:
        return sum(self.bytes_per_bin)

    @property
    def peak(self) -> float:
        return max(self.bytes_per_bin, default=0.0)

    def sparkline(self, width: int = 60) -> str:
        """Terminal-friendly rendering of the series shape."""
        if not self.bytes_per_bin:
            return ""
        blocks = " .:-=+*#%@"
        step = max(1, len(self.bytes_per_bin) // width)
        peak = self.peak or 1.0
        chars = []
        for i in range(0, len(self.bytes_per_bin), step):
            window = self.bytes_per_bin[i:i + step]
            level = (sum(window) / len(window)) / peak
            chars.append(blocks[min(len(blocks) - 1,
                                    int(level * (len(blocks) - 1)))])
        return "".join(chars)


@dataclass
class Figure17Result:
    case: str
    gemm_duration_baseline_us: float
    gemm_duration_t3_us: float
    baseline_series: Dict[str, TrafficSeries] = field(default_factory=dict)
    t3_series: Dict[str, TrafficSeries] = field(default_factory=dict)

    @property
    def gemm_slowdown(self) -> float:
        return self.gemm_duration_t3_us / self.gemm_duration_baseline_us

    def render(self) -> str:
        lines = [f"Figure 17 — DRAM traffic timelines ({self.case})",
                 f"baseline GEMM: {self.gemm_duration_baseline_us:.0f}us; "
                 f"with T3 overlap: {self.gemm_duration_t3_us:.0f}us "
                 f"(slowdown {self.gemm_slowdown:.2f}x)"]
        lines.append("-- (a) baseline (isolated GEMM) --")
        for label, series in self.baseline_series.items():
            lines.append(f"{label:>12} |{series.sparkline()}| "
                         f"{series.total / 1e6:.0f}MB")
        lines.append("-- (b) T3 (GEMM overlapped with RS) --")
        for label, series in self.t3_series.items():
            lines.append(f"{label:>12} |{series.sparkline()}| "
                         f"{series.total / 1e6:.0f}MB")
        return "\n".join(lines)


def _binned(mc, keys: List[str], start: float, end: float,
            label: str) -> TrafficSeries:
    merged = mc.merged_traffic(keys)
    starts, sums = merged.binned(BIN_NS, start=start, end=end)
    return TrafficSeries(label=label, bin_starts=starts, bytes_per_bin=sums)


def run(fast: bool = True) -> Figure17Result:
    # The paper's Figure 17 workload: T-NLG FC-2, TP=8, SLB=4K tokens.
    sub = zoo.t_nlg().sublayer("FC-2", tp=8)
    shape = dataclasses.replace(sub.gemm, m=2048 if fast else 4096)
    system = table1_system(n_gpus=8)

    topo_base, gemm_t, _rs_t, _ag_t = _run_sequential(
        system, shape, record_traffic=True)
    mc_base = topo_base.gpus[0].mc
    baseline = {
        "GEMM reads": _binned(mc_base, ["gemm.read"], 0, gemm_t, "GEMM reads"),
        "GEMM writes": _binned(mc_base, ["gemm.write"], 0, gemm_t,
                               "GEMM writes"),
    }

    topo_t3, fused, _total = _run_fused(
        system, shape, config_by_name("T3"), record_traffic=True)
    mc_t3 = topo_t3.gpus[0].mc
    t3_gemm_t = max(r.duration for r in fused.result.gemm_results)
    window = fused.result.rs_done
    t3 = {
        "GEMM reads": _binned(mc_t3, ["gemm.read"], 0, window, "GEMM reads"),
        "GEMM updates": _binned(mc_t3, ["gemm.update"], 0, window,
                                "GEMM updates"),
        "RS reads": _binned(mc_t3, ["rs.read"], 0, window, "RS reads"),
        "RS updates": _binned(mc_t3, ["rs.update"], 0, window, "RS updates"),
    }
    return Figure17Result(
        case=f"{sub.label} (M={shape.m})",
        gemm_duration_baseline_us=gemm_t / 1e3,
        gemm_duration_t3_us=t3_gemm_t / 1e3,
        baseline_series=baseline,
        t3_series=t3,
    )
