"""CLI: run any paper experiment and print its rendered output.

Usage::

    python -m repro.experiments.runner figure16
    python -m repro.experiments.runner figure16 --full --jobs 8
    python -m repro.experiments.runner all --cache-dir /tmp/t3-cache
    python -m repro.experiments.runner figure16 --no-cache
    python -m repro.experiments.runner profile figure16 --config fc2
    python -m repro.experiments.runner figure16 --profile overlap.json
    python -m repro.experiments.runner scaleout --trace run.trace.json
    python -m repro.experiments.runner trace run.trace.json --timeline
    python -m repro.experiments.runner surrogate --cases 10000 --jobs 8

Sub-layer sweep cases are cached persistently (content-addressed, under
``~/.cache/repro-t3`` unless ``--cache-dir`` / ``$REPRO_T3_CACHE_DIR``
says otherwise) and cache misses fan out over ``--jobs`` worker
processes.  Each experiment's timing line reports the sweep-cache
activity it caused, e.g. ``sweep cache: 16 hits, 0 misses, 0 simulated``.
"""

from __future__ import annotations

import argparse
import inspect
import sys
import time
from typing import Callable, Dict

from repro.experiments import (
    adaptive, chaos, dp_overlap, extensions, fault_sweep, figure4,
    figure6, figure15, figure16, figure17, figure18, figure19, figure20,
    profile, related_work, scaleout, sublayer_sweep, tables, validation,
)

EXPERIMENTS: Dict[str, Callable] = {
    "table1": tables.run_table1,
    "table2": tables.run_table2,
    "table3": tables.run_table3,
    "figure4": figure4.run,
    "figure6": figure6.run,
    "figure14": validation.run,
    "figure15": figure15.run,
    "figure16": figure16.run,
    "figure16-large": lambda fast=True: figure16.run(fast=fast, large=True),
    "figure17": figure17.run,
    "figure18": figure18.run,
    "figure19": figure19.run,
    "figure20": figure20.run,
    # Section 7 extension studies (beyond the paper's figures).
    "generation": extensions.run_generation,
    "precision": extensions.run_precision,
    "following-ops": extensions.run_following_ops,
    "consumer-fusion": extensions.run_consumer_fusion,
    "in-switch": related_work.run,
    "dp-overlap": dp_overlap.run,
    "scaleout": scaleout.run,
    # Robustness study: speedup degradation under injected faults.
    "fault-sweep": fault_sweep.run,
    # Resilience study: the recovery ladder vs a seeded fault campaign.
    "chaos": chaos.run,
    # Overlap-policy study: static vs adaptive MCA control.
    "adaptive": adaptive.run,
}


def _positive_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not an integer")
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def add_sweep_arguments(parser: argparse.ArgumentParser) -> None:
    """The sweep execution flags, shared with scripts/capture_results."""
    parser.add_argument("--jobs", type=_positive_int, default=1, metavar="N",
                        help="worker processes for sweep cases that miss "
                             "the cache (default: 1, fully serial)")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="persistent sweep-cache directory (default: "
                             "$REPRO_T3_CACHE_DIR or ~/.cache/repro-t3)")
    parser.add_argument("--no-cache", action="store_true",
                        help="neither read nor write the persistent "
                             "sweep cache")


def configure_sweep(args: argparse.Namespace) -> None:
    sublayer_sweep.configure(jobs=args.jobs, cache_dir=args.cache_dir,
                             disk_cache=not args.no_cache)


#: sweeps the ``profile`` subcommand knows how to profile.
PROFILE_TARGETS = ("figure16", "figure16-large")


def run_surrogate_command(args: argparse.Namespace) -> int:
    """The ``surrogate`` subcommand: a triaged design-space sweep.

    Scores a synthetic hyperparameter grid (default: 10k cases) with the
    calibrated analytic surrogate and full-simulates only the predicted
    speedup frontier plus a random audit slice; prints the frontier and
    the audit-error report.  See docs/performance.md.
    """
    from repro.surrogate.grid import synthetic_cases

    cases = synthetic_cases(n=args.cases, seed=args.seed)
    if not cases:
        print("surrogate: the synthetic grid produced no valid cases",
              file=sys.stderr)
        return 2
    started = time.time()
    before = sublayer_sweep.cache_stats().snapshot()
    result = sublayer_sweep.run_sweep(
        fast=not args.full, cases=cases, triage="surrogate",
        triage_options=dict(frontier=args.frontier,
                            audit_fraction=args.audit_fraction,
                            seed=args.seed))
    sweep = sublayer_sweep.cache_stats().delta(before)
    print(result.render())
    if args.surrogate_out:
        import json
        import pathlib
        path = pathlib.Path(args.surrogate_out)
        path.write_text(json.dumps(result.to_dict(), indent=2,
                                   sort_keys=True))
        print(f"[triage report written to {path}]")
    line = f"[surrogate finished in {time.time() - started:.1f}s"
    if sweep.hits or sweep.misses:
        line += f"; sweep cache: {sweep.render()}"
    print(line + "]")
    return 0


def run_profile_command(args: argparse.Namespace) -> int:
    """The ``profile`` subcommand: overlap decomposition of sweep cases."""
    target = args.target or "figure16"
    if target not in PROFILE_TARGETS:
        print(f"profile target must be one of {PROFILE_TARGETS}, "
              f"got {target!r}", file=sys.stderr)
        return 2
    started = time.time()
    report = profile.run(fast=not args.full,
                         large=(target == "figure16-large"),
                         case_filter=args.config)
    print(report.render())
    if args.profile_out:
        path = profile.write_report(report, args.profile_out)
        print(f"[profile report written to {path}]")
    print(f"[profile finished in {time.time() - started:.1f}s; "
          f"{len(report.cases)} case(s), cache bypassed]")
    return 0


def _trace_capable(name: str) -> bool:
    """True when ``EXPERIMENTS[name]`` accepts a ``trace_out`` path."""
    try:
        signature = inspect.signature(EXPERIMENTS[name])
    except (TypeError, ValueError):
        return False
    return "trace_out" in signature.parameters


def main(argv=None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "trace":
        # The trace subcommand has its own option surface — delegate the
        # whole tail to repro.trace.cli rather than double-parsing it.
        from repro.trace.cli import main as trace_main
        return trace_main(argv[1:])
    parser = argparse.ArgumentParser(
        description="T3 reproduction experiment runner",
        epilog="Additional subcommand: 'trace FILE [...]' — query a "
               "saved execution trace (analysis passes, JSON reports, "
               "terminal timeline); see 'trace --help'.")
    parser.add_argument("experiment",
                        choices=sorted(EXPERIMENTS) + ["all", "profile",
                                                       "surrogate"],
                        help="which table/figure to regenerate, "
                             "'profile' for the overlap profiler, or "
                             "'surrogate' for a triaged design-space "
                             "sweep (score 10k cases analytically, "
                             "simulate only the frontier + audit slice)")
    parser.add_argument("target", nargs="?", default=None,
                        help="profile only: which sweep to profile "
                             f"({' / '.join(PROFILE_TARGETS)}; "
                             "default figure16)")
    parser.add_argument("--full", action="store_true",
                        help="paper-scale shapes (slower); default is a "
                             "token-scaled fast mode with identical "
                             "compute:communication balance")
    parser.add_argument("--config", default=None, metavar="FILTER",
                        help="profile only: restrict to cases whose label "
                             "matches FILTER (case/punctuation ignored, "
                             "e.g. 'fc2' matches '.../FC-2/TP8')")
    parser.add_argument("--profile", dest="profile_out", default=None,
                        metavar="FILE",
                        help="write the overlap-profile report JSON to "
                             "FILE (with 'profile', dumps that report; "
                             "with other experiments, additionally "
                             "profiles their sweep cases)")
    parser.add_argument("--trace", dest="trace_out", default=None,
                        metavar="FILE",
                        help="save an execution trace of the experiment's "
                             "representative run to FILE (supported by: "
                             + ", ".join(sorted(
                                 name for name in EXPERIMENTS
                                 if "trace_out" in inspect.signature(
                                     EXPERIMENTS[name]).parameters))
                             + "); explore it with the 'trace' subcommand")
    parser.add_argument("--cases", type=_positive_int, default=10_000,
                        metavar="N",
                        help="surrogate only: synthetic grid size to "
                             "score (default: 10000)")
    parser.add_argument("--frontier", type=_positive_int, default=32,
                        metavar="K",
                        help="surrogate only: predicted-speedup frontier "
                             "cases to full-simulate (default: 32)")
    parser.add_argument("--audit-fraction", type=float, default=0.005,
                        metavar="F",
                        help="surrogate only: random audit slice as a "
                             "fraction of the scored grid (default: "
                             "0.005; at least 8 cases)")
    parser.add_argument("--seed", type=int, default=0,
                        help="surrogate only: grid shuffle + audit "
                             "sampling seed (default: 0)")
    parser.add_argument("--surrogate-out", default=None, metavar="FILE",
                        help="surrogate only: write the full triage "
                             "report (scores, factors, audit) to FILE "
                             "as JSON")
    parser.add_argument("--policy", default=None,
                        choices=("static", "adaptive"),
                        help="overlap policy every simulated run defaults "
                             "to (default: static, the paper's fixed "
                             "thresholds; 'adaptive' enables the EWMA "
                             "controller of docs/adaptive.md).  Policy "
                             "selection is part of the sweep-cache key, "
                             "so runs never collide across policies")
    add_sweep_arguments(parser)
    parser.add_argument("--clear-cache", action="store_true",
                        help="delete every persistent sweep-cache entry "
                             "before running")
    args = parser.parse_args(argv)
    if args.policy is not None:
        from repro.config import set_default_overlap_policy
        set_default_overlap_policy(args.policy)
    configure_sweep(args)
    if args.clear_cache:
        removed = sublayer_sweep.clear_disk_cache()
        print(f"[cleared {removed} sweep-cache entries]")

    if args.experiment == "profile":
        return run_profile_command(args)
    if args.experiment == "surrogate":
        return run_surrogate_command(args)
    if args.target is not None:
        print(f"positional target {args.target!r} is only valid with the "
              "'profile' subcommand", file=sys.stderr)
        return 2

    if args.trace_out is not None:
        if args.experiment == "all":
            print("--trace needs a single experiment, not 'all'",
                  file=sys.stderr)
            return 2
        if not _trace_capable(args.experiment):
            supported = sorted(name for name in EXPERIMENTS
                               if _trace_capable(name))
            print(f"--trace is not supported by {args.experiment!r} "
                  f"(supported: {', '.join(supported)})", file=sys.stderr)
            return 2

    names = sorted(EXPERIMENTS) if args.experiment == "all" \
        else [args.experiment]
    for name in names:
        started = time.time()
        before = sublayer_sweep.cache_stats().snapshot()
        if args.trace_out is not None:
            result = EXPERIMENTS[name](fast=not args.full,
                                       trace_out=args.trace_out)
        else:
            result = EXPERIMENTS[name](fast=not args.full)
        sweep = sublayer_sweep.cache_stats().delta(before)
        print(result.render())
        line = f"[{name} finished in {time.time() - started:.1f}s"
        if sweep.hits or sweep.misses:
            line += f"; sweep cache: {sweep.render()}"
        if args.trace_out is not None:
            line += f"; trace saved to {args.trace_out}"
        print(line + "]\n")

    if args.profile_out:
        report = profile.run(fast=not args.full, case_filter=args.config)
        path = profile.write_report(report, args.profile_out)
        print(f"[profile report written to {path}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
