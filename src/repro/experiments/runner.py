"""CLI: run any paper experiment and print its rendered output.

Usage::

    python -m repro.experiments.runner figure16
    python -m repro.experiments.runner figure16 --full
    python -m repro.experiments.runner all
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict

from repro.experiments import (
    dp_overlap, extensions, figure4, figure6, figure15, figure16, figure17,
    figure18, figure19, figure20, related_work, tables, validation,
)

EXPERIMENTS: Dict[str, Callable] = {
    "table1": tables.run_table1,
    "table2": tables.run_table2,
    "table3": tables.run_table3,
    "figure4": figure4.run,
    "figure6": figure6.run,
    "figure14": validation.run,
    "figure15": figure15.run,
    "figure16": figure16.run,
    "figure16-large": lambda fast=True: figure16.run(fast=fast, large=True),
    "figure17": figure17.run,
    "figure18": figure18.run,
    "figure19": figure19.run,
    "figure20": figure20.run,
    # Section 7 extension studies (beyond the paper's figures).
    "generation": extensions.run_generation,
    "precision": extensions.run_precision,
    "following-ops": extensions.run_following_ops,
    "consumer-fusion": extensions.run_consumer_fusion,
    "in-switch": related_work.run,
    "dp-overlap": dp_overlap.run,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="T3 reproduction experiment runner")
    parser.add_argument("experiment",
                        choices=sorted(EXPERIMENTS) + ["all"],
                        help="which table/figure to regenerate")
    parser.add_argument("--full", action="store_true",
                        help="paper-scale shapes (slower); default is a "
                             "token-scaled fast mode with identical "
                             "compute:communication balance")
    args = parser.parse_args(argv)

    names = sorted(EXPERIMENTS) if args.experiment == "all" \
        else [args.experiment]
    for name in names:
        started = time.time()
        result = EXPERIMENTS[name](fast=not args.full)
        print(result.render())
        print(f"[{name} finished in {time.time() - started:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
