"""Transformer workloads: hyperparameters, sliced sub-layers, projections.

* :mod:`repro.models.transformer` — model configs and the four
  tensor-parallel sub-layers whose GEMMs feed an all-reduce (OP and FC-2
  in the forward pass, FC-1 and IP in backprop — Section 6.1).
* :mod:`repro.models.zoo` — the paper's Table 2 models plus the
  futuristic 1T/10T configurations of Figure 4.
* :mod:`repro.models.endtoend` — roofline operator cost model composing
  full training / prompt-inference iterations (the paper's Section 5.1.2
  methodology, with an analytic operator model replacing the MLPerf BERT
  measurement — see DESIGN.md substitutions).
"""

from repro.models.transformer import (
    SubLayer,
    TransformerConfig,
    AR_SUBLAYERS,
)
from repro.models import zoo
from repro.models.endtoend import (
    IterationBreakdown,
    OperatorCost,
    Phase,
    iteration_breakdown,
    apply_sublayer_speedups,
)

__all__ = [
    "AR_SUBLAYERS",
    "IterationBreakdown",
    "OperatorCost",
    "Phase",
    "SubLayer",
    "TransformerConfig",
    "apply_sublayer_speedups",
    "iteration_breakdown",
    "zoo",
]
