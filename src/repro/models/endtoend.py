"""Roofline operator cost model for end-to-end Transformer iterations.

The paper composes end-to-end numbers from measured parts (Section 5.1.2:
MLPerf BERT measurement + analytical scaling).  We do the same with an
analytic operator model:

* every GEMM costs ``max(flops / sustained_flops, bytes / HBM_bw)`` plus a
  kernel-launch overhead;
* unfused attention (the paper's MLPerf v1.1 implementation predates
  FlashAttention) is modelled with a low effective-FLOPs efficiency and
  many passes over the [SL, SL] score matrix — calibrated so attention is
  the paper's reported 40-45% of unoptimized prompt-inference time;
* element-wise operators (layernorm, residual, GELU, dropout) are
  memory-bound passes over activations;
* collectives use the closed forms of :mod:`repro.collectives.api`.

Each operator is tagged with the sub-layer *group* it belongs to
("OP"/"FC-2"/"FC-1"/"IP" for the sliced-GEMM -> AR groups), so Figure 4's
breakdown and Figure 19's end-to-end speedups are straightforward
reductions.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.collectives.api import ring_ag_time, ring_rs_time
from repro.config import SystemConfig
from repro.gpu.wavefront import GEMMShape
from repro.models.transformer import TransformerConfig

#: effective fraction of peak FLOPs that unfused attention kernels reach.
ATTENTION_EFFICIENCY = 0.035
#: memory passes over the [B, heads, SL, SL] score matrix (mask, softmax,
#: dropout, transposes...).
ATTENTION_SCORE_PASSES = 20
#: per-kernel launch overhead.
LAUNCH_NS = 2_000.0


class Phase(enum.Enum):
    TRAINING = "training"
    PROMPT = "prompt"          # inference prompt-processing phase
    GENERATION = "generation"  # per-token decode phase (Section 7.3)


@dataclass(frozen=True)
class OperatorCost:
    """One operator instance (per layer, per device)."""

    name: str
    category: str              # gemm | sliced-gemm | attention | elementwise | rs | ag
    time_ns: float
    #: sliced sub-layer group this op belongs to, if any.
    group: Optional[str] = None

    @property
    def in_sliced_group(self) -> bool:
        return self.group is not None


@dataclass
class IterationBreakdown:
    """Per-iteration operator costs for one model/TP/phase."""

    model: TransformerConfig
    tp: int
    phase: Phase
    per_layer_ops: List[OperatorCost] = field(default_factory=list)

    @property
    def n_layers(self) -> int:
        return self.model.n_layers

    def layer_time(self) -> float:
        return sum(op.time_ns for op in self.per_layer_ops)

    def total_time(self) -> float:
        return self.layer_time() * self.n_layers

    def time_by_category(self) -> Dict[str, float]:
        out: Dict[str, float] = {}
        for op in self.per_layer_ops:
            out[op.category] = out.get(op.category, 0.0) + op.time_ns
        return {k: v * self.n_layers for k, v in out.items()}

    def sliced_group_time(self, group: Optional[str] = None) -> float:
        """Time in the sliced-GEMM -> AR groups (one group or all)."""
        total = sum(
            op.time_ns for op in self.per_layer_ops
            if op.group is not None and (group is None or op.group == group)
        )
        return total * self.n_layers

    def comm_time(self) -> float:
        by_cat = self.time_by_category()
        return by_cat.get("rs", 0.0) + by_cat.get("ag", 0.0)

    def sliced_fraction(self) -> float:
        """Figure 4's 'Sliced GEMM -> AR' share of the iteration."""
        return self.sliced_group_time() / self.total_time()

    def comm_fraction(self) -> float:
        return self.comm_time() / self.total_time()

    def attention_fraction(self) -> float:
        return self.time_by_category().get("attention", 0.0) / self.total_time()


# --------------------------------------------------------------- op costers

def gemm_time(shape: GEMMShape, system: SystemConfig) -> float:
    flops_t = shape.flops / system.compute.sustained_gemm_flops_per_ns
    bytes_total = shape.a_bytes + shape.b_bytes + shape.output_bytes
    mem_t = bytes_total / system.memory.effective_bandwidth
    return max(flops_t, mem_t) + LAUNCH_NS


def elementwise_time(nbytes: float, system: SystemConfig,
                     passes: float = 2.0) -> float:
    return passes * nbytes / system.memory.effective_bandwidth + LAUNCH_NS


def attention_time(model: TransformerConfig, tp: int,
                   system: SystemConfig) -> float:
    """Unfused attention score+context BMMs, softmax, mask, dropout."""
    flops = 4.0 * model.batch * model.seq_len ** 2 * model.hidden / tp
    flops_t = flops / (
        system.compute.sustained_gemm_flops_per_ns * ATTENTION_EFFICIENCY
    )
    score_bytes = (
        model.batch * model.n_heads * model.seq_len ** 2
        * model.element_bytes / tp
    )
    mem_t = ATTENTION_SCORE_PASSES * score_bytes / system.memory.effective_bandwidth
    return max(flops_t, mem_t) + 8 * LAUNCH_NS


def _ar_latency_bound(model: TransformerConfig,
                      system: SystemConfig) -> float:
    """Tiny-activation ring all-reduce (generation phase): dominated by
    per-step link latency rather than bandwidth."""
    n = system.n_gpus
    nbytes = model.batch * model.hidden * model.element_bytes
    per_step = (
        system.link.latency_ns
        + (nbytes / n) / system.link.bandwidth
    )
    return 2 * (n - 1) * per_step + LAUNCH_NS


# --------------------------------------------------------- layer assembly

def _forward_ops(model: TransformerConfig, tp: int,
                 system: SystemConfig) -> List[OperatorCost]:
    h = model.hidden
    t = model.tokens
    eb = model.element_bytes
    act = model.activation_bytes
    ops: List[OperatorCost] = []

    def gemm(name, m, n, k, category="gemm", group=None):
        shape = GEMMShape(m, n, k, eb, name)
        ops.append(OperatorCost(name, category,
                                gemm_time(shape, system), group=group))

    def collective(name, kind, group):
        fn = ring_rs_time if kind == "rs" else ring_ag_time
        ops.append(OperatorCost(name, kind, fn(act, system), group=group))

    ops.append(OperatorCost(
        "ln-1", "elementwise", elementwise_time(2 * act, system)))
    gemm("qkv-proj", t, 3 * h // tp, h)
    ops.append(OperatorCost(
        "attention", "attention", attention_time(model, tp, system)))
    gemm("out-proj", t, h, h // tp, category="sliced-gemm", group="OP")
    collective("op-rs", "rs", group="OP")
    collective("op-ag", "ag", group="OP")
    ops.append(OperatorCost(
        "residual-1", "elementwise", elementwise_time(2 * act, system)))
    ops.append(OperatorCost(
        "ln-2", "elementwise", elementwise_time(2 * act, system)))
    gemm("fc-1", t, model.ffn_mult * h // tp, h)
    gelu_bytes = 2 * t * model.ffn_mult * h * eb / tp
    ops.append(OperatorCost(
        "gelu", "elementwise", elementwise_time(gelu_bytes, system, passes=1)))
    gemm("fc-2", t, h, model.ffn_mult * h // tp,
         category="sliced-gemm", group="FC-2")
    collective("fc2-rs", "rs", group="FC-2")
    collective("fc2-ag", "ag", group="FC-2")
    ops.append(OperatorCost(
        "residual-2", "elementwise", elementwise_time(2 * act, system)))
    return ops


def _backward_ops(model: TransformerConfig, tp: int,
                  system: SystemConfig) -> List[OperatorCost]:
    h = model.hidden
    t = model.tokens
    eb = model.element_bytes
    act = model.activation_bytes
    ops: List[OperatorCost] = []

    def gemm(name, m, n, k, category="gemm", group=None):
        shape = GEMMShape(m, n, k, eb, name)
        ops.append(OperatorCost(name, category,
                                gemm_time(shape, system), group=group))

    def collective(name, kind, group):
        fn = ring_rs_time if kind == "rs" else ring_ag_time
        ops.append(OperatorCost(name, kind, fn(act, system), group=group))

    # FC-2 backward: dX (column-sliced output) and dW — both AR-free.
    gemm("fc-2-dx", t, model.ffn_mult * h // tp, h)
    gemm("fc-2-dw", model.ffn_mult * h // tp, h, t)
    ops.append(OperatorCost(
        "gelu-bwd", "elementwise",
        elementwise_time(2 * t * model.ffn_mult * h * eb / tp, system,
                         passes=1)))
    # FC-1 backward dX produces a [T, H] partial sum -> AR (Section 6.1).
    gemm("fc-1-dx", t, h, model.ffn_mult * h // tp,
         category="sliced-gemm", group="FC-1")
    collective("fc1-rs", "rs", group="FC-1")
    collective("fc1-ag", "ag", group="FC-1")
    gemm("fc-1-dw", h, model.ffn_mult * h // tp, t)
    ops.append(OperatorCost(
        "ln-2-bwd", "elementwise", elementwise_time(3 * act, system)))
    # Output-projection backward (AR-free) + attention backward.
    gemm("out-proj-dx", t, h // tp, h)
    gemm("out-proj-dw", h // tp, h, t)
    ops.append(OperatorCost(
        "attention-bwd", "attention",
        2.0 * attention_time(model, tp, system)))
    # QKV-projection backward dX -> AR.
    gemm("qkv-proj-dx", t, h, 3 * h // tp,
         category="sliced-gemm", group="IP")
    collective("ip-rs", "rs", group="IP")
    collective("ip-ag", "ag", group="IP")
    gemm("qkv-proj-dw", h, 3 * h // tp, t)
    ops.append(OperatorCost(
        "ln-1-bwd", "elementwise", elementwise_time(3 * act, system)))
    ops.append(OperatorCost(
        "residual-bwd", "elementwise", elementwise_time(2 * act, system)))
    return ops


def _generation_ops(model: TransformerConfig, tp: int,
                    system: SystemConfig) -> List[OperatorCost]:
    """One decode step (Section 7.3): GEMVs bound by sliced-weight reads,
    KV-cache-bound attention, and tiny latency-bound all-reduces.  TP's
    win here is aggregate memory bandwidth; the ARs remain on the
    critical path and are what T3 hides."""
    h = model.hidden
    eb = model.element_bytes
    bw = system.memory.effective_bandwidth

    def weight_gemv(name, weight_elems, category="gemm", group=None):
        time = (weight_elems * eb / tp) / bw + LAUNCH_NS
        return OperatorCost(name, category, time, group=group)

    ar = _ar_latency_bound(model, system)
    kv_bytes = (2 * model.batch * model.n_heads * model.seq_len
                * model.head_dim * eb / tp)
    act = model.batch * h * eb
    ops = [
        OperatorCost("ln-1", "elementwise",
                     2 * act / bw + LAUNCH_NS),
        weight_gemv("qkv-proj", 3 * h * h),
        OperatorCost("attention", "attention",
                     kv_bytes / bw + 4 * LAUNCH_NS),
        weight_gemv("out-proj", h * h, category="sliced-gemm", group="OP"),
        OperatorCost("op-rs", "rs", ar / 2, group="OP"),
        OperatorCost("op-ag", "ag", ar / 2, group="OP"),
        weight_gemv("fc-1", model.ffn_mult * h * h),
        weight_gemv("fc-2", model.ffn_mult * h * h,
                    category="sliced-gemm", group="FC-2"),
        OperatorCost("fc2-rs", "rs", ar / 2, group="FC-2"),
        OperatorCost("fc2-ag", "ag", ar / 2, group="FC-2"),
        OperatorCost("residual", "elementwise",
                     2 * act / bw + LAUNCH_NS),
    ]
    return ops


def iteration_breakdown(model: TransformerConfig, tp: int,
                        system: SystemConfig,
                        phase: Phase = Phase.TRAINING) -> IterationBreakdown:
    """Build the full iteration cost model (the Figure 4 ingredient)."""
    if tp < 2:
        raise ValueError("tensor parallelism needs tp >= 2")
    if system.n_gpus != tp:
        raise ValueError(
            f"system has {system.n_gpus} GPUs but tp={tp}; collectives "
            "span the TP group — construct the system with n_gpus=tp"
        )
    if phase is Phase.GENERATION:
        ops = _generation_ops(model, tp, system)
    else:
        ops = _forward_ops(model, tp, system)
        if phase is Phase.TRAINING:
            ops = ops + _backward_ops(model, tp, system)
    return IterationBreakdown(model=model, tp=tp, phase=phase,
                              per_layer_ops=ops)


def nmc_following_ops_speedup(breakdown: IterationBreakdown) -> float:
    """Section 7.6: with T3, memory-intensive operators that follow an
    all-reduce (residuals, the post-attention layernorm) can run near
    memory on the *reduced sub-array* before the all-gather, shrinking
    them by the TP degree.  Returns the end-to-end speedup of applying
    just that optimization."""
    post_ar = {"residual-1", "residual-2", "ln-2", "residual",
               "residual-bwd", "ln-2-bwd"}
    n = breakdown.tp
    base = breakdown.total_time()
    saved = sum(
        op.time_ns * (1.0 - 1.0 / n)
        for op in breakdown.per_layer_ops
        if op.name in post_ar
    ) * breakdown.n_layers
    return base / (base - saved)


# -------------------------------------------------- applying T3 speedups

def apply_sublayer_speedups(breakdown: IterationBreakdown,
                            speedups: Dict[str, float]) -> float:
    """End-to-end speedup when each sliced group is sped up as measured.

    ``speedups`` maps sub-layer names ("OP", "FC-2", "FC-1", "IP") to the
    whole-group (GEMM + RS + AG) speedup from the sub-layer experiments.
    Groups absent from the mapping stay at 1x.  This is the paper's
    Section 5.1.2 scaling methodology for Figure 19.
    """
    base_total = breakdown.total_time()
    saved = 0.0
    for group, speedup in speedups.items():
        if speedup <= 0:
            raise ValueError(f"speedup for {group} must be positive")
        group_time = breakdown.sliced_group_time(group)
        saved += group_time * (1.0 - 1.0 / speedup)
    return base_total / (base_total - saved)
