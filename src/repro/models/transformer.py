"""Transformer model configurations and tensor-parallel sub-layers.

Megatron-style tensor parallelism (Shoeybi et al.) slices each layer's
GEMM pairs column-then-row; the *row-parallel* GEMMs produce partial sums
that require an all-reduce on the critical path:

=========  =====  ===========================  =======================
sub-layer  phase  GEMM (per device)            why it needs an AR
=========  =====  ===========================  =======================
OP         fwd    [T, H/tp] x [H/tp, H]        attention output proj
FC-2       fwd    [T, 4H/tp] x [4H/tp, H]      2nd MLP GEMM
FC-1       bwd    [T, 4H/tp] x [4H/tp, H]      dX of 1st MLP GEMM
IP         bwd    [T, 3H/tp] x [3H/tp, H]      dX of QKV projection
=========  =====  ===========================  =======================

(T = tokens = sequence length x batch; the AR payload is always the
``[T, H]`` activation tensor.)  These are exactly the four cases of the
paper's Figures 15/16.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro import units
from repro.gpu.wavefront import GEMMShape

#: the sub-layers whose sliced GEMM feeds an all-reduce, with
#: (phase, K multiplier): K = multiplier * H / tp.
AR_SUBLAYERS: Dict[str, Tuple[str, int]] = {
    "OP": ("fwd", 1),
    "FC-2": ("fwd", 4),
    "FC-1": ("bwd", 4),
    "IP": ("bwd", 3),
}


@dataclass(frozen=True)
class TransformerConfig:
    """Hyperparameters of one Transformer model (Table 2 row)."""

    name: str
    hidden: int          # H
    n_layers: int        # L
    seq_len: int         # SL
    batch: int           # B
    ffn_mult: int = 4
    element_bytes: int = units.FP16_BYTES
    head_dim: int = 128

    def __post_init__(self) -> None:
        if min(self.hidden, self.n_layers, self.seq_len, self.batch) < 1:
            raise ValueError(f"invalid hyperparameters for {self.name}")

    @property
    def tokens(self) -> int:
        """Input tokens per iteration (= SL x B, Section 5.2)."""
        return self.seq_len * self.batch

    @property
    def n_heads(self) -> int:
        return max(1, self.hidden // self.head_dim)

    @property
    def n_parameters(self) -> float:
        """~(4 + 2*ffn_mult) * L * H^2 (attention + MLP weights)."""
        per_layer = (4 + 2 * self.ffn_mult) * self.hidden ** 2
        return float(self.n_layers * per_layer)

    @property
    def activation_bytes(self) -> int:
        """One [T, H] activation tensor — the AR payload."""
        return self.tokens * self.hidden * self.element_bytes

    # -- sub-layers ---------------------------------------------------------

    def sublayer(self, name: str, tp: int) -> "SubLayer":
        """One of the four AR-feeding sub-layers, sliced ``tp`` ways."""
        if name not in AR_SUBLAYERS:
            raise ValueError(
                f"unknown sub-layer {name!r}; choose from "
                f"{sorted(AR_SUBLAYERS)}")
        if tp < 2:
            raise ValueError("tensor parallelism needs tp >= 2")
        phase, k_mult = AR_SUBLAYERS[name]
        k_full = k_mult * self.hidden
        if k_full % tp:
            raise ValueError(
                f"{name}: K={k_full} not divisible by tp={tp}")
        shape = GEMMShape(
            m=self.tokens, n=self.hidden, k=k_full // tp,
            element_bytes=self.element_bytes,
            name=f"{self.name}.{name}.tp{tp}",
        )
        return SubLayer(model=self, name=name, phase=phase, tp=tp,
                        gemm=shape)

    def ar_sublayers(self, tp: int) -> List["SubLayer"]:
        """All four, in the paper's figure order."""
        return [self.sublayer(name, tp) for name in
                ("OP", "FC-2", "FC-1", "IP")]

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name, "hidden": self.hidden,
            "n_layers": self.n_layers, "seq_len": self.seq_len,
            "batch": self.batch, "ffn_mult": self.ffn_mult,
            "element_bytes": self.element_bytes, "head_dim": self.head_dim,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "TransformerConfig":
        return cls(**data)


@dataclass(frozen=True)
class SubLayer:
    """A tensor-sliced GEMM plus the all-reduce it requires."""

    model: TransformerConfig
    name: str
    phase: str          # "fwd" | "bwd"
    tp: int
    gemm: GEMMShape

    @property
    def comm_bytes(self) -> int:
        """All-reduce payload: the [T, H] partial-sum output."""
        return self.model.activation_bytes

    @property
    def label(self) -> str:
        return f"{self.model.name}/{self.name}/TP{self.tp}"

    @property
    def occurrences_per_iteration(self) -> int:
        """How many times this sub-layer runs per training iteration."""
        return self.model.n_layers

    def to_dict(self) -> Dict[str, object]:
        return {
            "model": self.model.to_dict(), "name": self.name,
            "phase": self.phase, "tp": self.tp,
            "gemm": self.gemm.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SubLayer":
        return cls(
            model=TransformerConfig.from_dict(data["model"]),
            name=data["name"], phase=data["phase"], tp=data["tp"],
            gemm=GEMMShape.from_dict(data["gemm"]),
        )
