"""The paper's model zoo (Table 2) plus the futuristic models of Figure 4.

================  =========  =====  ======  ===  =========
model             H          L      SL      B    TP degrees
================  =========  =====  ======  ===  =========
Mega-GPT-2        3072       74     1K      16   8, 16
T-NLG             4256       78     1K      8    8, 16
GPT-3             12288      96     1K      2    32
PALM              18432      118    1K      2    32
MT-NLG            20480      105    1K      2    32
Future-1T*        25600      128    1K      2    64
Future-10T*       51200      256    1K      2    64
================  =========  =====  ======  ===  =========

(*) The paper's Figure 4 includes "futuristic" one- and ten-trillion
parameter Transformers sharded 64 ways without publishing hyperparameters;
the starred rows are our parameterization chosen so
``(4 + 2*ffn_mult) * L * H^2`` lands on ~1T and ~10T parameters.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.models.transformer import TransformerConfig


def megatron_gpt2() -> TransformerConfig:
    return TransformerConfig("Mega-GPT-2", hidden=3072, n_layers=74,
                             seq_len=1024, batch=16)


def t_nlg() -> TransformerConfig:
    return TransformerConfig("T-NLG", hidden=4256, n_layers=78,
                             seq_len=1024, batch=8)


def gpt3() -> TransformerConfig:
    return TransformerConfig("GPT-3", hidden=12288, n_layers=96,
                             seq_len=1024, batch=2)


def palm() -> TransformerConfig:
    return TransformerConfig("PALM", hidden=18432, n_layers=118,
                             seq_len=1024, batch=2)


def mt_nlg() -> TransformerConfig:
    return TransformerConfig("MT-NLG", hidden=20480, n_layers=105,
                             seq_len=1024, batch=2)


def future_1t() -> TransformerConfig:
    return TransformerConfig("Future-1T", hidden=25600, n_layers=128,
                             seq_len=1024, batch=2)


def future_10t() -> TransformerConfig:
    return TransformerConfig("Future-10T", hidden=51200, n_layers=256,
                             seq_len=1024, batch=2)


#: model -> TP degrees studied in the paper.
TP_SETUPS: Dict[str, Tuple[int, ...]] = {
    "Mega-GPT-2": (8, 16),
    "T-NLG": (8, 16),
    "GPT-3": (32,),
    "PALM": (32,),
    "MT-NLG": (32,),
    "Future-1T": (64,),
    "Future-10T": (64,),
}


def all_models() -> List[TransformerConfig]:
    return [megatron_gpt2(), t_nlg(), gpt3(), palm(), mt_nlg(),
            future_1t(), future_10t()]


def table2_models() -> List[TransformerConfig]:
    """Exactly the Table 2 rows (no futuristic models)."""
    return [megatron_gpt2(), t_nlg(), gpt3(), palm(), mt_nlg()]


def small_models() -> List[TransformerConfig]:
    """The two models of the Figures 15/16 sub-layer study."""
    return [megatron_gpt2(), t_nlg()]


def large_models() -> List[TransformerConfig]:
    """The ~0.2-0.5T models of the Section 6.4 study."""
    return [gpt3(), palm(), mt_nlg()]


def by_name(name: str) -> TransformerConfig:
    for model in all_models():
        if model.name == name:
            return model
    raise ValueError(f"unknown model {name!r}")
