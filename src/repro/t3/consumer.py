"""Consumer-side fusion: overlap an all-gather with the GEMM that
consumes it (Section 7.2, "TP with All-gather").

Some tensor-parallel layouts (e.g. sequence parallelism) shard the
*input* activations: an all-gather must materialize the full ``[T, H]``
input before a long-running consumer GEMM.  T3 inverts its mechanism:

* the Tracker counts the **arriving** AG writes per input chunk,
* on completion it fires a **WG-scheduling event** instead of a DMA
  (the paper cites Lustig & Martonosi-style fine-grained scheduling),
* the consumer GEMM's stages are gated on the chunks their workgroups
  read; the stage covering the locally-resident chunk starts immediately.

The consumer grid enumerates chunks in ring-arrival order (own chunk
first, then upstream chunks as they arrive), so in steady state the GEMM
is never starved — the all-gather hides behind the compute.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.collectives.baseline import RingAllGather
from repro.collectives.plan import ring_all_gather_plan
from repro.gpu.gemm import GEMMKernel, GEMMResult
from repro.gpu.wavefront import GEMMShape, TileGrid
from repro.interconnect.topology import Topology
from repro.memory.cache import estimate_gemm_traffic
from repro.sim.engine import BaseEvent
from repro.t3.tracker import Tracker
from repro.t3.trigger import DMABlock, TriggerController


@dataclass
class ConsumerFusionResult:
    """Outcome of one fused AG -> consumer-GEMM run."""

    start: float = 0.0
    end: float = 0.0
    gemm_results: List[GEMMResult] = field(default_factory=list)
    #: per rank: when each foreign chunk's scheduling gate fired.
    gate_times: Dict[int, Dict[int, float]] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start


class FusedAGConsumerGEMM:
    """Ring all-gather overlapped with its consumer GEMM on every rank."""

    def __init__(self, topology: Topology, shape: GEMMShape,
                 n_cus: Optional[int] = None):
        self.topo = topology
        self.env = topology.env
        self.system = topology.system
        self.shape = shape
        self.n_cus = n_cus or self.system.compute.n_cus
        n = self.system.n_gpus

        # Consumer grids: chunk production order == the all-gather plan's
        # arrival order (own chunk, then upstream chunks as they land).
        ag_plan = ring_all_gather_plan(n)
        self.grids: List[TileGrid] = [
            TileGrid(shape, self.system.gemm, n_cus=self.n_cus,
                     n_chunks=n, chunk_offset=(rank - 1) % n, stagger=True,
                     production_order=ag_plan.arrival_order(rank))
            for rank in range(n)
        ]
        self.ag = RingAllGather(topology, nbytes_total=shape.a_bytes)
        self.trackers: List[Tracker] = []
        self.kernels: List[GEMMKernel] = []
        self.result = ConsumerFusionResult()
        for rank in range(n):
            self._setup_rank(rank)

    def _setup_rank(self, rank: int) -> None:
        gpu = self.topo.gpus[rank]
        grid = self.grids[rank]
        n = self.system.n_gpus

        tracker = Tracker(self.system.tracker, granularity="wg",
                          env=self.env, gpu_id=rank)
        gpu.mc.add_tracker_observer(tracker.observe)
        controller = TriggerController(self.env, tracker, gpu.dma)

        # One tracked region per *foreign input chunk*: the AG tags each
        # arriving write with its chunk id (wg_id == chunk id here), and
        # the region completes when the whole chunk has landed.
        chunk_sizes = self.ag.chunks
        gates: Dict[int, BaseEvent] = {}
        self.result.gate_times[rank] = {}
        for chunk_id in range(n):
            if chunk_id == rank:
                continue  # locally resident, no gate
            tracker.program_region(chunk_id, -1,
                                   expected_bytes=chunk_sizes[chunk_id])
            event = controller.program_block(DMABlock(
                block_id=f"r{rank}.in-chunk{chunk_id}",
                regions={(chunk_id, -1)},
            ))
            event.add_callback(
                lambda ev, r=rank, c=chunk_id:
                self.result.gate_times[r].__setitem__(c, ev.value))
            gates[chunk_id] = event

        # Gate each GEMM stage on the foreign chunks its WGs read.
        stage_gates: List[Optional[BaseEvent]] = []
        for stage in grid.stages:
            needed = [
                gates[cid] for cid in stage.chunk_bytes if cid in gates
            ]
            if not needed:
                stage_gates.append(None)
            elif len(needed) == 1:
                stage_gates.append(needed[0])
            else:
                stage_gates.append(self.env.all_of(needed))

        traffic = estimate_gemm_traffic(grid, self.system.memory,
                                        bypass_writes=False)
        self.kernels.append(GEMMKernel(
            grid, traffic, n_cus=self.n_cus, stage_gates=stage_gates))
        self.trackers.append(tracker)

    def run(self) -> ConsumerFusionResult:
        self.result.start = self.env.now
        ag_procs = self.ag.launch()
        gemm_procs = [
            gpu.launch(kernel)
            for gpu, kernel in zip(self.topo.gpus, self.kernels)
        ]
        done = self.env.all_of(ag_procs + gemm_procs)
        self.env.run()
        if not done.fired:
            raise RuntimeError("fused AG->GEMM deadlocked")
        self.result.end = self.env.now
        self.result.gemm_results = [k.result for k in self.kernels]
        return self.result


def sequential_ag_then_gemm(topology: Topology, shape: GEMMShape,
                            n_cus: Optional[int] = None) -> float:
    """Baseline for comparison: AG completes, then the GEMM runs."""
    system = topology.system
    ag = RingAllGather(topology, nbytes_total=shape.a_bytes)
    ag_time = ag.run().duration
    kernels = []
    for gpu in topology.gpus:
        grid = TileGrid(shape, system.gemm,
                        n_cus=n_cus or system.compute.n_cus)
        traffic = estimate_gemm_traffic(grid, system.memory,
                                        bypass_writes=False)
        kernels.append(GEMMKernel(grid, traffic, n_cus=n_cus))
    procs = [gpu.launch(k) for gpu, k in zip(topology.gpus, kernels)]
    topology.env.run()
    if any(not p.fired for p in procs):
        raise RuntimeError("sequential consumer GEMM never finished")
    return ag_time + max(k.result.duration for k in kernels)
