"""Standalone NMC reduce-scatter: T3's substrate without a fused producer.

Section 7.2 notes that in data-parallel / pipeline-parallel setups the
collective can already be overlapped with *independent* kernels — there
T3's overlapping adds nothing, but its NMC reductions and MCA arbitration
still cut the interference between the collective and the concurrent
compute (the problem ACE attacks with a dedicated accelerator).

:class:`NMCReduceScatter` runs a ring-RS entirely on DMA engines and
near-memory op-and-store — zero CU involvement:

* every rank's array is already resident (e.g. gradients after backprop);
* the first chunk's DMA fires immediately;
* each subsequent chunk's DMA is Tracker-triggered by the arrival of the
  incoming partial (one whole-chunk NMC contribution).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.collectives.plan import RouteKind, ring_reduce_scatter_plan
from repro.collectives.schedule import chunk_sizes
from repro.gpu.dma import DMACommand
from repro.interconnect.topology import RingTopology
from repro.memory.request import AccessKind
from repro.sim.engine import BaseEvent
from repro.t3.tracker import Tracker
from repro.t3.trigger import DMABlock, TriggerController


@dataclass
class NMCRSResult:
    start: float = 0.0
    end: float = 0.0
    per_rank_terminal: Dict[int, float] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start


class NMCReduceScatter:
    """DMA + NMC ring reduce-scatter (no compute units)."""

    def __init__(self, topology: RingTopology, nbytes_total: int,
                 label: str = "rs"):
        self.topo = topology
        self.env = topology.env
        self.system = topology.system
        self.nbytes_total = nbytes_total
        self.label = label
        n = self.system.n_gpus
        self.plan = ring_reduce_scatter_plan(n)
        self.chunks = chunk_sizes(nbytes_total, n)
        self._quantum = self.system.fidelity.quantum_bytes
        self.trackers: List[Tracker] = []
        self.controllers: List[TriggerController] = []
        self.terminal_events: List[BaseEvent] = []
        self._first_commands: List[str] = []
        self.result = NMCRSResult()
        for rank in range(n):
            self._setup_rank(rank)

    def _slices(self, chunk_id: int):
        """Quantum-sized DMA slices, all attributed to the chunk region."""
        size = self.chunks[chunk_id]
        full, rem = divmod(size, self._quantum)
        slices = [(chunk_id, self._quantum)] * full
        if rem:
            slices.append((chunk_id, rem))
        return tuple(slices)

    def _setup_rank(self, rank: int) -> None:
        gpu = self.topo.gpus[rank]
        tracker = Tracker(self.system.tracker, granularity="wg",
                          env=self.env, gpu_id=rank)
        gpu.mc.add_tracker_observer(tracker.observe)
        controller = TriggerController(self.env, tracker, gpu.dma)

        # Forwarded chunks in plan production order; own chunk terminates.
        routes = self.plan.routes(rank)
        for position, chunk_id in enumerate(self.plan.production_order(rank)):
            route = routes[chunk_id]
            if route.kind is RouteKind.LOCAL_TERMINAL:
                continue
            command_id = f"nmc-rs.chunk{chunk_id}"
            gpu.dma.program(DMACommand(
                command_id=command_id,
                dst_gpu_id=self.topo.gpus[route.dst_gpu].gpu_id,
                chunk_id=chunk_id,
                wg_slices=self._slices(chunk_id),
                op=AccessKind.UPDATE,
                label=self.label,
                read_source=True,
                stage=route.stage,
            ))
            if position == 0:
                # Fresh local data: fires at start, no tracking needed.
                self._first_commands.append(command_id)
                continue
            # Later chunks wait for one incoming whole-chunk contribution.
            tracker.program_region(chunk_id, -1,
                                   expected_bytes=self.chunks[chunk_id])
            controller.program_block(DMABlock(
                block_id=f"r{rank}.chunk{chunk_id}",
                regions={(chunk_id, -1)},
                dma_command_id=command_id,
            ))

        # The own chunk completes on its incoming contribution.
        tracker.program_region(rank, -1, expected_bytes=self.chunks[rank])
        terminal = controller.program_block(DMABlock(
            block_id=f"r{rank}.own", regions={(rank, -1)}))
        terminal.add_callback(
            lambda ev, r=rank: self.result.per_rank_terminal.__setitem__(
                r, ev.value))
        self.terminal_events.append(terminal)
        self.trackers.append(tracker)
        self.controllers.append(controller)

    def launch(self) -> List[BaseEvent]:
        """Fire the first-chunk DMAs; returns the terminal events."""
        self.result.start = self.env.now
        for rank, command_id in enumerate(self._first_commands):
            self.topo.gpus[rank].dma.trigger(command_id)
        return self.terminal_events

    def run(self) -> NMCRSResult:
        terminals = self.launch()
        done = self.env.all_of(terminals)
        self.env.run()
        if not done.fired:
            raise RuntimeError("NMC reduce-scatter deadlocked")
        self.result.end = self.env.now
        return self.result
