"""Producer output address-space configuration (Section 4.4).

T3 never modifies GEMM kernels; it changes where the *output address
space* points.  A :class:`AddressSpaceConfig` holds one
:class:`ChunkRoute` per output chunk of one device:

* ``REMOTE_UPDATE`` — the ``remote_map`` case: fine-grained peer-to-peer
  stores go straight over the link and NMC-update the destination
  (Figure 7 step 1: GPU-0's stage-1 output lands in GPU-3's memory).
* ``LOCAL_UPDATE`` — the ``dma_map`` case: stores NMC-update local DRAM;
  the Tracker counts local + incoming updates and fires the
  pre-programmed DMA when the chunk is fully reduced here.
* ``LOCAL_TERMINAL`` — the device's own chunk: tracked like LOCAL_UPDATE
  but with no DMA — its completion *is* the reduce-scatter result.

Constructors encode the collective patterns: ring reduce-scatter
(Figure 11/12), direct reduce-scatter on a fully-connected node and ring
all-gather (Section 7.1).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional


class RouteKind(enum.Enum):
    REMOTE_UPDATE = "remote_update"   # remote_map: store-over-link
    LOCAL_UPDATE = "local_update"     # dma_map: local NMC + triggered DMA
    LOCAL_TERMINAL = "local_terminal"  # own chunk, no DMA


@dataclass(frozen=True)
class ChunkRoute:
    """Where one output chunk of this device's GEMM goes."""

    chunk_id: int
    kind: RouteKind
    #: destination GPU for REMOTE_UPDATE (immediate) or LOCAL_UPDATE (DMA).
    dst_gpu: Optional[int] = None
    #: total whole-chunk update contributions this device's copy expects
    #: before its DMA/terminal trigger (ring-RS: 2, Section 4.2.1).
    expected_updates: int = 1
    #: whether stores reduce in memory ("update", reduction collectives)
    #: or overwrite ("store", data-exchange collectives like all-to-all).
    op: str = "update"

    def __post_init__(self) -> None:
        needs_dst = self.kind in (RouteKind.REMOTE_UPDATE,
                                  RouteKind.LOCAL_UPDATE)
        if needs_dst and self.dst_gpu is None:
            raise ValueError(f"{self.kind} route needs a destination GPU")
        if self.kind is RouteKind.LOCAL_TERMINAL and self.dst_gpu is not None:
            raise ValueError("terminal chunks stay local")
        if self.expected_updates < 1:
            raise ValueError("expected_updates must be >= 1")
        if self.op not in ("update", "store"):
            raise ValueError("route op must be 'update' or 'store'")

    @property
    def dma_command_id(self) -> Optional[str]:
        if self.kind is RouteKind.LOCAL_UPDATE:
            return f"dma.chunk{self.chunk_id}"
        return None


class AddressSpaceConfig:
    """All chunk routes for one device in one fused collective."""

    def __init__(self, rank: int, n_gpus: int,
                 routes: Dict[int, ChunkRoute], collective: str):
        if set(routes) != set(range(n_gpus)) and collective != "all-gather":
            raise ValueError("every chunk needs a route")
        self.rank = rank
        self.n_gpus = n_gpus
        self.routes = routes
        self.collective = collective

    def route(self, chunk_id: int) -> ChunkRoute:
        return self.routes[chunk_id]

    def tracked_chunks(self) -> List[int]:
        """Chunks whose updates this device's Tracker counts."""
        return sorted(
            cid for cid, route in self.routes.items()
            if route.kind in (RouteKind.LOCAL_UPDATE, RouteKind.LOCAL_TERMINAL)
        )

    def dma_chunks(self) -> List[int]:
        return sorted(
            cid for cid, route in self.routes.items()
            if route.kind is RouteKind.LOCAL_UPDATE
        )

    def remote_chunks(self) -> List[int]:
        return sorted(
            cid for cid, route in self.routes.items()
            if route.kind is RouteKind.REMOTE_UPDATE
        )

    # -- constructors -------------------------------------------------------------

    @classmethod
    def ring_reduce_scatter(cls, rank: int, n_gpus: int,
                            split_k: int = 1) -> "AddressSpaceConfig":
        """Figure 11/12: the ring-RS configuration for ``rank``.

        Production order is ``rank+1, rank+2, ..., rank``; the first chunk
        is remote-mapped to the downstream neighbour, middle chunks are
        dma-mapped there, and the device's own chunk is terminal.

        ``split_k`` handles split-K GEMMs (Section 7.7): each element
        receives ``split_k`` local partial updates, so a chunk is complete
        after ``split_k`` local updates plus its incoming contribution —
        itself ``split_k`` fine-grained updates when the upstream
        neighbour remote-maps it, or one reduced DMA otherwise.  The
        driver deduces ``split_k`` from the kernel packet's tile-size
        metadata.
        """
        if n_gpus < 2:
            raise ValueError("ring-RS needs at least 2 GPUs")
        if split_k < 1:
            raise ValueError("split_k must be >= 1")
        downstream = (rank - 1) % n_gpus
        remote_fed = (rank + 2) % n_gpus  # receives upstream's remote_map
        routes: Dict[int, ChunkRoute] = {}
        first = (rank + 1) % n_gpus
        routes[first] = ChunkRoute(first, RouteKind.REMOTE_UPDATE,
                                   dst_gpu=downstream)

        def expected_for(cid: int) -> int:
            incoming = split_k if cid == remote_fed else 1
            return split_k + incoming

        for offset in range(2, n_gpus):
            cid = (rank + offset) % n_gpus
            routes[cid] = ChunkRoute(cid, RouteKind.LOCAL_UPDATE,
                                     dst_gpu=downstream,
                                     expected_updates=expected_for(cid))
        routes[rank] = ChunkRoute(rank, RouteKind.LOCAL_TERMINAL,
                                  expected_updates=expected_for(rank))
        return cls(rank, n_gpus, routes, collective="ring-rs")

    @classmethod
    def all_to_all(cls, rank: int, n_gpus: int) -> "AddressSpaceConfig":
        """Section 7.1/7.2: fused all-to-all for expert parallelism.

        Chunk ``c`` of the producer's output belongs to device ``c``; it is
        remote-mapped there as a plain *store* (no reduction) and the
        device's own chunk is written locally once."""
        if n_gpus < 2:
            raise ValueError("all-to-all needs at least 2 GPUs")
        routes: Dict[int, ChunkRoute] = {}
        for cid in range(n_gpus):
            if cid == rank:
                routes[cid] = ChunkRoute(cid, RouteKind.LOCAL_TERMINAL,
                                         expected_updates=1, op="store")
            else:
                routes[cid] = ChunkRoute(cid, RouteKind.REMOTE_UPDATE,
                                         dst_gpu=cid, op="store")
        return cls(rank, n_gpus, routes, collective="all-to-all")

    @classmethod
    def direct_reduce_scatter(cls, rank: int, n_gpus: int) -> "AddressSpaceConfig":
        """Section 7.1: fully-connected direct-RS — every foreign chunk is
        remote-mapped straight to its final owner; the collective needs no
        DMA and no local traffic for foreign chunks at all."""
        if n_gpus < 2:
            raise ValueError("direct-RS needs at least 2 GPUs")
        routes: Dict[int, ChunkRoute] = {}
        for cid in range(n_gpus):
            if cid == rank:
                routes[cid] = ChunkRoute(cid, RouteKind.LOCAL_TERMINAL,
                                         expected_updates=n_gpus)
            else:
                routes[cid] = ChunkRoute(cid, RouteKind.REMOTE_UPDATE,
                                         dst_gpu=cid)
        return cls(rank, n_gpus, routes, collective="direct-rs")
