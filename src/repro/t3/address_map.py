"""Producer output address-space configuration (Section 4.4).

T3 never modifies GEMM kernels; it changes where the *output address
space* points.  A :class:`AddressSpaceConfig` holds one
:class:`ChunkRoute` per output chunk of one device:

* ``REMOTE_UPDATE`` — the ``remote_map`` case: fine-grained peer-to-peer
  stores go straight over the link and NMC-update the destination
  (Figure 7 step 1: GPU-0's stage-1 output lands in GPU-3's memory).
* ``LOCAL_UPDATE`` — the ``dma_map`` case: stores NMC-update local DRAM;
  the Tracker counts local + incoming updates and fires the
  pre-programmed DMA when the chunk is fully reduced here.
* ``LOCAL_TERMINAL`` — the device's own chunk: tracked like LOCAL_UPDATE
  but with no DMA — its completion *is* the reduce-scatter result.

The route table itself is computed by one collective program — a
:class:`~repro.collectives.plan.CollectivePlan` — and *compiled* into a
per-rank config here (:meth:`AddressSpaceConfig.from_plan`).  The named
constructors (ring reduce-scatter of Figure 11/12, direct-RS and
all-to-all of Section 7.1/7.2) are thin wrappers over the matching plan
builders; :class:`RouteKind` / :class:`ChunkRoute` are defined in the
plan module and re-exported for compatibility.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.collectives.plan import (  # noqa: F401  (re-exported API)
    ChunkRoute,
    CollectivePlan,
    RouteKind,
    all_to_all_plan,
    direct_rs_plan,
    ring_reduce_scatter_plan,
)


class AddressSpaceConfig:
    """All chunk routes for one device in one fused collective."""

    def __init__(self, rank: int, n_gpus: int,
                 routes: Dict[int, ChunkRoute], collective: str,
                 n_chunks: Optional[int] = None):
        chunks = n_gpus if n_chunks is None else n_chunks
        if set(routes) != set(range(chunks)) and collective != "all-gather":
            raise ValueError("every chunk needs a route")
        self.rank = rank
        self.n_gpus = n_gpus
        self.n_chunks = chunks
        self.routes = routes
        self.collective = collective

    def route(self, chunk_id: int) -> ChunkRoute:
        return self.routes[chunk_id]

    def tracked_chunks(self) -> List[int]:
        """Chunks whose updates this device's Tracker counts."""
        return sorted(
            cid for cid, route in self.routes.items()
            if route.kind in (RouteKind.LOCAL_UPDATE, RouteKind.LOCAL_TERMINAL)
        )

    def dma_chunks(self) -> List[int]:
        return sorted(
            cid for cid, route in self.routes.items()
            if route.kind is RouteKind.LOCAL_UPDATE
        )

    def remote_chunks(self) -> List[int]:
        return sorted(
            cid for cid, route in self.routes.items()
            if route.kind is RouteKind.REMOTE_UPDATE
        )

    # -- constructors -------------------------------------------------------------

    @classmethod
    def from_plan(cls, plan: CollectivePlan, rank: int) -> "AddressSpaceConfig":
        """Compile one rank's routes out of a collective plan."""
        return cls(rank, plan.n_ranks, dict(plan.routes(rank)),
                   collective=plan.collective, n_chunks=plan.n_chunks)

    @classmethod
    def ring_reduce_scatter(cls, rank: int, n_gpus: int,
                            split_k: int = 1) -> "AddressSpaceConfig":
        """Figure 11/12: the ring-RS configuration for ``rank``.

        Production order is ``rank+1, rank+2, ..., rank``; the first chunk
        is remote-mapped to the downstream neighbour, middle chunks are
        dma-mapped there, and the device's own chunk is terminal.

        ``split_k`` handles split-K GEMMs (Section 7.7): each element
        receives ``split_k`` local partial updates, so a chunk is complete
        after ``split_k`` local updates plus its incoming contribution —
        itself ``split_k`` fine-grained updates when the upstream
        neighbour remote-maps it, or one reduced DMA otherwise.  The
        driver deduces ``split_k`` from the kernel packet's tile-size
        metadata.
        """
        if n_gpus < 2:
            raise ValueError("ring-RS needs at least 2 GPUs")
        return cls.from_plan(
            ring_reduce_scatter_plan(n_gpus, split_k=split_k), rank)

    @classmethod
    def all_to_all(cls, rank: int, n_gpus: int) -> "AddressSpaceConfig":
        """Section 7.1/7.2: fused all-to-all for expert parallelism.

        Chunk ``c`` of the producer's output belongs to device ``c``; it is
        remote-mapped there as a plain *store* (no reduction) and the
        device's own chunk is written locally once."""
        return cls.from_plan(all_to_all_plan(n_gpus), rank)

    @classmethod
    def direct_reduce_scatter(cls, rank: int, n_gpus: int) -> "AddressSpaceConfig":
        """Section 7.1: fully-connected direct-RS — every foreign chunk is
        remote-mapped straight to its final owner; the collective needs no
        DMA and no local traffic for foreign chunks at all."""
        return cls.from_plan(direct_rs_plan(n_gpus), rank)
