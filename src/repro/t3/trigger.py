"""Region -> DMA-block bookkeeping and triggering (Section 4.2.2).

The Tracker completes *regions* (WF/WG output tiles); DMA transfers move
*blocks* (a ring chunk, or a slice of one).  The
:class:`TriggerController` maps completed regions to their block, counts
down the block's remaining regions, and when a block is fully updated
either:

* fires the block's pre-programmed DMA command (steady-state chunks), or
* fires a plain *terminal* event (the device's own chunk — the final,
  fully-reduced reduce-scatter output that stays local).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set

from repro.gpu.dma import DMAEngine
from repro.sim.engine import BaseEvent, Environment
from repro.t3.tracker import RegionKey, Tracker


@dataclass
class DMABlock:
    """One triggerable unit: a chunk's worth of tracked regions."""

    block_id: str
    regions: Set[RegionKey]
    #: DMA command to fire on completion; None for terminal blocks.
    dma_command_id: Optional[str] = None
    completed: Set[RegionKey] = field(default_factory=set)
    fired: bool = False

    @property
    def remaining(self) -> int:
        return len(self.regions) - len(self.completed)

    @property
    def is_terminal(self) -> bool:
        return self.dma_command_id is None


class TriggerController:
    """Connects a Tracker's region completions to DMA block triggers."""

    def __init__(self, env: Environment, tracker: Tracker, dma: DMAEngine):
        self.env = env
        self.tracker = tracker
        self.dma = dma
        self._blocks: Dict[str, DMABlock] = {}
        self._region_to_block: Dict[RegionKey, str] = {}
        self._terminal_events: Dict[str, BaseEvent] = {}
        self._first_complete: Dict[str, float] = {}
        tracker.add_completion_listener(self._on_region_complete)
        env.add_diagnostic(self._diagnostic)

    # -- programming -------------------------------------------------------------

    def program_block(self, block: DMABlock) -> Optional[BaseEvent]:
        """Register a block.  Returns the terminal event for terminal
        blocks (None for DMA blocks — use the DMA completion instead)."""
        if block.block_id in self._blocks:
            raise ValueError(f"block {block.block_id!r} programmed twice")
        if not block.regions:
            raise ValueError(f"block {block.block_id!r} has no regions")
        if block.dma_command_id is not None and not self.dma.is_programmed(
                block.dma_command_id):
            raise ValueError(
                f"block {block.block_id!r} references unprogrammed DMA "
                f"command {block.dma_command_id!r}"
            )
        for region in block.regions:
            if region in self._region_to_block:
                raise ValueError(
                    f"region {region} already owned by block "
                    f"{self._region_to_block[region]!r}"
                )
            self._region_to_block[region] = block.block_id
        self._blocks[block.block_id] = block
        if block.is_terminal:
            event = BaseEvent(self.env)
            self._terminal_events[block.block_id] = event
            return event
        return None

    def terminal_event(self, block_id: str) -> BaseEvent:
        return self._terminal_events[block_id]

    # -- runtime ---------------------------------------------------------------------

    def _on_region_complete(self, region: RegionKey) -> None:
        block_id = self._region_to_block.get(region)
        if block_id is None:
            return
        block = self._blocks[block_id]
        if region in block.completed:
            raise RuntimeError(f"region {region} completed twice")
        if not block.completed:
            self._first_complete[block_id] = self.env.now
        block.completed.add(region)
        if block.remaining == 0 and not block.fired:
            block.fired = True
            # Trigger eagerness is an overlap-policy decision: the paper
            # fires eagerly (delay 0, the inline path below); a policy
            # may hold the fire briefly to batch DMA traffic.
            overlap = self.env.overlap
            delay = 0.0
            if overlap is not None:
                delay = overlap.trigger_fire_delay(self.dma.gpu.gpu_id,
                                                   block)
            if delay > 0.0:
                self.env.call_later(
                    delay, lambda _ev, b=block: self._fire(b))
            else:
                self._fire(block)

    def _fire(self, block: DMABlock) -> None:
        """Deliver a completed block's trigger (DMA or terminal event)."""
        block_id = block.block_id
        if self.env.invariants is not None:
            self.env.invariants.on_trigger_fired(
                f"trigger block {block_id}")
        if self.env.obs is not None:
            scope = self.env.obs.scope(self.dma.gpu.gpu_id, "trigger")
            scope.count("terminal_fires" if block.is_terminal
                        else "dma_fires")
            first = self._first_complete.get(block_id, self.env.now)
            # Gather window: first region done -> block fully updated.
            scope.observe("block_gather_ns", self.env.now - first)
        if block.is_terminal:
            self._terminal_events[block_id].succeed(self.env.now)
        else:
            self.dma.trigger(block.dma_command_id)

    # -- introspection ------------------------------------------------------------------

    def _diagnostic(self) -> str:
        """One line of block state for the engine's hang dump."""
        pending = sorted(
            block_id for block_id, block in self._blocks.items()
            if not block.fired)
        line = (f"trigger[gpu{self.dma.gpu.gpu_id}]: "
                f"{self.blocks_fired} fired, {self.blocks_pending} pending")
        if pending:
            shown = ", ".join(pending[:5])
            more = f" +{len(pending) - 5} more" if len(pending) > 5 else ""
            line += f" ({shown}{more})"
        return line

    def block(self, block_id: str) -> DMABlock:
        return self._blocks[block_id]

    @property
    def blocks_fired(self) -> int:
        return sum(1 for b in self._blocks.values() if b.fired)

    @property
    def blocks_pending(self) -> int:
        return sum(1 for b in self._blocks.values() if not b.fired)
