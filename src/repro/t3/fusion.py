"""Fused GEMM + ring reduce-scatter orchestration (Figure 7).

This assembles every T3 piece on every GPU of a ring:

1. build a ring-staggered :class:`~repro.gpu.wavefront.TileGrid` per rank
   (device ``d`` produces chunk ``d+1`` first, its own chunk last);
2. configure the output address space
   (:class:`~repro.t3.address_map.AddressSpaceConfig`), program the
   :class:`~repro.t3.tracker.Tracker` regions, the DMA command table and
   the :class:`~repro.t3.trigger.TriggerController` blocks;
3. run the (unmodified) GEMM kernels with a :class:`T3StoreSink` that
   routes stores per the address map: the first chunk's stores stream
   over the link as fine-grained remote NMC updates, the rest NMC-update
   local DRAM;
4. the Tracker counts local + incoming updates per WG region and fires
   each chunk's DMA the instant it is fully reduced locally; the device's
   own chunk's completion is the reduce-scatter result.

The GEMM kernels know nothing about any of this — transparency is the
point (Section 4.4).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.collectives.plan import CollectivePlan, plan_for
from repro.gpu.dma import DMACommand
from repro.gpu.gemm import GEMMKernel, GEMMResult, StoreSink
from repro.gpu.wavefront import GEMMShape, StageInfo, TileGrid
from repro.interconnect.topology import Topology
from repro.memory.cache import estimate_gemm_traffic
from repro.memory.nmc import ReductionBuffer
from repro.memory.request import AccessKind, MemRequest, Stream
from repro.sim.engine import BaseEvent, SimulationError
from repro.t3.address_map import AddressSpaceConfig, RouteKind
from repro.t3.tracker import Tracker
from repro.t3.trigger import DMABlock, TriggerController


@dataclass
class FusedResult:
    """Outcome of one fused GEMM-RS run across all ranks."""

    start: float = 0.0
    rs_done: float = 0.0
    gemm_results: List[GEMMResult] = field(default_factory=list)
    per_rank_terminal: Dict[int, float] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """GEMM launch to last fully-reduced chunk, i.e. the fused
        GEMM+RS critical path."""
        return self.rs_done - self.start

    @property
    def gemm_duration(self) -> float:
        return max(r.duration for r in self.gemm_results)


class T3StoreSink(StoreSink):
    """Routes one rank's GEMM stores per its address-space config."""

    def __init__(self, fusion: "FusedGEMMRS", rank: int):
        self.fusion = fusion
        self.rank = rank
        self.config = fusion.address_configs[rank]
        self.grid = fusion.grids[rank]

    def store_stage(self, gpu, kernel: GEMMKernel,
                    stage: StageInfo) -> List[BaseEvent]:
        local_events: List[BaseEvent] = []
        split_k = self.fusion.split_k
        for wg_id in stage.wg_ids:
            chunk_id = self.grid.chunk_of_wg(wg_id)
            route = self.config.route(chunk_id)
            nbytes = self.grid.wg_tile_bytes
            kind = (AccessKind.UPDATE if route.op == "update"
                    else AccessKind.WRITE)
            # A split-K kernel's co-operating WGs each update the full
            # tile area with partial sums (Section 7.7).
            for _split in range(split_k):
                if route.kind is RouteKind.REMOTE_UPDATE:
                    gpu.env.process(
                        self._remote_store(gpu, route.dst_gpu, wg_id,
                                           chunk_id, nbytes, kind),
                        name=f"t3.remote.r{self.rank}.wg{wg_id}",
                    )
                else:
                    local_events.extend(gpu.mc.submit_bulk(
                        kind, Stream.COMPUTE, nbytes, "gemm",
                        wg_id=wg_id, chunk_id=chunk_id,
                    ))
        return local_events

    def _remote_store(self, gpu, dst_gpu_id: int, wg_id: int, chunk_id: int,
                      nbytes: int, kind: AccessKind):
        """Fine-grained peer-to-peer store: link, then remote NMC update
        (or plain store for non-reducing collectives).

        Reducing stores carry (wg, chunk) metadata so the destination
        Tracker can count them; all-to-all stores land in a *separate*
        per-source buffer at the destination and are not tracked there.
        """
        yield gpu.link_to(dst_gpu_id).transfer(nbytes)
        remote = gpu.peer(dst_gpu_id)
        reducing = kind is AccessKind.UPDATE
        writes = remote.mc.submit_bulk(
            kind, Stream.COMM, nbytes, self.fusion.comm_label,
            wg_id=wg_id if reducing else None,
            chunk_id=chunk_id if reducing else None,
        )
        if writes:
            yield gpu.env.all_of(writes)


class FusedGEMMRS:
    """A fused GEMM + reduce-scatter across every GPU of a topology.

    The driver programs itself entirely from a
    :class:`~repro.collectives.plan.CollectivePlan`: chunk routes become
    Tracker regions, DMA commands and trigger blocks; the plan's staggered
    production order shapes each rank's :class:`TileGrid`.  On a
    :class:`~repro.interconnect.topology.HierarchicalRingTopology` the
    plan is the two-phase intra-node/inter-node ring, so the same fusion
    runs multi-node.
    """

    def __init__(self, topology: Topology, shape: GEMMShape,
                 n_cus: Optional[int] = None, stagger: bool = True,
                 calibrate_mca: bool = False, check_invariants: bool = True,
                 tracker_granularity: str = "wg",
                 collective: str = "ring-rs", split_k: int = 1,
                 plan: Optional[CollectivePlan] = None):
        """``collective`` selects the address-space pattern: ``"ring-rs"``
        (the paper's main mechanism, Figure 7; on a hierarchical topology
        this becomes the two-phase multi-node plan), ``"direct-rs"``
        (Section 7.1 — fully-connected topology, every foreign chunk
        remote-mapped straight to its owner; no DMA, no local traffic for
        foreign chunks) or ``"all-to-all"`` (Section 7.2 — expert-parallel
        data exchange; remote stores, no reduction).

        ``split_k`` models split-K GEMM kernels (Section 7.7): ``split_k``
        co-operating WGs each issue partial updates per tile, and the
        Tracker triggers only after all of them (plus the incoming
        contribution) have landed.

        ``plan`` overrides the topology-derived collective plan (tests /
        custom schedules); it must match the topology's rank count."""
        if collective not in ("ring-rs", "direct-rs", "all-to-all"):
            raise ValueError(f"unsupported fused collective {collective!r}")
        if split_k < 1:
            raise ValueError("split_k must be >= 1")
        if split_k > 1 and collective != "ring-rs":
            raise ValueError("split-K tracking is modelled for ring-RS")
        self.topo = topology
        self.env = topology.env
        self.system = topology.system
        self.shape = shape
        self.n_cus = n_cus or self.system.compute.n_cus
        self.stagger = stagger and collective == "ring-rs"
        self.calibrate_mca = calibrate_mca
        self.check_invariants = check_invariants
        self.collective = collective
        self.split_k = split_k
        #: traffic label for the communication half of the fusion.
        self.comm_label = "rs" if collective != "all-to-all" else "a2a"

        n = self.system.n_gpus
        if plan is None:
            # Graceful small-shape chunking: a tiny output that cannot be
            # cut N ways gets a plan over fewer chunks instead of raising.
            tiles = (math.ceil(shape.m / self.system.gemm.macro_tile_m)
                     * math.ceil(shape.n / self.system.gemm.macro_tile_n))
            max_chunks = tiles if collective == "ring-rs" else None
            plan = plan_for(topology, collective, max_chunks=max_chunks,
                            split_k=split_k, stagger=self.stagger)
        if plan.n_ranks != n:
            raise ValueError(
                f"plan covers {plan.n_ranks} ranks but the topology has {n}")
        self.plan = plan
        self.grids: List[TileGrid] = [
            TileGrid(shape, self.system.gemm, n_cus=self.n_cus,
                     n_chunks=plan.n_chunks, chunk_offset=rank,
                     stagger=self.stagger,
                     production_order=plan.production_order(rank))
            for rank in range(n)
        ]
        self.address_configs = [
            AddressSpaceConfig.from_plan(plan, rank) for rank in range(n)
        ]
        self.trackers: List[Tracker] = []
        self.controllers: List[TriggerController] = []
        self.terminal_events: List[BaseEvent] = []
        self.dma_completions: List[BaseEvent] = []
        self.kernels: List[GEMMKernel] = []
        self.ledgers: List[Optional[ReductionBuffer]] = []
        self.result = FusedResult()
        for rank in range(n):
            self._setup_rank(rank)

    # -- per-rank configuration ("driver" work, Figure 12) -----------------------

    def _chunk_wgs(self, grid: TileGrid, chunk_id: int) -> List[int]:
        return grid.chunk_wgs(chunk_id)

    def _setup_rank(self, rank: int) -> None:
        gpu = self.topo.gpus[rank]
        grid = self.grids[rank]
        config = self.address_configs[rank]

        tracker = Tracker(self.system.tracker, granularity="wg",
                          env=self.env, gpu_id=rank)
        gpu.tracker = tracker
        gpu.mc.add_tracker_observer(tracker.observe)
        controller = TriggerController(self.env, tracker, gpu.dma)

        ledger: Optional[ReductionBuffer] = None
        if self.check_invariants:
            ledger = ReductionBuffer(
                {cid: grid.chunk_bytes_total(cid)
                 for cid in config.tracked_chunks()},
                expected_contributions={
                    cid: config.route(cid).expected_updates
                    for cid in config.tracked_chunks()
                },
            )
            gpu.mc.add_tracker_observer(
                self._make_ledger_observer(ledger, set(config.tracked_chunks())))

        # Program DMA commands, Tracker regions and trigger blocks.
        for chunk_id in config.tracked_chunks():
            route = config.route(chunk_id)
            wgs = self._chunk_wgs(grid, chunk_id)
            expected = route.expected_updates * grid.wg_tile_bytes
            for wg_id in wgs:
                tracker.program_region(wg_id, wf_id=-1,
                                       expected_bytes=expected)
            command_id = route.dma_command_id
            if command_id is not None:
                gpu.dma.program(DMACommand(
                    command_id=command_id,
                    dst_gpu_id=route.dst_gpu,
                    chunk_id=chunk_id,
                    wg_slices=tuple(
                        (wg_id, grid.wg_tile_bytes) for wg_id in wgs),
                    op=AccessKind.UPDATE,
                    label="rs",
                    read_source=True,
                    stage=route.stage,
                ))
                self.dma_completions.append(gpu.dma.completion(command_id))
            block = DMABlock(
                block_id=f"r{rank}.chunk{chunk_id}",
                regions={(wg_id, -1) for wg_id in wgs},
                dma_command_id=command_id,
            )
            terminal = controller.program_block(block)
            if terminal is not None:
                self.terminal_events.append(terminal)
                terminal.add_callback(
                    lambda ev, r=rank: self.result.per_rank_terminal.__setitem__(
                        r, ev.value))

        traffic = estimate_gemm_traffic(grid, self.system.memory,
                                        bypass_writes=True)
        kernel = GEMMKernel(
            grid, traffic, sink=T3StoreSink(self, rank), label="gemm",
            n_cus=self.n_cus, calibrate_mca=self.calibrate_mca,
        )
        self.trackers.append(tracker)
        self.controllers.append(controller)
        self.kernels.append(kernel)
        self.ledgers.append(ledger)

    def _make_ledger_observer(self, ledger: ReductionBuffer,
                              tracked: set):
        valid_labels = ("gemm", self.comm_label)

        def observe(request: MemRequest) -> None:
            if request.kind is AccessKind.READ:
                return
            if request.label not in valid_labels:
                return  # e.g. the all-gather that follows the fused RS
            if request.chunk_id in tracked:
                ledger.contribute(request.chunk_id, request.nbytes,
                                  source=request.label)

        return observe

    # -- execution --------------------------------------------------------------------

    def run(self) -> FusedResult:
        self.result.start = self.env.now
        procs = [
            gpu.launch(kernel)
            for gpu, kernel in zip(self.topo.gpus, self.kernels)
        ]
        everything = self.env.all_of(
            procs + self.terminal_events + self.dma_completions)
        # Armed resilience deadline timers may outlive the collective and
        # advance env.now past its real finish; capture rs_done at the
        # composite's fire instant so recovered runs report honest times.
        finished_at: List[float] = []
        everything.add_callback(lambda _ev: finished_at.append(self.env.now))
        self.env.run()
        runtime = self.env.resilience
        while not everything.fired and runtime is not None \
                and runtime.recover_drain(self):
            # The drain backstop re-issued lost completions; resume the
            # event loop and let the collective finish.
            self.env.run()
        if not everything.fired:
            if runtime is not None:
                runtime.mark_failed()
            # The schedule drained with waiters outstanding (e.g. a dropped
            # DMA completion, or tracker entries evicted under pressure):
            # a hang, surfaced as a diagnosable error instead of silence.
            pending = [
                (rank, tracker.pending_regions()[:3], tracker.live_regions)
                for rank, tracker in enumerate(self.trackers)
                if tracker.live_regions
            ]
            dropped = [
                (gpu.gpu_id, list(gpu.dma.dropped_completions))
                for gpu in self.topo.gpus
                if gpu.dma.dropped_completions
            ]
            raise SimulationError(
                f"fused GEMM-RS deadlocked; pending tracker regions: "
                f"{pending}; dropped DMA completions: {dropped}\n"
                + self.env.diagnostic_dump())
        self.result.rs_done = (
            finished_at[0]
            if runtime is not None and runtime.armed and finished_at
            else self.env.now)
        self.result.gemm_results = [k.result for k in self.kernels]
        if self.env.invariants is not None:
            self.env.invariants.check_all()
        if self.check_invariants:
            self._check_ledgers()
        return self.result

    def _check_ledgers(self) -> None:
        for rank, ledger in enumerate(self.ledgers):
            if ledger is None:
                continue
            for chunk_id, count, _sealed in ledger.summary():
                expected = ledger.expected[chunk_id]
                if count < expected:
                    raise AssertionError(
                        f"rank {rank} chunk {chunk_id} finished with only "
                        f"{count}/{expected} contributions — reduction "
                        "incomplete")
