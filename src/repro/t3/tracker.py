"""The T3 Tracker (Section 4.2.1).

A small structure at the memory controller that counts local, remote and
DMA updates per wavefront output region:

* 256 entries indexed by the WG id's LSBs (``wg_lsb``), set-associative,
  tagged ``(wg_msb, wf_id)``;
* each entry holds an update counter; when the counter reaches
  ``region bytes x expected updates per element`` the region is complete
  and the entry is handed to the :class:`~repro.t3.trigger.TriggerController`
  (which fires a DMA once all regions of a DMA block are complete);
* entries are allocated when a region is programmed (address-space
  configuration, Section 4.4) and freed when the region completes, so the
  structure is sized for the WGs in flight (the paper sizes it for the
  maximum WGs per producer stage).

Tracking granularity is configurable: ``"wg"`` (default; one region per
workgroup, matching the store granularity the simulator uses) or ``"wf"``
(one region per wavefront, the paper's full granularity).  A request that
carries only a ``wg_id`` contributes its bytes evenly to that WG's WF
regions in ``"wf"`` mode.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.config import TrackerConfig
from repro.memory.request import AccessKind, MemRequest

RegionKey = Tuple[int, int]  # (wg_id, wf_id); wf_id == -1 in "wg" mode


@dataclass
class TrackerEntry:
    """One tracked WF/WG output region.

    Byte counts are **integers**: the hardware counts whole update
    transactions, and integer arithmetic makes completion exact.  (The
    previous float representation compared against ``expected - 1e-6``,
    which could fire *early* once accumulated float error exceeded the
    epsilon — the region would trigger its DMA before the final update
    landed.)
    """

    key: RegionKey
    expected_bytes: int
    received_bytes: int = 0

    @property
    def complete(self) -> bool:
        return self.received_bytes >= self.expected_bytes


@dataclass
class TrackerStats:
    """Occupancy and behaviour counters for hardware-sizing checks."""

    regions_programmed: int = 0
    regions_completed: int = 0
    updates_observed: int = 0
    untracked_updates: int = 0
    peak_ways_used: int = 0
    overflow_events: int = 0
    forced_evictions: int = 0
    regions_restored: int = 0


class Tracker:
    """Set-associative update tracker for one GPU.

    ``env`` is optional; when given, the tracker registers a diagnostic
    with the engine (occupancy in hang dumps), reports credits to
    ``env.invariants`` (monotonicity / no-overshoot) and honors Tracker
    entry-table pressure faults from ``env.faults``.
    """

    def __init__(self, config: TrackerConfig, granularity: str = "wg",
                 strict_capacity: bool = False, env=None, gpu_id: int = 0):
        if granularity not in ("wg", "wf"):
            raise ValueError("granularity must be 'wg' or 'wf'")
        self.config = config
        self.granularity = granularity
        self.strict_capacity = strict_capacity
        self.env = env
        self.gpu_id = gpu_id
        self._sets: List[Dict[RegionKey, TrackerEntry]] = [
            {} for _ in range(config.n_entries)
        ]
        #: live-entry count maintained incrementally — ``live_regions`` is
        #: read on every obs gauge update and summing 256 sets there is a
        #: measurable fraction of profiled runs.
        self._live = 0
        self._on_complete: List[Callable[[RegionKey], None]] = []
        self.stats = TrackerStats()
        #: issue time of the request currently being credited; lets the
        #: completing credit report trigger-fire latency (issue -> fire).
        self._crediting_issued_at: Optional[float] = None
        if env is not None:
            env.add_diagnostic(self._diagnostic)
            if env.invariants is not None:
                env.invariants.register_tracker(gpu_id, self)

    # -- configuration (driver-time) -------------------------------------------

    def add_completion_listener(self, fn: Callable[[RegionKey], None]) -> None:
        self._on_complete.append(fn)

    def program_region(self, wg_id: int, wf_id: int,
                       expected_bytes: float) -> None:
        """Allocate an entry for a region (done by the dma_map setup)."""
        expected = int(round(expected_bytes))
        if expected <= 0:
            raise ValueError("a tracked region must expect positive bytes")
        if self.env is not None and self.env.faults is not None \
                and self.env.faults.has_tracker_faults \
                and self.env.faults.tracker_eviction_due(self.gpu_id):
            self._force_evict()
        key = self._key(wg_id, wf_id)
        entry_set = self._set_for(wg_id)
        if key in entry_set:
            raise ValueError(f"region {key} programmed twice")
        if len(entry_set) >= self.config.ways:
            self.stats.overflow_events += 1
            if self.strict_capacity:
                raise RuntimeError(
                    f"Tracker set {wg_id % self.config.n_entries} exceeded "
                    f"{self.config.ways} ways — the producer stage is larger "
                    "than the Tracker was sized for"
                )
        entry_set[key] = TrackerEntry(key=key, expected_bytes=expected)
        self._live += 1
        self.stats.regions_programmed += 1
        self.stats.peak_ways_used = max(
            self.stats.peak_ways_used, len(entry_set))
        if self.env is not None and self.env.obs is not None:
            scope = self.env.obs.scope(self.gpu_id, "tracker")
            scope.count("regions_programmed")
            scope.gauge("live_regions").set(self.env.now, self.live_regions)
        self._feed_pressure()

    def _force_evict(self) -> None:
        """Entry-table pressure fault: drop the oldest live region.

        Its accumulated update counts are lost, so the region can never
        complete through the Tracker — downstream trigger blocks hang,
        which the engine watchdog / post-run quiescence checks surface."""
        victims = self.pending_regions()
        if not victims:
            return
        victim = victims[0]
        entry = self._set_for(victim[0]).pop(victim)
        self._live -= 1
        self.stats.forced_evictions += 1
        if self.env is not None and self.env.faults is not None:
            self.env.faults.record_eviction(self.gpu_id, victim)
        if self.env is not None and self.env.resilience is not None:
            # Hand the victim (with its accumulated counts) to the
            # resilience runtime, which may restore the region with its
            # remaining bytes instead of letting the trigger hang.
            self.env.resilience.on_tracker_eviction(self, entry)

    def restore_region(self, key: RegionKey, remaining_bytes: int) -> None:
        """Re-program an evicted region for its *remaining* bytes.

        Recovery path only (resilience runtime): bypasses the pressure
        fault consultation — restoring must not itself trigger another
        eviction — and re-enters the entry directly so already-received
        bytes stay credited via the smaller expectation.
        """
        remaining = int(round(remaining_bytes))
        if remaining <= 0:
            raise ValueError("a restored region must expect positive bytes")
        entry_set = self._set_for(key[0])
        if key in entry_set:
            raise ValueError(f"region {key} is live; nothing to restore")
        entry_set[key] = TrackerEntry(key=key, expected_bytes=remaining)
        self._live += 1
        self.stats.regions_restored += 1
        self.stats.peak_ways_used = max(
            self.stats.peak_ways_used, len(entry_set))
        if self.env is not None and self.env.obs is not None:
            scope = self.env.obs.scope(self.gpu_id, "tracker")
            scope.count("regions_restored")
            scope.gauge("live_regions").set(self.env.now, self.live_regions)

    def is_tracked(self, wg_id: int, wf_id: int = -1) -> bool:
        return self._key(wg_id, wf_id) in self._set_for(wg_id)

    # -- runtime ----------------------------------------------------------------

    def observe(self, request: MemRequest) -> None:
        """Memory-controller hook: account a serviced write/update."""
        if request.kind is AccessKind.READ:
            return
        if request.wg_id is None:
            self.stats.untracked_updates += 1
            return
        self.stats.updates_observed += 1
        self._crediting_issued_at = request.issued_at
        if self.granularity == "wf" and request.wf_id is None:
            # A WG-granular store covers all of the WG's WF regions.
            self._spread_over_wfs(request)
            return
        wf = request.wf_id if self.granularity == "wf" else -1
        self._credit(request.wg_id, wf if wf is not None else -1,
                     request.nbytes)

    def _spread_over_wfs(self, request: MemRequest) -> None:
        entry_set = self._set_for(request.wg_id)
        wf_keys = sorted(key for key in entry_set if key[0] == request.wg_id)
        if not wf_keys:
            self.stats.untracked_updates += 1
            return
        # Exact integer split: no WF region may accumulate fractional
        # credit, or the sum would drift from the request's byte count.
        share, remainder = divmod(int(request.nbytes), len(wf_keys))
        for index, (_wg, wf) in enumerate(wf_keys):
            self._credit(request.wg_id, wf,
                         share + (1 if index < remainder else 0))

    def _credit(self, wg_id: int, wf_id: int, nbytes: float) -> None:
        # Whole bytes only: partial-byte credit must never tip a region
        # over its threshold (the float-epsilon early-fire bug).
        nbytes = int(nbytes)
        key = self._key(wg_id, wf_id)
        entry_set = self._set_for(wg_id)
        entry = entry_set.get(key)
        if entry is None:
            # Updates to unprogrammed regions (e.g. the chunk a GPU writes
            # remotely) are legal; they are simply not tracked here.
            self.stats.untracked_updates += 1
            return
        entry.received_bytes += nbytes
        if self.env is not None and self.env.invariants is not None:
            self.env.invariants.on_tracker_credit(self.gpu_id, entry, nbytes)
        if entry.complete:
            del entry_set[key]
            self._live -= 1
            self.stats.regions_completed += 1
            if self.env is not None and self.env.obs is not None:
                scope = self.env.obs.scope(self.gpu_id, "tracker")
                scope.count("regions_completed")
                if self._crediting_issued_at is not None:
                    # Latency from the region's last expected update being
                    # issued to the completion firing downstream triggers.
                    latency = self.env.now - self._crediting_issued_at
                    scope.observe("trigger_latency_ns", latency)
                    # Also a time series: exports as a Perfetto counter
                    # track, giving post-hoc trace analysis the full
                    # per-completion distribution (the ValueStats above
                    # only snapshots the aggregate).
                    scope.series("trigger_latency_ns").record(
                        self.env.now, latency)
                scope.gauge("live_regions").set(
                    self.env.now, self.live_regions)
            if self.env is not None and self.env.resilience is not None \
                    and self._crediting_issued_at is not None:
                self.env.resilience.observe_trigger_latency(
                    self.gpu_id, self.env.now - self._crediting_issued_at)
            self._feed_pressure()
            for fn in self._on_complete:
                fn(key)

    # -- helpers ---------------------------------------------------------------------

    def _feed_pressure(self) -> None:
        """Live-region occupancy as an overlap-policy pressure signal
        (purely observational: the policy may not schedule anything)."""
        env = self.env
        if env is not None and env.overlap is not None:
            env.overlap.observe_tracker_pressure(
                self.gpu_id, self._live,
                self.config.n_entries * self.config.ways)

    def _key(self, wg_id: int, wf_id: int) -> RegionKey:
        return (wg_id, wf_id if self.granularity == "wf" else -1)

    def _set_for(self, wg_id: int) -> Dict[RegionKey, TrackerEntry]:
        return self._sets[wg_id % self.config.n_entries]

    @property
    def live_regions(self) -> int:
        return self._live

    def pending_regions(self) -> List[RegionKey]:
        return sorted(key for s in self._sets for key in s)

    def _diagnostic(self) -> str:
        """One line of occupancy state for the engine's hang dump."""
        stats = self.stats
        pending = self.pending_regions()
        line = (f"gpu{self.gpu_id}.tracker: live={self.live_regions} "
                f"programmed={stats.regions_programmed} "
                f"completed={stats.regions_completed} "
                f"evicted={stats.forced_evictions}")
        if pending:
            shown = ", ".join(map(str, pending[:5]))
            more = f" +{len(pending) - 5} more" if len(pending) > 5 else ""
            line += f"; pending regions: {shown}{more}"
        return line
