"""The evaluation configurations of Section 5.3.

Each :class:`RunConfig` names one way to execute a "sliced GEMM -> AR"
sub-layer:

* ``Sequential`` — baseline: GEMM kernel, then ring-RS kernel, then
  ring-AG kernel, all CU-driven and serialized.
* ``T3`` — fused GEMM-RS with track & trigger + NMC, compute-priority
  memory arbitration, then sequential AG.
* ``T3-MCA`` — T3 plus the communication-aware memory-controller
  arbitration policy.
* ``Ideal-GEMM-RS-Overlap`` — analytic ideal: ``max(GEMM, RS)`` isolated
  times with zero contention, then AG.
* ``Ideal-RS+NMC`` — the ideal overlap where RS additionally enjoys
  near-memory reductions: ``max(GEMM, RS_NMC)`` + AG.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class RunConfig:
    """One named execution strategy for a sliced sub-layer."""

    name: str
    fused: bool               # overlap GEMM with RS via T3
    mc_policy: str            # memory-controller arbitration policy
    analytic: bool = False    # closed-form ideal, no event simulation
    nmc_rs: bool = False      # analytic RS uses near-memory reductions

    def __post_init__(self) -> None:
        if self.analytic and self.fused:
            raise ValueError("analytic ideals are not event-simulated")


SEQUENTIAL = RunConfig("Sequential", fused=False,
                       mc_policy="round-robin")
# Plain T3 runs on the GPU's default round-robin arbitration — Section 4.5
# identifies exactly that policy as the source of producer-kernel stalls
# that T3-MCA then removes.
T3 = RunConfig("T3", fused=True, mc_policy="round-robin")
T3_MCA = RunConfig("T3-MCA", fused=True, mc_policy="mca")
IDEAL_OVERLAP = RunConfig("Ideal-GEMM-RS-Overlap", fused=False,
                          mc_policy="compute-priority", analytic=True)
IDEAL_RS_NMC = RunConfig("Ideal-RS+NMC", fused=False,
                         mc_policy="compute-priority", analytic=True,
                         nmc_rs=True)

CONFIGS: Tuple[RunConfig, ...] = (
    SEQUENTIAL, T3, T3_MCA, IDEAL_OVERLAP, IDEAL_RS_NMC,
)


def config_by_name(name: str) -> RunConfig:
    for config in CONFIGS:
        if config.name == name:
            return config
    raise ValueError(
        f"unknown configuration {name!r}; choose from "
        f"{[c.name for c in CONFIGS]}"
    )
