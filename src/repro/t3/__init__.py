"""T3: the paper's contribution — transparent track & trigger.

* :mod:`repro.t3.tracker` — the lightweight set-associative Tracker at the
  memory controller (Section 4.2.1).
* :mod:`repro.t3.trigger` — region->DMA-block bookkeeping and triggering
  (Section 4.2.2).
* :mod:`repro.t3.address_map` — ``remote_map`` / ``dma_map`` address-space
  configuration (Section 4.4, Figures 11/12).
* :mod:`repro.t3.fusion` — the fused GEMM-collective orchestration
  (Figure 7) built from the pieces above.
* :mod:`repro.t3.configs` — the evaluation configurations of Section 5.3.
"""

from repro.t3.tracker import Tracker, TrackerStats
from repro.t3.trigger import DMABlock, TriggerController
from repro.t3.address_map import AddressSpaceConfig, ChunkRoute, RouteKind
from repro.t3.fusion import FusedGEMMRS, FusedResult
from repro.t3.consumer import (
    ConsumerFusionResult,
    FusedAGConsumerGEMM,
    sequential_ag_then_gemm,
)
from repro.t3.configs import RunConfig, CONFIGS

__all__ = [
    "AddressSpaceConfig",
    "CONFIGS",
    "ChunkRoute",
    "ConsumerFusionResult",
    "DMABlock",
    "FusedAGConsumerGEMM",
    "FusedGEMMRS",
    "FusedResult",
    "sequential_ag_then_gemm",
    "RouteKind",
    "RunConfig",
    "Tracker",
    "TrackerStats",
    "TriggerController",
]
