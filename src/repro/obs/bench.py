"""Benchmark-trajectory schema: the ``BENCH_*.json`` contract.

``scripts/bench.py`` captures one *bench point* per invocation — host
wall-clock plus the simulated speedups and overlap efficiencies of a
small case set — and writes it as a schema-versioned JSON file
(``results/BENCH_0003.json`` is the checked-in trajectory point for this
revision).  CI re-captures a smoke point on every push and validates
both files against this schema, so regressions in either the simulated
results or the capture pipeline fail loudly.

This module is deliberately free of experiment imports: it defines the
payload layout and validates instances, nothing else, so tests and CI
can validate checked-in files without simulating anything.
"""

from __future__ import annotations

from typing import Any, Dict, List

#: schema identity: bump the version on any breaking layout change and
#: keep ``validate`` accepting only the current version.
#:
#: v2: adds the required top-level ``cases_per_second`` throughput metric
#: (simulated cases per host second across the whole case set) — the
#: first-class figure of merit for engine hot-path work.
#:
#: v3: adds the required top-level ``chaos`` object — the resilience
#: campaign's survival rate and MTTR (see ``repro.experiments.chaos``) —
#: so robustness is tracked as a first-class trajectory metric alongside
#: throughput.
#:
#: v4: adds the required top-level ``policy`` object — the overlap-policy
#: study's static-vs-adaptive exposed-communication comparison (see
#: ``repro.experiments.adaptive``) — so a regression that stops the
#: adaptive controller from paying on the faulty suites fails the bench
#: gate, not just the smoke test.
#:
#: v5: adds the required top-level ``throughput`` object (pure-simulation
#: vs profiled cases/s — ``cases_per_second`` keeps its v2 meaning, the
#: profiled loop, for cross-version comparability) and the required
#: top-level ``surrogate`` object — the calibrated-surrogate triage's
#: training-fit and audit-slice error statistics plus the simulated
#: fraction (see ``repro.surrogate``) — so both the engine fast path and
#: the analytic shortcut's accuracy are gated trajectory metrics.
BENCH_SCHEMA = "t3-bench"
BENCH_SCHEMA_VERSION = 5

#: modes a bench point can be captured in.
BENCH_MODES = ("smoke", "fast", "full")

_REQUIRED_TOP = ("schema", "schema_version", "mode", "captured_at",
                 "host", "wall_clock_s", "cases_per_second", "throughput",
                 "chaos", "policy", "surrogate", "experiments")
_REQUIRED_EXPERIMENT = ("case", "wall_clock_s", "speedups",
                        "overlap_efficiency")
#: the chaos-campaign metrics every bench point carries (v3).
_REQUIRED_CHAOS = ("scenarios", "survival_rate", "baseline_survival_rate",
                   "mttr_ns", "retained_speedup", "invariant_violations",
                   "watchdog_hangs")
#: the overlap-policy metrics every bench point carries (v4).
_REQUIRED_POLICY = ("suites", "adaptive_wins", "geomean_exposed_reduction")
_REQUIRED_POLICY_SUITE = ("static_exposed_ns", "adaptive_exposed_ns",
                          "adaptive_wins")
#: the throughput split every bench point carries (v5): the same case
#: loop timed bare (``pure_sim_cases_per_second``) and with telemetry +
#: overlap profiling attached (``profiled_cases_per_second``, equal to
#: the top-level ``cases_per_second``).
_REQUIRED_THROUGHPUT = ("pure_sim_cases_per_second",
                        "profiled_cases_per_second")
#: the surrogate-triage metrics every bench point carries (v5).
_REQUIRED_SURROGATE = ("n_scored", "n_simulated", "simulated_fraction",
                       "train_mae_rel", "audit_mae_rel",
                       "audit_geomean_rel", "audit_n")


def build_payload(mode: str, captured_at: str, host: Dict[str, str],
                  wall_clock_s: float, cases_per_second: float,
                  throughput: Dict[str, Any], chaos: Dict[str, Any],
                  policy: Dict[str, Any], surrogate: Dict[str, Any],
                  experiments: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Assemble a bench point; raises on anything the schema rejects."""
    payload = {
        "schema": BENCH_SCHEMA,
        "schema_version": BENCH_SCHEMA_VERSION,
        "mode": mode,
        "captured_at": captured_at,
        "host": host,
        "wall_clock_s": wall_clock_s,
        "cases_per_second": cases_per_second,
        "throughput": throughput,
        "chaos": chaos,
        "policy": policy,
        "surrogate": surrogate,
        "experiments": experiments,
    }
    errors = validate(payload)
    if errors:
        raise ValueError("bench payload invalid: " + "; ".join(errors))
    return payload


def validate(payload: Any) -> List[str]:
    """All schema violations in ``payload`` (empty list = valid)."""
    errors: List[str] = []
    if not isinstance(payload, dict):
        return [f"payload must be an object, got {type(payload).__name__}"]
    for key in _REQUIRED_TOP:
        if key not in payload:
            errors.append(f"missing top-level key {key!r}")
    if errors:
        return errors
    if payload["schema"] != BENCH_SCHEMA:
        errors.append(f"schema must be {BENCH_SCHEMA!r}, "
                      f"got {payload['schema']!r}")
    if payload["schema_version"] != BENCH_SCHEMA_VERSION:
        errors.append(f"schema_version must be {BENCH_SCHEMA_VERSION}, "
                      f"got {payload['schema_version']!r}")
    if payload["mode"] not in BENCH_MODES:
        errors.append(f"mode must be one of {BENCH_MODES}, "
                      f"got {payload['mode']!r}")
    if not isinstance(payload["captured_at"], str) \
            or not payload["captured_at"]:
        errors.append("captured_at must be a non-empty string")
    if not isinstance(payload["host"], dict):
        errors.append("host must be an object")
    if not _positive_number(payload["wall_clock_s"]):
        errors.append("wall_clock_s must be a positive number")
    if not _positive_number(payload["cases_per_second"]):
        errors.append("cases_per_second must be a positive number")
    errors.extend(_validate_throughput(payload["throughput"]))
    errors.extend(_validate_chaos(payload["chaos"]))
    errors.extend(_validate_policy(payload["policy"]))
    errors.extend(_validate_surrogate(payload["surrogate"]))
    experiments = payload["experiments"]
    if not isinstance(experiments, list) or not experiments:
        errors.append("experiments must be a non-empty list")
        return errors
    for index, entry in enumerate(experiments):
        errors.extend(_validate_experiment(index, entry))
    return errors


def _validate_throughput(entry: Any) -> List[str]:
    """The v5 throughput block: bare vs profiled simulation rates."""
    if not isinstance(entry, dict):
        return [f"throughput must be an object, got {type(entry).__name__}"]
    errors = [f"throughput missing key {key!r}"
              for key in _REQUIRED_THROUGHPUT if key not in entry]
    if errors:
        return errors
    for key in _REQUIRED_THROUGHPUT:
        if not _positive_number(entry[key]):
            errors.append(f"throughput.{key} must be a positive number")
    return errors


def _validate_surrogate(entry: Any) -> List[str]:
    """The v5 surrogate block: triage budget and accuracy statistics."""
    if not isinstance(entry, dict):
        return [f"surrogate must be an object, got {type(entry).__name__}"]
    errors = [f"surrogate missing key {key!r}"
              for key in _REQUIRED_SURROGATE if key not in entry]
    if errors:
        return errors
    for key in ("n_scored", "n_simulated", "audit_n"):
        value = entry[key]
        if not isinstance(value, int) or isinstance(value, bool) \
                or value < 0:
            errors.append(f"surrogate.{key} must be a non-negative integer")
    if not errors and entry["n_scored"] < 1:
        errors.append("surrogate.n_scored must be at least 1")
    fraction = entry["simulated_fraction"]
    if not isinstance(fraction, (int, float)) or isinstance(fraction, bool) \
            or not 0.0 <= fraction <= 1.0:
        errors.append("surrogate.simulated_fraction must be a number "
                      "in [0, 1]")
    for key in ("train_mae_rel", "audit_mae_rel", "audit_geomean_rel"):
        if not _non_negative_number(entry[key]):
            errors.append(f"surrogate.{key} must be a non-negative number")
    return errors


def _validate_chaos(entry: Any) -> List[str]:
    """The v3 chaos block: campaign size, survival rates and MTTR."""
    if not isinstance(entry, dict):
        return [f"chaos must be an object, got {type(entry).__name__}"]
    errors = [f"chaos missing key {key!r}"
              for key in _REQUIRED_CHAOS if key not in entry]
    if errors:
        return errors
    if not isinstance(entry["scenarios"], int) \
            or isinstance(entry["scenarios"], bool) \
            or entry["scenarios"] < 1:
        errors.append("chaos.scenarios must be a positive integer")
    for key in ("survival_rate", "baseline_survival_rate"):
        value = entry[key]
        if not isinstance(value, (int, float)) or isinstance(value, bool) \
                or not 0.0 <= value <= 1.0:
            errors.append(f"chaos.{key} must be a number in [0, 1]")
    # MTTR / retained speedup are null when no scenario needed recovery
    # (e.g. a smoke slice with only tolerated faults).
    if entry["mttr_ns"] is not None and not _non_negative_number(
            entry["mttr_ns"]):
        errors.append("chaos.mttr_ns must be a non-negative number or "
                      "null")
    if entry["retained_speedup"] is not None and not _positive_number(
            entry["retained_speedup"]):
        errors.append("chaos.retained_speedup must be a positive number "
                      "or null")
    for key in ("invariant_violations", "watchdog_hangs"):
        value = entry[key]
        if not isinstance(value, int) or isinstance(value, bool) \
                or value < 0:
            errors.append(f"chaos.{key} must be a non-negative integer")
    return errors


def _validate_policy(entry: Any) -> List[str]:
    """The v4 policy block: per-suite exposed-communication comparison of
    the static paper policy vs the adaptive controller."""
    if not isinstance(entry, dict):
        return [f"policy must be an object, got {type(entry).__name__}"]
    errors = [f"policy missing key {key!r}"
              for key in _REQUIRED_POLICY if key not in entry]
    if errors:
        return errors
    suites = entry["suites"]
    if not isinstance(suites, dict) or not suites:
        errors.append("policy.suites must be a non-empty object")
    else:
        for name, suite in suites.items():
            where = f"policy.suites[{name!r}]"
            if not isinstance(suite, dict):
                errors.append(f"{where} must be an object")
                continue
            missing = [key for key in _REQUIRED_POLICY_SUITE
                       if key not in suite]
            if missing:
                errors.extend(f"{where} missing key {key!r}"
                              for key in missing)
                continue
            for key in ("static_exposed_ns", "adaptive_exposed_ns"):
                if not _non_negative_number(suite[key]):
                    errors.append(f"{where}.{key} must be a non-negative "
                                  "number")
            if not isinstance(suite["adaptive_wins"], bool):
                errors.append(f"{where}.adaptive_wins must be a boolean")
    if not isinstance(entry["adaptive_wins"], bool):
        errors.append("policy.adaptive_wins must be a boolean")
    reduction = entry["geomean_exposed_reduction"]
    # A reduction fraction: 0.01 = 1% of static exposure removed; it can
    # go negative on a regression but can never reach 1 (that would mean
    # zero exposed communication left).
    if not isinstance(reduction, (int, float)) \
            or isinstance(reduction, bool) or not reduction < 1.0:
        errors.append("policy.geomean_exposed_reduction must be a number "
                      "below 1")
    return errors


def _validate_experiment(index: int, entry: Any) -> List[str]:
    where = f"experiments[{index}]"
    if not isinstance(entry, dict):
        return [f"{where} must be an object"]
    errors = [f"{where} missing key {key!r}"
              for key in _REQUIRED_EXPERIMENT if key not in entry]
    if errors:
        return errors
    if not isinstance(entry["case"], str) or not entry["case"]:
        errors.append(f"{where}.case must be a non-empty string")
    if not _positive_number(entry["wall_clock_s"]):
        errors.append(f"{where}.wall_clock_s must be a positive number")
    speedups = entry["speedups"]
    if not isinstance(speedups, dict) or not speedups:
        errors.append(f"{where}.speedups must be a non-empty object")
    else:
        for config, value in speedups.items():
            if not _positive_number(value):
                errors.append(f"{where}.speedups[{config!r}] must be a "
                              "positive number")
    efficiency = entry["overlap_efficiency"]
    if not isinstance(efficiency, dict) or not efficiency:
        errors.append(f"{where}.overlap_efficiency must be a non-empty "
                      "object")
    else:
        for config, value in efficiency.items():
            if not isinstance(value, (int, float)) \
                    or isinstance(value, bool) or not 0.0 <= value <= 1.0:
                errors.append(f"{where}.overlap_efficiency[{config!r}] "
                              "must be a number in [0, 1]")
    return errors


def _positive_number(value: Any) -> bool:
    return (isinstance(value, (int, float)) and not isinstance(value, bool)
            and value > 0)


def _non_negative_number(value: Any) -> bool:
    return (isinstance(value, (int, float)) and not isinstance(value, bool)
            and value >= 0)
