"""The metrics registry: the simulator's unified telemetry substrate.

Attach a :class:`MetricsRegistry` to an
:class:`~repro.sim.engine.Environment` (``env.obs = MetricsRegistry()``)
*before* building the topology, exactly like ``env.trace`` and
``env.faults``.  Hot components then publish into per-``(gpu, component)``
:class:`Scope`\\ s at their natural seams:

========== ============ ====================================================
component  published by metrics
========== ============ ====================================================
compute    GPU.launch   kernel execution spans
gemm       GEMMKernel   WG/WF retirement counters + per-stage series
tracker    Tracker      live-region gauge (occupancy high-water),
                        trigger-fire latency observations
trigger    TriggerCtrl  blocks fired, first-region-to-fire gather time
dma        DMAEngine    in-flight command/byte gauges, trigger counters
link       Pipe         serialization spans, bytes, stall time
dram       HBMChannel   queue-occupancy gauge (time-weighted), NMC
                        op-and-store vs plain-write counts, comm service
                        spans
arbiter    HBMChannel   per-threshold comm grants/deferrals,
                        anti-starvation fires
mc         MemoryCtrl   stream-drain waits and stall durations
faults     FaultInjector observed fault incidence counters
========== ============ ====================================================

Every publishing site is guarded by ``env.obs is None`` — with the
registry disabled the only cost is one attribute check, and with it
enabled recording is strictly passive (no events are ever scheduled), so
simulation results are bit-identical either way.  ``scripts/smoke_obs.py``
asserts exactly that.
"""

from __future__ import annotations

import bisect
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.sim.stats import TimeSeries

#: scope key: (gpu id, component name).  ``gpu = -1`` means "no single
#: GPU" (e.g. a link whose endpoints were never wired).
ScopeKey = Tuple[int, str]


class Gauge:
    """A sampled level (queue depth, live regions, in-flight bytes).

    Every :meth:`set` records a ``(time, value)`` sample (the Perfetto
    counter track) and accumulates the *previous* level time-weighted, so
    :meth:`time_weighted_mean` and :meth:`time_at_level` answer "how deep
    was the queue, for how long" — not just "what values did it visit".
    """

    __slots__ = ("name", "samples", "last_value", "last_time",
                 "high_water", "low_water", "_weighted_sum", "_level_time")

    def __init__(self, name: str):
        self.name = name
        self.samples: List[Tuple[float, float]] = []
        self.last_value = 0.0
        self.last_time: Optional[float] = None
        self.high_water = float("-inf")
        self.low_water = float("inf")
        self._weighted_sum = 0.0
        self._level_time: Dict[float, float] = {}

    def set(self, now: float, value: float) -> None:
        # Branchy spelling instead of max()/min() builtins: a DRAM
        # occupancy gauge is set twice per serviced request, so two
        # function calls per sample are measurable.
        last_time = self.last_time
        if last_time is not None:
            if now < last_time:
                raise ValueError(
                    f"gauge {self.name!r} must be set in time order "
                    f"({now} < {last_time})")
            dt = now - last_time
            if dt > 0:
                last_value = self.last_value
                self._weighted_sum += last_value * dt
                level_time = self._level_time
                level_time[last_value] = level_time.get(last_value, 0.0) + dt
        self.samples.append((now, value))
        self.last_value = value
        self.last_time = now
        if value > self.high_water:
            self.high_water = value
        if value < self.low_water:
            self.low_water = value

    def add(self, now: float, delta: float) -> None:
        self.set(now, self.last_value + delta)

    def elapsed(self, until: Optional[float] = None) -> float:
        if self.last_time is None or not self.samples:
            return 0.0
        end = self.last_time if until is None else until
        return max(0.0, end - self.samples[0][0])

    def time_weighted_mean(self, until: Optional[float] = None) -> float:
        """Mean level over the observed window (tail extends to ``until``)."""
        if self.last_time is None:
            return 0.0
        span = self.elapsed(until)
        if span <= 0:
            return self.last_value
        tail = 0.0
        if until is not None and until > self.last_time:
            tail = self.last_value * (until - self.last_time)
        return (self._weighted_sum + tail) / span

    def time_at_level(self) -> Dict[float, float]:
        """Time spent at each recorded level — the time-weighted
        histogram (the open tail after the last sample is not counted)."""
        return dict(self._level_time)

    def to_dict(self, until: Optional[float] = None) -> Dict[str, Any]:
        return {
            "last": self.last_value,
            "high_water": self.high_water if self.samples else 0.0,
            "low_water": self.low_water if self.samples else 0.0,
            "time_weighted_mean": self.time_weighted_mean(until),
            "n_samples": len(self.samples),
        }


class TimeWeightedHistogram:
    """Time spent in fixed value buckets: ``bounds`` are the inclusive
    upper edges of all but the last (unbounded) bucket."""

    def __init__(self, bounds: Iterable[float]):
        self.bounds = tuple(sorted(bounds))
        if not self.bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.bucket_time = [0.0] * (len(self.bounds) + 1)

    def observe(self, value: float, duration: float) -> None:
        if duration < 0:
            raise ValueError("durations cannot be negative")
        self.bucket_time[bisect.bisect_left(self.bounds, value)] += duration

    @classmethod
    def from_gauge(cls, gauge: Gauge,
                   bounds: Iterable[float]) -> "TimeWeightedHistogram":
        hist = cls(bounds)
        for level, duration in gauge.time_at_level().items():
            hist.observe(level, duration)
        return hist

    def to_dict(self) -> Dict[str, float]:
        labels = [f"le_{bound:g}" for bound in self.bounds] + ["inf"]
        return dict(zip(labels, self.bucket_time))


class ValueStats:
    """Summary statistics of point observations (latencies, sizes)."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self):
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> Dict[str, float]:
        if not self.count:
            return {"count": 0, "total": 0.0, "min": 0.0, "max": 0.0,
                    "mean": 0.0}
        return {"count": self.count, "total": self.total, "min": self.min,
                "max": self.max, "mean": self.mean}


class SpanList:
    """Busy intervals kept merged (sorted, disjoint, coalesced).

    Producers usually append in start order (each component's activity
    advances with simulation time), which hits the O(1) fast path;
    out-of-order adds (e.g. overlapping kernels recorded at *end* time)
    insert-and-merge.  :meth:`busy_time` therefore never double-counts
    overlap within one component.
    """

    __slots__ = ("name", "spans", "count")

    def __init__(self, name: str):
        self.name = name
        self.spans: List[Tuple[float, float]] = []
        self.count = 0

    def add(self, start: float, end: float) -> None:
        if end < start:
            raise ValueError(f"span {self.name!r} ends before it starts")
        self.count += 1
        spans = self.spans
        if not spans or start >= spans[-1][0]:
            if spans and start <= spans[-1][1]:
                last_start, last_end = spans[-1]
                spans[-1] = (last_start, max(last_end, end))
            else:
                spans.append((start, end))
            return
        index = bisect.bisect_left(spans, (start, end))
        spans.insert(index, (start, end))
        merge_at = index - 1 if (index > 0
                                 and spans[index - 1][1] >= start) else index
        while (merge_at + 1 < len(spans)
               and spans[merge_at + 1][0] <= spans[merge_at][1]):
            nxt = spans.pop(merge_at + 1)
            spans[merge_at] = (spans[merge_at][0],
                               max(spans[merge_at][1], nxt[1]))

    def busy_time(self) -> float:
        return sum(end - start for start, end in self.spans)

    def bounds(self) -> Optional[Tuple[float, float]]:
        if not self.spans:
            return None
        return self.spans[0][0], self.spans[-1][1]

    def to_dict(self) -> Dict[str, float]:
        return {"count": self.count, "n_merged": len(self.spans),
                "busy_ns": self.busy_time()}


class Scope:
    """All metrics of one ``(gpu, component)`` pair."""

    def __init__(self, gpu: int, component: str):
        self.gpu = gpu
        self.component = component
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.observations: Dict[str, ValueStats] = {}
        self._series: Dict[str, TimeSeries] = {}
        self._spans: Dict[str, SpanList] = {}

    @property
    def key(self) -> ScopeKey:
        return (self.gpu, self.component)

    def count(self, name: str, amount: float = 1.0) -> None:
        self.counters[name] = self.counters.get(name, 0.0) + amount

    def counter(self, name: str) -> float:
        return self.counters.get(name, 0.0)

    def gauge(self, name: str) -> Gauge:
        gauge = self.gauges.get(name)
        if gauge is None:
            gauge = self.gauges[name] = Gauge(f"{self.component}.{name}")
        return gauge

    def observe(self, name: str, value: float) -> None:
        stats = self.observations.get(name)
        if stats is None:
            stats = self.observations[name] = ValueStats()
        stats.observe(value)

    def series(self, name: str) -> TimeSeries:
        series = self._series.get(name)
        if series is None:
            series = self._series[name] = TimeSeries(
                f"{self.component}.{name}")
        return series

    def span(self, name: str, start: float, end: float) -> None:
        self.spans(name).add(start, end)

    def spans(self, name: str) -> SpanList:
        spans = self._spans.get(name)
        if spans is None:
            spans = self._spans[name] = SpanList(f"{self.component}.{name}")
        return spans

    def span_names(self) -> List[str]:
        return sorted(self._spans)

    def series_names(self) -> List[str]:
        return sorted(self._series)

    def get_series(self, name: str) -> Optional[TimeSeries]:
        return self._series.get(name)

    def to_dict(self, until: Optional[float] = None) -> Dict[str, Any]:
        return {
            "gpu": self.gpu,
            "component": self.component,
            "counters": dict(self.counters),
            "gauges": {name: gauge.to_dict(until)
                       for name, gauge in sorted(self.gauges.items())},
            "observations": {name: stats.to_dict()
                             for name, stats in
                             sorted(self.observations.items())},
            "series": {name: {"n": len(series), "total": series.total()}
                       for name, series in sorted(self._series.items())},
            "spans": {name: spans.to_dict()
                      for name, spans in sorted(self._spans.items())},
        }


class MetricsRegistry:
    """All scopes of one simulation run.

    Purely passive: it owns no events, schedules nothing, and is safe to
    attach or ignore per-run.  The registry is the input both to the
    overlap profiler (:mod:`repro.obs.profiler`) and the Perfetto counter
    export (:mod:`repro.obs.perfetto`).
    """

    def __init__(self):
        self._scopes: Dict[ScopeKey, Scope] = {}

    def scope(self, gpu: int, component: str) -> Scope:
        key = (gpu, component)
        scope = self._scopes.get(key)
        if scope is None:
            scope = self._scopes[key] = Scope(gpu, component)
        return scope

    def get(self, gpu: int, component: str) -> Optional[Scope]:
        return self._scopes.get((gpu, component))

    def scopes(self, component: Optional[str] = None) -> List[Scope]:
        selected = [
            scope for key, scope in sorted(self._scopes.items())
            if component is None or key[1] == component
        ]
        return selected

    def components(self) -> List[str]:
        return sorted({key[1] for key in self._scopes})

    def gpus(self) -> List[int]:
        return sorted({key[0] for key in self._scopes})

    def __len__(self) -> int:
        return len(self._scopes)

    def end_time(self) -> float:
        """Latest timestamp any metric has seen (snapshot horizon)."""
        end = 0.0
        for scope in self._scopes.values():
            for gauge in scope.gauges.values():
                if gauge.last_time is not None:
                    end = max(end, gauge.last_time)
            for name in scope.span_names():
                bounds = scope.spans(name).bounds()
                if bounds is not None:
                    end = max(end, bounds[1])
            for name in scope.series_names():
                series = scope.get_series(name)
                if series is not None and len(series):
                    end = max(end, series.times[-1])
        return end

    def counter_total(self, component: str, name: str) -> float:
        """Sum one counter across every GPU's scope for ``component``."""
        return sum(scope.counter(name) for scope in self.scopes(component))

    def snapshot(self, until: Optional[float] = None) -> Dict[str, Any]:
        horizon = self.end_time() if until is None else until
        return {
            "until_ns": horizon,
            "scopes": [scope.to_dict(horizon)
                       for _key, scope in sorted(self._scopes.items())],
        }
