"""Overlap profiler: the paper's compute/communication decomposition.

Given the :class:`~repro.obs.registry.MetricsRegistry` of one simulated
configuration, decompose the run into the quantities Sections 3 and 6
reason about:

* **compute time** — union of kernel-execution spans across GPUs,
* **hidden communication** — communication activity (link serialization
  plus comm-stream DRAM service) that ran *under* compute,
* **exposed communication** — communication activity outside any compute
  span: the time the paper's techniques exist to shrink,
* **per-ring-stage attribution** — the same split inside each GEMM
  stage window (stage boundaries are the slowest GPU's ``stage_end``),
  locating *where* on the critical path exposure happens.

All interval algebra is machine-level: a communication interval counts as
hidden when *any* GPU is computing during it, mirroring how the paper's
timelines (Figure 2) are drawn.  Sequential runs serialize their phases,
so their hidden time is ~0 by construction; fused T3 runs overlap the
ring reduce-scatter with the GEMM, so strictly more communication hides.

Aggregation follows ``repro.analysis.metrics`` conventions: per-case rows
reduced to geomean + max, with exposed-communication reduction reported
as a Sequential-relative ratio (speedup-style).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.analysis.metrics import SpeedupTable
from repro.obs import intervals as iv
from repro.obs.registry import MetricsRegistry

#: configurations the profiler simulates (the Ideal-* configurations are
#: closed-form in ``run_sublayer_suite`` — there is no run to profile).
PROFILED_CONFIGS = ("Sequential", "T3", "T3-MCA")

#: exposed-time floor (ns) for ratio aggregation: a perfectly-hidden run
#: would otherwise divide by zero.
_EXPOSED_FLOOR_NS = 1.0


def _machine_spans(registry: MetricsRegistry, component: str,
                   names: Optional[List[str]] = None) -> List[iv.Interval]:
    """Union of the named span lists across every scope of ``component``."""
    spans: List[iv.Interval] = []
    for scope in registry.scopes(component):
        for name in (names if names is not None else scope.span_names()):
            span_list = scope.spans(name)
            spans.extend(span_list.spans)
    return iv.merge(spans)


def compute_spans(registry: MetricsRegistry) -> List[iv.Interval]:
    """Machine-level kernel-execution intervals."""
    return _machine_spans(registry, "compute", ["kernel"])


def comm_spans(registry: MetricsRegistry) -> List[iv.Interval]:
    """Machine-level communication intervals: link serialization plus
    comm-stream DRAM service (the reduce-scatter's NMC updates / remote
    writes and the collectives' landing writes)."""
    spans = _machine_spans(registry, "link")
    spans.extend(_machine_spans(registry, "dram", ["comm_service"]))
    return iv.merge(spans)


@dataclass
class OverlapBreakdown:
    """One configuration's machine-level overlap decomposition (ns)."""

    total_ns: float
    compute_ns: float
    comm_ns: float
    hidden_ns: float
    exposed_ns: float

    @property
    def overlap_efficiency(self) -> float:
        """Fraction of communication that ran under compute."""
        return self.hidden_ns / self.comm_ns if self.comm_ns > 0 else 0.0

    def to_dict(self) -> Dict[str, float]:
        return {
            "total_ns": self.total_ns,
            "compute_ns": self.compute_ns,
            "comm_ns": self.comm_ns,
            "hidden_ns": self.hidden_ns,
            "exposed_ns": self.exposed_ns,
            "overlap_efficiency": self.overlap_efficiency,
        }


@dataclass
class StageAttribution:
    """The decomposition inside one GEMM-stage window."""

    stage: int
    start_ns: float
    end_ns: float
    compute_ns: float
    hidden_ns: float
    exposed_ns: float

    @property
    def duration_ns(self) -> float:
        return self.end_ns - self.start_ns

    @property
    def dominant(self) -> str:
        """What the window's critical path is spent on."""
        parts = {"compute": self.compute_ns, "hidden-comm": self.hidden_ns,
                 "exposed-comm": self.exposed_ns}
        return max(parts, key=parts.get) if any(parts.values()) else "idle"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "stage": self.stage,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "compute_ns": self.compute_ns,
            "hidden_ns": self.hidden_ns,
            "exposed_ns": self.exposed_ns,
            "dominant": self.dominant,
        }


def decompose(registry: MetricsRegistry,
              total_ns: Optional[float] = None) -> OverlapBreakdown:
    """Machine-level overlap decomposition of one profiled run."""
    compute = compute_spans(registry)
    comm = comm_spans(registry)
    hidden = iv.intersect(comm, compute)
    exposed = iv.subtract(comm, compute)
    return OverlapBreakdown(
        total_ns=registry.end_time() if total_ns is None else total_ns,
        compute_ns=iv.total(compute),
        comm_ns=iv.total(comm),
        hidden_ns=iv.total(hidden),
        exposed_ns=iv.total(exposed),
    )


def stage_boundaries(registry: MetricsRegistry) -> List[float]:
    """Per-stage critical-path boundary: the *slowest* GPU's stage end."""
    per_stage: Dict[int, float] = {}
    for scope in registry.scopes("gemm"):
        series = scope.get_series("stage_end")
        if series is None:
            continue
        for when, stage in zip(series.times, series.values):
            index = int(stage)
            per_stage[index] = max(per_stage.get(index, 0.0), when)
    return [per_stage[index] for index in sorted(per_stage)]


def attribute_stages(registry: MetricsRegistry) -> List[StageAttribution]:
    """Split each GEMM-stage window into compute / hidden / exposed."""
    boundaries = stage_boundaries(registry)
    if not boundaries:
        return []
    compute = compute_spans(registry)
    comm = comm_spans(registry)
    hidden = iv.intersect(comm, compute)
    exposed = iv.subtract(comm, compute)
    window_start = compute[0][0] if compute else 0.0
    attributions: List[StageAttribution] = []
    for stage, end in enumerate(boundaries):
        attributions.append(StageAttribution(
            stage=stage, start_ns=window_start, end_ns=end,
            compute_ns=iv.total(iv.clip(compute, window_start, end)),
            hidden_ns=iv.total(iv.clip(hidden, window_start, end)),
            exposed_ns=iv.total(iv.clip(exposed, window_start, end)),
        ))
        window_start = end
    return attributions


@dataclass
class PlanStageSpan:
    """Overlap decomposition of one collective-plan phase ("intra",
    "inter" or "ring"): the union of DMA transfers tagged with that stage
    by the :class:`~repro.gpu.dma.DMAEngine`."""

    stage: str
    comm_ns: float
    hidden_ns: float
    exposed_ns: float
    start_ns: float
    end_ns: float

    def to_dict(self) -> Dict[str, float]:
        return {
            "stage": self.stage,
            "comm_ns": self.comm_ns,
            "hidden_ns": self.hidden_ns,
            "exposed_ns": self.exposed_ns,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
        }


def attribute_plan_stages(registry: MetricsRegistry,
                          stage_order: Optional[List[str]] = None,
                          ) -> List[PlanStageSpan]:
    """Per-plan-phase overlap attribution.

    DMA transfers record a ``stage.<name>`` span per command (the plan
    phase the route belongs to); this collects them machine-wide and
    splits each phase's activity into hidden (under compute) and exposed
    time.  ``stage_order`` pins the output order (e.g. the plan's
    ``stage_names``); otherwise phases appear in first-activity order.
    """
    per_stage: Dict[str, List[iv.Interval]] = {}
    for scope in registry.scopes("dma"):
        for name in scope.span_names():
            if not name.startswith("stage."):
                continue
            stage = name[len("stage."):]
            per_stage.setdefault(stage, []).extend(scope.spans(name).spans)
    if not per_stage:
        return []
    compute = compute_spans(registry)
    names = [s for s in (stage_order or []) if s in per_stage]
    names += sorted((s for s in per_stage if s not in names),
                    key=lambda s: min(start for start, _ in per_stage[s]))
    result: List[PlanStageSpan] = []
    for stage in names:
        spans = iv.merge(per_stage[stage])
        hidden = iv.intersect(spans, compute)
        result.append(PlanStageSpan(
            stage=stage,
            comm_ns=iv.total(spans),
            hidden_ns=iv.total(hidden),
            exposed_ns=iv.total(spans) - iv.total(hidden),
            start_ns=spans[0][0],
            end_ns=spans[-1][1],
        ))
    return result


@dataclass
class ConfigProfile:
    """One (case, configuration) profile."""

    config: str
    breakdown: OverlapBreakdown
    stages: List[StageAttribution] = field(default_factory=list)
    plan_stages: List[PlanStageSpan] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "config": self.config,
            "breakdown": self.breakdown.to_dict(),
            "stages": [stage.to_dict() for stage in self.stages],
            "plan_stages": [span.to_dict() for span in self.plan_stages],
        }


@dataclass
class CaseProfile:
    """All profiled configurations of one sub-layer case."""

    label: str
    configs: Dict[str, ConfigProfile] = field(default_factory=dict)

    def hidden_ns(self, config: str) -> float:
        return self.configs[config].breakdown.hidden_ns

    def exposed_ns(self, config: str) -> float:
        return self.configs[config].breakdown.exposed_ns

    def to_dict(self) -> Dict[str, Any]:
        return {
            "label": self.label,
            "configs": {name: profile.to_dict()
                        for name, profile in self.configs.items()},
        }


def profile_case(label: str,
                 registries: Dict[str, MetricsRegistry],
                 times: Optional[Dict[str, float]] = None) -> CaseProfile:
    """Build a :class:`CaseProfile` from per-configuration registries.

    ``times`` optionally pins each breakdown's ``total_ns`` to the
    suite-reported total (GEMM+RS+AG) instead of the registry horizon.
    """
    case = CaseProfile(label=label)
    for config, registry in registries.items():
        total = times.get(config) if times else None
        case.configs[config] = ConfigProfile(
            config=config,
            breakdown=decompose(registry, total_ns=total),
            stages=attribute_stages(registry),
            plan_stages=attribute_plan_stages(registry),
        )
    return case


@dataclass
class OverlapReport:
    """The profiler's cross-case report (the ``profile`` subcommand)."""

    cases: List[CaseProfile] = field(default_factory=list)
    fast: bool = True

    def add(self, case: CaseProfile) -> None:
        self.cases.append(case)

    def configs(self) -> List[str]:
        names: List[str] = []
        for case in self.cases:
            for name in case.configs:
                if name not in names:
                    names.append(name)
        return names

    def exposed_reduction_table(self) -> SpeedupTable:
        """Exposed-communication reduction vs Sequential, speedup-style
        (geomean + max via the shared :class:`SpeedupTable` reducer)."""
        table = SpeedupTable(baseline_name="Sequential")
        for case in self.cases:
            if "Sequential" not in case.configs:
                continue
            base = max(case.exposed_ns("Sequential"), _EXPOSED_FLOOR_NS)
            for name in case.configs:
                if name == "Sequential":
                    continue
                exposed = max(case.exposed_ns(name), _EXPOSED_FLOOR_NS)
                table.add(case.label, name, base / exposed)
        return table

    def check_strict_hiding(self, config: str = "T3-MCA",
                            baseline: str = "Sequential") -> bool:
        """True when ``config`` hides strictly more communication than
        ``baseline`` for *every* profiled case (the headline invariant)."""
        relevant = [case for case in self.cases
                    if config in case.configs and baseline in case.configs]
        if not relevant:
            return False
        return all(case.hidden_ns(config) > case.hidden_ns(baseline)
                   for case in relevant)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "fast": self.fast,
            "cases": [case.to_dict() for case in self.cases],
            "strict_hiding": {
                config: self.check_strict_hiding(config)
                for config in self.configs() if config != "Sequential"
            },
        }

    def render(self) -> str:
        lines: List[str] = []
        mode = "fast" if self.fast else "full"
        lines.append(f"Overlap profile ({mode} mode, times in us)")
        configs = self.configs()
        width = max((len(c.label) for c in self.cases), default=4) + 2
        header = ("case".ljust(width)
                  + "config".rjust(12) + "compute".rjust(11)
                  + "comm".rjust(11) + "hidden".rjust(11)
                  + "exposed".rjust(11) + "hidden%".rjust(9))
        lines.append(header)
        lines.append("-" * len(header))
        for case in self.cases:
            for index, name in enumerate(configs):
                profile = case.configs.get(name)
                if profile is None:
                    continue
                b = profile.breakdown
                label = case.label if index == 0 else ""
                lines.append(
                    label.ljust(width) + name.rjust(12)
                    + f"{b.compute_ns / 1e3:>11.1f}"
                    + f"{b.comm_ns / 1e3:>11.1f}"
                    + f"{b.hidden_ns / 1e3:>11.1f}"
                    + f"{b.exposed_ns / 1e3:>11.1f}"
                    + f"{100 * b.overlap_efficiency:>8.1f}%")
            lines.append("")
        table = self.exposed_reduction_table()
        if table.rows:
            lines.append(table.render(
                "Exposed-communication reduction vs Sequential "
                "(ratio, higher is better)"))
        for name in configs:
            if name == "Sequential":
                continue
            verdict = ("strictly more comm hidden than Sequential in "
                       "every case"
                       if self.check_strict_hiding(name)
                       else "DID NOT hide more comm than Sequential in "
                            "every case")
            lines.append(f"{name}: {verdict}")
        # Per-stage attribution for the last case's T3-MCA run (the
        # critical-path view; every case is available in the JSON dump).
        for case in reversed(self.cases):
            profile = case.configs.get("T3-MCA")
            if profile is None or not profile.stages:
                continue
            lines.append("")
            lines.append(f"Critical-path attribution per ring stage "
                         f"({case.label}, T3-MCA):")
            for stage in profile.stages:
                lines.append(
                    f"  stage {stage.stage:>2}: "
                    f"{stage.duration_ns / 1e3:>9.1f} us  "
                    f"compute={stage.compute_ns / 1e3:>8.1f}  "
                    f"hidden={stage.hidden_ns / 1e3:>8.1f}  "
                    f"exposed={stage.exposed_ns / 1e3:>8.1f}  "
                    f"[{stage.dominant}]")
            break
        return "\n".join(lines)
