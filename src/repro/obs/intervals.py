"""Interval-set algebra over ``(start, end)`` busy spans.

The overlap profiler reduces a run to three interval sets — compute-busy,
communication-busy and their overlap — so the headline decomposition
(compute / hidden-communication / exposed-communication) is plain set
arithmetic: hidden = ``comm & compute``, exposed = ``comm - compute``.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

Interval = Tuple[float, float]


def merge(intervals: Iterable[Interval]) -> List[Interval]:
    """Union of possibly-overlapping intervals, sorted and disjoint."""
    ordered = sorted((s, e) for s, e in intervals if e > s)
    merged: List[Interval] = []
    for start, end in ordered:
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged


def total(intervals: Sequence[Interval]) -> float:
    return sum(end - start for start, end in intervals)


def intersect(a: Sequence[Interval], b: Sequence[Interval]) -> List[Interval]:
    """Intersection of two *merged* interval lists."""
    out: List[Interval] = []
    i = j = 0
    while i < len(a) and j < len(b):
        start = max(a[i][0], b[j][0])
        end = min(a[i][1], b[j][1])
        if end > start:
            out.append((start, end))
        if a[i][1] <= b[j][1]:
            i += 1
        else:
            j += 1
    return out


def subtract(a: Sequence[Interval], b: Sequence[Interval]) -> List[Interval]:
    """Portions of *merged* ``a`` not covered by *merged* ``b``."""
    out: List[Interval] = []
    j = 0
    for start, end in a:
        cursor = start
        while j < len(b) and b[j][1] <= cursor:
            j += 1
        k = j
        while k < len(b) and b[k][0] < end:
            if b[k][0] > cursor:
                out.append((cursor, b[k][0]))
            cursor = max(cursor, b[k][1])
            k += 1
        if cursor < end:
            out.append((cursor, end))
    return out


def clip(intervals: Sequence[Interval], lo: float,
         hi: float) -> List[Interval]:
    """Restrict *merged* intervals to the window ``[lo, hi]``."""
    out: List[Interval] = []
    for start, end in intervals:
        start, end = max(start, lo), min(end, hi)
        if end > start:
            out.append((start, end))
    return out
