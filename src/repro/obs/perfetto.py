"""Export :class:`~repro.obs.registry.MetricsRegistry` gauges and series
as Chrome/Perfetto counter tracks.

Counter ("C") events render as stepped area charts in
`Perfetto <https://ui.perfetto.dev>`_ / ``chrome://tracing``, directly
under the span tracks the :class:`~repro.analysis.trace.TraceRecorder`
already emits — DMA queue depth, Tracker occupancy and DRAM queue levels
line up on the same timeline as the kernels and transfers that caused
them.  Timestamps follow the trace format's microsecond unit (ns / 1e3),
matching ``TraceRecorder.to_chrome_events``.

Use :func:`merge_into_trace` (or ``TraceRecorder.save(path,
registry=...)``) to write one file containing both spans and counters.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.obs.registry import MetricsRegistry

#: trace "process" grouping every counter track.
COUNTER_GROUP = "metrics"


def counter_events(registry: MetricsRegistry,
                   max_samples_per_track: Optional[int] = None,
                   ) -> List[Dict[str, Any]]:
    """Chrome counter ("C") events for every gauge and series sample.

    One track per ``(gpu, component, metric)``; gauges export their raw
    samples (the level each ``set`` recorded), series export their
    values at their timestamps.  ``max_samples_per_track`` uniformly
    subsamples very long tracks (keeping first and last) so merged trace
    files stay loadable.
    """
    events: List[Dict[str, Any]] = []
    for scope in registry.scopes():
        prefix = f"gpu{scope.gpu}" if scope.gpu >= 0 else "global"
        for name, gauge in sorted(scope.gauges.items()):
            track = f"{prefix}.{scope.component}.{name}"
            events.extend(_track_events(track, gauge.samples,
                                        max_samples_per_track))
        for name in scope.series_names():
            series = scope.get_series(name)
            if series is None or not len(series):
                continue
            track = f"{prefix}.{scope.component}.{name}"
            events.extend(_track_events(
                track, list(zip(series.times, series.values)),
                max_samples_per_track))
    return events


def _track_events(track: str, samples, limit: Optional[int],
                  ) -> List[Dict[str, Any]]:
    if not samples:
        return []
    if limit is not None and limit >= 2 and len(samples) > limit:
        step = (len(samples) - 1) / (limit - 1)
        samples = [samples[round(i * step)] for i in range(limit)]
    return [
        {
            "name": track,
            "ph": "C",
            "ts": when / 1e3,
            "pid": COUNTER_GROUP,
            # t_ns preserves the exact sample time; the microsecond ts is
            # a display view (see the trace-format contract in
            # repro.analysis.trace / docs/tracing.md).
            "args": {"value": value, "t_ns": when},
        }
        for when, value in samples
    ]


def merge_into_trace(trace_events: List[Dict[str, Any]],
                     registry: MetricsRegistry,
                     max_samples_per_track: Optional[int] = None,
                     ) -> List[Dict[str, Any]]:
    """Spans + counters in one event list, counters in timestamp order."""
    counters = sorted(counter_events(registry, max_samples_per_track),
                      key=lambda event: event["ts"])
    return trace_events + counters


def save_merged(path: str, trace, registry: MetricsRegistry,
                max_samples_per_track: Optional[int] = None) -> None:
    """Write one Chrome-format JSON holding the trace's span events and
    the registry's counter tracks (``trace`` is a TraceRecorder).  Thin
    alias of ``TraceRecorder.save(path, registry=...)`` so both spellings
    produce the identical byte-deterministic file."""
    trace.save(path, registry=registry,
               max_samples_per_track=max_samples_per_track)


def load_counter_tracks(path: str) -> Dict[str, List[Dict[str, Any]]]:
    """Load a saved trace and group its counter events by track name —
    the round-trip helper the Perfetto tests check monotonicity with."""
    with open(path) as handle:
        payload = json.load(handle)
    tracks: Dict[str, List[Dict[str, Any]]] = {}
    for event in payload.get("traceEvents", []):
        if event.get("ph") == "C":
            tracks.setdefault(event["name"], []).append(event)
    return tracks
