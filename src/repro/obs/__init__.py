"""Unified telemetry layer: metrics registry, overlap profiler, exports.

Attach a :class:`MetricsRegistry` to an environment (``env.obs``) and the
simulator's components — GEMM, Tracker, trigger controller, DMA engines,
links, HBM channels, memory controllers, fault injector — publish
counters, gauges and spans into per-``(gpu, component)`` scopes.  The
registry is strictly passive: recording never schedules events, so
simulation results are bit-identical with it attached or absent.

On top of the raw metrics, :mod:`repro.obs.profiler` computes the paper's
overlap decomposition (compute / hidden-communication /
exposed-communication time and per-ring-stage critical-path attribution),
:mod:`repro.obs.perfetto` exports counter tracks alongside the event
trace, and :mod:`repro.obs.bench` captures benchmark trajectories.
"""

from repro.obs.registry import (
    Gauge,
    MetricsRegistry,
    Scope,
    ScopeKey,
    SpanList,
    TimeWeightedHistogram,
    ValueStats,
)

__all__ = [
    "Gauge",
    "MetricsRegistry",
    "Scope",
    "ScopeKey",
    "SpanList",
    "TimeWeightedHistogram",
    "ValueStats",
]
