"""Declarative fault plans: what goes wrong, where, and when.

A :class:`FaultPlan` is a frozen, hashable, JSON-round-trippable bundle of
fault specifications — the same serialization contract as
:class:`~repro.config.SystemConfig`, so a plan can ride inside a sweep
:class:`~repro.experiments.executor.CaseSpec` and participate in the
content-addressed result cache.  A plan describes *intent* only; the
per-run mutable state (counters, pseudo-random draws) lives in
:class:`~repro.faults.injector.FaultInjector`, which is rebuilt per
:class:`~repro.sim.engine.Environment` so every simulation of a plan is
bit-for-bit deterministic.

Four fault families, wired at the simulator's natural seams:

* :class:`ComputeSlowdown` — a straggler GPU: compute time scaled by
  ``factor`` (GEMM stage slices and baseline-collective CU reductions).
* :class:`LinkDegradation` — a sick inter-GPU link: static bandwidth /
  latency degradation applied when the topology is wired, plus optional
  per-transfer transient stalls inside a time window.
* :class:`DMACompletionFault` — the Tracker->DMA notification path
  misbehaving: completions delayed, duplicated, or dropped outright
  (the forced-hang scenario the watchdog must catch).
* :class:`TrackerPressure` — entry-table pressure: force-evict a live
  Tracker entry every N-th ``program_region``, losing its update counts.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

#: wildcard for "any GPU" / "any endpoint".
ANY = -1

#: the DMA-completion fault actions.
DMA_ACTIONS = ("drop", "delay", "duplicate")


def _window_ok(start_ns: float, end_ns: Optional[float]) -> None:
    if start_ns < 0:
        raise ValueError("fault window cannot start before t=0")
    if end_ns is not None and end_ns <= start_ns:
        raise ValueError("fault window must end after it starts")


def _in_window(start_ns: float, end_ns: Optional[float], now: float) -> bool:
    return now >= start_ns and (end_ns is None or now < end_ns)


@dataclass(frozen=True)
class ComputeSlowdown:
    """A straggler: GPU ``gpu_id`` computes ``factor``x slower in the
    ``[start_ns, end_ns)`` window (``end_ns=None`` means forever)."""

    gpu_id: int = ANY
    factor: float = 1.0
    start_ns: float = 0.0
    end_ns: Optional[float] = None

    def __post_init__(self) -> None:
        if self.factor < 1.0:
            raise ValueError("a straggler factor must be >= 1.0")
        _window_ok(self.start_ns, self.end_ns)

    def matches(self, gpu_id: int, now: float) -> bool:
        return (self.gpu_id in (ANY, gpu_id)
                and _in_window(self.start_ns, self.end_ns, now))


@dataclass(frozen=True)
class LinkDegradation:
    """A degraded directed link ``src -> dst`` (``ANY`` wildcards).

    ``bandwidth_factor`` / ``extra_latency_ns`` are *static* — applied
    when the topology wires its pipes, for the whole run.  ``stall_ns``
    adds a transient per-transfer stall inside ``[start_ns, end_ns)``;
    each matching transfer stalls with ``stall_probability``, drawn
    deterministically from the plan seed and a per-link transfer counter.
    """

    src: int = ANY
    dst: int = ANY
    bandwidth_factor: float = 1.0
    extra_latency_ns: float = 0.0
    stall_ns: float = 0.0
    stall_probability: float = 1.0
    start_ns: float = 0.0
    end_ns: Optional[float] = None

    def __post_init__(self) -> None:
        if not 0.0 < self.bandwidth_factor <= 1.0:
            raise ValueError("bandwidth_factor must be in (0, 1]")
        if self.extra_latency_ns < 0 or self.stall_ns < 0:
            raise ValueError("latencies and stalls cannot be negative")
        if not 0.0 <= self.stall_probability <= 1.0:
            raise ValueError("stall_probability must be in [0, 1]")
        _window_ok(self.start_ns, self.end_ns)

    def matches_link(self, src: int, dst: int) -> bool:
        return self.src in (ANY, src) and self.dst in (ANY, dst)

    def stalls_at(self, now: float) -> bool:
        return self.stall_ns > 0 and _in_window(self.start_ns, self.end_ns,
                                                now)


@dataclass(frozen=True)
class DMACompletionFault:
    """Misdeliver DMA-completion notifications.

    ``action`` is ``"drop"`` (never delivered — downstream waiters hang,
    which the watchdog must turn into a diagnosable error), ``"delay"``
    (delivered ``delay_ns`` late) or ``"duplicate"`` (delivered twice; the
    engine must absorb the second notification exactly-once).  The first
    ``max_events`` completions matching ``gpu_id`` and ``command_substr``
    are affected.
    """

    action: str = "drop"
    gpu_id: int = ANY
    command_substr: str = ""
    delay_ns: float = 0.0
    max_events: int = 1

    def __post_init__(self) -> None:
        if self.action not in DMA_ACTIONS:
            raise ValueError(
                f"DMA fault action must be one of {DMA_ACTIONS}")
        if self.action == "delay" and self.delay_ns <= 0:
            raise ValueError("a delay fault needs delay_ns > 0")
        if self.delay_ns < 0:
            raise ValueError("delay_ns cannot be negative")
        if self.max_events < 1:
            raise ValueError("max_events must be >= 1")

    def matches(self, gpu_id: int, command_id: str) -> bool:
        return (self.gpu_id in (ANY, gpu_id)
                and self.command_substr in command_id)


@dataclass(frozen=True)
class TrackerPressure:
    """Entry-table pressure: before every ``evict_every``-th
    ``program_region`` on ``gpu_id``, force-evict a live entry from the
    target set (its accumulated update counts are lost)."""

    gpu_id: int = ANY
    evict_every: int = 8

    def __post_init__(self) -> None:
        if self.evict_every < 1:
            raise ValueError("evict_every must be >= 1")

    def matches(self, gpu_id: int) -> bool:
        return self.gpu_id in (ANY, gpu_id)


_FAULT_FIELDS = {
    "compute": ComputeSlowdown,
    "links": LinkDegradation,
    "dma": DMACompletionFault,
    "tracker": TrackerPressure,
}


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic, seedable bundle of faults for one simulation."""

    seed: int = 0
    compute: Tuple[ComputeSlowdown, ...] = ()
    links: Tuple[LinkDegradation, ...] = ()
    dma: Tuple[DMACompletionFault, ...] = ()
    tracker: Tuple[TrackerPressure, ...] = ()

    def __post_init__(self) -> None:
        for name, kind in _FAULT_FIELDS.items():
            entries = getattr(self, name)
            if not isinstance(entries, tuple):
                # Accept lists at construction for ergonomics.
                object.__setattr__(self, name, tuple(entries))
                entries = getattr(self, name)
            for entry in entries:
                if not isinstance(entry, kind):
                    raise TypeError(
                        f"FaultPlan.{name} entries must be {kind.__name__}, "
                        f"got {type(entry).__name__}")

    @property
    def is_empty(self) -> bool:
        return not (self.compute or self.links or self.dma or self.tracker)

    def planned_incidence(self) -> Dict[str, int]:
        """Planned fault sites by kind — what *could* fire.

        Stochastic / windowed families report plan-entry counts (the
        realized event count depends on traffic); bounded families report
        their event budgets.  Compare against
        :meth:`~repro.faults.injector.FaultInjector.observed_incidence`.
        """
        # Identity entries (factor-1.0 slowdowns, undegraded links with no
        # effective stall) are legal to *plan* but never *recorded* by the
        # injector — skip them so planned and observed incidence agree
        # that nothing can fire.
        effective_compute = [f for f in self.compute if f.factor != 1.0]
        effective_links = [
            f for f in self.links
            if f.bandwidth_factor != 1.0 or f.extra_latency_ns
            or (f.stall_ns > 0 and f.stall_probability > 0)
        ]
        return {
            "straggler_windows": len(effective_compute),
            "link_faults": len(effective_links),
            "dma_fault_budget": sum(f.max_events for f in self.dma),
            "tracker_pressure_rules": len(self.tracker),
        }

    # -- serialization (mirrors SystemConfig's contract) --------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            **{name: [dataclasses.asdict(entry)
                      for entry in getattr(self, name)]
               for name in _FAULT_FIELDS},
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultPlan":
        return cls(
            seed=data.get("seed", 0),
            **{name: tuple(kind(**entry) for entry in data.get(name, ()))
               for name, kind in _FAULT_FIELDS.items()},
        )

    # -- convenience constructors for the common sweep axes -----------------

    @classmethod
    def straggler(cls, gpu_id: int, factor: float,
                  seed: int = 0) -> "FaultPlan":
        return cls(seed=seed,
                   compute=(ComputeSlowdown(gpu_id=gpu_id, factor=factor),))

    @classmethod
    def degraded_link(cls, src: int, dst: int, bandwidth_factor: float,
                      extra_latency_ns: float = 0.0,
                      seed: int = 0) -> "FaultPlan":
        return cls(seed=seed, links=(LinkDegradation(
            src=src, dst=dst, bandwidth_factor=bandwidth_factor,
            extra_latency_ns=extra_latency_ns),))

    @classmethod
    def dropped_dma(cls, gpu_id: int = ANY, command_substr: str = "",
                    max_events: int = 1, seed: int = 0) -> "FaultPlan":
        return cls(seed=seed, dma=(DMACompletionFault(
            action="drop", gpu_id=gpu_id, command_substr=command_substr,
            max_events=max_events),))
