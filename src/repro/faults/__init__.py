"""Fault injection and invariant checking for the T3 simulator.

``env.faults`` (a :class:`FaultInjector` realizing a :class:`FaultPlan`)
injects stragglers, degraded links, misdelivered DMA completions and
Tracker entry-table pressure at the simulator's natural seams;
``env.invariants`` (an :class:`InvariantChecker`) verifies that the
properties T3 depends on — byte conservation, Tracker monotonicity,
single-fire triggers — hold anyway.  Both attributes default to ``None``
and are purely observational when attached with no faults, so the
baseline figures are unaffected.  See ``docs/faults.md``.
"""

from repro.faults.injector import FaultInjector
from repro.faults.invariants import InvariantChecker, InvariantViolation
from repro.faults.plan import (
    ANY,
    ComputeSlowdown,
    DMACompletionFault,
    FaultPlan,
    LinkDegradation,
    TrackerPressure,
)

__all__ = [
    "ANY",
    "ComputeSlowdown",
    "DMACompletionFault",
    "FaultInjector",
    "FaultPlan",
    "InvariantChecker",
    "InvariantViolation",
    "LinkDegradation",
    "TrackerPressure",
]
