"""Per-run fault injection state for one :class:`FaultPlan`.

A :class:`FaultInjector` is attached to an
:class:`~repro.sim.engine.Environment` as ``env.faults`` (``None`` by
default, exactly like ``env.trace``).  Components consult it at their
natural seams:

* :meth:`compute_factor` — GEMM wave slices
  (:mod:`repro.gpu.gemm`) and baseline-collective CU reductions
  (:mod:`repro.collectives.baseline`) scale their compute time by it;
* :meth:`link_parameters` — topologies
  (:mod:`repro.interconnect.topology`) degrade pipe bandwidth/latency at
  wiring time;
* :meth:`transfer_stall` — :class:`~repro.sim.primitives.Pipe` adds a
  transient stall per matching transfer;
* :meth:`dma_completion_fault` — :class:`~repro.gpu.dma.DMAEngine`
  drops / delays / duplicates completion notifications;
* :meth:`tracker_eviction_due` — :class:`~repro.t3.tracker.Tracker`
  force-evicts a live entry under table pressure.

Every stochastic decision (transient-stall coin flips) is drawn from a
SHA-256 hash of ``(plan.seed, seam key, per-key counter)``, never from
global RNG state or wall-clock time, so a plan replays identically
regardless of which order different entities reach their seams in.  With
an *empty* plan every query returns its exact identity value (factor
``1.0``, stall ``0.0``, unchanged link parameters, no DMA fault), so
attaching an injector with no faults is observationally transparent —
results stay bit-identical to ``env.faults is None``.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional, Tuple

from repro.faults.plan import DMACompletionFault, FaultPlan


class FaultInjector:
    """Mutable per-simulation state realizing one :class:`FaultPlan`."""

    def __init__(self, plan: FaultPlan):
        if not isinstance(plan, FaultPlan):
            raise TypeError(f"expected a FaultPlan, got {type(plan).__name__}")
        self.plan = plan
        #: plan-shape booleans, resolved once per simulation: the hot
        #: seams (per-wave compute factors, per-transfer stall queries,
        #: per-completion DMA checks) skip the query entirely when the
        #: plan has no fault of that class — an empty list can never
        #: match, so skipping is observationally transparent.
        self.has_compute_faults = bool(plan.compute)
        self.has_link_faults = bool(plan.links)
        self.has_dma_faults = bool(plan.dma)
        self.has_tracker_faults = bool(plan.tracker)
        #: remaining affected-completion budget per plan.dma entry.
        self._dma_budgets: List[int] = [f.max_events for f in plan.dma]
        #: per-(seam, entity) draw counters for deterministic coin flips.
        self._draw_counters: Dict[Tuple, int] = {}
        #: per-(fault index, gpu) program_region counters.
        self._pressure_counters: Dict[Tuple[int, int], int] = {}
        #: audit log of every fault actually applied, in application order.
        self.applied: List[Tuple] = []
        #: realized fault-event counts by kind (always maintained — cheap,
        #: and lets post-run reports compare observed vs. planned incidence
        #: without an obs registry attached).
        self.counts: Dict[str, int] = {}
        #: optional repro.obs.MetricsRegistry mirror (see :meth:`bind_obs`).
        self._obs = None
        #: optional repro.resilience.ResilienceRuntime subscriber (see
        #: :meth:`bind_resilience`).
        self._resilience = None
        #: optional Environment back-reference (see :meth:`bind_env`)
        #: letting realized faults drop instant markers on ``env.trace``.
        self._env = None

    # -- observability -------------------------------------------------------

    def bind_obs(self, registry) -> None:
        """Mirror realized fault events into ``registry``.

        Counters land in scope ``(gpu_id, "faults")`` so per-GPU fault
        incidence lines up with the rest of the telemetry.  Binding is
        passive — it never changes which faults fire.
        """
        self._obs = registry

    def bind_resilience(self, runtime) -> None:
        """Report every realized fault event to ``runtime`` so it can arm
        its recovery machinery.  With an empty plan no event is ever
        realized and the runtime stays dormant — binding alone changes
        nothing."""
        self._resilience = runtime

    def bind_env(self, env) -> None:
        """Give the injector a back-reference to its environment so every
        realized fault also lands as an instant marker on ``env.trace``
        (category ``"fault"``, track ``gpu<id>``) — the timestamps the
        trace layer's resilience-incident overlay joins on.  Purely
        passive: with no trace attached (or no faults realized) nothing
        changes."""
        self._env = env

    def _record(self, kind: str, gpu_id: int, value: float = 1) -> None:
        self.counts[kind] = self.counts.get(kind, 0) + 1
        if self._obs is not None:
            self._obs.scope(gpu_id, "faults").count(kind, value)
        env = self._env
        if env is not None and env.trace is not None:
            env.trace.instant(
                name=kind, category="fault", at_ns=env.now,
                track=f"gpu{gpu_id}", group="incidents",
                args={"value": value} if value != 1 else None)
        if self._resilience is not None:
            self._resilience.on_fault_observed(kind, gpu_id)

    def observed_incidence(self) -> Dict[str, int]:
        """Realized fault-event counts by kind, for observed-vs-planned
        reporting against :meth:`FaultPlan.planned_incidence`."""
        return dict(self.counts)

    # -- deterministic pseudo-randomness ------------------------------------

    def _draw(self, key: Tuple) -> float:
        """A uniform [0, 1) draw keyed on (seed, key, per-key counter)."""
        count = self._draw_counters.get(key, 0)
        self._draw_counters[key] = count + 1
        digest = hashlib.sha256(
            repr((self.plan.seed, key, count)).encode()).digest()
        return int.from_bytes(digest[:8], "big") / 2.0 ** 64

    # -- compute (straggler) seam -------------------------------------------

    def compute_factor(self, gpu_id: int, now: float) -> float:
        """Multiplier on compute time for ``gpu_id`` at sim time ``now``."""
        factor = 1.0
        for fault in self.plan.compute:
            if fault.matches(gpu_id, now):
                factor *= fault.factor
        if factor != 1.0:
            self._record("straggler_slowdowns", gpu_id)
        return factor

    # -- link seams -----------------------------------------------------------

    def link_parameters(self, src: int, dst: int, bandwidth: float,
                        latency_ns: float) -> Tuple[float, float]:
        """Degraded (bandwidth, latency) for the directed link src->dst."""
        for fault in self.plan.links:
            if fault.matches_link(src, dst):
                if fault.bandwidth_factor != 1.0 or fault.extra_latency_ns:
                    self.applied.append(
                        ("link-degraded", src, dst, fault.bandwidth_factor))
                    self._record("links_degraded", src)
                bandwidth *= fault.bandwidth_factor
                latency_ns += fault.extra_latency_ns
        return bandwidth, latency_ns

    def transfer_stall(self, src: int, dst: int, now: float) -> float:
        """Extra stall (ns) imposed on one transfer starting now."""
        stall = 0.0
        for index, fault in enumerate(self.plan.links):
            if not fault.matches_link(src, dst) or not fault.stalls_at(now):
                continue
            if (fault.stall_probability >= 1.0
                    or self._draw(("stall", index, src, dst))
                    < fault.stall_probability):
                stall += fault.stall_ns
                self.applied.append(("link-stall", src, dst, fault.stall_ns))
                self._record("link_stalls", src)
                if self._obs is not None:
                    self._obs.scope(src, "faults").count(
                        "link_stall_ns", fault.stall_ns)
        return stall

    # -- DMA completion seam ---------------------------------------------------

    def dma_completion_fault(self, gpu_id: int,
                             command_id: str) -> Optional[DMACompletionFault]:
        """The fault (if any) to apply to this completion notification.

        Each plan entry affects at most ``max_events`` completions, in
        notification order; the first matching entry with budget wins.
        """
        for index, fault in enumerate(self.plan.dma):
            if self._dma_budgets[index] <= 0:
                continue
            if fault.matches(gpu_id, command_id):
                self._dma_budgets[index] -= 1
                self.applied.append(
                    ("dma-" + fault.action, gpu_id, command_id))
                self._record(f"dma_{fault.action}", gpu_id)
                return fault
        return None

    # -- Tracker pressure seam -------------------------------------------------

    def tracker_eviction_due(self, gpu_id: int) -> bool:
        """Called once per ``program_region``; True when the entry table
        must force-evict a victim before programming this region."""
        due = False
        for index, fault in enumerate(self.plan.tracker):
            if not fault.matches(gpu_id):
                continue
            key = (index, gpu_id)
            count = self._pressure_counters.get(key, 0) + 1
            self._pressure_counters[key] = count
            if count % fault.evict_every == 0:
                due = True
        return due

    def record_eviction(self, gpu_id: int, region_key: Tuple) -> None:
        self.applied.append(("tracker-evict", gpu_id, region_key))
        self._record("tracker_evictions", gpu_id)

    # -- reporting ---------------------------------------------------------------

    def summary(self) -> str:
        if not self.applied:
            return "no faults applied"
        kinds: Dict[str, int] = {}
        for record in self.applied:
            kinds[record[0]] = kinds.get(record[0], 0) + 1
        return ", ".join(f"{kind} x{count}"
                         for kind, count in sorted(kinds.items()))
