"""Simulation invariants: what must hold even when faults are injected.

An :class:`InvariantChecker` is attached to an
:class:`~repro.sim.engine.Environment` as ``env.invariants`` (``None`` by
default).  Components self-register when built against such an
environment and report observations at their existing code paths; the
checker never schedules events or alters state, so enabling it is
observationally transparent — timing results stay bit-identical.

Checked invariants (Sections 4.2.1-4.2.2 of the paper):

* **Byte conservation** — every byte enqueued on an HBM channel is
  eventually serviced (``bytes_enqueued == bytes_serviced`` at
  quiescence, per channel).
* **Tracker monotonicity / no-overshoot** — region update counts only
  grow, by non-negative amounts, and never exceed the programmed
  expectation (``received_bytes <= expected_bytes``).
* **Single-fire triggers** — each trigger block and each DMA command
  fires exactly once; duplicated DMA completion notifications must be
  absorbed, not re-fired.

Violations raise :class:`InvariantViolation` (a
:class:`~repro.sim.engine.SimulationError`) at the observation point,
with the environment's diagnostic dump appended so a failure is
immediately attributable.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Tuple

from repro.sim.engine import SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from repro.memory.controller import MemoryController
    from repro.t3.tracker import Tracker, TrackerEntry


class InvariantViolation(SimulationError):
    """A simulation invariant was broken."""


class InvariantChecker:
    """Collects observations from sim components and enforces invariants."""

    #: absolute slack for byte-conservation comparisons (requests carry
    #: integer byte counts, but the accumulators are floats).
    BYTE_TOLERANCE = 1e-6

    def __init__(self, env):
        self.env = env
        self._controllers: List["MemoryController"] = []
        self._trackers: List[Tuple[int, "Tracker"]] = []
        self._trigger_fires: Dict[str, int] = {}
        self.credits_observed = 0
        self.duplicates_absorbed = 0
        self.checks_run = 0

    # -- registration (done by component constructors) -----------------------

    def register_controller(self, controller: "MemoryController") -> None:
        self._controllers.append(controller)

    def register_tracker(self, gpu_id: int, tracker: "Tracker") -> None:
        self._trackers.append((gpu_id, tracker))

    # -- observations (called from existing component code paths) -------------

    def on_tracker_credit(self, gpu_id: int, entry: "TrackerEntry",
                          nbytes: float) -> None:
        """After a region entry was credited ``nbytes``."""
        self.credits_observed += 1
        if nbytes < 0:
            self._violate(
                f"tracker monotonicity: region {entry.key} on GPU {gpu_id} "
                f"credited negative bytes ({nbytes})")
        if entry.received_bytes > entry.expected_bytes:
            self._violate(
                f"tracker overshoot: region {entry.key} on GPU {gpu_id} "
                f"received {entry.received_bytes} of expected "
                f"{entry.expected_bytes} bytes")

    def on_trigger_fired(self, owner: str) -> None:
        """A trigger block (or DMA command) fired; ``owner`` names it."""
        count = self._trigger_fires.get(owner, 0) + 1
        self._trigger_fires[owner] = count
        if count > 1:
            self._violate(f"single-fire violated: {owner} fired {count} times")

    def on_duplicate_absorbed(self, gpu_id: int, command_id: str) -> None:
        """A duplicated DMA completion was delivered and absorbed (the
        exactly-once contract held despite the duplicate)."""
        self.duplicates_absorbed += 1

    # -- end-of-run checks ------------------------------------------------------

    def check_byte_conservation(self) -> None:
        """At quiescence: every enqueued byte was serviced, per channel."""
        self.checks_run += 1
        for controller in self._controllers:
            for channel in controller.channels:
                delta = channel.bytes_enqueued - channel.bytes_serviced
                if abs(delta) > self.BYTE_TOLERANCE:
                    self._violate(
                        f"byte conservation: GPU {controller.gpu_id} channel "
                        f"{channel.channel_id} enqueued "
                        f"{channel.bytes_enqueued} but serviced "
                        f"{channel.bytes_serviced} bytes")
                if not channel.idle:
                    self._violate(
                        f"byte conservation: GPU {controller.gpu_id} channel "
                        f"{channel.channel_id} still has queued requests at "
                        "quiescence")

    def check_all(self) -> None:
        """Every end-of-run invariant; call once the schedule has drained."""
        self.check_byte_conservation()

    # -- helpers -------------------------------------------------------------------

    def _violate(self, message: str) -> None:
        raise InvariantViolation(
            f"{message}\n{self.env.diagnostic_dump()}")

    def summary(self) -> str:
        return (f"{self.credits_observed} tracker credits, "
                f"{len(self._trigger_fires)} single-fire owners, "
                f"{self.duplicates_absorbed} duplicates absorbed, "
                f"{self.checks_run} conservation checks")
