"""Synthetic case grids for surrogate-scale sweeps.

The paper's own sweep is eight models x four sub-layers; a design-space
exploration ("which (H, SL, B, TP) deployments benefit most from T3?")
wants orders of magnitude more.  This module enumerates a hyperparameter
product grid as :class:`SubLayer` cases compatible with the normal sweep
machinery, filtered to geometries the simulator accepts (token count
above the ring-chunking floor, K divisible by TP).
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from repro.config import table1_system
from repro.models.transformer import AR_SUBLAYERS, SubLayer, TransformerConfig

#: hyperparameter axes of the default grid (16 x 4 x 10 x 5 x 4 = 12800
#: raw combinations before validity filtering; every hidden size is a
#: multiple of 32 so all four sub-layers' K dimensions split at TP=32).
DEFAULT_HIDDEN = (1024, 1280, 1536, 1792, 2048, 2304, 2560, 3072, 3584,
                  4096, 4608, 5120, 5632, 6144, 7168, 8192)
DEFAULT_SEQ_LEN = (256, 512, 1024, 2048)
DEFAULT_BATCH = (1, 2, 3, 4, 6, 8, 12, 16, 24, 32)
DEFAULT_TP = (2, 4, 8, 16, 32)


def _case_valid(sub: SubLayer, min_m_tile: int, tiles_unit: int) -> bool:
    """Mirror of ``case_shape``'s chunkability floor (no exceptions)."""
    tiles_n = max(1, sub.gemm.n // tiles_unit)
    rows_needed = -(-sub.tp // tiles_n)
    return sub.gemm.m >= rows_needed * min_m_tile


def synthetic_cases(n: Optional[int] = 10_000, seed: int = 0,
                    hidden: Sequence[int] = DEFAULT_HIDDEN,
                    seq_len: Sequence[int] = DEFAULT_SEQ_LEN,
                    batch: Sequence[int] = DEFAULT_BATCH,
                    tp: Sequence[int] = DEFAULT_TP,
                    sublayers: Optional[Sequence[str]] = None,
                    ) -> List[SubLayer]:
    """Up to ``n`` valid synthetic cases, seeded-shuffled for diversity.

    The shuffle matters: a truncated *ordered* enumeration would only
    ever see the first few hidden sizes, while a seeded shuffle spreads
    any prefix across the whole grid.  ``n=None`` returns every valid
    combination.
    """
    names = list(sublayers) if sublayers else list(AR_SUBLAYERS)
    kernel = table1_system(n_gpus=max(2, min(tp))).gemm
    cases: List[SubLayer] = []
    for h in hidden:
        for sl in seq_len:
            for b in batch:
                model = TransformerConfig(
                    name=f"Syn-H{h}-S{sl}-B{b}",
                    hidden=h, n_layers=1, seq_len=sl, batch=b)
                for degree in tp:
                    for name in names:
                        k_full = AR_SUBLAYERS[name][1] * h
                        if k_full % degree:
                            continue
                        sub = model.sublayer(name, degree)
                        if _case_valid(sub, kernel.macro_tile_m,
                                       kernel.macro_tile_n):
                            cases.append(sub)
    random.Random(seed).shuffle(cases)
    if n is not None:
        cases = cases[:n]
    return cases
