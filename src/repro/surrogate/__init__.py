"""Calibrated analytic surrogate for large sub-layer sweeps.

The event simulator is the ground truth but costs ~0.5-1 s per case; a
10k-case design sweep at that price is an hour of CPU.  This package
maps the repo's closed-form analytic estimates (collective ring models +
GEMM roofline) onto simulated wall-clock with per-(config, sub-layer,
TP) multiplicative correction factors fitted on previously simulated
cases, then drives a *triaged* sweep: score every case analytically,
full-simulate only the predicted frontier plus a random audit slice, and
report the audit error so the shortcut is always accompanied by its own
accuracy bill.

Entry points:

* :func:`repro.surrogate.features.analytic_times` — uncorrected
  closed-form per-config estimates for one case.
* :class:`repro.surrogate.model.CalibratedSurrogate` — fitted factors.
* :func:`repro.surrogate.harvest.harvest_cache` — training records from
  the persistent sweep cache.
* :func:`repro.surrogate.triage.triaged_sweep` — the end-to-end flow
  (also reachable as ``run_sweep(triage="surrogate")``).
"""

from repro.surrogate.features import analytic_times, gemm_analytic_time
from repro.surrogate.harvest import harvest_cache, records_from_suite
from repro.surrogate.model import CalibratedSurrogate, TrainingRecord
from repro.surrogate.triage import TriageResult, triaged_sweep

__all__ = [
    "CalibratedSurrogate",
    "TrainingRecord",
    "TriageResult",
    "analytic_times",
    "gemm_analytic_time",
    "harvest_cache",
    "records_from_suite",
    "triaged_sweep",
]
