"""Per-bucket affine calibration of the analytic estimates.

A training record pairs one config's analytic estimate with its
simulated wall-clock for a case.  Empirically the gap between the two is
an almost-unit slope plus a slowly-growing fixed cost (collective launch
sequencing, DMA chunk latencies, memory-quantum granularity) — so the
model fitted per ``(config, sub-layer, TP)`` bucket is **affine**:

    simulated ~= slope * analytic + intercept_ns

fit by least squares weighted for *relative* error (weight ``1/y^2``),
which is what the audit metric measures.  A bucket with fewer than two
distinct-size observations cannot identify an intercept and degrades to
a pure ratio (geometric-mean ``simulated/analytic``).

Fallback chain on predict (most to least specific):

    (config, sublayer, tp) -> (config, sublayer) -> (config,) -> identity

so a bucket never seen in training still benefits from the config-wide
calibration, and a completely cold model returns the raw analytic
estimate instead of failing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

#: (slope, intercept_ns) of one fitted bucket.
Affine = Tuple[float, float]

_IDENTITY: Affine = (1.0, 0.0)


@dataclass(frozen=True)
class TrainingRecord:
    """One (case, config) observation: analytic estimate vs simulation."""

    config: str
    sublayer: str
    tp: int
    analytic_ns: float
    simulated_ns: float

    @property
    def ratio(self) -> float:
        """Simulated / analytic — the correction a 1-point bucket learns."""
        return self.simulated_ns / self.analytic_ns


def _geomean(values: Sequence[float]) -> float:
    return math.exp(sum(math.log(v) for v in values) / len(values))


def _fit_affine(pairs: Sequence[Tuple[float, float]]) -> Affine:
    """Relative-error weighted least squares ``y ~= a*x + b``.

    Weighting each residual by ``1/y`` makes the fit minimize the same
    relative-error objective the audit reports.  Degenerate inputs (a
    single point, or no size spread to separate slope from intercept)
    fall back to the geomean ratio through the origin.
    """
    xs = [x for x, _ in pairs]
    if len(pairs) < 2 or max(xs) < 1.2 * min(xs):
        return (_geomean([y / x for x, y in pairs]), 0.0)
    sw = swx = swxx = swy = swxy = 0.0
    for x, y in pairs:
        w = 1.0 / (y * y)
        sw += w
        swx += w * x
        swxx += w * x * x
        swy += w * y
        swxy += w * x * y
    det = swxx * sw - swx * swx
    if det <= 0.0:
        return (_geomean([y / x for x, y in pairs]), 0.0)
    slope = (swxy * sw - swx * swy) / det
    intercept = (swy * swxx - swx * swxy) / det
    if slope <= 0.0:
        # A negative slope would predict nonsense outside the training
        # range; this only happens on adversarial/noisy tiny buckets.
        return (_geomean([y / x for x, y in pairs]), 0.0)
    return (slope, intercept)


class CalibratedSurrogate:
    """Analytic-time corrector with bucketed affine fits."""

    def __init__(self,
                 fine: Dict[Tuple[str, str, int], Affine],
                 mid: Dict[Tuple[str, str], Affine],
                 coarse: Dict[str, Affine],
                 n_records: int = 0):
        self._fine = dict(fine)
        self._mid = dict(mid)
        self._coarse = dict(coarse)
        self.n_records = n_records

    # -- construction -----------------------------------------------------------

    @classmethod
    def fit(cls, records: Iterable[TrainingRecord]) -> "CalibratedSurrogate":
        """Fit affine corrections at all three bucket levels."""
        fine: Dict[Tuple[str, str, int], List[Tuple[float, float]]] = {}
        mid: Dict[Tuple[str, str], List[Tuple[float, float]]] = {}
        coarse: Dict[str, List[Tuple[float, float]]] = {}
        count = 0
        for rec in records:
            if rec.analytic_ns <= 0 or rec.simulated_ns <= 0:
                continue
            count += 1
            pair = (rec.analytic_ns, rec.simulated_ns)
            fine.setdefault((rec.config, rec.sublayer, rec.tp),
                            []).append(pair)
            mid.setdefault((rec.config, rec.sublayer), []).append(pair)
            coarse.setdefault(rec.config, []).append(pair)
        return cls(
            fine={k: _fit_affine(v) for k, v in fine.items()},
            mid={k: _fit_affine(v) for k, v in mid.items()},
            coarse={k: _fit_affine(v) for k, v in coarse.items()},
            n_records=count,
        )

    # -- inference --------------------------------------------------------------

    def correction(self, config: str, sublayer: str, tp: int) -> Affine:
        factor = self._fine.get((config, sublayer, tp))
        if factor is None:
            factor = self._mid.get((config, sublayer))
        if factor is None:
            factor = self._coarse.get(config)
        return _IDENTITY if factor is None else factor

    def predict(self, config: str, sublayer: str, tp: int,
                analytic_ns: float) -> float:
        slope, intercept = self.correction(config, sublayer, tp)
        predicted = slope * analytic_ns + intercept
        # An extrapolated negative intercept must never undercut the
        # physics: the simulation cannot beat the uncorrected roofline.
        return max(predicted, analytic_ns)

    def covers(self, config: str, sublayer: str, tp: int) -> bool:
        """True when the *fine* bucket was seen in training."""
        return (config, sublayer, tp) in self._fine

    @property
    def n_buckets(self) -> int:
        return len(self._fine)

    # -- evaluation -------------------------------------------------------------

    def evaluate(self, records: Iterable[TrainingRecord]) -> Dict[str, float]:
        """Error report: mean / geomean / max relative error.

        The geomean is computed over ``1 + |rel err|`` (minus one again
        at the end) so exact predictions — common when a grid contains
        duplicate effective shapes — do not collapse it to zero.
        """
        rel_errors: List[float] = []
        for rec in records:
            if rec.analytic_ns <= 0 or rec.simulated_ns <= 0:
                continue
            predicted = self.predict(rec.config, rec.sublayer, rec.tp,
                                     rec.analytic_ns)
            rel_errors.append(abs(predicted - rec.simulated_ns)
                              / rec.simulated_ns)
        if not rel_errors:
            return {"n": 0, "mae_rel": 0.0, "geomean_rel": 0.0,
                    "max_rel": 0.0}
        log_sum = sum(math.log1p(e) for e in rel_errors)
        return {
            "n": len(rel_errors),
            "mae_rel": sum(rel_errors) / len(rel_errors),
            "geomean_rel": math.expm1(log_sum / len(rel_errors)),
            "max_rel": max(rel_errors),
        }

    # -- serialization ----------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "n_records": self.n_records,
            "fine": {f"{c}|{s}|{tp}": list(a)
                     for (c, s, tp), a in sorted(self._fine.items())},
            "mid": {f"{c}|{s}": list(a)
                    for (c, s), a in sorted(self._mid.items())},
            "coarse": {c: list(a)
                       for c, a in sorted(self._coarse.items())},
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CalibratedSurrogate":
        fine: Dict[Tuple[str, str, int], Affine] = {}
        for key, affine in data.get("fine", {}).items():
            config, sublayer, tp = key.split("|")
            fine[(config, sublayer, int(tp))] = (float(affine[0]),
                                                 float(affine[1]))
        mid: Dict[Tuple[str, str], Affine] = {}
        for key, affine in data.get("mid", {}).items():
            config, sublayer = key.split("|")
            mid[(config, sublayer)] = (float(affine[0]), float(affine[1]))
        coarse = {key: (float(a[0]), float(a[1]))
                  for key, a in data.get("coarse", {}).items()}
        return cls(fine=fine, mid=mid, coarse=coarse,
                   n_records=int(data.get("n_records", 0)))
