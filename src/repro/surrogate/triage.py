"""Surrogate-triaged sweeps: score everything, simulate the frontier.

The flow (``run_sweep(triage="surrogate")`` / ``runner surrogate``):

1. **Train**: simulate anchor cases (smallest / median / largest GEMM
   per (sub-layer, TP) bucket, bounded by ``max_train``) through the
   normal cached executor, then harvest the persistent sweep cache for
   additional records that agree with the anchor fit (cached payloads
   cannot prove they ran fault-free, so disagreeing ones are dropped).
2. **Fit** a :class:`CalibratedSurrogate` on anchors + kept harvest.
3. **Score** every case with corrected analytic estimates — microseconds
   per case instead of seconds.
4. **Select** the predicted speedup frontier (top ``frontier`` cases by
   predicted T3-MCA gain) plus a seeded random **audit** slice of the
   rest, and full-simulate only those.
5. **Report** predicted-vs-simulated error on the audit slice, so every
   triaged sweep carries its own accuracy measurement.

The triage never hides its shortcut: :class:`TriageResult` records which
cases were simulated and why, the simulated fraction, and the audit
error statistics that the bench schema (v5) and CI assert against.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Dict, List, Optional, Sequence

from repro.experiments.common import SublayerSuite
from repro.models.transformer import SubLayer
from repro.surrogate.features import analytic_times
from repro.surrogate.harvest import records_from_suites
from repro.surrogate.model import CalibratedSurrogate, TrainingRecord

#: config whose predicted speedup over Sequential ranks the frontier.
DEFAULT_FRONTIER_CONFIG = "T3-MCA"


@dataclasses.dataclass
class ScoredCase:
    """One case's surrogate verdict."""

    index: int
    label: str
    sublayer: str
    tp: int
    analytic: Dict[str, float]
    predicted: Dict[str, float]
    predicted_speedup: float
    #: "" (surrogate only) | "train" | "frontier" | "audit"
    simulated_as: str = ""

    def to_dict(self) -> Dict[str, object]:
        return {
            "index": self.index, "label": self.label,
            "sublayer": self.sublayer, "tp": self.tp,
            "predicted": dict(self.predicted),
            "predicted_speedup": self.predicted_speedup,
            "simulated_as": self.simulated_as,
        }


@dataclasses.dataclass
class TriageResult:
    """Everything a triaged sweep produced (and what it cost)."""

    scored: List[ScoredCase]
    suites: Dict[int, SublayerSuite]        # case index -> simulated suite
    surrogate: CalibratedSurrogate
    audit_stats: Dict[str, float]           # evaluate() over the audit slice
    train_stats: Dict[str, float]           # evaluate() over training records
    frontier_config: str = DEFAULT_FRONTIER_CONFIG

    @property
    def n_scored(self) -> int:
        return len(self.scored)

    @property
    def n_simulated(self) -> int:
        return len(self.suites)

    @property
    def simulated_fraction(self) -> float:
        return self.n_simulated / self.n_scored if self.scored else 0.0

    def frontier(self) -> List[ScoredCase]:
        return [c for c in self.scored if c.simulated_as == "frontier"]

    def to_dict(self) -> Dict[str, object]:
        return {
            "n_scored": self.n_scored,
            "n_simulated": self.n_simulated,
            "simulated_fraction": self.simulated_fraction,
            "frontier_config": self.frontier_config,
            "audit": dict(self.audit_stats),
            "train": dict(self.train_stats),
            "surrogate": self.surrogate.to_dict(),
            "frontier": [c.to_dict() for c in self.frontier()],
        }

    def render(self, top: int = 10) -> str:
        """Terminal report for ``runner surrogate``."""
        lines = [
            f"surrogate triage: {self.n_scored} cases scored, "
            f"{self.n_simulated} simulated "
            f"({100.0 * self.simulated_fraction:.2f}%)",
            f"  model: {self.surrogate.n_buckets} fine buckets from "
            f"{self.surrogate.n_records} training records",
            f"  train fit : mae={self.train_stats['mae_rel']:.4f} "
            f"geomean={self.train_stats['geomean_rel']:.4f} "
            f"(n={self.train_stats['n']})",
            f"  audit err : mae={self.audit_stats['mae_rel']:.4f} "
            f"geomean={self.audit_stats['geomean_rel']:.4f} "
            f"max={self.audit_stats['max_rel']:.4f} "
            f"(n={self.audit_stats['n']})",
            f"  predicted {self.frontier_config} speedup frontier:",
        ]
        ranked = sorted(self.scored, key=lambda c: -c.predicted_speedup)
        for case in ranked[:top]:
            mark = f" [{case.simulated_as}]" if case.simulated_as else ""
            line = (f"    {case.label:<28} predicted "
                    f"{case.predicted_speedup:.3f}x{mark}")
            suite = self.suites.get(case.index)
            if suite is not None:
                seq = suite.times.get("Sequential")
                cfg = suite.times.get(self.frontier_config)
                if seq and cfg:
                    line += f" simulated {seq / cfg:.3f}x"
            lines.append(line)
        return "\n".join(lines)


def _sublayer_of(sub: SubLayer) -> str:
    return sub.name


def _audit_size(n_remaining: int, audit_fraction: float,
                min_audit: int) -> int:
    if n_remaining <= 0:
        return 0
    return min(n_remaining, max(min_audit, round(audit_fraction
                                                 * n_remaining)))


def triaged_sweep(cases: Sequence[SubLayer],
                  fast: bool = True,
                  configs: Optional[Sequence[str]] = None,
                  system_for_tp=None,
                  surrogate: Optional[CalibratedSurrogate] = None,
                  frontier: int = 32,
                  audit_fraction: float = 0.005,
                  min_audit: int = 8,
                  max_train: int = 64,
                  harvest_tolerance: float = 0.25,
                  seed: int = 0,
                  jobs: Optional[int] = None,
                  progress=None,
                  frontier_config: str = DEFAULT_FRONTIER_CONFIG,
                  ) -> TriageResult:
    """Score ``cases`` analytically; simulate frontier + audit only.

    ``surrogate`` may be a pre-fitted model (then no training cases are
    simulated); otherwise one is fitted on up to ``max_train`` anchor
    simulations (three sizes per (sub-layer, TP) bucket of ``cases``)
    plus any persistent-cache harvest records that agree with the
    anchor fit within ``harvest_tolerance`` relative error.  All
    simulations go through the normal cached executor, so repeated
    triages of the same grid only pay for newly selected cases.
    """
    # Imported late: sublayer_sweep lazily imports this module from
    # run_sweep, and a top-level import back would be cyclic.
    from repro.experiments.executor import run_cases
    from repro.experiments.sublayer_sweep import (
        _resolve_spec,
        case_shape,
        disk_cache,
    )
    from repro.surrogate.harvest import harvest_cache

    if not cases:
        raise ValueError("triaged_sweep needs a non-empty case list")
    rng = random.Random(seed)

    specs = []
    for sub in cases:
        system = system_for_tp(sub.tp) if system_for_tp else None
        specs.append(_resolve_spec(sub, fast, system, configs))

    # -- 1. training set --------------------------------------------------------
    train_indices: List[int] = []
    train_suites: List[SublayerSuite] = []
    records: List[TrainingRecord] = []
    if surrogate is None:
        # Anchor simulations first: the affine fit needs size *spread*
        # inside each (sub-layer, TP) bucket of the grid at hand, so take
        # the smallest, largest and median GEMM per bucket (largest
        # buckets first if ``max_train`` binds).  Anchors are always
        # freshly simulated (through the cache), never trusted from the
        # harvest — cached payloads do not record whether they ran under
        # fault injection, so the harvest alone could poison the fit.
        by_bucket: Dict[tuple, List[int]] = {}
        for index, sub in enumerate(cases):
            by_bucket.setdefault((_sublayer_of(sub), sub.tp),
                                 []).append(index)
        for bucket, members in sorted(
                by_bucket.items(), key=lambda kv: -len(kv[1])):
            members.sort(key=lambda i: cases[i].gemm.m * cases[i].gemm.n)
            picks = {members[0], members[-1], members[len(members) // 2]}
            for index in sorted(picks):
                if len(train_indices) >= max_train:
                    break
                train_indices.append(index)
        train_suites = run_cases([specs[i] for i in train_indices],
                                 jobs=jobs or 1, cache=disk_cache(),
                                 progress=progress)
        records = records_from_suites(train_suites)
        # The persistent-cache harvest densifies the fit — but only
        # records consistent with the anchor-only model are admitted.
        # The cache may hold faulted (fault-sweep) or foreign-system
        # suites that the payload cannot distinguish; healthy runs land
        # within the tolerance band, a straggler/stall run does not.
        anchor_model = CalibratedSurrogate.fit(records)
        for rec in harvest_cache(disk_cache()):
            predicted = anchor_model.predict(rec.config, rec.sublayer,
                                             rec.tp, rec.analytic_ns)
            if abs(predicted - rec.simulated_ns) <= \
                    harvest_tolerance * rec.simulated_ns:
                records.append(rec)
        surrogate = CalibratedSurrogate.fit(records)
    train_stats = surrogate.evaluate(records)

    # -- 2. score every case ----------------------------------------------------
    scored: List[ScoredCase] = []
    for index, (sub, spec) in enumerate(zip(cases, specs)):
        shape = case_shape(sub, spec.scale, spec.system)
        analytic = analytic_times(shape, spec.system, configs)
        name = _sublayer_of(sub)
        predicted = {
            config: surrogate.predict(config, name, sub.tp, estimate)
            for config, estimate in analytic.items()
        }
        seq = predicted.get("Sequential")
        fast_cfg = predicted.get(frontier_config)
        speedup = (seq / fast_cfg) if seq and fast_cfg else 0.0
        scored.append(ScoredCase(
            index=index, label=sub.label, sublayer=name, tp=sub.tp,
            analytic=analytic, predicted=predicted,
            predicted_speedup=speedup))

    # -- 3. frontier + audit selection ------------------------------------------
    train_set = set(train_indices)
    ranked = sorted(scored, key=lambda c: -c.predicted_speedup)
    frontier_set = {c.index for c in ranked[:max(0, frontier)]}
    audit_pool = [c.index for c in scored
                  if c.index not in frontier_set and c.index not in train_set]
    audit_set = set(rng.sample(
        audit_pool, _audit_size(len(audit_pool), audit_fraction, min_audit)))

    for case in scored:
        if case.index in train_set:
            case.simulated_as = "train"
        elif case.index in frontier_set:
            case.simulated_as = "frontier"
        elif case.index in audit_set:
            case.simulated_as = "audit"

    # -- 4. simulate the selection ----------------------------------------------
    to_run = sorted((frontier_set | audit_set) - train_set)
    run_suites = run_cases([specs[i] for i in to_run], jobs=jobs or 1,
                           cache=disk_cache(), progress=progress) \
        if to_run else []

    suites: Dict[int, SublayerSuite] = {}
    for index, suite in zip(train_indices, train_suites):
        suites[index] = suite
    for index, suite in zip(to_run, run_suites):
        suites[index] = suite

    # -- 5. audit error ---------------------------------------------------------
    audit_records = records_from_suites(
        [suites[i] for i in sorted(audit_set)])
    audit_stats = surrogate.evaluate(audit_records)

    return TriageResult(scored=scored, suites=suites, surrogate=surrogate,
                        audit_stats=audit_stats, train_stats=train_stats,
                        frontier_config=frontier_config)
