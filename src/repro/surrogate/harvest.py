"""Training-record harvest from previously simulated suites.

The persistent :class:`~repro.experiments.executor.SweepCache` already
stores every simulated case as a full :class:`SublayerSuite` payload
(shape + system + per-config times), which is exactly a training set:
each cached case yields one :class:`TrainingRecord` per config, pairing
the recomputed analytic estimate with the simulated wall-clock.  Stale
entries (older code fingerprints) are still valid training signal — the
factors calibrate magnitudes, not bit-exact replay — so the harvest
reads *every* ``*.json`` in the cache directory, not just current-key
hits.
"""

from __future__ import annotations

import json
from typing import List, Optional, Sequence

from repro.experiments.common import SublayerSuite
from repro.surrogate.features import analytic_times
from repro.surrogate.model import TrainingRecord


def _sublayer_name(label: str) -> str:
    """``"Mega-GPT-2/FC-2/TP8"`` -> ``"FC-2"`` (middle path segment)."""
    parts = label.split("/")
    return parts[1] if len(parts) >= 2 else label


def records_from_suite(suite: SublayerSuite) -> List[TrainingRecord]:
    """One record per config of a simulated suite."""
    name = _sublayer_name(suite.label)
    tp = suite.system.n_gpus
    analytic = analytic_times(suite.shape, suite.system,
                              configs=list(suite.times))
    records: List[TrainingRecord] = []
    for config, simulated in suite.times.items():
        estimate = analytic.get(config)
        if estimate is None or estimate <= 0 or simulated <= 0:
            continue
        records.append(TrainingRecord(
            config=config, sublayer=name, tp=tp,
            analytic_ns=estimate, simulated_ns=simulated))
    return records


def records_from_suites(suites: Sequence[SublayerSuite],
                        ) -> List[TrainingRecord]:
    records: List[TrainingRecord] = []
    for suite in suites:
        records.extend(records_from_suite(suite))
    return records


def harvest_cache(cache=None) -> List[TrainingRecord]:
    """All training records recoverable from the persistent sweep cache.

    Unreadable or schema-incompatible files are skipped (the cache is
    best-effort by design); an empty harvest is fine — the surrogate
    then trains purely on the cases the triage flow simulates itself.
    """
    if cache is None:
        from repro.experiments.sublayer_sweep import disk_cache
        cache = disk_cache()
    directory = getattr(cache, "directory", None)
    if directory is None or not directory.is_dir():
        return []
    records: List[TrainingRecord] = []
    for path in sorted(directory.glob("*.json")):
        try:
            suite = SublayerSuite.from_dict(json.loads(path.read_text()))
        except (ValueError, KeyError, TypeError, json.JSONDecodeError,
                OSError):
            continue
        try:
            records.extend(records_from_suite(suite))
        except (ValueError, ZeroDivisionError):
            continue
    return records
