"""Closed-form per-config time estimates (the surrogate's feature basis).

Every estimate here reuses the exact machinery the simulator itself is
built from — :func:`repro.experiments.sublayer_sweep.case_shape` for the
simulated geometry, :class:`~repro.gpu.wavefront.TileGrid` +
:func:`~repro.memory.cache.estimate_gemm_traffic` for the GEMM roofline,
and the ring closed forms in :mod:`repro.collectives.api` — so the
analytic score and the event simulation can only disagree about
*dynamics* (contention, overlap slack), never about geometry or traffic
volume.  Those dynamic gaps are what the per-bucket correction factors
in :mod:`repro.surrogate.model` absorb.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.collectives.api import (
    DEFAULT_LAUNCH_OVERHEAD_NS,
    ring_ag_time,
    ring_rs_time,
    rs_with_nmc_time,
)
from repro.config import SystemConfig, table1_system
from repro.experiments.common import KNOWN_CONFIG_NAMES
from repro.gpu.wavefront import GEMMShape, TileGrid
from repro.memory.cache import estimate_gemm_traffic
from repro.models.transformer import SubLayer

#: configs whose GEMM bypasses output writes to DRAM (T3 fusion paths).
_BYPASS_WRITE_CONFIGS = frozenset({"T3", "T3-MCA"})


def gemm_analytic_time(shape: GEMMShape, system: SystemConfig,
                       bypass_writes: bool = False,
                       launch_overhead_ns: float = DEFAULT_LAUNCH_OVERHEAD_NS,
                       ) -> float:
    """Roofline GEMM estimate: launch + max(compute, DRAM traffic).

    Compute time uses the tile-rounded FLOP count (edge tiles compute
    full macro-tiles, exactly as :class:`~repro.gpu.gemm.GEMMKernel`
    charges them); traffic uses the same LLC reuse model the simulator's
    request generator consumes.
    """
    grid = TileGrid(shape, system.gemm, n_cus=system.compute.n_cus)
    traffic = estimate_gemm_traffic(grid, system.memory, bypass_writes)
    kernel = system.gemm
    flops = 2.0 * shape.k * kernel.macro_tile_m * kernel.macro_tile_n \
        * grid.n_wgs
    compute_t = flops / system.compute.sustained_gemm_flops_per_ns
    mem_t = (traffic.total_read_bytes + traffic.total_write_bytes) \
        / system.memory.effective_bandwidth
    return launch_overhead_ns + max(compute_t, mem_t)


def analytic_times(shape: GEMMShape, system: SystemConfig,
                   configs: Optional[Sequence[str]] = None,
                   ) -> Dict[str, float]:
    """Per-config closed-form estimates for one (shape, system) case.

    Mirrors the composition rules of
    :func:`repro.experiments.common.run_sublayer_suite`:

    * ``Sequential``              = gemm + RS + AG
    * overlapped configs          = max(gemm, RS) + AG
    * ``Ideal-RS+NMC``            = max(gemm, RS-with-NMC) + AG
    """
    selected = list(configs) if configs else list(KNOWN_CONFIG_NAMES)
    payload = shape.output_bytes
    rs_a = ring_rs_time(payload, system)
    ag_a = ring_ag_time(payload, system)
    gemm_cached = gemm_analytic_time(shape, system, bypass_writes=False)
    gemm_bypass: Optional[float] = None

    times: Dict[str, float] = {}
    for name in selected:
        if name == "Sequential":
            times[name] = gemm_cached + rs_a + ag_a
            continue
        if name in _BYPASS_WRITE_CONFIGS:
            if gemm_bypass is None:
                gemm_bypass = gemm_analytic_time(
                    shape, system, bypass_writes=True)
            gemm_a = gemm_bypass
        else:
            gemm_a = gemm_cached
        if name == "Ideal-RS+NMC":
            times[name] = max(gemm_a, rs_with_nmc_time(payload, system)) + ag_a
        else:
            # T3, T3-MCA, Ideal-GEMM-RS-Overlap: RS hidden under the GEMM.
            times[name] = max(gemm_a, rs_a) + ag_a
    return times


def case_analytic_times(sub: SubLayer, scale: int,
                        system: Optional[SystemConfig] = None,
                        configs: Optional[Sequence[str]] = None,
                        ) -> Dict[str, float]:
    """Analytic estimates for a sweep case (TP-default system, simulated
    geometry) — the exact shape :func:`simulate_case` would run."""
    from repro.experiments.sublayer_sweep import case_shape

    resolved = system or table1_system(n_gpus=sub.tp)
    shape = case_shape(sub, scale, resolved)
    return analytic_times(shape, resolved, configs)
