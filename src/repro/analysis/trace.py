"""Execution tracing: export simulations to the Chrome trace format.

Attach a :class:`TraceRecorder` to an :class:`~repro.sim.engine.Environment`
(``env.trace = TraceRecorder()``) *before* building the topology and the
simulator's components record spans as they run:

* GEMM / collective kernel executions (one track per GPU),
* DMA commands (trigger -> remote completion),
* inter-GPU link serialization spans,
* per-channel DRAM service spans (optional — high volume),
* fault / resilience incidents (instant markers, when those layers fire).

``save("run.json")`` writes a file loadable in ``chrome://tracing`` or
`Perfetto <https://ui.perfetto.dev>`_, which renders the paper's Figure 7
choreography directly: staggered GEMM stages, Tracker-triggered DMAs
racing down the ring, and the memory system underneath.

Trace-format contract (see ``docs/tracing.md``)
-----------------------------------------------
Timestamps are exported in microseconds (the trace format's display
unit), but every span event additionally carries its **exact**
nanosecond endpoints in ``args.start_ns`` / ``args.end_ns`` so post-hoc
analysis (:mod:`repro.trace`) reproduces live interval arithmetic
bit-for-bit — the us columns are views, not the source of truth.
Zero-length spans are emitted as instant ("i") events rather than being
inflated to a fake duration.  Output is byte-deterministic: tids are
assigned from the sorted ``(group, track)`` set, events are sorted, and
JSON is dumped with sorted keys and compact separators, so two saves of
the same run diff clean.  ``save(path, registry=...)`` embeds the
:class:`~repro.obs.MetricsRegistry` both as Perfetto counter tracks and
as an aggregate snapshot under the top-level ``"t3"`` key.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

#: schema tag written under the top-level "t3" key of saved traces.
TRACE_SCHEMA = 1

#: args keys reserved by the exporter for exact span endpoints.
_EXACT_KEYS = ("start_ns", "end_ns")


@dataclass(frozen=True)
class TraceSpan:
    name: str
    category: str
    start_ns: float
    end_ns: float
    track: str              # becomes the trace "thread"
    group: str = "sim"      # becomes the trace "process"
    args: Optional[Dict[str, Any]] = None

    def __post_init__(self) -> None:
        if self.end_ns < self.start_ns:
            raise ValueError(f"span {self.name!r} ends before it starts")

    @property
    def duration_ns(self) -> float:
        return self.end_ns - self.start_ns

    def sort_key(self):
        return (self.start_ns, self.end_ns, self.group, self.track,
                self.category, self.name)


def events_to_spans(events: Sequence[Dict[str, Any]]) -> List[TraceSpan]:
    """Reconstruct :class:`TraceSpan`\\ s from Chrome trace events.

    Complete ("X") and instant ("i"/"I") events become spans; counter and
    metadata events are skipped (see
    :meth:`~repro.trace.TraceQuery.from_file` for counters).  Events
    written by :meth:`TraceRecorder.to_chrome_events` round-trip exactly
    via their ``args.start_ns``/``args.end_ns``; foreign traces (e.g. an
    nsys Chrome export) fall back to ``ts``/``dur`` microseconds.
    """
    names: Dict[Any, str] = {}
    for event in events:
        if event.get("ph") == "M" and event.get("name") == "thread_name":
            names[(event.get("pid"), event.get("tid"))] = \
                event.get("args", {}).get("name", "")
    spans: List[TraceSpan] = []
    for event in events:
        ph = event.get("ph")
        if ph not in ("X", "i", "I"):
            continue
        args = event.get("args") or {}
        if "start_ns" in args and "end_ns" in args:
            start_ns = float(args["start_ns"])
            end_ns = float(args["end_ns"])
        else:
            start_ns = float(event.get("ts", 0.0)) * 1e3
            end_ns = start_ns + float(event.get("dur", 0.0)) * 1e3
        user_args = {key: value for key, value in args.items()
                     if key not in _EXACT_KEYS}
        track = names.get((event.get("pid"), event.get("tid")))
        if not track:
            track = str(event.get("tid", "?"))
        spans.append(TraceSpan(
            name=str(event.get("name", "")),
            category=str(event.get("cat", "")),
            start_ns=start_ns, end_ns=end_ns,
            track=track, group=str(event.get("pid", "sim")),
            args=user_args or None))
    return spans


@dataclass
class TraceRecorder:
    """Collects spans; converts to Chrome's JSON event array."""

    spans: List[TraceSpan] = field(default_factory=list)
    #: record per-request DRAM service spans (noisy; off by default, but
    #: required for decomposition-grade traces — post-hoc hidden/exposed
    #: math needs the comm-stream DRAM service intervals).
    record_dram: bool = False

    def span(self, name: str, category: str, start_ns: float, end_ns: float,
             track: str, group: str = "sim",
             args: Optional[Dict[str, Any]] = None) -> None:
        self.spans.append(TraceSpan(name, category, start_ns, end_ns,
                                    track, group, args))

    def instant(self, name: str, category: str, at_ns: float, track: str,
                group: str = "incidents",
                args: Optional[Dict[str, Any]] = None) -> None:
        """A zero-length marker (fault injections, recovery actions)."""
        self.span(name, category, at_ns, at_ns, track, group, args)

    def __len__(self) -> int:
        return len(self.spans)

    def by_category(self, category: str) -> List[TraceSpan]:
        return [s for s in self.spans if s.category == category]

    def to_chrome_events(self) -> List[Dict[str, Any]]:
        """Complete ("X") / instant ("i") events plus thread-name metadata.

        Byte-deterministic: tids come from the sorted ``(group, track)``
        set, metadata precedes span events, and span events are emitted
        in ``(start, end, group, track, ...)`` order.  Exact nanosecond
        endpoints ride in ``args`` (see the module docstring's format
        contract); zero-length spans become instant events instead of
        being inflated to a fake 1 ps duration.
        """
        tracks = sorted({(span.group, span.track) for span in self.spans})
        tids = {key: index + 1 for index, key in enumerate(tracks)}
        events: List[Dict[str, Any]] = []
        for (group, track), tid in sorted(tids.items()):
            events.append({
                "name": "thread_name", "ph": "M", "pid": group, "tid": tid,
                "args": {"name": track},
            })
        for span in sorted(self.spans, key=TraceSpan.sort_key):
            args = dict(span.args or {})
            args["start_ns"] = span.start_ns
            args["end_ns"] = span.end_ns
            event = {
                "name": span.name,
                "cat": span.category,
                "ts": span.start_ns / 1e3,
                "pid": span.group,
                "tid": tids[(span.group, span.track)],
                "args": args,
            }
            if span.end_ns > span.start_ns:
                event["ph"] = "X"
                event["dur"] = (span.end_ns - span.start_ns) / 1e3
            else:
                event["ph"] = "i"
                event["s"] = "t"       # instant scoped to its thread
            events.append(event)
        return events

    def save(self, path: str, registry=None,
             max_samples_per_track: Optional[int] = None) -> None:
        """Write the Chrome-format JSON; passing an
        :class:`~repro.obs.MetricsRegistry` merges its gauges/series in
        as counter tracks on the same timeline and embeds its aggregate
        snapshot under the top-level ``"t3"`` key (the input to post-hoc
        analysis passes that need counters, e.g. arbiter deferrals).

        Output is compact (no spaces) with sorted keys, and parent
        directories are created on demand.
        """
        events = self.to_chrome_events()
        payload: Dict[str, Any] = {
            "traceEvents": events,
            "displayTimeUnit": "ns",
            "t3": {"schema": TRACE_SCHEMA},
        }
        if registry is not None:
            from repro.obs.perfetto import merge_into_trace
            payload["traceEvents"] = merge_into_trace(
                events, registry, max_samples_per_track)
            payload["t3"]["registry"] = registry.snapshot()
        target = pathlib.Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        with open(target, "w") as handle:
            json.dump(payload, handle, sort_keys=True,
                      separators=(",", ":"))

    @classmethod
    def load(cls, path: str) -> "TraceRecorder":
        """Round-trip a saved trace back into a recorder.

        The single span loader shared by tests and
        :class:`~repro.trace.TraceQuery`; accepts both this exporter's
        files and any Chrome JSON (object-with-``traceEvents`` or bare
        event array).
        """
        with open(path) as handle:
            payload = json.load(handle)
        events = payload if isinstance(payload, list) \
            else payload.get("traceEvents", [])
        recorder = cls()
        recorder.spans = events_to_spans(events)
        return recorder

    def summary(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for span in self.spans:
            out[span.category] = out.get(span.category, 0) + 1
        return out
