"""Execution tracing: export simulations to the Chrome trace format.

Attach a :class:`TraceRecorder` to an :class:`~repro.sim.engine.Environment`
(``env.trace = TraceRecorder()``) *before* building the topology and the
simulator's components record spans as they run:

* GEMM / collective kernel executions (one track per GPU),
* DMA commands (trigger -> remote completion),
* inter-GPU link serialization spans,
* per-channel DRAM service spans (optional — high volume).

``save("run.json")`` writes a file loadable in ``chrome://tracing`` or
`Perfetto <https://ui.perfetto.dev>`_, which renders the paper's Figure 7
choreography directly: staggered GEMM stages, Tracker-triggered DMAs
racing down the ring, and the memory system underneath.

Timestamps are exported in microseconds (the trace format's unit).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional


@dataclass(frozen=True)
class TraceSpan:
    name: str
    category: str
    start_ns: float
    end_ns: float
    track: str              # becomes the trace "thread"
    group: str = "sim"      # becomes the trace "process"
    args: Optional[Dict[str, Any]] = None

    def __post_init__(self) -> None:
        if self.end_ns < self.start_ns:
            raise ValueError(f"span {self.name!r} ends before it starts")


@dataclass
class TraceRecorder:
    """Collects spans; converts to Chrome's JSON event array."""

    spans: List[TraceSpan] = field(default_factory=list)
    #: record per-request DRAM service spans (noisy; off by default).
    record_dram: bool = False

    def span(self, name: str, category: str, start_ns: float, end_ns: float,
             track: str, group: str = "sim",
             args: Optional[Dict[str, Any]] = None) -> None:
        self.spans.append(TraceSpan(name, category, start_ns, end_ns,
                                    track, group, args))

    def __len__(self) -> int:
        return len(self.spans)

    def by_category(self, category: str) -> List[TraceSpan]:
        return [s for s in self.spans if s.category == category]

    def to_chrome_events(self) -> List[Dict[str, Any]]:
        """Complete ("X") events plus thread-name metadata."""
        events: List[Dict[str, Any]] = []
        tracks: Dict[tuple, int] = {}
        for span in sorted(self.spans, key=lambda s: s.start_ns):
            key = (span.group, span.track)
            tid = tracks.setdefault(key, len(tracks) + 1)
            events.append({
                "name": span.name,
                "cat": span.category,
                "ph": "X",
                "ts": span.start_ns / 1e3,
                "dur": max(span.end_ns - span.start_ns, 0.001) / 1e3,
                "pid": span.group,
                "tid": tid,
                "args": span.args or {},
            })
        for (group, track), tid in tracks.items():
            events.append({
                "name": "thread_name", "ph": "M", "pid": group, "tid": tid,
                "args": {"name": track},
            })
        return events

    def save(self, path: str, registry=None,
             max_samples_per_track: Optional[int] = None) -> None:
        """Write the Chrome-format JSON; passing an
        :class:`~repro.obs.MetricsRegistry` merges its gauges/series in
        as counter tracks on the same timeline."""
        events = self.to_chrome_events()
        if registry is not None:
            from repro.obs.perfetto import merge_into_trace
            events = merge_into_trace(events, registry,
                                      max_samples_per_track)
        payload = {"traceEvents": events, "displayTimeUnit": "ns"}
        with open(path, "w") as handle:
            json.dump(payload, handle)

    def summary(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for span in self.spans:
            out[span.category] = out.get(span.category, 0) + 1
        return out
