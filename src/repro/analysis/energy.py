"""Data-movement energy accounting.

The paper sells its 22%-geomean DRAM-traffic reduction (Figure 18) partly
as an energy story — data movement dominates accelerator energy.  This
module prices a run's counters with per-byte/per-FLOP energy costs so the
traffic reductions become joules.

Default coefficients are the widely-cited ballpark figures for
7nm-class accelerators with HBM2 (order-of-magnitude accurate; override
:class:`EnergyModel` fields for your process):

* HBM access ~3.5 pJ/bit  -> 28 pJ/byte
* NMC op-and-store: the access energy plus a small near-bank ALU cost,
  but *saves* the extra round trips the baseline reduction needed;
* inter-GPU link (NVLink-class SerDes) ~1.3 pJ/bit -> 10.4 pJ/byte
* FP16 FMA ~0.5 pJ/FLOP effective (including operand delivery on chip).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.analysis.traffic import DramBreakdown


@dataclass(frozen=True)
class EnergyModel:
    """Per-operation energy coefficients (picojoules)."""

    dram_pj_per_byte: float = 28.0
    #: extra cost of a near-bank op-and-store on top of the write itself.
    nmc_extra_pj_per_byte: float = 3.0
    link_pj_per_byte: float = 10.4
    flop_pj: float = 0.5

    def dram_energy_j(self, nbytes: float, nmc_bytes: float = 0.0) -> float:
        base = nbytes * self.dram_pj_per_byte
        extra = nmc_bytes * self.nmc_extra_pj_per_byte
        return (base + extra) * 1e-12

    def link_energy_j(self, nbytes: float) -> float:
        return nbytes * self.link_pj_per_byte * 1e-12

    def compute_energy_j(self, flops: float) -> float:
        return flops * self.flop_pj * 1e-12


@dataclass(frozen=True)
class EnergyReport:
    """Per-GPU energy for one sub-layer execution."""

    dram_j: float
    link_j: float
    compute_j: float

    @property
    def total_j(self) -> float:
        return self.dram_j + self.link_j + self.compute_j

    def as_dict(self) -> Dict[str, float]:
        return {"dram_j": self.dram_j, "link_j": self.link_j,
                "compute_j": self.compute_j, "total_j": self.total_j}


def sublayer_energy(breakdown: DramBreakdown, wire_bytes: float,
                    flops: float, nmc_bytes: float = 0.0,
                    model: EnergyModel = EnergyModel()) -> EnergyReport:
    """Price one configuration's traffic.

    ``breakdown`` is the per-GPU DRAM ledger, ``wire_bytes`` the bytes the
    GPU put on inter-GPU links, ``flops`` the GEMM work, and ``nmc_bytes``
    the subset of DRAM bytes that were near-memory op-and-stores.
    """
    return EnergyReport(
        dram_j=model.dram_energy_j(breakdown.total, nmc_bytes=nmc_bytes),
        link_j=model.link_energy_j(wire_bytes),
        compute_j=model.compute_energy_j(flops),
    )


def energy_saving(baseline: EnergyReport, t3: EnergyReport) -> float:
    """Fractional total-energy saving of T3 over the baseline."""
    if baseline.total_j <= 0:
        raise ValueError("baseline energy must be positive")
    return 1.0 - t3.total_j / baseline.total_j
