"""DRAM access accounting (Figures 17/18).

Reduces memory-controller counters into the paper's categories: GEMM
reads/writes, RS reads/writes(+NMC updates), AG reads/writes.  Counters
are averaged across GPUs (executions are homogeneous; per-GPU numbers
match to within chunk rounding).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List

from repro.gpu.gpu import GPU


@dataclass(frozen=True)
class DramBreakdown:
    """Per-GPU DRAM bytes by traffic category."""

    gemm_read: float
    gemm_write: float
    rs_read: float
    rs_write: float
    ag_read: float
    ag_write: float

    @property
    def total(self) -> float:
        return (self.gemm_read + self.gemm_write + self.rs_read
                + self.rs_write + self.ag_read + self.ag_write)

    @property
    def reads(self) -> float:
        return self.gemm_read + self.rs_read + self.ag_read

    @property
    def writes(self) -> float:
        return self.gemm_write + self.rs_write + self.ag_write

    def as_dict(self) -> Dict[str, float]:
        return {
            "gemm_read": self.gemm_read,
            "gemm_write": self.gemm_write,
            "rs_read": self.rs_read,
            "rs_write": self.rs_write,
            "ag_read": self.ag_read,
            "ag_write": self.ag_write,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, float]) -> "DramBreakdown":
        return cls(**data)


def collect_breakdown(gpus: Iterable[GPU]) -> DramBreakdown:
    """Average the per-GPU counters into one breakdown.

    NMC updates count as writes in their category (they are stores with
    attendant in-DRAM compute), matching the paper's Figure 18 buckets.
    """
    gpu_list: List[GPU] = list(gpus)
    if not gpu_list:
        raise ValueError("need at least one GPU")

    def avg(key: str) -> float:
        return sum(g.mc.counters.get(key) for g in gpu_list) / len(gpu_list)

    return DramBreakdown(
        gemm_read=avg("gemm.read"),
        gemm_write=avg("gemm.write") + avg("gemm.update"),
        rs_read=avg("rs.read"),
        rs_write=avg("rs.write") + avg("rs.update"),
        ag_read=avg("ag.read"),
        ag_write=avg("ag.write") + avg("ag.update"),
    )
