"""Result reduction: speedups, geomeans, DRAM traffic breakdowns."""

from repro.analysis.energy import (
    EnergyModel,
    EnergyReport,
    energy_saving,
    sublayer_energy,
)
from repro.analysis.metrics import SpeedupTable, geomean, speedup
from repro.analysis.trace import TraceRecorder, TraceSpan
from repro.analysis.traffic import DramBreakdown, collect_breakdown

__all__ = [
    "DramBreakdown",
    "EnergyModel",
    "EnergyReport",
    "SpeedupTable",
    "TraceRecorder",
    "TraceSpan",
    "collect_breakdown",
    "energy_saving",
    "geomean",
    "speedup",
    "sublayer_energy",
]
