"""Speedup bookkeeping in the paper's reporting style (geomean + max)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.sim.stats import geomean


def speedup(baseline_time: float, new_time: float) -> float:
    if baseline_time <= 0 or new_time <= 0:
        raise ValueError("times must be positive")
    return baseline_time / new_time


@dataclass
class SpeedupTable:
    """Named speedups over a shared baseline, reduced paper-style."""

    baseline_name: str = "Sequential"
    #: case label -> {config name -> speedup}
    rows: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def add(self, case: str, config: str, value: float) -> None:
        if value <= 0:
            raise ValueError("speedups must be positive")
        self.rows.setdefault(case, {})[config] = value

    def configs(self) -> List[str]:
        names: List[str] = []
        for row in self.rows.values():
            for name in row:
                if name not in names:
                    names.append(name)
        return names

    def column(self, config: str) -> List[float]:
        return [row[config] for row in self.rows.values() if config in row]

    def geomean(self, config: str) -> float:
        return geomean(self.column(config))

    def max(self, config: str) -> float:
        return max(self.column(config))

    def summary(self) -> Dict[str, Tuple[float, float]]:
        """config -> (geomean, max), the paper's headline format."""
        return {
            name: (self.geomean(name), self.max(name))
            for name in self.configs()
        }

    def render(self, title: str = "") -> str:
        """Fixed-width table for terminal output."""
        configs = self.configs()
        width = max((len(c) for c in self.rows), default=4) + 2
        lines = []
        if title:
            lines.append(title)
        header = "case".ljust(width) + "".join(
            f"{c:>22}" for c in configs)
        lines.append(header)
        lines.append("-" * len(header))
        for case, row in self.rows.items():
            lines.append(case.ljust(width) + "".join(
                f"{row.get(c, float('nan')):>22.3f}" for c in configs))
        lines.append("-" * len(header))
        lines.append("geomean".ljust(width) + "".join(
            f"{self.geomean(c):>22.3f}" for c in configs))
        lines.append("max".ljust(width) + "".join(
            f"{self.max(c):>22.3f}" for c in configs))
        return "\n".join(lines)
