"""The overlap-policy protocol: every tunable overlap decision, one seam.

Before this layer existed, the knobs that trade compute interference
against communication exposure were hard-coded where they were consumed:

* the kernel-intensity -> occupancy-threshold mapping and the
  ``dram_occupancy < threshold`` comm-admission gate lived inside
  ``memory/arbiter.MCAPolicy`` (Section 4.5 of the paper),
* the trigger controller always fired a completed block's DMA
  immediately (``t3/trigger.py``),
* the DMA engine always launched every slice of a command at once
  (``gpu/dma.py``),
* the Tracker's live-region occupancy was telemetry only
  (``t3/tracker.py``).

An :class:`OverlapPolicy` owns all four decision points.  Components
consult ``env.overlap`` (resolved once per :class:`~repro.sim.engine.
Environment` from ``SystemConfig.policy``); per-arbiter state lives in
:class:`McaSite` handles so the hot path reads plain attributes.

Three implementations ship (see their modules):

* :class:`~repro.policy.static.StaticPaperPolicy` — the paper's static
  per-kernel choices, bit-identical to the pre-refactor behavior;
* :class:`~repro.policy.adaptive.AdaptiveMcaPolicy` — an online EWMA
  controller over the deferral/occupancy telemetry;
* :class:`~repro.policy.recorded.RecordedPolicy` — replays a
  :class:`DecisionLog` for deterministic debugging.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.config import MCAConfig


def paper_threshold_index(config: MCAConfig, memory_intensity: float) -> int:
    """Section 4.5's static mapping: the first breakpoint the intensity
    meets picks the paired threshold; below all of them, the last
    (most permissive) threshold applies."""
    for index, breakpoint_value in enumerate(config.intensity_breakpoints):
        if memory_intensity >= breakpoint_value:
            return index
    return len(config.occupancy_thresholds) - 1


class McaSite:
    """Per-``(gpu, channel)`` arbiter decision state.

    A plain slotted handle: ``threshold`` is read on every arbitration
    round (via ``MCAPolicy.threshold``), so lookups must be attribute
    loads, not dict hops.  The EWMA fields are only touched by the
    adaptive controller.
    """

    __slots__ = ("gpu_id", "channel_id", "config", "threshold",
                 "base_index", "index", "ewma_deferral", "ewma_occupancy",
                 "last_retune_ns")

    def __init__(self, gpu_id: int, channel_id: int, config: MCAConfig):
        self.gpu_id = gpu_id
        self.channel_id = channel_id
        self.config = config
        # Before the first calibration (the producer's isolated first
        # stage, Section 4.5) use the most conservative finite threshold.
        self.base_index = 0
        self.index = 0
        self.threshold: Optional[int] = config.occupancy_thresholds[0]
        self.ewma_deferral = 0.0
        self.ewma_occupancy = 0.0
        self.last_retune_ns = 0.0


@dataclass
class Decision:
    """One tunable decision, as recorded / replayed.

    ``value`` is the decision outcome: the new occupancy threshold
    (None = unlimited) for ``kind="threshold"``, the inserted gap/delay
    in ns for ``kind="pacing"`` / ``kind="eagerness"``.
    """

    seq: int
    t_ns: float
    kind: str                      # "threshold" | "pacing" | "eagerness"
    gpu: int
    channel: int                   # -1 for GPU-scoped decisions
    value: Optional[float]
    reason: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {"seq": self.seq, "t_ns": self.t_ns, "kind": self.kind,
                "gpu": self.gpu, "channel": self.channel,
                "value": self.value, "reason": self.reason}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Decision":
        return cls(seq=data["seq"], t_ns=data["t_ns"], kind=data["kind"],
                   gpu=data["gpu"], channel=data["channel"],
                   value=data["value"], reason=data.get("reason", ""))


@dataclass
class DecisionLog:
    """The replayable record of a policy's tunable decisions."""

    policy: str = "unknown"
    decisions: List[Decision] = field(default_factory=list)

    def append(self, decision: Decision) -> None:
        self.decisions.append(decision)

    def __len__(self) -> int:
        return len(self.decisions)

    def to_json(self) -> str:
        return json.dumps({
            "schema": "t3-decision-log",
            "policy": self.policy,
            "decisions": [d.to_dict() for d in self.decisions],
        }, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "DecisionLog":
        data = json.loads(text)
        if data.get("schema") != "t3-decision-log":
            raise ValueError("not a t3-decision-log payload")
        return cls(policy=data.get("policy", "unknown"),
                   decisions=[Decision.from_dict(d)
                              for d in data["decisions"]])

    def save(self, path) -> pathlib.Path:
        target = pathlib.Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(self.to_json() + "\n")
        return target

    @classmethod
    def load(cls, path) -> "DecisionLog":
        return cls.from_json(pathlib.Path(path).read_text())


class OverlapPolicy:
    """Base class: observe telemetry signals, own every overlap decision.

    One instance serves a whole :class:`~repro.sim.engine.Environment`
    (all GPUs); per-arbiter state lives in the :class:`McaSite` handles
    handed out by :meth:`register_mca_site`.  Decision methods must be
    pure with respect to the simulation — a policy may *never* schedule
    events itself; it only returns values its callers act on.
    """

    name = "abstract"

    def __init__(self, record: bool = False):
        self.env = None
        self.log: Optional[DecisionLog] = \
            DecisionLog(policy=self.name) if record else None
        self.sites: List[McaSite] = []
        self._seq = 0

    def bind(self, env) -> "OverlapPolicy":
        """Attach to an environment (for clocks, trace and obs access)."""
        self.env = env
        return self

    # -- registration -----------------------------------------------------

    def register_mca_site(self, gpu_id: int, channel_id: int,
                          config: MCAConfig) -> McaSite:
        site = McaSite(gpu_id, channel_id, config)
        self.sites.append(site)
        return site

    # -- decision points --------------------------------------------------

    def on_calibration(self, site: McaSite, memory_intensity: float) -> None:
        """Producer-kernel stage boundary: retarget ``site.threshold``."""
        raise NotImplementedError

    def comm_admission(self, site: McaSite, state) -> bool:
        """May the communication stream issue right now?  ``state`` is a
        :class:`~repro.memory.arbiter.ArbiterState` view."""
        raise NotImplementedError

    def trigger_fire_delay(self, gpu_id: int, block) -> float:
        """Extra ns to hold a completed block before firing its DMA
        (0 = fire immediately, the paper's eager trigger)."""
        return 0.0

    def dma_pacing_gap(self, gpu_id: int, command) -> float:
        """Inter-slice stagger in ns for one DMA command (0 = launch all
        slices at once, the paper's behavior)."""
        return 0.0

    # -- telemetry feeds (passive; never decisions) -----------------------

    def observe_tracker_pressure(self, gpu_id: int, live_regions: int,
                                 capacity: int) -> None:
        """Tracker live-region occupancy changed (a pressure signal)."""

    # -- bookkeeping ------------------------------------------------------

    def decision_log(self) -> Optional[DecisionLog]:
        return self.log

    def _decide(self, kind: str, gpu: int, channel: int,
                value: Optional[float], reason: str) -> None:
        """Record one tunable decision into the log and the trace.

        Cheap when neither is attached — callers may invoke this
        unconditionally at decision points.
        """
        self._seq += 1
        env = self.env
        trace = None if env is None else env.trace
        if self.log is None and trace is None:
            return
        now = 0.0 if env is None else env._now
        if self.log is not None:
            self.log.append(Decision(seq=self._seq, t_ns=now, kind=kind,
                                     gpu=gpu, channel=channel, value=value,
                                     reason=reason))
        if trace is not None:
            shown = "inf" if value is None else f"{value:g}"
            trace.instant(
                name=f"{kind}={shown}", category="policy", at_ns=now,
                track=f"gpu{gpu}.policy", group="policy",
                args={"kind": kind, "gpu": gpu, "channel": channel,
                      "value": "inf" if value is None else value,
                      "reason": reason, "policy": self.name})
