"""Replay a recorded decision log — deterministic policy debugging.

``RecordedPolicy`` re-applies the *tunable* decisions (threshold
retargets, pacing gaps, eagerness delays) a previous run logged, in
recorded order, gated on recorded time.  Admissions themselves are not
replayed: they are recomputed from the replayed thresholds, which is
what makes the log small and the replay honest — if the surrounding
simulation diverges, admissions diverge visibly instead of being
papered over.

A faithful replay of the run that produced the log is bit-identical to
it: the decision sites are visited in the same order at the same times,
so each queue pop lines up with the call that recorded it.
"""

from __future__ import annotations

from typing import Deque, Dict, List, Tuple

from collections import deque

from repro.config import MCAConfig
from repro.policy.base import Decision, DecisionLog, McaSite, OverlapPolicy


class RecordedPolicy(OverlapPolicy):
    """Replays the threshold / pacing / eagerness decisions of a log."""

    name = "recorded"

    def __init__(self, log: DecisionLog):
        super().__init__(record=False)
        self.source = log
        #: (kind, gpu, channel) -> decisions in recorded (seq) order.
        self._queues: Dict[Tuple[str, int, int], Deque[Decision]] = {}
        for decision in sorted(log.decisions, key=lambda d: d.seq):
            key = (decision.kind, decision.gpu, decision.channel)
            self._queues.setdefault(key, deque()).append(decision)
        self.replayed = 0

    # -- replay machinery -------------------------------------------------

    def _threshold_queue(self, site: McaSite) -> Deque[Decision]:
        return self._queues.get(
            ("threshold", site.gpu_id, site.channel_id), _EMPTY)

    def _apply_due_thresholds(self, site: McaSite, now: float) -> None:
        queue = self._threshold_queue(site)
        while queue and queue[0].t_ns <= now:
            decision = queue.popleft()
            value = decision.value
            site.threshold = None if value is None else int(value)
            self.replayed += 1

    def _pop_due(self, kind: str, gpu: int, now: float) -> float:
        queue = self._queues.get((kind, gpu, -1), _EMPTY)
        if queue and queue[0].t_ns <= now:
            self.replayed += 1
            return float(queue.popleft().value or 0.0)
        return 0.0

    # -- decision points --------------------------------------------------

    def register_mca_site(self, gpu_id: int, channel_id: int,
                          config: MCAConfig) -> McaSite:
        site = super().register_mca_site(gpu_id, channel_id, config)
        # Replays of decisions recorded at t=0 (pre-run calibrations).
        self._apply_due_thresholds(site, self._now())
        return site

    def on_calibration(self, site: McaSite, memory_intensity: float) -> None:
        self._apply_due_thresholds(site, self._now())

    def comm_admission(self, site: McaSite, state) -> bool:
        self._apply_due_thresholds(site, state.now)
        threshold = site.threshold
        return threshold is None or state.dram_occupancy < threshold

    def dma_pacing_gap(self, gpu_id: int, command) -> float:
        return self._pop_due("pacing", gpu_id, self._now())

    def trigger_fire_delay(self, gpu_id: int, block) -> float:
        return self._pop_due("eagerness", gpu_id, self._now())

    # -- helpers ----------------------------------------------------------

    def _now(self) -> float:
        return float("inf") if self.env is None else self.env._now

    @property
    def pending(self) -> int:
        return sum(len(q) for q in self._queues.values())


_EMPTY: Deque[Decision] = deque()


def decisions_by_kind(log: DecisionLog) -> Dict[str, List[Decision]]:
    """Group a log's decisions by kind (inspection convenience)."""
    grouped: Dict[str, List[Decision]] = {}
    for decision in log.decisions:
        grouped.setdefault(decision.kind, []).append(decision)
    return grouped
