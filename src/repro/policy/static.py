"""The paper's static per-kernel policy — the bit-identity reference.

Exactly the behavior that used to be hard-coded: the Section 4.5
intensity -> threshold table at calibration, the
``dram_occupancy < threshold`` admission gate per arbitration round,
eager triggering, and unpaced DMA.  ``make smoke-policy`` holds this
implementation to byte-identical results, event counts and telemetry
snapshots against an inline copy of the pre-refactor arbiter.
"""

from __future__ import annotations

from repro.policy.base import McaSite, OverlapPolicy, paper_threshold_index


class StaticPaperPolicy(OverlapPolicy):
    """Static per-kernel thresholds; no pacing; eager triggers."""

    name = "static-paper"

    def on_calibration(self, site: McaSite, memory_intensity: float) -> None:
        index = paper_threshold_index(site.config, memory_intensity)
        site.base_index = index
        site.index = index
        site.threshold = site.config.occupancy_thresholds[index]
        self._decide("threshold", site.gpu_id, site.channel_id,
                     site.threshold, reason="calibration")

    def comm_admission(self, site: McaSite, state) -> bool:
        threshold = site.threshold
        return threshold is None or state.dram_occupancy < threshold
