"""repro.policy — the overlap-policy layer (see ``docs/adaptive.md``).

Every tunable overlap decision (arbiter occupancy threshold, comm
admission, DMA pacing, trigger eagerness) flows through one
:class:`OverlapPolicy` attached to the environment as ``env.overlap``.
"""

from repro.config import OverlapPolicyConfig, SystemConfig
from repro.policy.adaptive import AdaptiveMcaPolicy
from repro.policy.base import (
    Decision,
    DecisionLog,
    McaSite,
    OverlapPolicy,
    paper_threshold_index,
)
from repro.policy.recorded import RecordedPolicy
from repro.policy.static import StaticPaperPolicy

__all__ = [
    "AdaptiveMcaPolicy",
    "Decision",
    "DecisionLog",
    "McaSite",
    "OverlapPolicy",
    "OverlapPolicyConfig",
    "RecordedPolicy",
    "StaticPaperPolicy",
    "make_overlap_policy",
    "paper_threshold_index",
    "resolve_overlap_policy",
]


def make_overlap_policy(config: OverlapPolicyConfig,
                        log: DecisionLog = None) -> OverlapPolicy:
    """Build the policy a config selects (``log`` overrides the path a
    ``kind="recorded"`` config would load from disk)."""
    if config.kind == "static":
        return StaticPaperPolicy(record=config.record_decisions)
    if config.kind == "adaptive":
        return AdaptiveMcaPolicy(config)
    if config.kind == "recorded":
        if log is None:
            log = DecisionLog.load(config.decision_log_path)
        return RecordedPolicy(log)
    raise ValueError(f"unknown overlap policy kind {config.kind!r}")


def resolve_overlap_policy(env, system: SystemConfig) -> OverlapPolicy:
    """The environment's policy, creating + binding it on first use.

    Called wherever a component needs the decision seam (the memory
    controller, today).  An explicitly pre-attached ``env.overlap``
    (tests, replay harnesses) wins over the config selection; it is
    bound to the environment if the caller had not done so already.
    """
    policy = env.overlap
    if policy is None:
        policy = make_overlap_policy(system.policy)
        policy.bind(env)
        env.overlap = policy
    elif policy.env is None:
        policy.bind(env)
    return policy
