"""Online EWMA controller: resource-aware MCA retuning mid-kernel.

The static paper policy picks one occupancy threshold per kernel from
its *isolated* first stage and never revisits it.  That pick goes wrong
exactly where the ROADMAP says it does: under degraded links or a
straggling GPU the producer GEMM stretches, the fused ring's partials
arrive while DRAM queues still carry compute traffic, and a tight
threshold (5 of a 32-deep queue) keeps deferring communication that the
now-elongated compute could easily have hidden — the reduce-scatter
tail runs *exposed* after the GEMM ends.

This controller closes the loop from the signals the obs layer already
publishes, but sampled directly at the decision sites (the policy works
with or without a registry attached):

* per-site **gate-deferral EWMA** — the fraction of comm-admission
  rounds the occupancy gate said no.  Persistently high while compute
  is absent means the gate, not bandwidth, is the bottleneck: relax the
  threshold one step along the paper's own candidate ladder
  (5 -> 10 -> 30 -> unlimited).
* per-site **occupancy EWMA** and a per-GPU aggregate — when queues are
  genuinely full the deferrals are organic; relaxing would only let
  comm trample compute, so the controller also *decays* back toward the
  static pick when deferrals subside.
* **tracker pressure** (live regions / capacity) — an optional
  eagerness signal: under extreme pressure, trigger fires can be held
  briefly to batch DMA traffic (off by default).

Retunes are rate-limited (``retune_interval_ns``), never go *below*
the kernel's static pick (the adaptive policy only spends permissiveness
the static table already considered safe), reset at every calibration
(new kernel, new baseline), and each one is emitted as a per-decision
trace instant + :class:`~repro.policy.base.DecisionLog` entry so
``runner trace --pass policy-decisions`` can attribute wins post-hoc.
"""

from __future__ import annotations

from typing import Dict

from repro.config import OverlapPolicyConfig
from repro.policy.base import McaSite, OverlapPolicy, paper_threshold_index


class AdaptiveMcaPolicy(OverlapPolicy):
    """EWMA-driven threshold / pacing controller over the MCA ladder."""

    name = "adaptive-mca"

    def __init__(self, config: OverlapPolicyConfig, record: bool = False):
        super().__init__(record=record or config.record_decisions)
        self.config = config
        #: per-GPU DRAM occupancy-fraction EWMA (pacing signal).
        self._gpu_occupancy: Dict[int, float] = {}
        #: per-GPU tracker live-region fraction (eagerness signal).
        self._gpu_pressure: Dict[int, float] = {}
        self.retunes = 0

    # -- calibration ------------------------------------------------------

    def on_calibration(self, site: McaSite, memory_intensity: float) -> None:
        # New producer kernel: restart from the paper's static pick and
        # let the deferral evidence re-accumulate.
        index = paper_threshold_index(site.config, memory_intensity)
        site.base_index = index
        site.index = index
        site.threshold = site.config.occupancy_thresholds[index]
        site.ewma_deferral = 0.0
        site.last_retune_ns = 0.0 if self.env is None else self.env._now
        self._decide("threshold", site.gpu_id, site.channel_id,
                     site.threshold, reason="calibration")

    # -- the admission hot path -------------------------------------------

    def comm_admission(self, site: McaSite, state) -> bool:
        config = self.config
        alpha = config.ewma_alpha
        occupancy_fraction = state.dram_occupancy / state.dram_capacity
        threshold = site.threshold
        admit = threshold is None or state.dram_occupancy < threshold
        # Signal updates first, then the (rate-limited) retune: a retune
        # acts on evidence that includes this round.
        site.ewma_deferral += alpha * ((0.0 if admit else 1.0)
                                       - site.ewma_deferral)
        site.ewma_occupancy += alpha * (occupancy_fraction
                                        - site.ewma_occupancy)
        previous = self._gpu_occupancy.get(site.gpu_id, 0.0)
        self._gpu_occupancy[site.gpu_id] = \
            previous + alpha * (occupancy_fraction - previous)
        now = state.now
        if now - site.last_retune_ns >= config.retune_interval_ns:
            site.last_retune_ns = now
            if self._retune(site):
                threshold = site.threshold
                admit = threshold is None \
                    or state.dram_occupancy < threshold
        return admit

    def _retune(self, site: McaSite) -> bool:
        """One controller step along the candidate-threshold ladder."""
        config = self.config
        ladder = site.config.occupancy_thresholds
        index = site.index
        if site.ewma_deferral > config.relax_watermark \
                and index < len(ladder) - 1:
            index += 1
            reason = "relax"
        elif site.ewma_deferral < config.tighten_watermark \
                and index > site.base_index:
            index -= 1
            reason = "tighten"
        else:
            return False
        site.index = index
        site.threshold = ladder[index]
        # Half-life the evidence so one relax doesn't immediately cascade
        # into the next before new rounds accumulate.
        site.ewma_deferral *= 0.5
        self.retunes += 1
        self._decide("threshold", site.gpu_id, site.channel_id,
                     site.threshold, reason=reason)
        env = self.env
        if env is not None and env.obs is not None:
            env.obs.scope(site.gpu_id, "policy").count(f"retunes.{reason}")
        return True

    # -- pacing and eagerness ---------------------------------------------

    def dma_pacing_gap(self, gpu_id: int, command) -> float:
        config = self.config
        max_gap = config.pacing_max_gap_ns
        if max_gap <= 0.0:
            return 0.0
        occupancy = self._gpu_occupancy.get(gpu_id, 0.0)
        watermark = config.pacing_occupancy_watermark
        if occupancy <= watermark:
            return 0.0
        # Scale linearly from the watermark to saturation.
        fraction = min(1.0, (occupancy - watermark) / (1.0 - watermark))
        gap = max_gap * fraction
        self._decide("pacing", gpu_id, -1, gap, reason="occupancy")
        env = self.env
        if env is not None and env.obs is not None:
            env.obs.scope(gpu_id, "policy").observe("pacing_gap_ns", gap)
        return gap

    def trigger_fire_delay(self, gpu_id: int, block) -> float:
        max_delay = self.config.eagerness_max_delay_ns
        if max_delay <= 0.0:
            return 0.0
        pressure = self._gpu_pressure.get(gpu_id, 0.0)
        if pressure <= 0.0:
            return 0.0
        delay = max_delay * min(1.0, pressure)
        self._decide("eagerness", gpu_id, -1, delay, reason="pressure")
        return delay

    def observe_tracker_pressure(self, gpu_id: int, live_regions: int,
                                 capacity: int) -> None:
        if capacity <= 0:
            return
        fraction = live_regions / capacity
        previous = self._gpu_pressure.get(gpu_id, 0.0)
        self._gpu_pressure[gpu_id] = \
            previous + self.config.ewma_alpha * (fraction - previous)
