"""Inter-GPU interconnect: links and node topologies."""

from repro.interconnect.topology import (
    FullyConnectedTopology,
    HierarchicalRingTopology,
    RingTopology,
    Topology,
)

__all__ = [
    "FullyConnectedTopology",
    "HierarchicalRingTopology",
    "RingTopology",
    "Topology",
]
