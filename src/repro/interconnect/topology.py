"""Node topologies: wire GPUs together with bandwidth/latency links.

The paper evaluates the ring topology (intra-node tensor parallelism,
Section 2.3); the fully-connected topology supports the direct-RS
discussion of Section 7.1.  A topology owns the :class:`GPU` instances and
the directed :class:`~repro.sim.primitives.Pipe` links between them.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.config import SystemConfig
from repro.gpu.gpu import GPU
from repro.sim.engine import Environment, SimulationError
from repro.sim.primitives import Pipe


class Topology:
    """Base: a set of GPUs plus directed links."""

    def __init__(self, env: Environment, system: SystemConfig,
                 policy_name: str = "compute-priority"):
        self.env = env
        self.system = system
        self.gpus: List[GPU] = [
            GPU(env, gpu_id, system, policy_name=policy_name)
            for gpu_id in range(system.n_gpus)
        ]
        self.links: Dict[Tuple[int, int], Pipe] = {}
        self._wire()

    # subclasses define which directed edges exist
    def edges(self) -> List[Tuple[int, int]]:
        raise NotImplementedError

    def _make_pipe(self, src: int, dst: int, bandwidth: float,
                   latency_ns: float, suffix: str = "") -> Pipe:
        """Build + register one directed link, applying any static link
        degradation from ``env.faults`` (bandwidth factor, extra latency)."""
        nominal_bandwidth, nominal_latency = bandwidth, latency_ns
        if self.env.faults is not None:
            bandwidth, latency_ns = self.env.faults.link_parameters(
                src, dst, bandwidth, latency_ns)
        pipe = Pipe(self.env, bandwidth_bytes_per_ns=bandwidth,
                    latency_ns=latency_ns,
                    name=f"link.{src}->{dst}{suffix}")
        pipe.endpoints = (src, dst)
        pipe.nominal_bandwidth = nominal_bandwidth
        pipe.nominal_latency_ns = nominal_latency
        self.links[(src, dst)] = pipe
        self.gpus[src].connect(self.gpus[dst], pipe)
        return pipe

    def _wire(self) -> None:
        link_cfg = self.system.link
        for src, dst in self.edges():
            self._make_pipe(src, dst, link_cfg.bandwidth,
                            link_cfg.latency_ns)

    def link(self, src: int, dst: int) -> Pipe:
        if (src, dst) not in self.links:
            raise SimulationError(f"no link {src}->{dst} in this topology")
        return self.links[(src, dst)]

    @property
    def n_gpus(self) -> int:
        return len(self.gpus)

    def total_bytes_on_wire(self) -> float:
        return sum(pipe.bytes_sent for pipe in self.links.values())


class RingTopology(Topology):
    """Bidirectional ring; ring collectives send "downstream" to
    ``(rank - 1) mod N`` as in the paper's Figure 7 (GPU-0 sends to
    GPU-3)."""

    def edges(self) -> List[Tuple[int, int]]:
        n = self.system.n_gpus
        forward = [(i, (i - 1) % n) for i in range(n)]
        backward = [(i, (i + 1) % n) for i in range(n)]
        return forward + backward

    def next_gpu(self, rank: int) -> int:
        """Downstream neighbour (the one ``rank`` sends chunks to)."""
        return (rank - 1) % self.system.n_gpus

    def prev_gpu(self, rank: int) -> int:
        """Upstream neighbour (the one ``rank`` receives chunks from)."""
        return (rank + 1) % self.system.n_gpus


class FullyConnectedTopology(Topology):
    """All-to-all dedicated links (direct-RS substrate, Section 7.1)."""

    def edges(self) -> List[Tuple[int, int]]:
        n = self.system.n_gpus
        return [(i, j) for i in range(n) for j in range(n) if i != j]


class HierarchicalRingTopology(RingTopology):
    """A ring spanning multiple nodes (Section 7.8).

    GPUs are grouped into nodes of ``gpus_per_node``; ring edges that
    cross a node boundary use slower inter-node links
    (``inter_node_fraction`` of the intra-node bandwidth, plus extra
    latency).  Ring collectives and T3 fusion work unchanged — the slow
    hops simply pace the affected steps, exposing the paper's
    "communication costs can be much larger than GEMM execution"
    inter-node regime.

    Beyond the flat ring, the topology wires **rail links**: for each
    intra-node position ``g``, GPU ``(k, g)`` connects to ``(k±1, g)`` on
    the neighbouring nodes.  These per-position inter-node rings carry
    the ``inter`` phase of the hierarchical collective plan
    (:func:`repro.collectives.plan.hierarchical_rs_plan`), which is what
    lets fused T3 reduce across nodes.  Rail links cross nodes, so they
    get the slow inter-node parameters automatically.
    """

    def __init__(self, env: Environment, system: SystemConfig,
                 gpus_per_node: int, inter_node_fraction: float = 0.25,
                 inter_node_extra_latency_ns: float = 1500.0,
                 policy_name: str = "compute-priority"):
        if gpus_per_node < 1 or system.n_gpus % gpus_per_node:
            raise SimulationError(
                f"{system.n_gpus} GPUs cannot be grouped into nodes of "
                f"{gpus_per_node}")
        if not 0 < inter_node_fraction <= 1:
            raise SimulationError("inter_node_fraction must be in (0, 1]")
        self.gpus_per_node = gpus_per_node
        self.inter_node_fraction = inter_node_fraction
        self.inter_node_extra_latency_ns = inter_node_extra_latency_ns
        super().__init__(env, system, policy_name=policy_name)

    @property
    def n_nodes(self) -> int:
        return self.system.n_gpus // self.gpus_per_node

    def node_of(self, rank: int) -> int:
        return rank % self.system.n_gpus // self.gpus_per_node

    def edges(self) -> List[Tuple[int, int]]:
        base = super().edges()
        per = self.gpus_per_node
        if self.n_nodes <= 1 or per <= 1:
            return base  # the flat ring already is the node ring
        seen = set(base)
        extra: List[Tuple[int, int]] = []

        def add(src: int, dst: int) -> None:
            if dst != src and (src, dst) not in seen:
                seen.add((src, dst))
                extra.append((src, dst))

        for k in range(self.n_nodes):
            # Close each node's ring: the flat ring supplies the in-node
            # hops, but position 0 <-> position per-1 wraps through the
            # next node — the intra phase needs the direct link.
            add(k * per, k * per + per - 1)
            add(k * per + per - 1, k * per)
        for g in range(per):
            for k in range(self.n_nodes):
                src = k * per + g
                for dk in (-1, 1):
                    add(src, ((k + dk) % self.n_nodes) * per + g)
        return base + extra

    def is_inter_node(self, src: int, dst: int) -> bool:
        return self.node_of(src) != self.node_of(dst)

    def _wire(self) -> None:
        link_cfg = self.system.link
        for src, dst in self.edges():
            crossing = self.is_inter_node(src, dst)
            bandwidth = link_cfg.bandwidth * (
                self.inter_node_fraction if crossing else 1.0)
            latency = link_cfg.latency_ns + (
                self.inter_node_extra_latency_ns if crossing else 0.0)
            self._make_pipe(src, dst, bandwidth, latency,
                            suffix=".xnode" if crossing else "")
