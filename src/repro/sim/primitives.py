"""Waitable primitives built on the engine: timeouts, composites, resources.

These are the concurrency vocabulary the GPU / memory / interconnect models
are written in:

* :class:`Timeout` — fixed-delay event (service times, link latency).
* :class:`Event` — manually-triggered event (Tracker thresholds, barriers).
* :class:`AllOf` / :class:`AnyOf` — composite waits.
* :class:`Resource` — counted resource with FIFO queueing (CUs, DMA engines).
* :class:`Store` — FIFO of items between producer/consumer processes
  (memory-controller queues, link packet queues).
* :class:`Pipe` — bandwidth/latency-modelled byte stream (inter-GPU links).
"""

from __future__ import annotations

from collections import deque
from heapq import heappush
from typing import Any, Iterable, List, Optional

from repro.sim.engine import BaseEvent, Environment, SimulationError

# Public alias: a bare, manually-triggered event.
Event = BaseEvent


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Timeout(BaseEvent):
    """An event that fires ``delay`` nanoseconds after creation.

    Timeouts are the single most-constructed event type (every service
    interval in the simulator is one), so construction writes the slots
    and pushes onto the schedule directly instead of going through
    ``BaseEvent.__init__`` + ``succeed``.
    """

    __slots__ = ("delay",)

    def __init__(self, env: Environment, delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout: {delay}")
        self.env = env
        self._callbacks = []
        self._value = value
        self._ok = True
        self._triggered = True
        self._fired = False
        self.delay = delay
        env.schedule(self, delay)


class ReusableTimer(BaseEvent):
    """A recyclable single-callback timer owned by one state machine.

    The callback state machines (DRAM channels, GEMM wavefront, DMA
    slices) sleep at most once per machine at a time, so each machine
    can own its timer objects and re-arm them instead of allocating a
    fresh ``Timeout`` (plus callback list) per tick.  ``arm()`` resets
    the event slots and puts the timer back on the schedule; firing
    happens through the ordinary engine loop, so recycling is invisible
    to both schedulers.

    Arming a timer that is still pending is a bug (the schedule holds a
    reference to it); the guard raises instead of corrupting the run.
    """

    __slots__ = ("_fn",)

    def __init__(self, env: Environment, fn):
        self.env = env
        self._fn = fn
        self._callbacks = None
        self._value = None
        self._ok = True
        self._triggered = False
        self._fired = False

    def arm(self, delay: float = 0.0, value: Any = None) -> None:
        if self._callbacks is not None:
            raise SimulationError("ReusableTimer re-armed while pending")
        self._callbacks = [self._fn]
        self._value = value
        self._triggered = True
        self._fired = False
        # Inlined Environment.schedule() zero-delay fast path (ticks are
        # overwhelmingly zero-delay wakes/chains).
        if delay == 0.0:
            self.env._now_q.append(self)
        else:
            self.env.schedule(self, delay)


class AllOf(BaseEvent):
    """Fires when every child event has fired; value is the list of values.

    On the first child *failure* the composite fails and detaches its
    callbacks from every still-pending child, so a long-lived child event
    does not accumulate dead closures for the rest of the run.
    """

    __slots__ = ("_remaining", "_values", "_children")

    def __init__(self, env: Environment, events: List[BaseEvent]):
        super().__init__(env)
        self._values: list[Any] = [None] * len(events)
        self._remaining = len(events)
        self._children: list = []
        if not events:
            self.succeed([])
            return
        for index, event in enumerate(events):
            callback = self._make_child_callback(index)
            self._children.append((event, callback))
            event.add_callback(callback)

    def _make_child_callback(self, index: int):
        def _on_child(event: BaseEvent) -> None:
            if self._triggered:
                return
            if not event._ok:
                self.fail(event.value)
                self._detach_pending()
                return
            self._values[index] = event.value
            self._remaining -= 1
            if self._remaining == 0:
                self.succeed(list(self._values))
                self._children = []

        return _on_child

    def _detach_pending(self) -> None:
        """Remove our callbacks from children that have not fired yet."""
        children, self._children = self._children, []
        for child, callback in children:
            callbacks = child._callbacks
            if callbacks is not None:
                try:
                    callbacks.remove(callback)
                except ValueError:
                    pass


class AnyOf(BaseEvent):
    """Fires when the first child fires; value is ``(index, value)``.

    The winning child detaches the composite's callbacks from every
    losing child, so losers (which may live arbitrarily long) do not
    carry dead closures that every later subscriber scan walks over.
    """

    __slots__ = ("_children",)

    def __init__(self, env: Environment, events: List[BaseEvent]):
        super().__init__(env)
        if not events:
            raise SimulationError("AnyOf requires at least one event")
        self._children: list = []
        for index, event in enumerate(events):
            callback = self._make_child_callback(index)
            self._children.append((event, callback))
            event.add_callback(callback)

    def _make_child_callback(self, index: int):
        def _on_child(event: BaseEvent) -> None:
            if self._triggered:
                return
            if not event._ok:
                self.fail(event.value)
            else:
                self.succeed((index, event.value))
            self._detach_losers(event)

        return _on_child

    def _detach_losers(self, winner: BaseEvent) -> None:
        children, self._children = self._children, []
        for child, callback in children:
            if child is winner:
                continue
            callbacks = child._callbacks
            if callbacks is not None:
                try:
                    callbacks.remove(callback)
                except ValueError:
                    pass


class _ResourceGrant(BaseEvent):
    """The event returned by :meth:`Resource.request`.

    Knows its resource so an interrupted waiter can cancel the request:
    a queued grant removes itself from the wait queue; a granted-but-not-
    yet-collected grant returns its unit.  Without cancellation the unit
    would be handed to a waiter that no longer exists, permanently
    shrinking the resource and deadlocking everyone behind it.
    """

    __slots__ = ("resource",)

    def __init__(self, env: Environment, resource: "Resource"):
        super().__init__(env)
        self.resource = resource

    def _abandon(self) -> None:
        if self._triggered:
            # The unit was granted but the waiter vanished before
            # collecting it: hand it back (or straight to the next waiter).
            self.resource.release()
        else:
            try:
                self.resource._waiters.remove(self)
            except ValueError:
                pass


class Resource:
    """A counted resource with a FIFO wait queue.

    ``request()`` returns an event that fires once a unit is granted; the
    holder must later call ``release()``.  The convenience generator
    :meth:`acquire` wraps request/hold/release when used with
    ``yield from``.
    """

    def __init__(self, env: Environment, capacity: int, name: str = "resource"):
        if capacity < 1:
            raise SimulationError("Resource capacity must be >= 1")
        self.env = env
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiters: deque[_ResourceGrant] = deque()

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def available(self) -> int:
        return self.capacity - self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    def request(self) -> BaseEvent:
        grant = _ResourceGrant(self.env, self)
        if self._in_use < self.capacity:
            self._in_use += 1
            grant.succeed(self)
        else:
            self._waiters.append(grant)
        return grant

    def release(self) -> None:
        if self._in_use <= 0:
            raise SimulationError(f"release() on idle resource {self.name!r}")
        if self._waiters:
            grant = self._waiters.popleft()
            grant.succeed(self)  # hand the unit straight to the next waiter
        else:
            self._in_use -= 1

    def acquire(self, hold: float):
        """``yield from`` helper: wait for a unit, hold it, release it."""
        yield self.request()
        try:
            yield self.env.timeout(hold)
        finally:
            self.release()


class Store:
    """An unbounded (or bounded) FIFO of items between processes."""

    def __init__(self, env: Environment, capacity: Optional[int] = None,
                 name: str = "store"):
        self.env = env
        self.capacity = capacity
        self.name = name
        self._items: deque[Any] = deque()
        self._getters: deque[BaseEvent] = deque()
        self._putters: deque[tuple[BaseEvent, Any]] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> Iterable[Any]:
        return tuple(self._items)

    def put(self, item: Any) -> BaseEvent:
        done = BaseEvent(self.env)
        if self._getters:
            getter = self._getters.popleft()
            getter.succeed(item)
            done.succeed()
        elif self.capacity is None or len(self._items) < self.capacity:
            self._items.append(item)
            done.succeed()
        else:
            self._putters.append((done, item))
        return done

    def get(self) -> BaseEvent:
        got = BaseEvent(self.env)
        if self._items:
            got.succeed(self._items.popleft())
            if self._putters:
                done, item = self._putters.popleft()
                self._items.append(item)
                done.succeed()
        else:
            self._getters.append(got)
        return got

    def try_get(self) -> Optional[Any]:
        """Non-blocking get; returns None when empty."""
        if not self._items:
            return None
        item = self._items.popleft()
        if self._putters:
            done, queued = self._putters.popleft()
            self._items.append(queued)
            done.succeed()
        return item


class Pipe:
    """A serialized byte stream with finite bandwidth and fixed latency.

    Models a point-to-point interconnect link: transfers are serialized on
    the sender side at ``bandwidth_bytes_per_ns`` and each transfer incurs
    ``latency_ns`` propagation delay after its last byte is on the wire.
    The completion event fires when the payload has fully arrived at the
    receiver.
    """

    def __init__(self, env: Environment, bandwidth_bytes_per_ns: float,
                 latency_ns: float = 0.0, name: str = "pipe"):
        if bandwidth_bytes_per_ns <= 0:
            raise SimulationError("Pipe bandwidth must be positive")
        if latency_ns < 0:
            raise SimulationError("Pipe latency must be >= 0")
        self.env = env
        self.bandwidth = bandwidth_bytes_per_ns
        self.latency = latency_ns
        self.name = name
        #: (src_gpu_id, dst_gpu_id) when wired by a topology; lets the
        #: fault injector target transient stalls at this link.
        self.endpoints: Optional[tuple[int, int]] = None
        #: healthy (pre-fault-degradation) parameters; the topology
        #: overwrites these when wiring under a fault plan so resilience
        #: monitors can compare observed service against the *intended*
        #: link model rather than the degraded one.
        self.nominal_bandwidth = bandwidth_bytes_per_ns
        self.nominal_latency_ns = latency_ns
        self._wire_free_at = 0.0
        self.bytes_sent = 0
        self.busy_time = 0.0
        self.stall_time = 0.0
        # Obs counter keys, built once: transfer() runs per chunk-quantum
        # and an f-string per call is measurable at that rate.
        self._obs_key_bytes = f"{name}.bytes"
        self._obs_key_stall = f"{name}.stall_ns"

    def transfer(self, nbytes: float) -> BaseEvent:
        """Start a transfer; returns an event firing on arrival.

        The passive seams (faults / obs / trace) are resolved once into
        locals; a run with none attached pays three ``is None`` checks
        and nothing else.
        """
        if nbytes < 0:
            raise SimulationError("cannot transfer negative bytes")
        env = self.env
        now = env._now
        endpoints = self.endpoints
        start = now if now >= self._wire_free_at else self._wire_free_at
        faults = env.faults
        stall = 0.0
        if (faults is not None and endpoints is not None
                and faults.has_link_faults):
            stall = faults.transfer_stall(endpoints[0], endpoints[1], now)
            if stall:
                start += stall
                self.stall_time += stall
        serialization = nbytes / self.bandwidth
        self._wire_free_at = start + serialization
        self.bytes_sent += nbytes
        self.busy_time += serialization
        resilience = env.resilience
        if resilience is not None and endpoints is not None:
            # Passive link-health feed: service time excluding queueing
            # (contention is not degradation) vs the nominal link model.
            resilience.observe_link_service(
                endpoints[0], endpoints[1],
                observed_ns=stall + serialization + self.latency,
                expected_ns=(self.nominal_latency_ns
                             + nbytes / self.nominal_bandwidth))
        obs = env.obs
        if obs is not None:
            src = endpoints[0] if endpoints is not None else -1
            scope = obs.scope(src, "link")
            scope.span(self.name, start, start + serialization)
            scope.count(self._obs_key_bytes, nbytes)
            if stall:
                scope.count(self._obs_key_stall, stall)
        trace = env.trace
        if trace is not None:
            trace.span(
                name=f"{nbytes / 1024:.0f}KiB", category="link",
                start_ns=start, end_ns=start + serialization,
                track=self.name, group="interconnect",
                args={"bytes": nbytes})
        done = BaseEvent(env)
        done.succeed(nbytes, delay=(start - now) + serialization + self.latency)
        return done

    def utilization(self, elapsed_ns: float) -> float:
        """Fraction of ``elapsed_ns`` the wire was busy."""
        if elapsed_ns <= 0:
            return 0.0
        return min(1.0, self.busy_time / elapsed_ns)
