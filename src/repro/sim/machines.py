"""Building blocks for event-driven callback state machines.

The model layer originally expressed pipelined work (operand reads → CU
reduction → link transfer → remote writes) as generator *processes*.  A
process costs a boot event, a generator frame, an ``AllOf`` composite
plus one closure per awaited sub-event, and a generator resume per
firing — the machinery PR 5's profile showed dominating the hot path
once the DRAM channels had been converted.

A :class:`CallbackMachine` replaces all of that with one recycled
object: the machine *is* an event, and re-arms itself on the schedule
for every stage boundary.  The conversion contract is **slot parity**:
each boundary is armed at exactly the point in the event order where
the generator version's event (boot, ``AllOf`` completion, process
completion) was scheduled, so the firing order — and therefore every
queue length any arbitration policy observes — is bit-identical to the
process version.  ``scripts/smoke_engine.py`` and the golden results
files enforce this.
"""

from __future__ import annotations

from repro.sim.engine import BaseEvent, Environment, SimulationError


class CallbackMachine(BaseEvent):
    """An event that re-arms itself: the chassis of a state machine.

    Subclasses implement ``_advance(event)`` — the single callback fired
    at every self-armed stage boundary — and call :meth:`_arm` to
    schedule the next boundary (``delay=0`` lands in the engine's
    same-time FIFO lane, elsewhere the heap).  A machine sleeps at most
    once at a time; re-arming while pending is a bug and raises.
    """

    __slots__ = ()

    def __init__(self, env: Environment):
        self.env = env
        self._callbacks = None
        self._value = None
        self._ok = True
        self._triggered = False
        self._fired = False

    def start(self) -> None:
        """Boot the machine: the slot a generator process booted in."""
        self._arm()

    def _arm(self, delay: float = 0.0) -> None:
        if self._callbacks is not None:
            raise SimulationError(
                f"{type(self).__name__} re-armed while pending")
        self._callbacks = [self._advance]
        self._triggered = True
        self._fired = False
        # Inlined Environment.schedule() zero-delay fast path.
        if delay == 0.0:
            self.env._now_q.append(self)
        else:
            self.env.schedule(self, delay)

    def _advance(self, event: BaseEvent) -> None:  # pragma: no cover
        raise NotImplementedError


class CompletionGroup(BaseEvent):
    """Counting barrier over a batch of callback machines.

    The event-driven replacement for ``AllOf`` over *processes*: each
    machine reports in (at the slot its process-completion event used to
    occupy) via :meth:`done_one`, and the group fires once all have —
    the same slot the composite's completion event used.  The count may
    be topped up with :meth:`expect` while launching, as long as no
    started machine can have reported yet (they cannot before their boot
    event fires, so launch loops are safe).
    """

    __slots__ = ("_remaining",)

    def __init__(self, env: Environment, remaining: int = 0):
        super().__init__(env)
        self._remaining = remaining

    def expect(self, count: int = 1) -> None:
        self._remaining += count

    def done_one(self) -> None:
        self._remaining -= 1
        if not self._remaining:
            self.succeed()
