"""Discrete-event simulation kernel used by every substrate in this repo.

The engine is a small, self-contained cousin of SimPy: simulation
*processes* are Python generators that ``yield`` events (timeouts, manual
events, resource requests, other processes) and are resumed by the
:class:`~repro.sim.engine.Environment` when those events fire.

The paper evaluates T3 on a multi-GPU extension of Accel-Sim; this package
is the foundation of our Python substitute for that simulator (see
DESIGN.md section 2).
"""

from repro.sim.engine import Environment, Process, SimulationError
from repro.sim.primitives import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Pipe,
    Resource,
    Store,
    Timeout,
)
from repro.sim.stats import Counter, IntervalStats, TimeSeries, UtilizationTracker

__all__ = [
    "AllOf",
    "AnyOf",
    "Counter",
    "Environment",
    "Event",
    "Interrupt",
    "IntervalStats",
    "Pipe",
    "Process",
    "Resource",
    "SimulationError",
    "Store",
    "TimeSeries",
    "Timeout",
    "UtilizationTracker",
]
