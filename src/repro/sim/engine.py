"""Core discrete-event engine: the event loop and process machinery.

Simulation time is a ``float`` in *nanoseconds* throughout this repository
(see :mod:`repro.units`).  Events scheduled at the same timestamp are fired
in FIFO order of scheduling, which keeps runs deterministic.

Two schedulers implement that contract:

* ``"optimized"`` (the default) — the hot path.  ``run()`` inlines the
  pop/fire/resume cycle into a single loop with localized references,
  batches same-timestamp firings without re-entering the dispatcher, and
  pre-resolves the watchdog checks so an unbounded run pays nothing for
  limits it did not configure.
* ``"legacy"`` — the reference implementation: a plain loop over
  :meth:`Environment.step`, preserved verbatim so the optimized path can
  be proven *bit-identical* against it (``scripts/smoke_engine.py`` and
  the hypothesis equivalence suite assert identical events fired, final
  times, and results on both).

Both schedulers share one event representation and one
:meth:`Environment.schedule` ordering rule — a heap of ``(time, seq,
event)`` with a monotonically increasing ``seq`` as the FIFO tie-break,
fronted by a plain FIFO deque for events landing at the *current*
timestamp — so their firing order is equal by construction; the gates
exist to keep it that way mechanically.

The deque fast path is safe because of a structural invariant: any heap
entry at time ``T`` was pushed *before* the clock reached ``T`` (time
only moves forward), so it always precedes — in seq order — every
zero-delay event scheduled once the clock arrived at ``T``.  Draining
same-time heap entries first, then the deque, reproduces exactly the
order the single heap produced, while ~70% of all events (zero-delay
wakes, completions, boots) skip tuple construction and heap
percolation entirely.
"""

from __future__ import annotations

import os
import weakref
from collections import deque
from heapq import heappop, heappush
from typing import Any, Callable, Generator, Iterable, Optional

#: the two event-loop implementations (see module docstring).
SCHEDULERS = ("optimized", "legacy")

_default_scheduler = os.environ.get("REPRO_T3_SCHEDULER", "optimized")
if _default_scheduler not in SCHEDULERS:  # pragma: no cover - env guard
    raise RuntimeError(
        f"REPRO_T3_SCHEDULER={_default_scheduler!r} is not one of "
        f"{SCHEDULERS}")

# Resolved lazily to avoid a circular import (primitives imports engine).
_Timeout = None
_AllOf = None
_AnyOf = None


def default_scheduler() -> str:
    """The scheduler new :class:`Environment` instances use."""
    return _default_scheduler


def set_default_scheduler(name: str) -> str:
    """Set the process-wide default scheduler; returns the previous one.

    The smoke gate and the equivalence tests flip this around otherwise
    identical runs to prove the optimized loop transparent.
    """
    global _default_scheduler
    if name not in SCHEDULERS:
        raise ValueError(f"unknown scheduler {name!r}; pick from {SCHEDULERS}")
    previous = _default_scheduler
    _default_scheduler = name
    return previous


class SimulationError(RuntimeError):
    """Raised for illegal uses of the engine (double triggers, deadlock...)."""


class BaseEvent:
    """An occurrence at a point in simulated time.

    Callbacks attached via :meth:`add_callback` run when the event fires.
    Events carry a ``value`` that is delivered to any process yielding on
    them; if the value is an exception instance flagged via :meth:`fail`,
    it is *thrown* into the waiting process instead.

    ``_callbacks`` is ``None`` once the event has fired — the sentinel
    doubles as the "late subscription" signal and saves a list swap on
    every firing.
    """

    __slots__ = ("env", "_callbacks", "_value", "_ok", "_triggered", "_fired",
                 "__weakref__")

    def __init__(self, env: "Environment"):
        self.env = env
        self._callbacks: Optional[list] = []
        self._value: Any = None
        self._ok = True
        self._triggered = False
        self._fired = False

    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire."""
        return self._triggered

    @property
    def fired(self) -> bool:
        """True once callbacks have run."""
        return self._fired

    @property
    def value(self) -> Any:
        return self._value

    @property
    def ok(self) -> bool:
        return self._ok

    def add_callback(self, fn: Callable[["BaseEvent"], None]) -> None:
        callbacks = self._callbacks
        if callbacks is None:
            # Late subscription: run immediately (still at current sim time).
            fn(self)
            return
        callbacks.append(fn)

    def succeed(self, value: Any = None, delay: float = 0.0) -> "BaseEvent":
        """Trigger the event successfully, delivering ``value``."""
        if self._triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        self._triggered = True
        self._value = value
        env = self.env
        if delay == 0.0:
            # Inlined Environment.schedule() zero-delay fast path: the
            # completion lands at the current timestamp, behind every
            # same-time event already pending (FIFO).
            env._now_q.append(self)
        else:
            env.schedule(self, delay)
        return self

    def fail(self, exc: BaseException, delay: float = 0.0) -> "BaseEvent":
        """Trigger the event as a failure; waiters get ``exc`` thrown."""
        if self._triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exc, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._triggered = True
        self._value = exc
        self._ok = False
        self.env.schedule(self, delay)
        return self

    def _fire(self) -> None:
        self._fired = True
        callbacks = self._callbacks
        self._callbacks = None
        if callbacks:
            for fn in callbacks:
                fn(self)

    def _abandon(self) -> None:
        """Hook: the last waiter detached before the event fired.

        :meth:`Process.interrupt` calls this when removing its resume
        callback leaves the event without subscribers, so stateful events
        (queued resource grants) can cancel themselves instead of leaking.
        The base event has no state to reclaim.
        """

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "fired" if self._fired else ("triggered" if self._triggered else "pending")
        return f"<{type(self).__name__} {state} at t={self.env.now:.1f}>"


class Process(BaseEvent):
    """A running simulation coroutine.

    A process is itself an event: it fires (with the generator's return
    value) when the generator finishes, so processes can wait on each other
    simply by yielding the other process.
    """

    __slots__ = ("_generator", "_send", "_throw", "_waiting_on", "name")

    def __init__(self, env: "Environment", generator: Generator, name: str = ""):
        super().__init__(env)
        self._generator = generator
        # Bound methods cached once: the resume path runs per fired event.
        self._send = generator.send
        self._throw = generator.throw
        self.name = name or getattr(generator, "__name__", "process")
        env._live_processes.add(self)
        # Kick off on the next event-loop iteration at the current time.
        # The boot event is tracked as _waiting_on so interrupt() can
        # detach from it — a just-created process would otherwise be
        # resumed normally *and* thrown Interrupt (double-step bug).
        boot = BaseEvent(env)
        boot._callbacks.append(self._resume)
        boot.succeed()
        self._waiting_on: Optional[BaseEvent] = boot

    @property
    def is_alive(self) -> bool:
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`~repro.sim.primitives.Interrupt` into the process."""
        from repro.sim.primitives import Interrupt

        if self._triggered:
            return
        target = self._waiting_on
        if target is not None:
            # Detach from whatever we were waiting on (including the boot
            # event of a never-resumed process).
            callbacks = target._callbacks
            if callbacks is not None:
                try:
                    callbacks.remove(self._resume)
                except ValueError:
                    pass
                if not callbacks and not target._fired:
                    # Nobody is listening any more: let stateful events
                    # (queued resource grants) cancel themselves.
                    target._abandon()
            self._waiting_on = None
        kick = BaseEvent(self.env)
        kick._callbacks.append(lambda ev: self._step(throw=Interrupt(cause)))
        kick.succeed()

    def _resume(self, event: BaseEvent) -> None:
        # The merged resume/step fast path: one call per fired event.
        # Mirrors _step(); keep the two in lockstep.
        self._waiting_on = None
        if self._triggered:
            return
        try:
            if event._ok:
                target = self._send(event._value)
            else:
                target = self._throw(event._value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:
            if self._callbacks:
                self.fail(exc)
                return
            raise
        if not isinstance(target, BaseEvent):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}; processes must "
                "yield events (Timeout, Event, Process, resource requests...)"
            )
        callbacks = target._callbacks
        if callbacks is None:
            # Already fired: resume immediately (late subscription).
            self._resume(target)
            return
        self._waiting_on = target
        callbacks.append(self._resume)

    def _step(self, send: Any = None, throw: Optional[BaseException] = None) -> None:
        if self._triggered:
            return
        try:
            if throw is not None:
                target = self._generator.throw(throw)
            else:
                target = self._generator.send(send)
        except StopIteration as stop:
            self.succeed(getattr(stop, "value", None))
            return
        except BaseException as exc:
            if self._callbacks:
                self.fail(exc)
                return
            raise
        if not isinstance(target, BaseEvent):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}; processes must "
                "yield events (Timeout, Event, Process, resource requests...)"
            )
        self._waiting_on = target
        target.add_callback(self._resume)


class Environment:
    """The simulation clock plus the pending-event heap."""

    def __init__(self, initial_time: float = 0.0,
                 scheduler: Optional[str] = None):
        self._now = float(initial_time)
        self._heap: list[tuple[float, int, BaseEvent]] = []
        #: events scheduled at exactly the current timestamp — the
        #: array-backed fast lane of the schedule (see module docstring).
        self._now_q: deque[BaseEvent] = deque()
        self._seq = 0
        if scheduler is None:
            scheduler = _default_scheduler
        elif scheduler not in SCHEDULERS:
            raise SimulationError(
                f"unknown scheduler {scheduler!r}; pick from {SCHEDULERS}")
        #: which event loop run() uses; see the module docstring.
        self.scheduler = scheduler
        self.active_processes = 0
        #: optional repro.analysis.trace.TraceRecorder; components record
        #: execution spans into it when set.
        self.trace = None
        #: optional repro.faults.FaultInjector; components consult it at
        #: their injection seams when set.
        self.faults = None
        #: optional repro.faults.InvariantChecker; components report
        #: observations into it when set.
        self.invariants = None
        #: optional repro.obs.MetricsRegistry; components publish
        #: counters/gauges/spans into it when set.  Recording is passive
        #: (never schedules events), so simulation results are identical
        #: with the registry attached or absent.
        self.obs = None
        #: optional repro.resilience.ResilienceRuntime; components report
        #: progress into it and it may schedule deadline timers — but only
        #: once a fault has actually manifested (armed), so healthy runs
        #: stay bit-identical with the runtime attached or absent.
        self.resilience = None
        #: optional repro.policy.OverlapPolicy; components consult it at
        #: their overlap decision points when set (resolved lazily from
        #: SystemConfig.policy by the memory controller).  When None,
        #: components take their built-in static paths unchanged.
        self.overlap = None
        #: watchdog limits (None = unbounded); see configure_watchdog.
        self.max_events: Optional[int] = None
        self.max_sim_ns: Optional[float] = None
        #: events fired so far (the watchdog's progress measure).
        self.events_fired = 0
        self._diagnostics: list[Callable[[], str]] = []
        self._live_processes: "weakref.WeakSet[Process]" = weakref.WeakSet()

    @property
    def now(self) -> float:
        """Current simulated time in nanoseconds."""
        return self._now

    # -- construction helpers -------------------------------------------------

    def event(self) -> BaseEvent:
        return BaseEvent(self)

    def timeout(self, delay: float, value: Any = None) -> BaseEvent:
        global _Timeout
        if _Timeout is None:
            from repro.sim.primitives import Timeout as _Timeout_cls
            _Timeout = _Timeout_cls
        return _Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[BaseEvent]) -> BaseEvent:
        global _AllOf
        if _AllOf is None:
            from repro.sim.primitives import AllOf as _AllOf_cls
            _AllOf = _AllOf_cls
        return _AllOf(self, list(events))

    def any_of(self, events: Iterable[BaseEvent]) -> BaseEvent:
        global _AnyOf
        if _AnyOf is None:
            from repro.sim.primitives import AnyOf as _AnyOf_cls
            _AnyOf = _AnyOf_cls
        return _AnyOf(self, list(events))

    # -- scheduling & the main loop -------------------------------------------

    def schedule(self, event: BaseEvent, delay: float = 0.0) -> None:
        """The single scheduling seam: everything that puts an event on
        the calendar — ``succeed``/``fail``, ``Timeout`` construction,
        process boots, timers — lands here.

        Zero-delay events (and delays small enough to round to the
        current float timestamp) go to the FIFO ``_now_q``; genuinely
        future events go to the ``(time, seq, event)`` heap.  See the
        module docstring for why this preserves the single-heap firing
        order exactly.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule an event {delay} ns in the past")
        when = self._now + delay
        if when == self._now:
            self._now_q.append(event)
        else:
            self._seq += 1
            heappush(self._heap, (when, self._seq, event))

    # Backward-compatible private alias (pre-rewrite call sites/tests).
    _schedule = schedule

    def peek(self) -> float:
        """Time of the next scheduled event, or ``float('inf')``."""
        if self._now_q:
            # Same-time heap entries (if any) fire first, but they carry
            # the same timestamp, so the peeked time is identical.
            return self._now
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> None:
        """Fire the single next event (watchdog limits enforced here)."""
        heap = self._heap
        if heap and heap[0][0] <= self._now:
            # Same-time heap entries predate (seq-wise) everything in the
            # now-queue: they were pushed before the clock reached now.
            event = heappop(heap)[2]
        elif self._now_q:
            event = self._now_q.popleft()
        elif heap:
            when, _seq, event = heappop(heap)
            self._now = when
        else:
            raise SimulationError("step() on an empty schedule")
        when = self._now
        self.events_fired += 1
        if self.max_events is not None and self.events_fired > self.max_events:
            raise SimulationError(
                f"watchdog: {self.events_fired} events fired without the "
                f"simulation finishing (limit {self.max_events})\n"
                + self.diagnostic_dump())
        if self.max_sim_ns is not None and when > self.max_sim_ns:
            raise SimulationError(
                f"watchdog: simulated time reached {when:.1f} ns "
                f"(limit {self.max_sim_ns:.1f} ns)\n" + self.diagnostic_dump())
        event._fire()

    def call_later(self, delay: float,
                   fn: Callable[["BaseEvent"], None]) -> BaseEvent:
        """Schedule ``fn`` to run once, ``delay`` ns from now.

        A deadline timer: the resilience runtime arms these against DMA
        completions so a lost notification is noticed and re-issued
        instead of draining the schedule into a watchdog hang.  Returns
        the timer event (``fn`` receives it when it fires).
        """
        timer = BaseEvent(self)
        timer._callbacks.append(fn)
        timer.succeed(delay=delay)
        return timer

    # -- watchdog & diagnostics ------------------------------------------------

    def configure_watchdog(self, max_events: Optional[int] = None,
                           max_sim_ns: Optional[float] = None) -> None:
        """Bound the run: exceeding either limit raises
        :class:`SimulationError` carrying :meth:`diagnostic_dump`, turning
        a hung event loop into a diagnosable failure."""
        if max_events is not None and max_events < 1:
            raise SimulationError("watchdog max_events must be >= 1")
        if max_sim_ns is not None and max_sim_ns <= 0:
            raise SimulationError("watchdog max_sim_ns must be positive")
        self.max_events = max_events
        self.max_sim_ns = max_sim_ns

    def add_diagnostic(self, fn: Callable[[], str]) -> None:
        """Register a component state reporter for the diagnostic dump."""
        self._diagnostics.append(fn)

    def diagnostic_dump(self, max_pending: int = 10) -> str:
        """Multi-line snapshot of engine + component state for hang triage:
        pending events, blocked processes, then every registered component
        diagnostic (tracker occupancy, queue depths, ...)."""
        pending = len(self._heap) + len(self._now_q)
        lines = [
            "--- simulation diagnostic dump ---",
            f"sim time: {self._now:.1f} ns; events fired: "
            f"{self.events_fired}; pending events: {pending}",
        ]
        shown = 0
        for event in list(self._now_q)[:max_pending]:
            name = getattr(event, "name", type(event).__name__)
            lines.append(f"  pending t={self._now:.1f} (now-queue) {name}")
            shown += 1
        for when, seq, event in sorted(self._heap)[:max_pending - shown]:
            name = getattr(event, "name", type(event).__name__)
            lines.append(f"  pending t={when:.1f} #{seq} {name}")
            shown += 1
        if pending > shown:
            lines.append(f"  ... and {pending - shown} more")
        blocked = sorted(
            (p.name for p in self._live_processes if p.is_alive))
        lines.append(f"unfinished processes: {len(blocked)}")
        for name in blocked[:max_pending]:
            lines.append(f"  blocked {name}")
        if len(blocked) > max_pending:
            lines.append(f"  ... and {len(blocked) - max_pending} more")
        for fn in self._diagnostics:
            lines.append(fn())
        return "\n".join(lines)

    def run(self, until: Optional[float] = None) -> float:
        """Run until the schedule drains, or until simulated time ``until``.

        Returns the final simulation time.
        """
        if until is not None and until < self._now:
            raise SimulationError("run(until=...) target is in the past")
        if self.scheduler == "legacy":
            return self._run_legacy(until)
        if until is None and self.max_events is None and self.max_sim_ns is None:
            return self._run_fast()
        return self._run_bounded(until)

    def _run_fast(self) -> float:
        """The unbounded hot loop: no watchdog, no time limit.

        Pop/fire is inlined (no step() or _fire() calls per event) with
        the heap, the now-queue, heappop, and the fired counter
        localized.  Identical firing order to the legacy loop by
        construction: both consume the same dual-lane schedule through
        the same drain rule (same-time heap entries, then the now-queue,
        then advance the clock).
        """
        heap = self._heap
        now_q = self._now_q
        pop = heappop
        popleft = now_q.popleft
        fired = self.events_fired
        now = self._now
        try:
            while True:
                # 1. Heap entries at the current time: scheduled before
                #    the clock got here, so they precede the now-queue.
                while heap and heap[0][0] == now:
                    event = pop(heap)[2]
                    fired += 1
                    event._fired = True
                    callbacks = event._callbacks
                    event._callbacks = None
                    if callbacks:
                        for fn in callbacks:
                            fn(event)
                # 2. The now-queue (FIFO).  Firing these can only append
                #    to the now-queue or push *future* heap entries, so
                #    no same-time heap entry can appear mid-drain.
                while now_q:
                    event = popleft()
                    fired += 1
                    event._fired = True
                    callbacks = event._callbacks
                    event._callbacks = None
                    if callbacks:
                        for fn in callbacks:
                            fn(event)
                # 3. Advance the clock to the next future event.
                if not heap:
                    break
                when, _seq, event = pop(heap)
                self._now = now = when
                fired += 1
                event._fired = True
                callbacks = event._callbacks
                event._callbacks = None
                if callbacks:
                    for fn in callbacks:
                        fn(event)
        finally:
            self.events_fired = fired
            self._now = now
        return now

    def _run_bounded(self, until: Optional[float]) -> float:
        """The limited hot loop: honors ``until`` and the watchdog.

        Same inlined pop/fire cycle as :meth:`_run_fast`, with the limit
        checks of :meth:`step` performed per event (the counter is kept
        on ``self`` so a watchdog raise carries an accurate dump).
        """
        heap = self._heap
        now_q = self._now_q
        pop = heappop
        max_events = self.max_events
        max_sim_ns = self.max_sim_ns
        while heap or now_q:
            # Same drain rule as _run_fast (same-time heap entries, then
            # the now-queue, then advance), one event per iteration so
            # every firing passes the watchdog checks.
            if heap and heap[0][0] <= self._now:
                event = pop(heap)[2]
            elif now_q:
                event = now_q.popleft()
            else:
                when = heap[0][0]
                if until is not None and when > until:
                    self._now = until
                    return self._now
                when, _seq, event = pop(heap)
                self._now = when
            when = self._now
            self.events_fired += 1
            if max_events is not None and self.events_fired > max_events:
                raise SimulationError(
                    f"watchdog: {self.events_fired} events fired without the "
                    f"simulation finishing (limit {max_events})\n"
                    + self.diagnostic_dump())
            if max_sim_ns is not None and when > max_sim_ns:
                raise SimulationError(
                    f"watchdog: simulated time reached {when:.1f} ns "
                    f"(limit {max_sim_ns:.1f} ns)\n" + self.diagnostic_dump())
            event._fired = True
            callbacks = event._callbacks
            event._callbacks = None
            if callbacks:
                for fn in callbacks:
                    fn(event)
        if until is not None:
            self._now = until
        return self._now

    def _run_legacy(self, until: Optional[float]) -> float:
        """The reference loop: one :meth:`step` per event, with no
        inlining or localization.  Kept for the transparency gates."""
        while self._heap or self._now_q:
            when = self.peek()
            if until is not None and when > until:
                self._now = until
                return self._now
            self.step()
        if until is not None:
            self._now = until
        return self._now

    def run_until_process(self, process: Process) -> Any:
        """Run until ``process`` finishes; returns the process return value."""
        while not process.triggered:
            if not self._heap and not self._now_q:
                raise SimulationError(
                    f"deadlock: schedule drained but process {process.name!r} "
                    "never finished\n" + self.diagnostic_dump()
                )
            self.step()
        # Drain same-time callbacks so the process's own callbacks fire.
        while self._now_q or (self._heap and self._heap[0][0] <= self._now):
            self.step()
        if not process.ok:
            raise process.value
        return process.value
