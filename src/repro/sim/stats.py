"""Measurement helpers: time series, counters, utilization, interval stats.

Every figure in the paper's evaluation is ultimately a reduction over the
quantities recorded here (DRAM reads/writes over time for Fig. 17, access
breakdowns for Fig. 18, kernel intervals for Figs. 15/16...).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple


class TimeSeries:
    """Append-only ``(time, value)`` samples with binned aggregation."""

    def __init__(self, name: str = ""):
        self.name = name
        self.times: List[float] = []
        self.values: List[float] = []

    def record(self, time: float, value: float) -> None:
        if self.times and time < self.times[-1]:
            raise ValueError(
                f"time series {self.name!r} must be recorded in time order "
                f"({time} < {self.times[-1]})"
            )
        self.times.append(time)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.times)

    def total(self) -> float:
        return sum(self.values)

    def binned(self, bin_ns: float, start: Optional[float] = None,
               end: Optional[float] = None) -> Tuple[List[float], List[float]]:
        """Sum values into fixed-width time bins.

        Returns ``(bin_start_times, bin_sums)``.  Used to build the
        traffic-vs-time curves of Figure 17.
        """
        if bin_ns <= 0:
            raise ValueError("bin width must be positive")
        if not self.times:
            return [], []
        lo = self.times[0] if start is None else start
        hi = self.times[-1] if end is None else end
        if hi < lo:
            raise ValueError("end of binning window precedes its start")
        nbins = max(1, int(math.ceil((hi - lo) / bin_ns)) or 1)
        sums = [0.0] * nbins
        for t, v in zip(self.times, self.values):
            if t < lo or t > hi:
                continue
            idx = min(nbins - 1, int((t - lo) / bin_ns))
            sums[idx] += v
        starts = [lo + i * bin_ns for i in range(nbins)]
        return starts, sums


class Counter:
    """A named bag of monotonically-increasing counters."""

    def __init__(self):
        self._counts: Dict[str, float] = {}

    def add(self, key: str, amount: float = 1.0) -> None:
        self._counts[key] = self._counts.get(key, 0.0) + amount

    def get(self, key: str) -> float:
        return self._counts.get(key, 0.0)

    def as_dict(self) -> Dict[str, float]:
        return dict(self._counts)

    def total(self, prefix: str = "") -> float:
        return sum(v for k, v in self._counts.items() if k.startswith(prefix))


class UtilizationTracker:
    """Tracks busy time of a unit with possibly-overlapping busy intervals.

    Overlapping busy spans are merged, so utilization never exceeds 1.0.
    """

    def __init__(self):
        self._busy_until = 0.0
        self._busy_time = 0.0
        self._first_busy: Optional[float] = None

    def busy(self, start: float, duration: float) -> None:
        if duration < 0:
            raise ValueError("busy duration must be >= 0")
        if self._first_busy is None:
            self._first_busy = start
        end = start + duration
        effective_start = max(start, self._busy_until)
        if end > effective_start:
            self._busy_time += end - effective_start
        self._busy_until = max(self._busy_until, end)

    @property
    def busy_time(self) -> float:
        return self._busy_time

    def utilization(self, elapsed: float) -> float:
        if elapsed <= 0:
            return 0.0
        return min(1.0, self._busy_time / elapsed)


@dataclass
class IntervalStats:
    """Start/end bookkeeping for named phases (kernels, collective steps)."""

    intervals: Dict[str, List[Tuple[float, float]]] = field(default_factory=dict)
    _open: Dict[str, float] = field(default_factory=dict)

    def begin(self, name: str, time: float) -> None:
        if name in self._open:
            raise ValueError(f"interval {name!r} is already open")
        self._open[name] = time

    def end(self, name: str, time: float) -> None:
        if name not in self._open:
            raise ValueError(f"interval {name!r} was never opened")
        start = self._open.pop(name)
        if time < start:
            raise ValueError(f"interval {name!r} ends before it starts")
        self.intervals.setdefault(name, []).append((start, time))

    def duration(self, name: str) -> float:
        return sum(end - start for start, end in self.intervals.get(name, []))

    def span(self, name: str) -> Tuple[float, float]:
        """(first start, last end) across all occurrences of ``name``."""
        spans = self.intervals.get(name)
        if not spans:
            raise KeyError(name)
        return spans[0][0], spans[-1][1]


def geomean(values: Sequence[float]) -> float:
    """Geometric mean; the paper reports all aggregate speedups this way."""
    vals = list(values)
    if not vals:
        raise ValueError("geomean of empty sequence")
    if any(v <= 0 for v in vals):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def weighted_mean(values: Iterable[float], weights: Iterable[float]) -> float:
    pairs = list(zip(values, weights))
    if not pairs:
        raise ValueError("weighted_mean of empty sequence")
    wsum = sum(w for _, w in pairs)
    if wsum <= 0:
        raise ValueError("weights must sum to a positive value")
    return sum(v * w for v, w in pairs) / wsum
