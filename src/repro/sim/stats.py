"""Measurement helpers: time series, counters, utilization, interval stats.

Every figure in the paper's evaluation is ultimately a reduction over the
quantities recorded here (DRAM reads/writes over time for Fig. 17, access
breakdowns for Fig. 18, kernel intervals for Figs. 15/16...).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple


class TimeSeries:
    """Append-only ``(time, value)`` samples with binned aggregation."""

    def __init__(self, name: str = ""):
        self.name = name
        self.times: List[float] = []
        self.values: List[float] = []

    def record(self, time: float, value: float) -> None:
        if self.times and time < self.times[-1]:
            raise ValueError(
                f"time series {self.name!r} must be recorded in time order "
                f"({time} < {self.times[-1]})"
            )
        self.times.append(time)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.times)

    def total(self) -> float:
        return sum(self.values)

    def binned(self, bin_ns: float, start: Optional[float] = None,
               end: Optional[float] = None) -> Tuple[List[float], List[float]]:
        """Sum values into fixed-width time bins.

        Returns ``(bin_start_times, bin_sums)``.  Used to build the
        traffic-vs-time curves of Figure 17.
        """
        if bin_ns <= 0:
            raise ValueError("bin width must be positive")
        if not self.times:
            return [], []
        lo = self.times[0] if start is None else start
        hi = self.times[-1] if end is None else end
        if hi < lo:
            raise ValueError("end of binning window precedes its start")
        nbins = max(1, int(math.ceil((hi - lo) / bin_ns)) or 1)
        sums = [0.0] * nbins
        for t, v in zip(self.times, self.values):
            if t < lo or t > hi:
                continue
            idx = min(nbins - 1, int((t - lo) / bin_ns))
            sums[idx] += v
        starts = [lo + i * bin_ns for i in range(nbins)]
        return starts, sums


class Counter:
    """A named bag of monotonically-increasing counters."""

    def __init__(self):
        self._counts: Dict[str, float] = {}

    def add(self, key: str, amount: float = 1.0) -> None:
        self._counts[key] = self._counts.get(key, 0.0) + amount

    def get(self, key: str) -> float:
        return self._counts.get(key, 0.0)

    def as_dict(self) -> Dict[str, float]:
        return dict(self._counts)

    def total(self, prefix: str = "") -> float:
        return sum(v for k, v in self._counts.items() if k.startswith(prefix))


class UtilizationTracker:
    """Tracks busy time of a unit with possibly-overlapping busy intervals.

    Overlapping busy spans are merged, so utilization never exceeds 1.0.
    Spans may arrive in any time order: the tracker keeps a sorted list of
    disjoint merged intervals, with an O(1) fast path for the common
    in-order case.  (A previous version kept only a high-water mark, which
    silently discarded the non-overlapping part of any span that started
    before an already-recorded end — out-of-order reporters undercounted.)
    """

    def __init__(self):
        #: sorted, pairwise-disjoint ``[start, end]`` spans.
        self._intervals: List[List[float]] = []
        self._busy_time = 0.0
        self._first_busy: Optional[float] = None

    def busy(self, start: float, duration: float) -> None:
        if duration < 0:
            raise ValueError("busy duration must be >= 0")
        if self._first_busy is None or start < self._first_busy:
            self._first_busy = start
        end = start + duration
        intervals = self._intervals
        if not intervals:
            if end > start:
                intervals.append([start, end])
                self._busy_time += end - start
            return
        last = intervals[-1]
        if start >= last[1]:
            # In-order: the span begins at or after the latest recorded end.
            if end > start:
                intervals.append([start, end])
                self._busy_time += end - start
            return
        if start >= last[0]:
            # Overlaps only the most recent span: extend it.
            if end > last[1]:
                self._busy_time += end - last[1]
                last[1] = end
            return
        # Out-of-order: merge into the sorted disjoint list (rare, O(n)).
        # The busy-time delta is the span's length minus its overlap with
        # existing coverage; overlaps are computed against the original
        # span since existing intervals are pairwise disjoint.
        delta = end - start
        new_start, new_end = start, end
        keep: List[List[float]] = []
        for interval in intervals:
            if interval[1] < new_start or interval[0] > new_end:
                keep.append(interval)
                continue
            overlap = min(end, interval[1]) - max(start, interval[0])
            if overlap > 0:
                delta -= overlap
            if interval[0] < new_start:
                new_start = interval[0]
            if interval[1] > new_end:
                new_end = interval[1]
        index = 0
        while index < len(keep) and keep[index][0] < new_start:
            index += 1
        keep.insert(index, [new_start, new_end])
        self._intervals = keep
        self._busy_time += delta

    @property
    def busy_time(self) -> float:
        return self._busy_time

    def utilization(self, elapsed: float) -> float:
        if elapsed <= 0:
            return 0.0
        return min(1.0, self._busy_time / elapsed)


@dataclass
class IntervalStats:
    """Start/end bookkeeping for named phases (kernels, collective steps)."""

    intervals: Dict[str, List[Tuple[float, float]]] = field(default_factory=dict)
    _open: Dict[str, float] = field(default_factory=dict)

    def begin(self, name: str, time: float) -> None:
        if name in self._open:
            raise ValueError(f"interval {name!r} is already open")
        self._open[name] = time

    def end(self, name: str, time: float) -> None:
        if name not in self._open:
            raise ValueError(f"interval {name!r} was never opened")
        start = self._open.pop(name)
        if time < start:
            raise ValueError(f"interval {name!r} ends before it starts")
        self.intervals.setdefault(name, []).append((start, time))

    def duration(self, name: str) -> float:
        return sum(end - start for start, end in self.intervals.get(name, []))

    def span(self, name: str) -> Tuple[float, float]:
        """(first start, last end) across all occurrences of ``name``."""
        spans = self.intervals.get(name)
        if not spans:
            raise KeyError(name)
        return spans[0][0], spans[-1][1]


def geomean(values: Sequence[float]) -> float:
    """Geometric mean; the paper reports all aggregate speedups this way."""
    vals = list(values)
    if not vals:
        raise ValueError("geomean of empty sequence")
    if any(v <= 0 for v in vals):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def weighted_mean(values: Iterable[float], weights: Iterable[float]) -> float:
    pairs = list(zip(values, weights))
    if not pairs:
        raise ValueError("weighted_mean of empty sequence")
    wsum = sum(w for _, w in pairs)
    if wsum <= 0:
        raise ValueError("weights must sum to a positive value")
    return sum(v * w for v, w in pairs) / wsum
