"""Memory-controller arbitration between compute and communication streams.

Section 4.5 of the paper motivates three policies:

* **round-robin** (the strawman): alternate between streams, falling back
  to the other stream when the preferred one is empty.  Bursty
  communication traffic can fill DRAM queues and stall compute reads.
* **compute-priority** (naive fix): always drain compute first.  Still
  insufficient — communication requests issued while the compute stream
  was momentarily empty already occupy the DRAM queue when the next
  compute burst arrives.
* **MCA** (T3's policy): compute priority *plus* an occupancy gate — the
  communication stream only issues when DRAM-queue occupancy is below a
  threshold chosen from {5, 10, 30, unlimited} by the compute kernel's
  observed memory intensity — *plus* an anti-starvation timer.

Policies are small strategy objects; one instance is created per channel
so per-channel state (round-robin turn, starvation clock) stays local.
"""

from __future__ import annotations

from typing import Optional

from repro.config import MCAConfig
from repro.memory.request import Stream


class ArbiterState:
    """The view of one channel the policy decides on.

    Constructed once per arbitration decision on the simulator hot path,
    so it is a slotted plain class rather than a dataclass.
    """

    __slots__ = ("compute_waiting", "comm_waiting", "dram_occupancy",
                 "dram_capacity", "now")

    def __init__(self, compute_waiting: int, comm_waiting: int,
                 dram_occupancy: int, dram_capacity: int, now: float):
        self.compute_waiting = compute_waiting
        self.comm_waiting = comm_waiting
        self.dram_occupancy = dram_occupancy
        self.dram_capacity = dram_capacity
        self.now = now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ArbiterState(compute_waiting={self.compute_waiting}, "
                f"comm_waiting={self.comm_waiting}, "
                f"dram_occupancy={self.dram_occupancy}, "
                f"dram_capacity={self.dram_capacity}, now={self.now})")


class ArbitrationPolicy:
    """Strategy interface: pick the next stream to issue from."""

    name = "abstract"

    def choose(self, state: ArbiterState) -> Optional[Stream]:
        raise NotImplementedError

    def on_issue(self, stream: Stream, now: float) -> None:
        """Called after a request from ``stream`` is issued."""

    def calibrate(self, memory_intensity: float) -> None:
        """Called at producer-kernel stage boundaries with the kernel's
        observed fraction-of-peak DRAM demand.  Only MCA reacts."""


class RoundRobinPolicy(ArbitrationPolicy):
    """Alternate between streams; fall back when the turn's stream is empty."""

    name = "round-robin"

    def __init__(self) -> None:
        self._last: Optional[Stream] = None

    def choose(self, state: ArbiterState) -> Optional[Stream]:
        preferred = (
            Stream.COMPUTE if self._last is not Stream.COMPUTE else Stream.COMM
        )
        other = Stream.COMM if preferred is Stream.COMPUTE else Stream.COMPUTE
        for stream in (preferred, other):
            waiting = (
                state.compute_waiting if stream is Stream.COMPUTE
                else state.comm_waiting
            )
            if waiting > 0:
                return stream
        return None

    def on_issue(self, stream: Stream, now: float) -> None:
        self._last = stream


class ComputePriorityPolicy(ArbitrationPolicy):
    """Compute always wins; comm issues only when compute is empty."""

    name = "compute-priority"

    def choose(self, state: ArbiterState) -> Optional[Stream]:
        if state.compute_waiting > 0:
            return Stream.COMPUTE
        if state.comm_waiting > 0:
            return Stream.COMM
        return None


class MCAPolicy(ArbitrationPolicy):
    """T3's communication-aware arbitration (Section 4.5).

    Compute priority, an occupancy gate on the communication stream, and a
    starvation timer that force-issues comm if it has waited longer than
    ``starvation_limit_ns``.

    The *tunable* parts — the intensity -> threshold mapping and the
    occupancy-gate admission — are owned by the overlap-policy layer
    (:mod:`repro.policy`): this class keeps the structural arbitration
    (stream priority, starvation guard, issue bookkeeping) and delegates
    every threshold decision to the environment's
    :class:`~repro.policy.OverlapPolicy` through a per-channel
    :class:`~repro.policy.McaSite` handle.
    """

    name = "mca"

    def __init__(self, config: MCAConfig, overlap=None,
                 gpu_id: int = 0, channel_id: int = 0):
        self.config = config
        if overlap is None:
            # Direct construction (tests, standalone channels): the
            # paper's static policy, unattached to any environment.
            from repro.policy import StaticPaperPolicy
            overlap = StaticPaperPolicy()
        self.overlap = overlap
        self._site = overlap.register_mca_site(gpu_id, channel_id, config)
        self._last_comm_issue = 0.0
        self.calibrations: list[float] = []

    @property
    def threshold(self) -> Optional[int]:
        """The live occupancy threshold (may move mid-kernel under an
        adaptive overlap policy)."""
        return self._site.threshold

    def calibrate(self, memory_intensity: float) -> None:
        """Producer-kernel stage boundary: hand the observed memory
        intensity to the overlap policy, which retargets the threshold.

        Memory-hungry kernels get a small threshold (communication must
        leave DRAM queues nearly empty); compute-bound kernels allow more
        communication in flight.
        """
        if memory_intensity < 0:
            raise ValueError("memory intensity cannot be negative")
        self.calibrations.append(memory_intensity)
        self.overlap.on_calibration(self._site, memory_intensity)

    def choose(self, state: ArbiterState) -> Optional[Stream]:
        if state.compute_waiting > 0:
            # Starvation guard: a comm request that has waited too long
            # jumps ahead of compute once.
            if (
                state.comm_waiting > 0
                and state.now - self._last_comm_issue
                > self.config.starvation_limit_ns
            ):
                return Stream.COMM
            return Stream.COMPUTE
        if state.comm_waiting > 0 \
                and self.overlap.comm_admission(self._site, state):
            return Stream.COMM
        return None

    def on_issue(self, stream: Stream, now: float) -> None:
        if stream is Stream.COMM:
            self._last_comm_issue = now


def make_policy(name: str, mca_config: Optional[MCAConfig] = None,
                overlap=None, gpu_id: int = 0,
                channel_id: int = 0) -> ArbitrationPolicy:
    """Factory used by the memory controller ("one policy per channel").

    ``overlap`` / ``gpu_id`` / ``channel_id`` identify the MCA policy's
    decision site in the environment's overlap-policy layer; without
    them an unbound static policy serves the channel.
    """
    if name == "round-robin":
        return RoundRobinPolicy()
    if name == "compute-priority":
        return ComputePriorityPolicy()
    if name == "mca":
        if mca_config is None:
            raise ValueError("MCA policy needs an MCAConfig")
        return MCAPolicy(mca_config, overlap=overlap, gpu_id=gpu_id,
                         channel_id=channel_id)
    raise ValueError(f"unknown arbitration policy {name!r}")
