"""Analytic LLC (L2) residency model for GEMM input traffic.

The simulator does not replay per-cacheline accesses; instead this model
computes, per GEMM stage, how many bytes must come from DRAM:

* **A (activations)** is streamed: each tile row is read from DRAM once,
  when first touched.
* **B (weights)** is revisited by every stage that covers its columns.
  Revisits hit in the LLC with probability
  ``min(1, budget / working_set) ** llc_hit_exponent``, and only the first
  ``llc_reuse_window_stages`` revisits of a column can generate DRAM
  re-reads (beyond that, kernel-level blocking/prefetch is assumed to
  capture the reuse).
* The **budget** is the LLC share available to inputs.  In the baseline
  the GEMM's output writes are cached and evict inputs
  (``llc_input_fraction_cached_writes`` of the LLC remains); with T3 the
  output is uncached/bypassed for NMC, freeing the whole LLC
  (``llc_input_fraction_bypassed_writes``).  This is the mechanism behind
  the paper's 1.56x geomean GEMM-read reduction (Section 6.2).

Everything is deterministic and cheap, so experiments can sweep shapes
without running the event simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List

from repro.config import MemoryConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.gpu.wavefront import TileGrid


@dataclass(frozen=True)
class GEMMTraffic:
    """Per-stage DRAM traffic for one GEMM execution."""

    stage_read_bytes: tuple
    stage_write_bytes: tuple
    input_budget_bytes: float
    hit_probability: float

    @property
    def total_read_bytes(self) -> float:
        return sum(self.stage_read_bytes)

    @property
    def total_write_bytes(self) -> float:
        return sum(self.stage_write_bytes)

    @property
    def n_stages(self) -> int:
        return len(self.stage_read_bytes)


def input_budget(memory: MemoryConfig, bypass_writes: bool) -> float:
    """LLC bytes available to GEMM inputs under the write policy."""
    fraction = (
        memory.llc_input_fraction_bypassed_writes
        if bypass_writes
        else memory.llc_input_fraction_cached_writes
    )
    return memory.llc_bytes * fraction


def estimate_gemm_traffic(grid: "TileGrid", memory: MemoryConfig,
                          bypass_writes: bool) -> GEMMTraffic:
    """DRAM read/write bytes per stage for ``grid``'s GEMM.

    ``bypass_writes`` selects the T3 behaviour (uncached output for NMC).
    """
    shape = grid.shape
    kernel = grid.kernel
    a_row_bytes = kernel.macro_tile_m * shape.k * shape.element_bytes
    b_col_bytes = kernel.macro_tile_n * shape.k * shape.element_bytes
    # Cap at the true matrix sizes (edge tiles are smaller).
    a_total = shape.a_bytes
    b_total = shape.b_bytes

    budget = input_budget(memory, bypass_writes)
    # Working set a stage competes for: the whole B panel plus one stage's
    # strip of A.
    a_stage_typical = grid.stages[0].new_tile_rows * a_row_bytes if grid.stages else 0
    working_set = b_total + a_stage_typical
    hit = min(1.0, (budget / working_set)) ** memory.llc_hit_exponent if working_set else 1.0
    miss = 1.0 - hit
    window = memory.llc_reuse_window_stages

    col_visits: Dict[int, int] = {}
    a_bytes_emitted = 0.0
    b_first_emitted = 0.0
    reads: List[float] = []
    writes: List[float] = []

    for stage in grid.stages:
        # --- A: compulsory, streamed once.
        a_read = stage.new_tile_rows * a_row_bytes
        a_read = min(a_read, max(0.0, a_total - a_bytes_emitted))
        a_bytes_emitted += a_read

        # --- B: compulsory on first touch, probabilistic re-read after.
        b_read = 0.0
        for col_index in range(stage.touched_cols):
            # Stage coverage is contiguous in columns for row-major order;
            # we only need visit counts, not identities, when every stage
            # covers all columns.  When coverage is partial we treat the
            # touched columns as rotating, which is what row-major
            # enumeration produces.
            col = col_index if stage.touched_cols == grid.tiles_n else (
                (stage.index * stage.touched_cols + col_index) % grid.tiles_n
            )
            visits = col_visits.get(col, 0)
            if visits == 0:
                chunk = min(b_col_bytes, max(0.0, b_total - b_first_emitted))
                b_read += chunk
                b_first_emitted += chunk
            elif visits <= window:
                b_read += b_col_bytes * miss
            col_visits[col] = visits + 1

        reads.append(a_read + b_read)
        writes.append(float(stage.output_bytes))

    return GEMMTraffic(
        stage_read_bytes=tuple(reads),
        stage_write_bytes=tuple(writes),
        input_budget_bytes=budget,
        hit_probability=hit,
    )
