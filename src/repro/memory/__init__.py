"""Memory subsystem: HBM channels, memory-controller arbitration, LLC, NMC.

This package models the part of the GPU where T3's contention story plays
out (Sections 3.2.2, 4.3, 4.5):

* :mod:`repro.memory.request` — typed memory transactions on two streams
  (compute vs. communication).
* :mod:`repro.memory.dram` — HBM channels with CCDL-based service timing
  and the doubled CCDWL for near-memory op-and-store (NMC updates).
* :mod:`repro.memory.arbiter` — round-robin / compute-priority / MCA
  arbitration between the two streams.
* :mod:`repro.memory.controller` — per-GPU memory controller wiring the
  streams, channels, counters, and the T3 Tracker hook together.
* :mod:`repro.memory.cache` — analytic LLC residency model for GEMM input
  re-read traffic (with and without output-write bypass).
"""

from repro.memory.request import AccessKind, MemRequest, Stream
from repro.memory.arbiter import (
    ArbiterState,
    ComputePriorityPolicy,
    MCAPolicy,
    RoundRobinPolicy,
    make_policy,
)
from repro.memory.dram import HBMChannel
from repro.memory.controller import MemoryController
from repro.memory.cache import GEMMTraffic, estimate_gemm_traffic

__all__ = [
    "AccessKind",
    "ArbiterState",
    "ComputePriorityPolicy",
    "GEMMTraffic",
    "HBMChannel",
    "MCAPolicy",
    "MemoryController",
    "MemRequest",
    "RoundRobinPolicy",
    "Stream",
    "estimate_gemm_traffic",
    "make_policy",
]
