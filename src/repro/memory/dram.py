"""HBM channel model.

Each channel is a service center with:

* two *stream queues* (compute / communication) feeding it,
* a finite *DRAM queue* of issued-but-unserviced requests — the occupancy
  the MCA policy gates on (Section 4.5),
* FIFO service at the channel's share of HBM bandwidth, with NMC
  op-and-store (``UPDATE``) requests taking ``ccdwl_factor`` times longer
  (CCDWL = 2 x CCDL, Table 1 / Section 5.1.1).

Two coroutines run per channel: an *issue loop* that moves requests from
the stream queues into the DRAM queue under the arbitration policy, and a
*service loop* that drains the DRAM queue in order.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional

from repro.memory.arbiter import ArbiterState, ArbitrationPolicy
from repro.memory.request import AccessKind, MemRequest, Stream
from repro.sim.engine import BaseEvent, Environment


class HBMChannel:
    """One simulated HBM channel (see module docstring)."""

    def __init__(self, env: Environment, channel_id: int,
                 bandwidth_bytes_per_ns: float, queue_depth: int,
                 ccdwl_factor: float, policy: ArbitrationPolicy,
                 on_serviced: Optional[Callable[[MemRequest], None]] = None,
                 gpu_id: int = 0):
        if bandwidth_bytes_per_ns <= 0:
            raise ValueError("channel bandwidth must be positive")
        if queue_depth < 1:
            raise ValueError("DRAM queue depth must be >= 1")
        if ccdwl_factor < 1:
            raise ValueError("CCDWL factor must be >= 1 (it is a penalty)")
        self.env = env
        self.channel_id = channel_id
        self.gpu_id = gpu_id
        self.bandwidth = bandwidth_bytes_per_ns
        self.queue_depth = queue_depth
        self.ccdwl_factor = ccdwl_factor
        self.policy = policy
        self.on_serviced = on_serviced

        self._queues: dict[Stream, Deque[MemRequest]] = {
            Stream.COMPUTE: deque(),
            Stream.COMM: deque(),
        }
        self._dram_q: Deque[MemRequest] = deque()
        self._in_service = 0
        self._issue_wake: Optional[BaseEvent] = None
        self._service_wake: Optional[BaseEvent] = None
        self.busy_time = 0.0
        self.bytes_serviced = 0.0
        self.bytes_enqueued = 0.0

        env.process(self._issue_loop(), name=f"hbm{channel_id}.issue")
        env.process(self._service_loop(), name=f"hbm{channel_id}.service")

    # -- public API ---------------------------------------------------------

    def submit(self, request: MemRequest) -> None:
        request.attach(self.env)
        request.issued_at = self.env.now
        self.bytes_enqueued += request.nbytes
        self._queues[request.stream].append(request)
        self._wake_issue()

    @property
    def dram_occupancy(self) -> int:
        """Issued requests waiting at or being serviced by the DRAM."""
        return len(self._dram_q) + self._in_service

    def stream_backlog(self, stream: Stream) -> int:
        return len(self._queues[stream])

    @property
    def idle(self) -> bool:
        return (
            not self._dram_q
            and self._in_service == 0
            and not self._queues[Stream.COMPUTE]
            and not self._queues[Stream.COMM]
        )

    def service_time(self, request: MemRequest) -> float:
        base = request.nbytes / self.bandwidth
        if request.kind is AccessKind.UPDATE:
            return base * self.ccdwl_factor
        return base

    def utilization(self, elapsed_ns: float) -> float:
        if elapsed_ns <= 0:
            return 0.0
        return min(1.0, self.busy_time / elapsed_ns)

    # -- wake plumbing --------------------------------------------------------

    def _wake_issue(self) -> None:
        if self._issue_wake is not None and not self._issue_wake.triggered:
            self._issue_wake.succeed()

    def _wake_service(self) -> None:
        if self._service_wake is not None and not self._service_wake.triggered:
            self._service_wake.succeed()

    # -- coroutines -----------------------------------------------------------

    def _state(self) -> ArbiterState:
        return ArbiterState(
            compute_waiting=len(self._queues[Stream.COMPUTE]),
            comm_waiting=len(self._queues[Stream.COMM]),
            dram_occupancy=self.dram_occupancy,
            dram_capacity=self.queue_depth,
            now=self.env.now,
        )

    def _record_arbitration(self, state: Optional[ArbiterState],
                            choice: Optional[Stream]) -> None:
        """Publish one arbitration decision (obs enabled only).

        ``state is None`` means the DRAM queue was full — no policy
        consultation happened, every backlogged stream was deferred.
        """
        scope = self.env.obs.scope(self.gpu_id, "arbiter")
        threshold = getattr(self.policy, "threshold", None)
        gate = "inf" if threshold is None else str(threshold)
        if state is None:
            if self._queues[Stream.COMM]:
                scope.count("comm_deferrals.queue_full")
            if self._queues[Stream.COMPUTE]:
                scope.count("compute_deferrals.queue_full")
            return
        if choice is Stream.COMM:
            scope.count(f"comm_grants.t{gate}")
            if state.compute_waiting > 0:
                # Comm beat waiting compute: only the starvation guard
                # (or round-robin fairness) does that.
                scope.count("anti_starvation_fires")
        elif state.comm_waiting > 0:
            # A comm request was held back this round.
            if state.compute_waiting > 0:
                scope.count("comm_deferrals.compute_busy")
            else:
                scope.count(f"comm_deferrals.t{gate}")
        if choice is Stream.COMPUTE:
            scope.count("compute_grants")

    def _issue_loop(self):
        while True:
            choice: Optional[Stream] = None
            state: Optional[ArbiterState] = None
            if self.dram_occupancy < self.queue_depth:
                state = self._state()
                choice = self.policy.choose(state)
            if self.env.obs is not None:
                self._record_arbitration(state, choice)
            if choice is None:
                self._issue_wake = BaseEvent(self.env)
                yield self._issue_wake
                self._issue_wake = None
                continue
            request = self._queues[choice].popleft()
            self._dram_q.append(request)
            if self.env.obs is not None:
                self.env.obs.scope(self.gpu_id, "dram").gauge(
                    f"ch{self.channel_id}.occupancy").set(
                        self.env.now, self.dram_occupancy)
            self.policy.on_issue(choice, self.env.now)
            self._wake_service()
            # Yield a zero-timeout so issue/service interleave fairly and
            # occupancy is observed one request at a time.
            yield self.env.timeout(0)

    def _service_loop(self):
        while True:
            if not self._dram_q:
                self._service_wake = BaseEvent(self.env)
                yield self._service_wake
                self._service_wake = None
                continue
            request = self._dram_q.popleft()
            self._in_service = 1
            duration = self.service_time(request)
            yield self.env.timeout(duration)
            self._in_service = 0
            self.busy_time += duration
            if self.env.obs is not None:
                scope = self.env.obs.scope(self.gpu_id, "dram")
                now = self.env.now
                if request.kind is AccessKind.UPDATE:
                    scope.count("nmc_updates")
                elif request.kind is AccessKind.WRITE:
                    scope.count("writes")
                else:
                    scope.count("reads")
                scope.count(f"bytes.{request.stream.value}", request.nbytes)
                scope.observe(f"service_ns.{request.stream.value}", duration)
                if request.stream is Stream.COMM:
                    scope.span("comm_service", now - duration, now)
                scope.gauge(f"ch{self.channel_id}.occupancy").set(
                    now, self.dram_occupancy)
            trace = self.env.trace
            if trace is not None and trace.record_dram:
                trace.span(
                    name=request.counter_key, category="dram",
                    start_ns=self.env.now - duration, end_ns=self.env.now,
                    track=f"hbm.ch{self.channel_id}", group="memory",
                    args={"stream": request.stream.value,
                          "bytes": request.nbytes})
            self.bytes_serviced += request.nbytes
            request.serviced_at = self.env.now
            if request.done is not None:
                request.done.succeed(request)
            if self.on_serviced is not None:
                self.on_serviced(request)
            # Occupancy dropped: the issue loop may proceed.
            self._wake_issue()
