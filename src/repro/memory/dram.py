"""HBM channel model.

Each channel is a service center with:

* two *stream queues* (compute / communication) feeding it,
* a finite *DRAM queue* of issued-but-unserviced requests — the occupancy
  the MCA policy gates on (Section 4.5),
* FIFO service at the channel's share of HBM bandwidth, with NMC
  op-and-store (``UPDATE``) requests taking ``ccdwl_factor`` times longer
  (CCDWL = 2 x CCDL, Table 1 / Section 5.1.1).

Two event-driven state machines run per channel: an *issue machine* that
moves requests from the stream queues into the DRAM queue under the
arbitration policy, and a *service machine* that drains the DRAM queue in
order.  They are written as plain event callbacks rather than generator
processes: together they handle roughly half of all event firings in a
simulation, and a direct callback skips the generator-resume machinery
while scheduling exactly the same events in exactly the same order (one
wake per sleep, one zero-timeout per issue, one timed event per service).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional

from repro.memory.arbiter import ArbiterState, ArbitrationPolicy
from repro.memory.request import AccessKind, MemRequest, Stream
from repro.sim.engine import BaseEvent, Environment
from repro.sim.primitives import ReusableTimer


class HBMChannel:
    """One simulated HBM channel (see module docstring)."""

    def __init__(self, env: Environment, channel_id: int,
                 bandwidth_bytes_per_ns: float, queue_depth: int,
                 ccdwl_factor: float, policy: ArbitrationPolicy,
                 on_serviced: Optional[Callable[[MemRequest], None]] = None,
                 gpu_id: int = 0):
        if bandwidth_bytes_per_ns <= 0:
            raise ValueError("channel bandwidth must be positive")
        if queue_depth < 1:
            raise ValueError("DRAM queue depth must be >= 1")
        if ccdwl_factor < 1:
            raise ValueError("CCDWL factor must be >= 1 (it is a penalty)")
        self.env = env
        self.channel_id = channel_id
        self.gpu_id = gpu_id
        self.bandwidth = bandwidth_bytes_per_ns
        self.queue_depth = queue_depth
        self.ccdwl_factor = ccdwl_factor
        self.policy = policy
        self.on_serviced = on_serviced

        # One deque per stream as plain attributes: the issue loop touches
        # them every iteration and a Stream-keyed dict costs an enum hash
        # per access.
        self._q_compute: Deque[MemRequest] = deque()
        self._q_comm: Deque[MemRequest] = deque()
        self._dram_q: Deque[MemRequest] = deque()
        self._in_service = 0
        #: idle means: no tick scheduled, waiting to be woken.  The waker
        #: (submit / the peer machine) flips the flag and schedules a wake
        #: event, so a machine is woken at most once per sleep — the same
        #: protocol the former generator loops ran with wake events.
        self._issue_idle = True
        self._service_idle = True
        self._servicing: Optional[MemRequest] = None
        self._service_duration = 0.0
        # Recycled tick events: each machine sleeps at most once at a
        # time, so one timer object per wake/chain/service seam replaces
        # a fresh event allocation per tick (see ReusableTimer).
        self._issue_timer = ReusableTimer(env, self._issue_tick)
        self._service_wake = ReusableTimer(env, self._service_tick)
        self._service_timer = ReusableTimer(env, self._service_done)
        self.busy_time = 0.0
        self.bytes_serviced = 0.0
        self.bytes_enqueued = 0.0

        # Lazily-resolved obs handles (a channel lives in exactly one env,
        # whose registry is attached before the first event fires): the
        # occupancy gauge is touched once per issue *and* once per service,
        # and rebuilding scope + key strings there dominates obs overhead.
        self._occ_key = f"ch{channel_id}.occupancy"
        self._obs_occ_gauge = None
        self._obs_arb_scope = None
        self._gate_threshold: object = self  # sentinel: not yet resolved
        self._key_comm_grants = ""
        self._key_comm_deferrals = ""

    # -- public API ---------------------------------------------------------

    def submit(self, request: MemRequest) -> None:
        env = self.env
        request.attach(env)
        request.issued_at = env._now
        self.bytes_enqueued += request.nbytes
        if request.stream is Stream.COMM:
            self._q_comm.append(request)
        else:
            self._q_compute.append(request)
        if self._issue_idle:
            self._issue_idle = False
            self._issue_timer.arm()

    @property
    def dram_occupancy(self) -> int:
        """Issued requests waiting at or being serviced by the DRAM."""
        return len(self._dram_q) + self._in_service

    def stream_backlog(self, stream: Stream) -> int:
        return len(self._q_comm if stream is Stream.COMM else self._q_compute)

    @property
    def idle(self) -> bool:
        return (
            not self._dram_q
            and self._in_service == 0
            and not self._q_compute
            and not self._q_comm
        )

    def service_time(self, request: MemRequest) -> float:
        base = request.nbytes / self.bandwidth
        if request.kind is AccessKind.UPDATE:
            return base * self.ccdwl_factor
        return base

    def utilization(self, elapsed_ns: float) -> float:
        if elapsed_ns <= 0:
            return 0.0
        return min(1.0, self.busy_time / elapsed_ns)

    # -- event-driven state machines ------------------------------------------

    def _record_arbitration(self, state: Optional[ArbiterState],
                            choice: Optional[Stream]) -> None:
        """Publish one arbitration decision (obs enabled only).

        ``state is None`` means no policy consultation happened — the DRAM
        queue was full (every backlogged stream was deferred) or nothing
        was waiting at all.
        """
        scope = self._obs_arb_scope
        if scope is None:
            scope = self._obs_arb_scope = self.env.obs.scope(
                self.gpu_id, "arbiter")
        threshold = getattr(self.policy, "threshold", None)
        if threshold is not self._gate_threshold:
            # Threshold changes only on MCA calibration; rebuild the
            # gate-tagged counter keys then instead of per decision.
            self._gate_threshold = threshold
            gate = "inf" if threshold is None else str(threshold)
            self._key_comm_grants = f"comm_grants.t{gate}"
            self._key_comm_deferrals = f"comm_deferrals.t{gate}"
        if state is None:
            if self._q_comm:
                scope.count("comm_deferrals.queue_full")
            if self._q_compute:
                scope.count("compute_deferrals.queue_full")
            return
        if choice is Stream.COMM:
            scope.count(self._key_comm_grants)
            if state.compute_waiting > 0:
                # Comm beat waiting compute: only the starvation guard
                # (or round-robin fairness) does that.
                scope.count("anti_starvation_fires")
        elif state.comm_waiting > 0:
            # A comm request was held back this round.
            if state.compute_waiting > 0:
                scope.count("comm_deferrals.compute_busy")
            else:
                scope.count(self._key_comm_deferrals)
        if choice is Stream.COMPUTE:
            scope.count("compute_grants")

    def _issue_tick(self, _event: Optional[BaseEvent] = None) -> None:
        """One arbitration round: issue at most one request, then either
        chain a zero-timeout tick (so issue/service interleave fairly and
        occupancy is observed one request at a time) or go idle."""
        env = self.env
        q_compute = self._q_compute
        q_comm = self._q_comm
        dram_q = self._dram_q
        depth = self.queue_depth
        choice: Optional[Stream] = None
        state: Optional[ArbiterState] = None
        if (q_compute or q_comm) and len(dram_q) + self._in_service < depth:
            state = ArbiterState(
                len(q_compute), len(q_comm),
                len(dram_q) + self._in_service, depth, env._now)
            choice = self.policy.choose(state)
        if env.obs is not None:
            self._record_arbitration(state, choice)
        if choice is None:
            self._issue_idle = True
            return
        if choice is Stream.COMM:
            request = q_comm.popleft()
        else:
            request = q_compute.popleft()
        dram_q.append(request)
        if env.obs is not None:
            gauge = self._obs_occ_gauge
            if gauge is None:
                gauge = self._obs_occ_gauge = env.obs.scope(
                    self.gpu_id, "dram").gauge(self._occ_key)
            gauge.set(env._now, len(dram_q) + self._in_service)
        self.policy.on_issue(choice, env._now)
        if self._service_idle:
            self._service_idle = False
            self._service_wake.arm()
        self._issue_timer.arm()

    def _service_tick(self, _event: Optional[BaseEvent] = None) -> None:
        """Pull the next request into service, or go idle."""
        dram_q = self._dram_q
        if not dram_q:
            self._service_idle = True
            return
        request = dram_q.popleft()
        self._in_service = 1
        duration = request.nbytes / self.bandwidth
        if request.kind is AccessKind.UPDATE:
            duration = duration * self.ccdwl_factor
        self._servicing = request
        self._service_duration = duration
        self._service_timer.arm(duration)

    def _service_done(self, _event: BaseEvent) -> None:
        """Retire the request in service, then chain to the next one."""
        env = self.env
        dram_q = self._dram_q
        request = self._servicing
        duration = self._service_duration
        self._servicing = None
        self._in_service = 0
        self.busy_time += duration
        if env.obs is not None:
            scope = env.obs.scope(self.gpu_id, "dram")
            now = env._now
            if request.kind is AccessKind.UPDATE:
                scope.count("nmc_updates")
            elif request.kind is AccessKind.WRITE:
                scope.count("writes")
            else:
                scope.count("reads")
            # Key strings mirror Stream.value ("compute"/"comm") but
            # are spelled out: an enum ``.value`` read plus an f-string
            # per serviced request is measurable at this call rate.
            if request.stream is Stream.COMM:
                scope.count("bytes.comm", request.nbytes)
                scope.observe("service_ns.comm", duration)
                scope.span("comm_service", now - duration, now)
            else:
                scope.count("bytes.compute", request.nbytes)
                scope.observe("service_ns.compute", duration)
            gauge = self._obs_occ_gauge
            if gauge is None:
                gauge = self._obs_occ_gauge = scope.gauge(self._occ_key)
            gauge.set(now, len(dram_q) + self._in_service)
        trace = env.trace
        if trace is not None and trace.record_dram:
            args = {"stream": request.stream.value,
                    "bytes": request.nbytes}
            if request.chunk_id is not None:
                args["chunk"] = request.chunk_id
            trace.span(
                name=request.counter_key, category="dram",
                start_ns=env._now - duration, end_ns=env._now,
                track=f"gpu{self.gpu_id}.hbm.ch{self.channel_id}",
                group="memory", args=args)
        self.bytes_serviced += request.nbytes
        request.serviced_at = env._now
        done = request.done
        if done is not None:
            done.succeed(request)
        if self.on_serviced is not None:
            self.on_serviced(request)
        # Occupancy dropped: the issue machine may proceed — but only
        # wake it when it has backlog to issue.  A wake with both stream
        # queues empty would check, record nothing (even under obs: no
        # stream is waiting, so no deferral is counted) and go straight
        # back to sleep; skipping it removes roughly one dead event per
        # serviced request without changing any decision.
        if self._issue_idle and (self._q_compute or self._q_comm):
            self._issue_idle = False
            self._issue_timer.arm()
        self._service_tick()
