"""Per-GPU memory controller.

Responsibilities (Figure 8):

* split traffic across HBM channels (round-robin interleave per request),
* arbitrate the compute vs. communication streams (delegated to the
  per-channel :mod:`repro.memory.arbiter` policy),
* maintain traffic counters / timelines for the paper's accounting
  (Figures 17 and 18),
* notify the T3 Tracker of serviced writes/updates that carry WF metadata
  (the Tracker is checked "once the accesses are enqueued in the memory
  controller queue", Section 4.2.1 — we notify at service completion,
  which is equivalent for triggering order),
* provide stream-drain events (the communication stream is drained at
  producer-kernel boundaries, Section 4.5) and MCA calibration.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Iterable, List, Optional

from repro.config import SystemConfig
from repro.memory.arbiter import make_policy
from repro.policy import resolve_overlap_policy
from repro.memory.dram import HBMChannel
from repro.memory.request import AccessKind, MemRequest, Stream
from repro.sim.engine import BaseEvent, Environment
from repro.sim.stats import Counter, TimeSeries


class MemoryController:
    """Dual-stream memory controller over ``n_channels`` HBM channels."""

    def __init__(self, env: Environment, config: SystemConfig,
                 policy_name: str = "compute-priority", gpu_id: int = 0):
        self.env = env
        self.config = config
        self.gpu_id = gpu_id
        self.policy_name = policy_name
        self.counters = Counter()
        self.record_traffic = config.fidelity.record_traffic
        self.traffic: Dict[str, TimeSeries] = {}
        self._tracker_observers: List[Callable[[MemRequest], None]] = []
        # Outstanding counts and drain waiters live in plain attributes
        # (not Stream-keyed dicts): ``_on_serviced`` runs once per DRAM
        # transaction and enum hashing is measurable there.
        self._out_compute = 0
        self._out_comm = 0
        self._waiters_compute: List[BaseEvent] = []
        self._waiters_comm: List[BaseEvent] = []
        # One overlap policy per environment: building a controller is
        # what pulls the SystemConfig.policy selection into the run (the
        # DMA engines and trigger controllers consult the same instance
        # through env.overlap).
        overlap = resolve_overlap_policy(env, config)
        memory = config.memory
        self.channels = [
            HBMChannel(
                env,
                channel_id=i,
                bandwidth_bytes_per_ns=memory.channel_bandwidth,
                queue_depth=memory.dram_queue_depth,
                ccdwl_factor=memory.nmc_ccdwl_factor,
                policy=make_policy(policy_name, config.mca,
                                   overlap=overlap, gpu_id=gpu_id,
                                   channel_id=i),
                on_serviced=self._on_serviced,
                gpu_id=gpu_id,
            )
            for i in range(memory.n_channels)
        ]
        self._next_channel = 0
        env.add_diagnostic(self._diagnostic)
        if env.invariants is not None:
            env.invariants.register_controller(self)

    # -- submission -----------------------------------------------------------

    def submit(self, request: MemRequest) -> BaseEvent:
        """Submit one transaction; returns its completion event."""
        request.attach(self.env)
        if request.stream is Stream.COMM:
            self._out_comm += 1
        else:
            self._out_compute += 1
        channels = self.channels
        index = self._next_channel
        channel = channels[index]
        index += 1
        self._next_channel = 0 if index == len(channels) else index
        channel.submit(request)
        return request.done

    def submit_bulk(self, kind: AccessKind, stream: Stream, nbytes: float,
                    label: str, wg_id: Optional[int] = None,
                    wf_id: Optional[int] = None,
                    chunk_id: Optional[int] = None) -> List[BaseEvent]:
        """Split ``nbytes`` into quantum-sized requests and submit them all.

        Returns the completion events (one per transaction).
        """
        if nbytes <= 0:
            return []
        quantum = self.config.fidelity.quantum_bytes
        n_full, remainder = divmod(int(math.ceil(nbytes)), quantum)
        sizes = [quantum] * n_full
        if remainder:
            sizes.append(remainder)
        return [
            self.submit(MemRequest(
                kind=kind, stream=stream, nbytes=size, label=label,
                wg_id=wg_id, wf_id=wf_id, chunk_id=chunk_id,
            ))
            for size in sizes
        ]

    # -- tracker & accounting ---------------------------------------------------

    def add_tracker_observer(self, observer: Callable[[MemRequest], None]) -> None:
        """Register a callback fired for serviced writes/updates."""
        self._tracker_observers.append(observer)

    def _on_serviced(self, request: MemRequest) -> None:
        key = request.counter_key
        nbytes = request.nbytes
        self.counters.add(key, nbytes)
        if self.record_traffic:
            series = self.traffic.get(key)
            if series is None:
                series = TimeSeries(key)
                self.traffic[key] = series
            series.record(self.env._now, nbytes)
        if request.kind is not AccessKind.READ:  # WRITE or UPDATE
            for observer in self._tracker_observers:
                observer(request)
        if request.stream is Stream.COMM:
            self._out_comm -= 1
            if self._out_comm == 0 and self._waiters_comm:
                waiters = self._waiters_comm
                self._waiters_comm = []
                for waiter in waiters:
                    waiter.succeed()
        else:
            self._out_compute -= 1
            if self._out_compute == 0 and self._waiters_compute:
                waiters = self._waiters_compute
                self._waiters_compute = []
                for waiter in waiters:
                    waiter.succeed()

    # -- drains ----------------------------------------------------------------

    def outstanding(self, stream: Stream) -> int:
        return self._out_comm if stream is Stream.COMM else self._out_compute

    def drain(self, stream: Stream) -> BaseEvent:
        """Event firing when every submitted request of ``stream`` is done."""
        done = BaseEvent(self.env)
        if self.outstanding(stream) == 0:
            done.succeed()
        else:
            if stream is Stream.COMM:
                self._waiters_comm.append(done)
            else:
                self._waiters_compute.append(done)
            if self.env.obs is not None:
                scope = self.env.obs.scope(self.gpu_id, "mc")
                scope.count(f"drain_waits.{stream.value}")
                t0 = self.env.now
                done.add_callback(
                    lambda _ev, scope=scope, t0=t0, stream=stream:
                    scope.observe(f"drain_stall_ns.{stream.value}",
                                  self.env.now - t0))
        return done

    def drain_all(self) -> BaseEvent:
        from repro.sim.primitives import AllOf

        return AllOf(self.env, [self.drain(s) for s in Stream])

    # -- MCA calibration ---------------------------------------------------------

    def calibrate(self, read_bytes: float, write_bytes: float,
                  duration_ns: float) -> float:
        """Feed the policy the kernel's observed memory intensity.

        The paper's MC "detects the memory intensiveness of a kernel by
        monitoring occupancy during its isolated execution (the first
        stage)"; we equivalently measure demanded bytes/ns against peak.
        Returns the intensity fraction for inspection.
        """
        if duration_ns <= 0:
            raise ValueError("calibration window must have positive duration")
        demand = (read_bytes + write_bytes) / duration_ns
        intensity = demand / self.config.memory.effective_bandwidth
        for channel in self.channels:
            channel.policy.calibrate(intensity)
        return intensity

    # -- introspection -------------------------------------------------------------

    def _diagnostic(self) -> str:
        """One line of queue-depth state for the engine's hang dump."""
        backlog = {
            stream.value: sum(c.stream_backlog(stream) for c in self.channels)
            for stream in Stream
        }
        occupancy = sum(c.dram_occupancy for c in self.channels)
        return (f"gpu{self.gpu_id}.mc: outstanding "
                f"compute={self._out_compute} "
                f"comm={self._out_comm}; stream backlog "
                f"{backlog}; dram occupancy {occupancy}")

    @property
    def idle(self) -> bool:
        return all(channel.idle for channel in self.channels)

    def total_bytes(self, prefix: str = "") -> float:
        return self.counters.total(prefix)

    def utilization(self, elapsed_ns: float) -> float:
        if not self.channels:
            return 0.0
        return sum(c.utilization(elapsed_ns) for c in self.channels) / len(self.channels)

    def merged_traffic(self, keys: Iterable[str]) -> TimeSeries:
        """Merge several recorded series into one time-ordered series."""
        merged = TimeSeries("+".join(keys))
        samples: List[tuple[float, float]] = []
        for key in keys:
            series = self.traffic.get(key)
            if series is None:
                continue
            samples.extend(zip(series.times, series.values))
        for time, value in sorted(samples):
            merged.record(time, value)
        return merged
