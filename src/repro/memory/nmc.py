"""Near-memory compute (NMC) semantics: functional op-and-store model.

The *timing* of NMC lives in :mod:`repro.memory.dram` (``UPDATE`` requests
are serviced at CCDWL = ``ccdwl_factor`` x CCDL).  This module provides the
*functional* side: a :class:`ReductionBuffer` that checks the reduction
algebra of a fused GEMM-RS run — every element of every chunk must receive
exactly the expected number of update contributions (one per device for an
all-reduce-style reduction), and reads of a chunk must only be triggered
after it is fully reduced.

Tests and the T3 fusion engine use it as an executable invariant; it never
affects timing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple


class ReductionError(AssertionError):
    """A violation of reduce-ordering or contribution-count invariants."""


@dataclass
class ChunkLedger:
    """Contribution accounting for one ring chunk on one device."""

    chunk_id: int
    expected_contributions: int
    nbytes: int
    received_bytes: float = 0.0
    contributions: List[str] = field(default_factory=list)
    sealed: bool = False

    @property
    def contribution_count(self) -> int:
        return len(self.contributions)

    @property
    def complete(self) -> bool:
        return self.contribution_count >= self.expected_contributions


class ReductionBuffer:
    """Tracks update contributions per chunk on one device.

    Parameters
    ----------
    nbytes_per_chunk:
        chunk sizes, by chunk id.
    expected_contributions:
        how many whole-chunk contributions each chunk must accumulate
        before it may be read/forwarded.  For the T3 fused ring-RS a
        steady-state chunk expects 2 (local GEMM + one incoming partial);
        a direct-RS chunk on N devices expects N.
    """

    def __init__(self, nbytes_per_chunk: Dict[int, int],
                 expected_contributions):
        """``expected_contributions`` is an int (same for every chunk) or
        a per-chunk mapping — direct-RS expects N on the own chunk while
        ring-RS expects 2 everywhere."""
        if isinstance(expected_contributions, int):
            expected_map = {cid: expected_contributions
                            for cid in nbytes_per_chunk}
        else:
            expected_map = dict(expected_contributions)
        if any(v < 1 for v in expected_map.values()):
            raise ReductionError("chunks need at least one contribution")
        if set(expected_map) != set(nbytes_per_chunk):
            raise ReductionError("expectation map must cover every chunk")
        self.expected = expected_map
        self.ledgers: Dict[int, ChunkLedger] = {
            cid: ChunkLedger(cid, expected_map[cid], size)
            for cid, size in nbytes_per_chunk.items()
        }

    def contribute(self, chunk_id: int, nbytes: float, source: str) -> None:
        ledger = self._ledger(chunk_id)
        if ledger.sealed:
            raise ReductionError(
                f"chunk {chunk_id} received a contribution from {source!r} "
                "after it was read out — a reduce-after-forward race"
            )
        ledger.received_bytes += nbytes
        if ledger.received_bytes > ledger.nbytes * ledger.contribution_count + 1e-6:
            # A new whole-chunk contribution has started.
            ledger.contributions.append(source)
        if ledger.contribution_count > ledger.expected_contributions:
            raise ReductionError(
                f"chunk {chunk_id} got {ledger.contribution_count} "
                f"contributions; expected {ledger.expected_contributions}"
            )

    def contribute_whole(self, chunk_id: int, source: str) -> None:
        """Register one complete chunk-sized contribution."""
        ledger = self._ledger(chunk_id)
        if ledger.sealed:
            raise ReductionError(
                f"chunk {chunk_id} updated by {source!r} after seal"
            )
        ledger.contributions.append(source)
        ledger.received_bytes += ledger.nbytes
        if ledger.contribution_count > ledger.expected_contributions:
            raise ReductionError(
                f"chunk {chunk_id} got {ledger.contribution_count} "
                f"contributions; expected {ledger.expected_contributions}"
            )

    def seal(self, chunk_id: int) -> None:
        """Mark a chunk read-out (DMA'd / consumed).  Must be complete."""
        ledger = self._ledger(chunk_id)
        if not ledger.complete:
            raise ReductionError(
                f"chunk {chunk_id} sealed with only "
                f"{ledger.contribution_count}/{ledger.expected_contributions} "
                "contributions — T3 triggered a DMA too early"
            )
        ledger.sealed = True

    def is_complete(self, chunk_id: int) -> bool:
        return self._ledger(chunk_id).complete

    def all_sealed(self) -> bool:
        return all(ledger.sealed for ledger in self.ledgers.values())

    def summary(self) -> List[Tuple[int, int, bool]]:
        """``(chunk_id, contributions, sealed)`` rows for reporting."""
        return [
            (lid, ledger.contribution_count, ledger.sealed)
            for lid, ledger in sorted(self.ledgers.items())
        ]

    def _ledger(self, chunk_id: int) -> ChunkLedger:
        if chunk_id not in self.ledgers:
            raise ReductionError(f"unknown chunk id {chunk_id}")
        return self.ledgers[chunk_id]
