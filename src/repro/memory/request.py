"""Typed memory transactions.

Every DRAM access in the simulator is a :class:`MemRequest`.  Requests
carry:

* an :class:`AccessKind` — ``READ``, ``WRITE``, or ``UPDATE`` (the NMC
  op-and-store of Section 4.3, serviced at CCDWL = 2x CCDL);
* a :class:`Stream` — ``COMPUTE`` (producer kernel) or ``COMM``
  (collective/DMA), the two streams the memory controller arbitrates
  between (Section 4.5);
* a ``label`` used for the paper's traffic accounting (Figures 17/18),
  e.g. ``"gemm"``, ``"rs"``, ``"ag"``, ``"dma"``;
* optional Tracker metadata ``(wg_id, wf_id)`` — the paper adds exactly
  this metadata to memory accesses so the Tracker can attribute updates
  to WF output tiles (Section 4.2.1).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.sim.engine import BaseEvent, Environment


class AccessKind(enum.Enum):
    READ = "read"
    WRITE = "write"
    #: near-memory op-and-store (atomic reduce at the DRAM banks).
    UPDATE = "update"


class Stream(enum.Enum):
    COMPUTE = "compute"
    COMM = "comm"


_request_ids = itertools.count()

#: memoized ``label.kind`` accounting keys — one f-string per distinct
#: (label, kind) pair instead of one per request (tens of thousands of
#: requests per simulation share a handful of keys).
_counter_keys: dict = {}


@dataclass(slots=True)
class MemRequest:
    """A single memory transaction of ``nbytes`` (one simulation quantum)."""

    kind: AccessKind
    stream: Stream
    nbytes: int
    label: str
    wg_id: Optional[int] = None
    wf_id: Optional[int] = None
    chunk_id: Optional[int] = None
    req_id: int = field(default_factory=lambda: next(_request_ids))
    #: completion event, attached by the memory controller on submit.
    done: Optional[BaseEvent] = None
    issued_at: Optional[float] = None
    serviced_at: Optional[float] = None
    #: accounting key, computed once — read on every service completion.
    counter_key: str = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.nbytes <= 0:
            raise ValueError("memory request must move a positive byte count")
        key = (self.label, self.kind)
        counter_key = _counter_keys.get(key)
        if counter_key is None:
            counter_key = _counter_keys[key] = f"{self.label}.{self.kind.value}"
        self.counter_key = counter_key

    @property
    def has_tracker_metadata(self) -> bool:
        return self.wg_id is not None and self.wf_id is not None

    def attach(self, env: Environment) -> "MemRequest":
        """Give the request a completion event in ``env``."""
        if self.done is None:
            self.done = BaseEvent(env)
        return self
