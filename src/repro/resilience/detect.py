"""Online fault detection from passive telemetry.

Detection never schedules events — monitors fold observations the
components already make (DMA transfer service times, Tracker trigger
latencies) into EWMAs and compare them against model-derived
expectations:

* :class:`LinkHealthMonitor` — per directed link, the EWMA of
  *observed / expected* DMA service time.  The expectation comes from
  the same pipe model the simulator runs (latency + bytes/bandwidth), so
  a healthy link hovers near 1.0 regardless of payload size and a link
  degraded to half bandwidth converges to ~2.0.  NOTE: the expectation
  is computed from the link's *healthy* (undegraded) parameters, which
  the topology records before applying static fault degradation — that
  is what makes a statically-degraded link visible at all.
* :class:`StragglerDetector` — per GPU, the EWMA of Tracker
  trigger-fire latency.  A rank whose latency exceeds the fleet median
  by ``straggler_threshold`` is flagged.

``diagnosis()`` snapshots both into a :class:`Diagnosis`, which the
repair layer consumes (reroute off the worst degraded link, demote the
worst straggler).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.resilience.policy import ResiliencePolicy


class Ewma:
    """Exponentially-weighted moving average with a sample count."""

    __slots__ = ("alpha", "value", "samples")

    def __init__(self, alpha: float):
        self.alpha = alpha
        self.value: Optional[float] = None
        self.samples = 0

    def observe(self, sample: float) -> float:
        self.samples += 1
        if self.value is None:
            self.value = sample
        else:
            self.value += self.alpha * (sample - self.value)
        return self.value


@dataclass
class LinkFinding:
    """One degraded directed link, worst first."""

    src: int
    dst: int
    service_ratio: float      # EWMA of observed / expected service time
    samples: int


@dataclass
class StragglerFinding:
    """One straggling rank, worst first."""

    gpu_id: int
    latency_ratio: float      # EWMA trigger latency / fleet median
    samples: int


@dataclass
class Diagnosis:
    """What the monitors currently believe is wrong."""

    degraded_links: List[LinkFinding] = field(default_factory=list)
    stragglers: List[StragglerFinding] = field(default_factory=list)

    @property
    def healthy(self) -> bool:
        return not (self.degraded_links or self.stragglers)

    def summary(self) -> str:
        if self.healthy:
            return "healthy"
        parts = []
        for f in self.degraded_links:
            parts.append(f"link {f.src}->{f.dst} at "
                         f"{f.service_ratio:.2f}x expected service")
        for f in self.stragglers:
            parts.append(f"rank {f.gpu_id} trigger latency "
                         f"{f.latency_ratio:.2f}x fleet median")
        return "; ".join(parts)


class LinkHealthMonitor:
    """Per-link EWMA of observed vs expected DMA service time."""

    def __init__(self, policy: ResiliencePolicy):
        self.policy = policy
        self._links: Dict[Tuple[int, int], Ewma] = {}

    def observe(self, src: int, dst: int, observed_ns: float,
                expected_ns: float) -> None:
        if expected_ns <= 0:
            return
        ewma = self._links.get((src, dst))
        if ewma is None:
            ewma = self._links[(src, dst)] = Ewma(self.policy.ewma_alpha)
        ewma.observe(observed_ns / expected_ns)

    def findings(self) -> List[LinkFinding]:
        """Links whose service ratio exceeds the fleet median by the
        degradation threshold.

        The comparison is *relative* (each link's observed/expected EWMA
        against the median across links): the expectation model omits
        DRAM service and contention, so the absolute ratio sits above
        1.0 even on a healthy fabric — but it does so uniformly, and a
        genuinely degraded link stands out against its peers.
        """
        mature = {
            link: e for link, e in self._links.items()
            if e.samples >= self.policy.min_samples and e.value is not None
        }
        if len(mature) < 2:
            return []  # one link has no peer baseline
        values = sorted(e.value for e in mature.values())
        mid = len(values) // 2
        median = (values[mid] if len(values) % 2
                  else 0.5 * (values[mid - 1] + values[mid]))
        if median <= 0:
            return []
        found = [
            LinkFinding(src=src, dst=dst, service_ratio=e.value / median,
                        samples=e.samples)
            for (src, dst), e in mature.items()
            if e.value / median > self.policy.link_degraded_threshold
        ]
        found.sort(key=lambda f: (-f.service_ratio, f.src, f.dst))
        return found


class StragglerDetector:
    """Per-rank EWMA of Tracker trigger-fire latency vs the fleet."""

    def __init__(self, policy: ResiliencePolicy):
        self.policy = policy
        self._ranks: Dict[int, Ewma] = {}

    def observe(self, gpu_id: int, latency_ns: float) -> None:
        ewma = self._ranks.get(gpu_id)
        if ewma is None:
            ewma = self._ranks[gpu_id] = Ewma(self.policy.ewma_alpha)
        ewma.observe(latency_ns)

    def findings(self) -> List[StragglerFinding]:
        mature = {gpu: e for gpu, e in self._ranks.items()
                  if e.samples >= self.policy.min_samples
                  and e.value is not None}
        if len(mature) < 2:
            return []  # a fleet of one has no baseline to deviate from
        values = sorted(e.value for e in mature.values())
        mid = len(values) // 2
        median = (values[mid] if len(values) % 2
                  else 0.5 * (values[mid - 1] + values[mid]))
        if median <= 0:
            return []
        found = [
            StragglerFinding(gpu_id=gpu, latency_ratio=e.value / median,
                             samples=e.samples)
            for gpu, e in mature.items()
            if e.value / median > self.policy.straggler_threshold
        ]
        found.sort(key=lambda f: (-f.latency_ratio, f.gpu_id))
        return found
