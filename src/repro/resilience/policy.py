"""Resilience policy knobs + the per-collective degradation ladder.

Two small state machines live here:

* :class:`RunState` — the *in-run* view of one fused collective: healthy
  until the first fault manifests, then degraded/recovering, ending
  recovered (every lost notification re-issued, every evicted region
  restored) or failed (budgets exhausted — the run must be abandoned).
* :class:`ScenarioLadder` — the *cross-attempt* policy ladder a chaos
  scenario walks: ``RETRY`` (same plan, escalated deadlines/budgets) ->
  ``REPAIR`` (rebuild the :class:`~repro.collectives.plan.CollectivePlan`
  around the diagnosis) -> ``FALLBACK`` (plan-driven Sequential instead
  of fused T3-MCA).  Every transition is counted in the ``obs``
  ``resilience`` scope so campaigns can report detections / repairs /
  fallbacks and time-to-detect / time-to-recover distributions.

:class:`ResiliencePolicy` bundles every tunable: deadline slack, retry
budgets, exponential backoff, EWMA smoothing and degradation thresholds.
``escalated(attempt)`` derives the retry-rung policy — doubled deadlines
and budgets — so a deterministic re-run is meaningfully more permissive
instead of replaying the identical failure.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace


class RunState(enum.Enum):
    """In-run health of one fused collective."""

    HEALTHY = "healthy"
    DEGRADED = "degraded"       # a fault manifested; recovery in progress
    RECOVERED = "recovered"     # every recovery action succeeded
    FAILED = "failed"           # budgets exhausted; abandon the run


class LadderRung(enum.Enum):
    """Cross-attempt degradation ladder, in escalation order."""

    RUN = "run"                 # first attempt, pristine plan
    RETRY = "retry"             # re-run, escalated deadlines/budgets
    REPAIR = "repair"           # re-run on a repaired plan
    FALLBACK = "fallback"       # plan-driven Sequential baseline
    DEAD = "dead"               # nothing left to try


#: legal state-machine transitions (anything else is a programming error).
_RUN_TRANSITIONS = {
    RunState.HEALTHY: {RunState.DEGRADED},
    RunState.DEGRADED: {RunState.RECOVERED, RunState.FAILED},
    RunState.RECOVERED: {RunState.DEGRADED},  # a later fault re-degrades
    RunState.FAILED: set(),
}

_LADDER_ORDER = (LadderRung.RUN, LadderRung.RETRY, LadderRung.REPAIR,
                 LadderRung.FALLBACK, LadderRung.DEAD)


@dataclass(frozen=True)
class ResiliencePolicy:
    """Every resilience tunable, in one frozen bundle.

    Deadlines: a DMA completion is expected within ``deadline_slack`` x
    the link-model service estimate (with an absolute floor) of its
    trigger; an un-triggered completion past its deadline whose transfer
    *has* finished is a lost notification and is re-issued after
    ``reissue_latency_ns`` (the modelled ack round-trip).  A transfer
    still in flight gets its deadline extended by ``backoff`` per check,
    ``max_deadline_extensions`` times, before the watch gives up.
    """

    #: multiplier on the expected DMA service time before a deadline check.
    deadline_slack: float = 8.0
    #: absolute deadline floor (ns) — tiny transfers get sane deadlines.
    deadline_floor_ns: float = 2_000.0
    #: exponential deadline-extension factor per re-check.
    backoff: float = 2.0
    #: in-flight deadline extensions before a watch gives up.
    max_deadline_extensions: int = 4
    #: modelled ack round-trip for a re-issued completion notification.
    reissue_latency_ns: float = 500.0
    #: re-issue budget per DMA command (drop recovery).
    max_reissues_per_command: int = 2
    #: restore budget per Tracker region (eviction recovery).  Pressure
    #: faults deterministically re-evict the oldest region, which is the
    #: one just restored — so a region legitimately needs on the order of
    #: ``regions_programmed / evict_every`` restores.  The budget exists
    #: to bound livelock, not to cap honest recovery.
    max_restores_per_region: int = 64
    #: EWMA smoothing for link-health / straggler monitors.
    ewma_alpha: float = 0.25
    #: observed/expected service ratio above which a link is degraded.
    link_degraded_threshold: float = 1.6
    #: trigger-latency ratio vs the fleet median above which a rank is a
    #: straggler.
    straggler_threshold: float = 1.5
    #: minimum samples before a monitor may flag anything.  A ring rank
    #: issues only ``n_chunks - 2`` coarse DMA transfers per collective,
    #: so per-link sample counts are inherently small.
    min_samples: int = 2

    def __post_init__(self) -> None:
        if self.deadline_slack < 1.0:
            raise ValueError("deadline_slack must be >= 1.0")
        if self.backoff < 1.0:
            raise ValueError("backoff must be >= 1.0")
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must be in (0, 1]")
        if self.max_deadline_extensions < 0 or \
                self.max_reissues_per_command < 0 or \
                self.max_restores_per_region < 0:
            raise ValueError("budgets cannot be negative")
        if self.link_degraded_threshold <= 1.0 or \
                self.straggler_threshold <= 1.0:
            raise ValueError("degradation thresholds must exceed 1.0")

    def escalated(self, attempt: int) -> "ResiliencePolicy":
        """The policy for retry rung ``attempt`` (1-based): deadlines and
        budgets doubled per rung, so a deterministic re-run genuinely
        differs from the failed one instead of replaying it."""
        if attempt < 1:
            raise ValueError("escalation attempts are 1-based")
        scale = 2.0 ** attempt
        return replace(
            self,
            deadline_slack=self.deadline_slack * scale,
            deadline_floor_ns=self.deadline_floor_ns * scale,
            max_deadline_extensions=self.max_deadline_extensions + attempt,
            max_reissues_per_command=int(
                self.max_reissues_per_command * scale),
            max_restores_per_region=int(self.max_restores_per_region * scale),
        )


class CollectiveStateMachine:
    """In-run health state for one fused collective.

    Transitions are validated against ``_RUN_TRANSITIONS`` and mirrored
    into the ``obs`` ``resilience`` scope when a registry is bound.
    """

    def __init__(self, obs=None, now=lambda: 0.0):
        self.state = RunState.HEALTHY
        self.transitions: list = []
        self._obs = obs
        self._now = now

    def to(self, state: RunState) -> None:
        if state is self.state:
            return
        if state not in _RUN_TRANSITIONS[self.state]:
            raise ValueError(
                f"illegal resilience transition {self.state.value} -> "
                f"{state.value}")
        self.transitions.append((self._now(), self.state, state))
        self.state = state
        if self._obs is not None:
            self._obs.scope(-1, "resilience").count(
                f"state_{state.value}")

    @property
    def ever_degraded(self) -> bool:
        return bool(self.transitions)


class ScenarioLadder:
    """The cross-attempt degradation ladder for one chaos scenario.

    ``next_rung()`` yields rungs in escalation order; callers record the
    outcome per rung with :meth:`settled`.  ``REPAIR`` is skipped
    automatically when the diagnosis offers no plan repair (the caller
    passes ``can_repair=False``).
    """

    def __init__(self, max_retries: int = 1):
        if max_retries < 0:
            raise ValueError("max_retries cannot be negative")
        self.max_retries = max_retries
        self.history: list = []
        self._retries_used = 0
        self.rung = LadderRung.RUN

    def settled(self, rung: LadderRung, survived: bool) -> None:
        self.history.append((rung, survived))

    def next_rung(self, can_repair: bool = True) -> LadderRung:
        """Escalate: the rung to try after the current one failed."""
        if self.rung is LadderRung.RUN and self.max_retries > 0:
            self._retries_used = 1
            self.rung = LadderRung.RETRY
        elif self.rung is LadderRung.RETRY \
                and self._retries_used < self.max_retries:
            self._retries_used += 1
        elif self.rung in (LadderRung.RUN, LadderRung.RETRY) and can_repair:
            self.rung = LadderRung.REPAIR
        elif self.rung in (LadderRung.RUN, LadderRung.RETRY,
                           LadderRung.REPAIR):
            self.rung = LadderRung.FALLBACK
        else:
            self.rung = LadderRung.DEAD
        return self.rung

    @property
    def retry_attempt(self) -> int:
        """1-based escalation attempt while on the RETRY rung."""
        return self._retries_used
