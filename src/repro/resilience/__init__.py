"""Runtime resilience: fault detection, plan repair, graceful degradation.

The layer has three floors, matching the paper's transparency story —
T3's tracking/triggering hardware already *observes* every update, so
the same telemetry that proves overlap can drive recovery:

* :mod:`repro.resilience.detect` — passive monitors (link health from
  DMA service times, stragglers from Tracker trigger latency).
* :mod:`repro.resilience.repair` — :class:`CollectivePlan` rebuilds
  (ring reversal off a degraded link, straggler demotion, rank
  exclusion), every result re-``validate()``-d.
* :mod:`repro.resilience.runtime` — the in-run loop: DMA completion
  deadlines with bounded backoff re-issue, Tracker eviction restore,
  and a drain backstop; dormant until the first fault manifests so
  fault-free runs stay byte-identical.
* :mod:`repro.resilience.policy` — every tunable plus the in-run state
  machine and the cross-attempt ladder (retry -> repair -> fallback).
"""

from repro.resilience.detect import (
    Diagnosis,
    Ewma,
    LinkFinding,
    LinkHealthMonitor,
    StragglerDetector,
    StragglerFinding,
)
from repro.resilience.policy import (
    CollectiveStateMachine,
    LadderRung,
    ResiliencePolicy,
    RunState,
    ScenarioLadder,
)
from repro.resilience.repair import (
    RepairResult,
    demote_rank,
    exclude_rank,
    repair_for_diagnosis,
    reroute_off_link,
)
from repro.resilience.runtime import (
    RESILIENCE_SCOPE,
    RecoveryRecord,
    ResilienceRuntime,
)

__all__ = [
    "CollectiveStateMachine",
    "Diagnosis",
    "Ewma",
    "LadderRung",
    "LinkFinding",
    "LinkHealthMonitor",
    "RecoveryRecord",
    "RepairResult",
    "ResiliencePolicy",
    "ResilienceRuntime",
    "RESILIENCE_SCOPE",
    "RunState",
    "ScenarioLadder",
    "StragglerDetector",
    "StragglerFinding",
    "demote_rank",
    "exclude_rank",
    "repair_for_diagnosis",
    "reroute_off_link",
]
