"""The resilience runtime: detect, repair, degrade gracefully.

One :class:`ResilienceRuntime` is attached to an
:class:`~repro.sim.engine.Environment` as ``env.resilience`` (``None`` by
default, like ``env.trace`` / ``env.faults``).  Components report into it
at their natural seams and it closes the loop:

* **passive monitoring** — every link transfer feeds the
  :class:`~repro.resilience.detect.LinkHealthMonitor` (observed service
  vs the link's *nominal* pre-degradation model) and every Tracker
  region completion feeds the
  :class:`~repro.resilience.detect.StragglerDetector`.  Monitoring
  schedules no events and never perturbs the simulation.
* **deadline recovery** — each triggered DMA command registers a watch.
  Watches stay dormant until the first fault actually manifests (the
  :class:`~repro.faults.injector.FaultInjector` reports realized events
  via :meth:`on_fault_observed`); only then are deadline timers armed.
  A deadline that finds the transfer *finished* but its completion
  notification undelivered re-issues the notification after the modelled
  ack round-trip, recording time-to-detect / time-to-recover.  A
  transfer still in flight gets its deadline extended with exponential
  backoff, a bounded number of times.
* **eviction recovery** — a Tracker entry force-evicted under table
  pressure is re-programmed with its *remaining* bytes (the hardware
  analogue: the victim's counter is spilled and restored), bounded per
  region, instead of hanging its downstream trigger forever.
* **drain backstop** — when the schedule drains with waiters still
  pending (:meth:`recover_drain`), any undelivered-but-finished
  completions are re-issued so the run can resume instead of dying.

The dormant-until-fault arming is what keeps fault-free runs
**byte-identical** with the runtime attached or absent — the smoke gate
(``scripts/smoke_chaos.py``) pins exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.resilience.detect import (
    Diagnosis,
    LinkHealthMonitor,
    StragglerDetector,
)
from repro.resilience.policy import (
    CollectiveStateMachine,
    ResiliencePolicy,
    RunState,
)

#: the obs scope all resilience telemetry lands in (system-wide, so the
#: gpu slot is the -1 sentinel the registry uses for "not a GPU").
RESILIENCE_SCOPE = (-1, "resilience")


@dataclass
class _DmaWatch:
    """One watched DMA command: dormant until armed, then deadlined."""

    dma: object                  # the owning DMAEngine
    command: object              # the DMACommand
    triggered_at: float
    expected_ns: float
    armed: bool = False
    extensions: int = 0
    settled: bool = False        # recovered / given up / seen complete


@dataclass
class RecoveryRecord:
    """One successful recovery action, for post-run reporting."""

    kind: str                    # "dma-reissue" | "tracker-restore" | "drain-reissue"
    gpu_id: int
    detail: str
    time_to_detect_ns: float
    time_to_recover_ns: float


class ResilienceRuntime:
    """Online fault detection + in-run recovery for one simulation."""

    def __init__(self, policy: Optional[ResiliencePolicy] = None):
        self.policy = policy or ResiliencePolicy()
        self.env = None
        self.link_monitor = LinkHealthMonitor(self.policy)
        self.straggler_detector = StragglerDetector(self.policy)
        self.machine = CollectiveStateMachine()
        self._armed = False
        self._watches: Dict[Tuple[int, str], _DmaWatch] = {}
        #: re-issue budget spent per (gpu, command_id).
        self._reissues: Dict[Tuple[int, str], int] = {}
        #: restore budget spent per (gpu, region key).
        self._restores: Dict[Tuple[int, Tuple], int] = {}
        self.recoveries: List[RecoveryRecord] = []
        self.detections = 0
        self.deadline_checks = 0
        self.deadline_extensions = 0
        self.watches_exhausted = 0
        self.restores_denied = 0

    # -- wiring ----------------------------------------------------------------

    def attach(self, env) -> "ResilienceRuntime":
        """Bind to ``env`` (sets ``env.resilience``) and subscribe to the
        fault injector's realized-event feed when one is attached."""
        self.env = env
        env.resilience = self
        self.machine = CollectiveStateMachine(
            obs=env.obs, now=lambda: env.now)
        if env.faults is not None:
            env.faults.bind_resilience(self)
        return self

    @property
    def armed(self) -> bool:
        """True once a fault has manifested and deadline timers run."""
        return self._armed

    def _scope(self):
        if self.env is None or self.env.obs is None:
            return None
        return self.env.obs.scope(*RESILIENCE_SCOPE)

    def _mark(self, name: str, gpu_id: int,
              args: Optional[dict] = None) -> None:
        """Drop an instant marker on ``env.trace`` (category
        ``"resilience"``) so detections and repairs land on the same
        timeline as the faults that caused them — the join the trace
        layer's incident overlay performs.  Passive: no trace, no-op."""
        env = self.env
        if env is None or env.trace is None:
            return
        track = f"gpu{gpu_id}" if gpu_id >= 0 else "system"
        env.trace.instant(name=name, category="resilience",
                          at_ns=env.now, track=track,
                          group="incidents", args=args)

    # -- fault-observed feed (from the injector) --------------------------------

    def on_fault_observed(self, kind: str, gpu_id: int) -> None:
        """A fault actually manifested; arm the recovery machinery.

        Called by the :class:`~repro.faults.injector.FaultInjector` every
        time it realizes a fault event.  The first call flips the runtime
        from passive monitoring to active deadline enforcement.
        """
        self.detections += 1
        self._mark(f"detected.{kind}", gpu_id)
        scope = self._scope()
        if scope is not None:
            scope.count("detections")
            scope.count(f"detected_{kind}")
        if self.machine.state in (RunState.HEALTHY, RunState.RECOVERED):
            self.machine.to(RunState.DEGRADED)
        if not self._armed:
            self._armed = True
            if scope is not None:
                scope.count("armed")
            for watch in list(self._watches.values()):
                if not watch.armed and not watch.settled:
                    self._arm(watch)

    # -- DMA deadline watches ----------------------------------------------------

    def expected_dma_ns(self, dma, command) -> float:
        """Model-derived service estimate for one DMA command, from the
        link's *nominal* (pre-degradation) parameters."""
        pipe = dma.gpu.link_to(command.dst_gpu_id)
        return (pipe.nominal_latency_ns
                + command.nbytes / pipe.nominal_bandwidth)

    def watch_dma(self, dma, command) -> None:
        """Register a deadline watch for a just-triggered command.

        Registration is passive; the deadline timer is only scheduled
        once the runtime is armed (a fault has manifested)."""
        key = (dma.gpu.gpu_id, command.command_id)
        watch = _DmaWatch(
            dma=dma, command=command, triggered_at=self.env.now,
            expected_ns=self.expected_dma_ns(dma, command))
        self._watches[key] = watch
        if self._armed:
            self._arm(watch)

    def _deadline_ns(self, watch: _DmaWatch) -> float:
        base = max(self.policy.deadline_floor_ns,
                   self.policy.deadline_slack * watch.expected_ns)
        return base * (self.policy.backoff ** watch.extensions)

    def _arm(self, watch: _DmaWatch) -> None:
        watch.armed = True
        self.env.call_later(self._deadline_ns(watch),
                            lambda _ev, w=watch: self._on_deadline(w))

    def _on_deadline(self, watch: _DmaWatch) -> None:
        if watch.settled:
            return
        self.deadline_checks += 1
        dma, command = watch.dma, watch.command
        event = dma.completion(command.command_id)
        if event.triggered:
            watch.settled = True           # completed on its own
            return
        if dma.transfer_finished(command.command_id):
            # The transfer landed but its notification never arrived:
            # a lost completion.  Re-issue it (bounded per command).
            watch.settled = True
            self._reissue(dma, command, kind="dma-reissue")
            return
        # Still in flight: extend the deadline with backoff, boundedly.
        if watch.extensions < self.policy.max_deadline_extensions:
            watch.extensions += 1
            self.deadline_extensions += 1
            scope = self._scope()
            if scope is not None:
                scope.count("deadline_extensions")
            self._arm(watch)
        else:
            watch.settled = True
            self.watches_exhausted += 1
            scope = self._scope()
            if scope is not None:
                scope.count("watches_exhausted")

    def _reissue_budget_left(self, gpu_id: int, command_id: str) -> bool:
        spent = self._reissues.get((gpu_id, command_id), 0)
        return spent < self.policy.max_reissues_per_command

    def _reissue(self, dma, command, kind: str) -> bool:
        """Re-deliver a finished command's lost completion notification."""
        gpu_id = dma.gpu.gpu_id
        key = (gpu_id, command.command_id)
        if not self._reissue_budget_left(gpu_id, command.command_id):
            scope = self._scope()
            if scope is not None:
                scope.count("reissues_denied")
            return False
        finished_at = dma.transfer_finished_at(command.command_id)
        now = self.env.now
        detect_ns = max(0.0, now - (finished_at if finished_at is not None
                                    else now))
        recover_ns = detect_ns + self.policy.reissue_latency_ns
        if not dma.redeliver(command.command_id,
                             delay=self.policy.reissue_latency_ns):
            return False
        self._reissues[key] = self._reissues.get(key, 0) + 1
        self.recoveries.append(RecoveryRecord(
            kind=kind, gpu_id=gpu_id,
            detail=f"re-issued completion for {command.command_id}",
            time_to_detect_ns=detect_ns, time_to_recover_ns=recover_ns))
        self._mark(kind, gpu_id,
                   args={"command": command.command_id,
                         "time_to_recover_ns": recover_ns})
        scope = self._scope()
        if scope is not None:
            scope.count("repairs")
            scope.count(kind.replace("-", "_") + "s")
            scope.observe("time_to_detect_ns", detect_ns)
            scope.observe("time_to_recover_ns", recover_ns)
            scope.span("recovery", now - detect_ns,
                       now + self.policy.reissue_latency_ns)
        if self.machine.state is RunState.DEGRADED:
            self.machine.to(RunState.RECOVERED)
        return True

    # -- passive telemetry feeds -------------------------------------------------

    def observe_link_service(self, src: int, dst: int, observed_ns: float,
                             expected_ns: float) -> None:
        """Feed one link transfer's service time (stall + serialization +
        latency, queueing excluded) into the link-health monitor.  Called
        by :class:`~repro.sim.primitives.Pipe` per transfer."""
        self.link_monitor.observe(src, dst, observed_ns=observed_ns,
                                  expected_ns=expected_ns)

    def observe_trigger_latency(self, gpu_id: int, latency_ns: float) -> None:
        """Feed one Tracker region-completion latency into the straggler
        detector."""
        self.straggler_detector.observe(gpu_id, latency_ns)

    def diagnosis(self) -> Diagnosis:
        """Snapshot of what the monitors currently believe is wrong."""
        return Diagnosis(
            degraded_links=self.link_monitor.findings(),
            stragglers=self.straggler_detector.findings())

    # -- Tracker eviction recovery ----------------------------------------------

    def on_tracker_eviction(self, tracker, entry) -> bool:
        """Recover a force-evicted region by restoring it with its
        remaining bytes.  Returns True when the restore happened."""
        key = (tracker.gpu_id, entry.key)
        spent = self._restores.get(key, 0)
        if spent >= self.policy.max_restores_per_region:
            self.restores_denied += 1
            scope = self._scope()
            if scope is not None:
                scope.count("restores_denied")
            return False
        remaining = entry.expected_bytes - entry.received_bytes
        if remaining <= 0:
            return False
        tracker.restore_region(entry.key, remaining)
        self._restores[key] = spent + 1
        now = self.env.now if self.env is not None else 0.0
        self._mark("tracker-restore", tracker.gpu_id,
                   args={"remaining_bytes": remaining})
        self.recoveries.append(RecoveryRecord(
            kind="tracker-restore", gpu_id=tracker.gpu_id,
            detail=(f"restored region {entry.key} with {remaining} "
                    f"remaining bytes"),
            time_to_detect_ns=0.0, time_to_recover_ns=0.0))
        scope = self._scope()
        if scope is not None:
            scope.count("repairs")
            scope.count("tracker_restores")
            scope.observe("time_to_detect_ns", 0.0)
            scope.observe("time_to_recover_ns", 0.0)
            scope.span("recovery", now, now)
        if self.machine.state is RunState.DEGRADED:
            self.machine.to(RunState.RECOVERED)
        return True

    # -- drain backstop -----------------------------------------------------------

    def recover_drain(self, fusion) -> bool:
        """The schedule drained with waiters pending: re-issue every
        undelivered-but-finished completion (bounded), so the caller can
        resume the event loop.  Returns True when anything was re-issued.
        """
        if not self._armed:
            return False
        acted = False
        for gpu in fusion.topo.gpus:
            dma = gpu.dma
            for command_id in list(dma.dropped_completions):
                if dma.completion(command_id).triggered:
                    continue
                command = dma._commands[command_id]
                if self._reissue(dma, command, kind="drain-reissue"):
                    acted = True
        if acted:
            scope = self._scope()
            if scope is not None:
                scope.count("drain_recoveries")
        return acted

    def mark_failed(self) -> None:
        """Recovery is out of road for this run; record the terminal
        state (the caller is about to abandon the collective)."""
        if self.machine.state is RunState.DEGRADED:
            self.machine.to(RunState.FAILED)
        self._mark("run-failed", -1)
        scope = self._scope()
        if scope is not None:
            scope.count("run_failures")

    # -- reporting ----------------------------------------------------------------

    @property
    def dma_reissues(self) -> int:
        return sum(1 for r in self.recoveries
                   if r.kind in ("dma-reissue", "drain-reissue"))

    @property
    def tracker_restores(self) -> int:
        return sum(1 for r in self.recoveries if r.kind == "tracker-restore")

    def mean_time_to_recover_ns(self) -> Optional[float]:
        if not self.recoveries:
            return None
        return (sum(r.time_to_recover_ns for r in self.recoveries)
                / len(self.recoveries))

    def summary(self) -> str:
        parts = [f"state={self.machine.state.value}",
                 f"detections={self.detections}",
                 f"reissues={self.dma_reissues}",
                 f"restores={self.tracker_restores}"]
        mttr = self.mean_time_to_recover_ns()
        if mttr is not None:
            parts.append(f"mttr={mttr:.0f}ns")
        return " ".join(parts)
