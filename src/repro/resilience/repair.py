"""Plan repair: rebuild a :class:`CollectivePlan` around a diagnosis.

Every repair returns a *validated* plan (``CollectivePlan.validate()``
is re-run on the result before it is returned) plus a
:class:`RepairResult` describing what changed, so callers can record the
repair as a span and report honest "unchanged" outcomes.

Three repairs, matched to the detection signals:

* :func:`reroute_off_link` — a degraded directed link.  Ring plans are
  *reversed* (relabel ``r -> -r mod N``): the physical ring topologies
  here wire both directions, so the reversed plan runs entirely on the
  backward links and never touches the degraded forward edge (and vice
  versa).  Hierarchical plans reverse the same way — both intra-node
  rings and inter-node rails are wired bidirectionally.  Direct /
  all-to-all plans use *every* pairwise edge, so no relabelling can
  avoid one; they come back ``unchanged`` (the fully-connected fabric
  absorbs a single slow edge in parallel with n-2 healthy ones).
* :func:`demote_rank` — a straggling rank.  With fewer chunks than
  ranks (graceful chunking) some logical slots own no terminal chunk and
  do no DMA forwarding for the missing chunks; a *rotation* re-seats
  the straggler into the cheapest slot.  With a full complement of
  chunks every slot does identical work and the honest answer is
  ``unchanged``.
* :func:`exclude_rank` — a rank written out of the collective entirely:
  the plan is *rebuilt* with the matching builder over the N-1
  survivors (a hierarchical shape that no longer divides evenly degrades
  to a flat ring over the survivors).  The result is a plan for an
  (N-1)-GPU system — the caller owns re-provisioning onto it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.collectives.plan import (
    CollectivePlan,
    all_to_all_plan,
    direct_rs_plan,
    hierarchical_rs_plan,
    ring_all_gather_plan,
    ring_reduce_scatter_plan,
)


@dataclass
class RepairResult:
    """One repair outcome: the (validated) plan plus what was done."""

    plan: CollectivePlan
    action: str              # "reversed" | "rotated" | "rebuilt" | "unchanged"
    detail: str = ""

    @property
    def changed(self) -> bool:
        return self.action != "unchanged"


def _validated(plan: CollectivePlan, action: str, detail: str) -> RepairResult:
    plan.validate()
    return RepairResult(plan=plan, action=action, detail=detail)


def _ring_like(plan: CollectivePlan) -> bool:
    return plan.collective in ("ring-rs", "hier-rs", "all-gather")


def reroute_off_link(plan: CollectivePlan, src: int,
                     dst: int) -> RepairResult:
    """Reroute the plan's traffic off the degraded directed link
    ``src -> dst``.

    Ring-family plans are reversed (``r -> -r mod N``): every step that
    used a forward edge now uses the corresponding backward edge, so the
    degraded edge carries nothing.  If the plan does not actually use
    the edge (or uses every edge, as direct plans do), it is returned
    unchanged.
    """
    uses = any(
        step.dst == dst and rank_plan.rank == src
        for rank_plan in plan.ranks for step in rank_plan.steps
    ) or any(
        route.dst_gpu == dst and rank_plan.rank == src
        for rank_plan in plan.ranks
        for route in rank_plan.routes.values()
    )
    if not uses:
        return _validated(plan, "unchanged",
                          f"plan does not use link {src}->{dst}")
    if not _ring_like(plan):
        return _validated(
            plan, "unchanged",
            f"{plan.collective} uses every pairwise edge; a single "
            f"degraded link ({src}->{dst}) cannot be relabelled away")
    n = plan.n_ranks
    if plan.collective == "hier-rs":
        # Reverse node order and intra-node position *independently*:
        # intra hops stay within their node (backward intra edges + the
        # wired node-closure link) and rail hops flip to the rail-up
        # direction.  A flat "-r mod N" reversal would map the intra
        # wrap hop onto an unwired diagonal cross-node edge.
        per = _infer_gpus_per_node(plan)
        n_nodes = n // per
        mapping = {
            k * per + g: ((-k) % n_nodes) * per + ((-g) % per)
            for k in range(n_nodes) for g in range(per)
        }
    else:
        mapping = {r: (-r) % n for r in range(n)}
    reversed_plan = plan.relabeled(mapping)
    # Degenerate shapes (2-rank rings, 2x2 hierarchies) have coincident
    # forward/backward edges; reversal cannot avoid the degraded one.
    still_uses = any(
        step.dst == dst and rank_plan.rank == src
        for rank_plan in reversed_plan.ranks for step in rank_plan.steps
    ) or any(
        route.dst_gpu == dst and rank_plan.rank == src
        for rank_plan in reversed_plan.ranks
        for route in rank_plan.routes.values()
    )
    if still_uses:
        return _validated(
            plan, "unchanged",
            f"ring reversal cannot avoid {src}->{dst} at N={n}")
    return _validated(reversed_plan, "reversed",
                      f"ring reversed off degraded link {src}->{dst}")


def demote_rank(plan: CollectivePlan, gpu_id: int) -> RepairResult:
    """Rotate a ring plan so straggling ``gpu_id`` plays the cheapest
    logical role.

    Only graceful-chunked flat rings (``n_chunks < n_ranks``) have an
    asymmetric slot to rotate into: logical ranks ``>= n_chunks`` own no
    terminal chunk.  Fully-chunked rings and hierarchical plans are
    slot-symmetric; demotion honestly returns them unchanged.
    """
    if gpu_id < 0 or gpu_id >= plan.n_ranks:
        raise ValueError(f"rank {gpu_id} not in plan of {plan.n_ranks}")
    n = plan.n_ranks
    if plan.collective != "ring-rs" or plan.n_chunks >= n:
        return _validated(
            plan, "unchanged",
            "every logical slot does identical work; nothing to demote "
            f"rank {gpu_id} into")
    if gpu_id >= plan.n_chunks:
        return _validated(plan, "unchanged",
                          f"rank {gpu_id} already owns no terminal chunk")
    # Rotate so logical slot n-1 (terminal-free) lands on the straggler:
    # mapping[r] = (r + gpu_id - (n-1)) mod n puts logical n-1 at gpu_id.
    shift = (gpu_id - (n - 1)) % n
    mapping = {r: (r + shift) % n for r in range(n)}
    rotated = plan.relabeled(mapping)
    return _validated(
        rotated, "rotated",
        f"rotated straggler rank {gpu_id} into the terminal-free slot")


def exclude_rank(plan: CollectivePlan, gpu_id: int) -> RepairResult:
    """Rebuild the collective over the N-1 survivors of ``gpu_id``.

    The surviving plan uses contiguous logical ranks ``0..N-2`` (the
    survivors in ascending physical order); re-provisioning onto an
    (N-1)-GPU system is the caller's job.  Hierarchical shapes that no
    longer divide evenly degrade to a flat ring over the survivors.
    """
    if gpu_id < 0 or gpu_id >= plan.n_ranks:
        raise ValueError(f"rank {gpu_id} not in plan of {plan.n_ranks}")
    survivors = plan.n_ranks - 1
    if survivors < 2:
        raise ValueError(
            "cannot exclude a rank from a 2-rank collective; fall back "
            "to a local no-op instead")
    if plan.collective == "ring-rs":
        rebuilt = ring_reduce_scatter_plan(
            survivors, n_chunks=min(plan.n_chunks, survivors),
            split_k=plan.split_k)
        detail = f"flat ring rebuilt over {survivors} survivors"
    elif plan.collective == "hier-rs":
        per = _infer_gpus_per_node(plan)
        if per is not None and survivors % per == 0 and survivors // per > 1:
            rebuilt = hierarchical_rs_plan(survivors // per, per,
                                           split_k=plan.split_k)
            detail = (f"hierarchical plan rebuilt over "
                      f"{survivors // per}x{per} survivors")
        else:
            rebuilt = ring_reduce_scatter_plan(survivors,
                                               split_k=plan.split_k)
            detail = (f"uneven nodes after excluding rank {gpu_id}; "
                      f"degraded to a flat ring over {survivors} survivors")
    elif plan.collective == "direct-rs":
        rebuilt = direct_rs_plan(survivors)
        detail = f"direct-RS rebuilt over {survivors} survivors"
    elif plan.collective == "all-to-all":
        rebuilt = all_to_all_plan(survivors)
        detail = f"all-to-all rebuilt over {survivors} survivors"
    elif plan.collective == "all-gather":
        rebuilt = ring_all_gather_plan(survivors)
        detail = f"all-gather rebuilt over {survivors} survivors"
    else:
        raise ValueError(
            f"no exclusion rebuild for collective {plan.collective!r}")
    return _validated(rebuilt, "rebuilt", detail)


def _infer_gpus_per_node(plan: CollectivePlan) -> Optional[int]:
    """Recover gpus_per_node from a hierarchical plan's intra stage."""
    for rank_plan in plan.ranks:
        intra = [s for s in rank_plan.steps if s.stage == "intra"]
        if intra:
            return len(intra) + 1
    return None


def repair_for_diagnosis(plan: CollectivePlan, diagnosis) -> RepairResult:
    """The repair matching a :class:`~repro.resilience.detect.Diagnosis`:
    worst degraded link first, else worst straggler, else unchanged."""
    if diagnosis.degraded_links:
        worst = diagnosis.degraded_links[0]
        return reroute_off_link(plan, worst.src, worst.dst)
    if diagnosis.stragglers:
        worst = diagnosis.stragglers[0]
        return demote_rank(plan, worst.gpu_id)
    return _validated(plan, "unchanged", "diagnosis is healthy")
