"""CollectivePlan: one IR for schedules, address maps and stagger.

Historically the ring convention — device ``d`` sends downstream to
``(d-1) mod N`` and at step ``s`` forwards chunk ``(d+s) mod N`` — was
re-derived independently by four layers (the per-rank schedules, the
address-space configuration, the staggered ``TileGrid`` production order
and the fused driver).  Following GC3's factoring (one declarative
collective program, per-rank schedules derived from it), this module is
now the **only** place that arithmetic lives.  Everything else consumes a
:class:`CollectivePlan`:

* :mod:`repro.collectives.schedule` — thin per-rank views of the steps;
* :class:`repro.t3.address_map.AddressSpaceConfig` — compiled from the
  plan's :class:`ChunkRoute` table (``remote_map`` / ``dma_map`` /
  terminal, with split-K-aware expected-update counts);
* :class:`repro.gpu.wavefront.TileGrid` — takes its chunk production
  order from the plan (the paper's staggered schedule, Section 4.4);
* :class:`repro.t3.fusion.FusedGEMMRS` — programs Trackers, DMA command
  tables and trigger blocks straight from the routes, on *any* topology.

Two capabilities exist only at this layer:

* **graceful chunking** — a payload too small to cut ``N`` ways falls
  back to fewer chunks (every rank still forwards every chunk around the
  full ring, ranks beyond the chunk count simply own no terminal chunk)
  instead of raising mid-sweep;
* **hierarchical plans** — intra-node ring-RS over chunk *groups*
  followed by per-position inter-node rings (the "rail" links of
  :class:`~repro.interconnect.topology.HierarchicalRingTopology`), which
  is what lets fused T3 run multi-node (Section 7.8 / ROADMAP scale-out).

``validate()`` mechanically re-derives every expected-update count from
the other ranks' routes and checks send/receive step symmetry, so a new
plan builder cannot silently disagree with the Tracker programming.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.collectives.api import CollectiveOp
from repro.gpu.wavefront import split_evenly


class RouteKind(enum.Enum):
    REMOTE_UPDATE = "remote_update"   # remote_map: store-over-link
    LOCAL_UPDATE = "local_update"     # dma_map: local NMC + triggered DMA
    LOCAL_TERMINAL = "local_terminal"  # own chunk, no DMA


@dataclass(frozen=True)
class ChunkRoute:
    """Where one output chunk of this device's GEMM goes."""

    chunk_id: int
    kind: RouteKind
    #: destination GPU for REMOTE_UPDATE (immediate) or LOCAL_UPDATE (DMA).
    dst_gpu: Optional[int] = None
    #: total whole-chunk update contributions this device's copy expects
    #: before its DMA/terminal trigger (ring-RS: 2, Section 4.2.1).
    expected_updates: int = 1
    #: whether stores reduce in memory ("update", reduction collectives)
    #: or overwrite ("store", data-exchange collectives like all-to-all).
    op: str = "update"
    #: plan stage this route belongs to (profiler attribution).
    stage: str = "ring"

    def __post_init__(self) -> None:
        needs_dst = self.kind in (RouteKind.REMOTE_UPDATE,
                                  RouteKind.LOCAL_UPDATE)
        if needs_dst and self.dst_gpu is None:
            raise ValueError(f"{self.kind} route needs a destination GPU")
        if self.kind is RouteKind.LOCAL_TERMINAL and self.dst_gpu is not None:
            raise ValueError("terminal chunks stay local")
        if self.expected_updates < 1:
            raise ValueError("expected_updates must be >= 1")
        if self.op not in ("update", "store"):
            raise ValueError("route op must be 'update' or 'store'")

    @property
    def dma_command_id(self) -> Optional[str]:
        if self.kind is RouteKind.LOCAL_UPDATE:
            return f"dma.chunk{self.chunk_id}"
        return None


@dataclass(frozen=True)
class PlanStep:
    """One communication step of one rank.

    ``step`` indices are stage-local and 1-based; the sender's
    ``(stage, step)`` matches the receiver's, which is what the executor
    keys arrival events on.
    """

    step: int
    stage: str
    dst: int                      # rank the send goes to
    src: int                      # rank the receive comes from
    send_chunks: Tuple[int, ...]
    recv_chunks: Tuple[int, ...]


@dataclass
class RankPlan:
    """One rank's complete view of the collective."""

    rank: int
    steps: List[PlanStep] = field(default_factory=list)
    routes: Dict[int, ChunkRoute] = field(default_factory=dict)
    #: chunk ids in GEMM production order (staggered schedule).
    production_order: List[int] = field(default_factory=list)

    def terminal_chunks(self) -> List[int]:
        return sorted(cid for cid, route in self.routes.items()
                      if route.kind is RouteKind.LOCAL_TERMINAL)


@dataclass
class CollectivePlan:
    """Per-rank steps + routes + production orders for one collective."""

    op: CollectiveOp
    #: address-space pattern label ("ring-rs", "hier-rs", "direct-rs",
    #: "all-to-all", "all-gather") — what the fused driver dispatches on.
    collective: str
    n_ranks: int
    n_chunks: int
    #: stage names in execution order (("ring",) for flat plans).
    stage_names: Tuple[str, ...]
    split_k: int = 1
    ranks: List[RankPlan] = field(default_factory=list)

    # -- per-rank accessors -------------------------------------------------

    def rank_plan(self, rank: int) -> RankPlan:
        return self.ranks[rank]

    def steps(self, rank: int) -> List[PlanStep]:
        return self.ranks[rank].steps

    def routes(self, rank: int) -> Dict[int, ChunkRoute]:
        return self.ranks[rank].routes

    def production_order(self, rank: int) -> List[int]:
        return list(self.ranks[rank].production_order)

    def arrival_order(self, rank: int) -> List[int]:
        """Chunk ids in the order they become resident on ``rank`` (the
        consumer-fusion gating order): local chunks first, then receives
        in step order."""
        order = list(self.ranks[rank].terminal_chunks())
        seen = set(order)
        for step in self.ranks[rank].steps:
            for cid in step.recv_chunks:
                if cid not in seen:
                    seen.add(cid)
                    order.append(cid)
        return order

    def terminal_rank(self, chunk_id: int) -> int:
        """The rank on which ``chunk_id`` ends fully reduced."""
        for plan in self.ranks:
            if chunk_id in plan.terminal_chunks():
                return plan.rank
        raise ValueError(f"chunk {chunk_id} has no terminal owner")

    def chunk_sizes(self, nbytes_total: int) -> List[int]:
        """Byte count per chunk (balanced, summing to the payload)."""
        return split_evenly(nbytes_total, self.n_chunks)

    # -- repair / rebuild ---------------------------------------------------

    def relabeled(self, mapping: Dict[int, int]) -> "CollectivePlan":
        """A physically-relabelled copy: logical rank ``r``'s schedule
        runs on physical rank ``mapping[r]``.

        ``mapping`` must be a permutation of ``range(n_ranks)``.  Chunk
        ids are untouched — a chunk's terminal owner moves with its
        logical rank — and each rank's production order (chunk ids) is
        preserved, so the relabelled plan programs the same Tracker
        regions and DMA byte counts, just onto different physical links.
        This is the repair layer's core primitive: a ring *reversal*
        (``r -> -r mod N``) moves the whole collective onto the backward
        ring links (avoiding one degraded forward edge), and a *rotation*
        (``r -> r+c mod N``) re-seats which physical rank plays which
        logical role (straggler demotion).  Callers must re-``validate()``
        the result; relabelling preserves validity by construction.
        """
        n = self.n_ranks
        if sorted(mapping) != list(range(n)) \
                or sorted(mapping.values()) != list(range(n)):
            raise ValueError(
                f"relabel mapping must be a permutation of range({n}), "
                f"got {mapping!r}")
        new_ranks: List[Optional[RankPlan]] = [None] * n
        for plan in self.ranks:
            steps = [
                PlanStep(step=s.step, stage=s.stage, dst=mapping[s.dst],
                         src=mapping[s.src], send_chunks=s.send_chunks,
                         recv_chunks=s.recv_chunks)
                for s in plan.steps
            ]
            routes = {
                cid: ChunkRoute(
                    chunk_id=route.chunk_id, kind=route.kind,
                    dst_gpu=(None if route.dst_gpu is None
                             else mapping[route.dst_gpu]),
                    expected_updates=route.expected_updates,
                    op=route.op, stage=route.stage)
                for cid, route in plan.routes.items()
            }
            new_ranks[mapping[plan.rank]] = RankPlan(
                rank=mapping[plan.rank], steps=steps, routes=routes,
                production_order=list(plan.production_order))
        return CollectivePlan(
            op=self.op, collective=self.collective, n_ranks=n,
            n_chunks=self.n_chunks, stage_names=self.stage_names,
            split_k=self.split_k, ranks=list(new_ranks))

    # -- consistency --------------------------------------------------------

    def validate(self) -> None:
        """Cross-rank consistency: every send has a matching receive, every
        chunk is reduced exactly once, and every tracked expected-update
        count equals local split-K updates plus the contributions the
        *other* ranks' routes actually deliver here."""
        self._check_step_symmetry()
        if self.op is not CollectiveOp.ALL_GATHER:
            self._check_route_conservation()

    def _check_step_symmetry(self) -> None:
        recv_index: Dict[Tuple[int, str, int, int], Tuple[int, ...]] = {}
        for plan in self.ranks:
            for step in plan.steps:
                if step.recv_chunks:
                    key = (plan.rank, step.stage, step.step, step.src)
                    if key in recv_index:
                        raise AssertionError(
                            f"rank {plan.rank} receives twice at {key}")
                    recv_index[key] = step.recv_chunks
        for plan in self.ranks:
            for step in plan.steps:
                if not step.send_chunks:
                    continue
                key = (step.dst, step.stage, step.step, plan.rank)
                received = recv_index.get(key)
                if received is None or set(received) != set(step.send_chunks):
                    raise AssertionError(
                        f"rank {plan.rank} sends chunks {step.send_chunks} "
                        f"to rank {step.dst} at {step.stage} step "
                        f"{step.step}, but the receiver expects {received}")

    def _check_route_conservation(self) -> None:
        # Contributions each (rank, chunk) copy receives, re-derived from
        # every *other* rank's routes: a remote_map streams split_k
        # fine-grained updates, a dma_map delivers one reduced DMA.
        incoming: Dict[Tuple[int, int], int] = {}
        terminal_owner: Dict[int, int] = {}
        for plan in self.ranks:
            for cid, route in plan.routes.items():
                if route.op != "update":
                    # Plain stores (all-to-all) land in disjoint per-source
                    # buffers and are not Tracker-counted.
                    if route.kind is RouteKind.LOCAL_TERMINAL:
                        terminal_owner.setdefault(cid, plan.rank)
                    continue
                if route.kind is RouteKind.REMOTE_UPDATE:
                    key = (route.dst_gpu, cid)
                    incoming[key] = incoming.get(key, 0) + self.split_k
                elif route.kind is RouteKind.LOCAL_UPDATE:
                    key = (route.dst_gpu, cid)
                    incoming[key] = incoming.get(key, 0) + 1
                else:
                    if cid in terminal_owner:
                        raise AssertionError(
                            f"chunk {cid} reduced twice (ranks "
                            f"{terminal_owner[cid]} and {plan.rank})")
                    terminal_owner[cid] = plan.rank
        if self.collective != "all-to-all" and \
                set(terminal_owner) != set(range(self.n_chunks)):
            raise AssertionError(
                f"chunks {sorted(set(range(self.n_chunks)) - set(terminal_owner))} "
                "never reduced")
        for plan in self.ranks:
            for cid, route in plan.routes.items():
                if route.kind is RouteKind.REMOTE_UPDATE or \
                        route.op != "update":
                    continue
                expected = self.split_k + incoming.get((plan.rank, cid), 0)
                if route.expected_updates != expected:
                    raise AssertionError(
                        f"rank {plan.rank} chunk {cid} expects "
                        f"{route.expected_updates} updates but the other "
                        f"ranks' routes deliver {expected}")


# -- the ring convention (the only module allowed to spell it out) ----------


def ring_production_order(n_chunks: int, rank: int,
                          stagger: bool = True) -> List[int]:
    """Device ``rank``'s staggered chunk production order: the chunk its
    downstream neighbour needs first (``rank+1``) first, its own last."""
    if not stagger or n_chunks == 1:
        return list(range(n_chunks))
    order = [(rank + s) % n_chunks for s in range(1, n_chunks)]
    order.append(rank % n_chunks)
    return order


def _clamped_chunks(n_ranks: int, n_chunks: Optional[int],
                    max_chunks: Optional[int]) -> int:
    """Graceful chunk count: at most one chunk per rank, clamped to what
    the payload can actually be cut into (``max_chunks``)."""
    chunks = n_ranks if n_chunks is None else n_chunks
    if max_chunks is not None:
        chunks = min(chunks, max_chunks)
    if chunks < 1:
        raise ValueError("plans need at least one chunk")
    if chunks > n_ranks:
        raise ValueError(
            f"{chunks} chunks over {n_ranks} ranks: ring plans label "
            "chunks by final owner, so n_chunks <= n_ranks")
    return chunks


def _validate_ranks(n_ranks: int) -> None:
    if n_ranks < 2:
        raise ValueError("ring collectives need at least 2 devices")


def ring_reduce_scatter_plan(n_ranks: int, n_chunks: Optional[int] = None,
                             max_chunks: Optional[int] = None,
                             split_k: int = 1,
                             stagger: bool = True) -> CollectivePlan:
    """Flat ring reduce-scatter (Figures 7/11/12).

    With fewer chunks than ranks (graceful small-payload fallback) every
    chunk still traverses the full ring — every rank contributes its
    partial — but ranks ``>= n_chunks`` own no terminal chunk.
    """
    _validate_ranks(n_ranks)
    if split_k < 1:
        raise ValueError("split_k must be >= 1")
    chunks = _clamped_chunks(n_ranks, n_chunks, max_chunks)
    plan = CollectivePlan(op=CollectiveOp.REDUCE_SCATTER,
                          collective="ring-rs", n_ranks=n_ranks,
                          n_chunks=chunks, stage_names=("ring",),
                          split_k=split_k)
    for rank in range(n_ranks):
        downstream = (rank - 1) % n_ranks
        upstream = (rank + 1) % n_ranks
        steps: List[PlanStep] = []
        for s in range(1, n_ranks):
            send = (rank + s) % n_ranks
            recv = (rank + s + 1) % n_ranks
            sends = (send,) if send < chunks else ()
            recvs = (recv,) if recv < chunks else ()
            if sends or recvs:
                steps.append(PlanStep(step=s, stage="ring", dst=downstream,
                                      src=upstream, send_chunks=sends,
                                      recv_chunks=recvs))
        first = (rank + 1) % n_ranks       # remote-mapped downstream
        remote_fed = (rank + 2) % n_ranks  # receives upstream's remote_map

        def expected_for(cid: int) -> int:
            incoming = split_k if cid == remote_fed else 1
            return split_k + incoming

        routes: Dict[int, ChunkRoute] = {}
        for cid in range(chunks):
            if cid == first:
                routes[cid] = ChunkRoute(cid, RouteKind.REMOTE_UPDATE,
                                         dst_gpu=downstream)
            elif cid == rank % n_ranks:
                routes[cid] = ChunkRoute(cid, RouteKind.LOCAL_TERMINAL,
                                         expected_updates=expected_for(cid))
            else:
                routes[cid] = ChunkRoute(cid, RouteKind.LOCAL_UPDATE,
                                         dst_gpu=downstream,
                                         expected_updates=expected_for(cid))
        if stagger:
            order = sorted(range(chunks),
                           key=lambda c: (c - rank - 1) % n_ranks)
        else:
            order = list(range(chunks))
        plan.ranks.append(RankPlan(rank=rank, steps=steps, routes=routes,
                                   production_order=order))
    return plan


def ring_all_gather_plan(n_ranks: int) -> CollectivePlan:
    """Flat ring all-gather: forward the newest chunk each step; no
    routes (nothing reduces — the plan carries steps + arrival order)."""
    _validate_ranks(n_ranks)
    plan = CollectivePlan(op=CollectiveOp.ALL_GATHER,
                          collective="all-gather", n_ranks=n_ranks,
                          n_chunks=n_ranks, stage_names=("ring",))
    for rank in range(n_ranks):
        downstream = (rank - 1) % n_ranks
        upstream = (rank + 1) % n_ranks
        steps = [
            PlanStep(step=s, stage="ring", dst=downstream, src=upstream,
                     send_chunks=((rank + s - 1) % n_ranks,),
                     recv_chunks=((rank + s) % n_ranks,))
            for s in range(1, n_ranks)
        ]
        routes = {rank: ChunkRoute(rank, RouteKind.LOCAL_TERMINAL,
                                   op="store")}
        plan.ranks.append(RankPlan(rank=rank, steps=steps, routes=routes,
                                   production_order=list(range(n_ranks))))
    return plan


def direct_rs_plan(n_ranks: int) -> CollectivePlan:
    """Fully-connected direct reduce-scatter (Section 7.1): every foreign
    chunk is remote-mapped straight to its final owner."""
    if n_ranks < 2:
        raise ValueError("direct-RS needs at least 2 GPUs")
    plan = CollectivePlan(op=CollectiveOp.REDUCE_SCATTER,
                          collective="direct-rs", n_ranks=n_ranks,
                          n_chunks=n_ranks, stage_names=("direct",))
    for rank in range(n_ranks):
        steps = []
        for s in range(1, n_ranks):
            dst = (rank + s) % n_ranks
            src = (rank - s) % n_ranks
            steps.append(PlanStep(step=s, stage="direct", dst=dst, src=src,
                                  send_chunks=(dst,), recv_chunks=(rank,)))
        routes: Dict[int, ChunkRoute] = {}
        for cid in range(n_ranks):
            if cid == rank:
                routes[cid] = ChunkRoute(cid, RouteKind.LOCAL_TERMINAL,
                                         expected_updates=n_ranks,
                                         stage="direct")
            else:
                routes[cid] = ChunkRoute(cid, RouteKind.REMOTE_UPDATE,
                                         dst_gpu=cid, stage="direct")
        plan.ranks.append(RankPlan(rank=rank, steps=steps, routes=routes,
                                   production_order=list(range(n_ranks))))
    return plan


def all_to_all_plan(n_ranks: int) -> CollectivePlan:
    """Expert-parallel data exchange (Section 7.2): chunk ``c`` belongs to
    device ``c``; remote-mapped there as a plain store (no reduction)."""
    if n_ranks < 2:
        raise ValueError("all-to-all needs at least 2 GPUs")
    plan = CollectivePlan(op=CollectiveOp.ALL_TO_ALL,
                          collective="all-to-all", n_ranks=n_ranks,
                          n_chunks=n_ranks, stage_names=("direct",))
    for rank in range(n_ranks):
        steps = []
        for s in range(1, n_ranks):
            dst = (rank + s) % n_ranks
            src = (rank - s) % n_ranks
            steps.append(PlanStep(step=s, stage="direct", dst=dst, src=src,
                                  send_chunks=(dst,), recv_chunks=(rank,)))
        routes: Dict[int, ChunkRoute] = {}
        for cid in range(n_ranks):
            if cid == rank:
                routes[cid] = ChunkRoute(cid, RouteKind.LOCAL_TERMINAL,
                                         expected_updates=1, op="store",
                                         stage="direct")
            else:
                routes[cid] = ChunkRoute(cid, RouteKind.REMOTE_UPDATE,
                                         dst_gpu=cid, op="store",
                                         stage="direct")
        plan.ranks.append(RankPlan(rank=rank, steps=steps, routes=routes,
                                   production_order=list(range(n_ranks))))
    return plan


def hierarchical_rs_plan(n_nodes: int, gpus_per_node: int,
                         split_k: int = 1,
                         stagger: bool = True) -> CollectivePlan:
    """Two-phase reduce-scatter for a multi-node hierarchical ring.

    Chunks are labelled by final owner (chunk ``c`` ends on rank ``c``)
    and grouped by intra-node position: *group* ``j`` is the set of chunks
    ``{m*gpus_per_node + j}`` over all nodes ``m``.

    * **intra** phase — a ring-RS *within each node* over the groups as
      units: rank ``(k, g)`` forwards group ``(g+s) mod per`` at step
      ``s`` to its intra-node downstream neighbour ``(k, g-1)``.  Group
      ``g+1`` is remote-mapped (fine-grained producer stores over the
      link), later groups are dma-mapped.  After ``per-1`` steps rank
      ``(k, g)`` holds the node-local reduction of every position-``g``
      chunk.
    * **inter** phase — per-position rings *across the nodes* (the rail
      links): rank ``(k, g)`` forwards the chunk of node ``(k+s)`` at
      step ``s`` to rail-downstream ``(k-1, g)``.  After ``n_nodes-1``
      steps its own chunk is globally reduced.

    Degenerate shapes collapse to the flat ring plan: one node, or one
    GPU per node (where the ring over nodes *is* the flat ring).
    """
    if n_nodes < 1 or gpus_per_node < 1:
        raise ValueError("need at least one node and one GPU per node")
    n = n_nodes * gpus_per_node
    _validate_ranks(n)
    if split_k < 1:
        raise ValueError("split_k must be >= 1")
    if n_nodes == 1 or gpus_per_node == 1:
        return ring_reduce_scatter_plan(n, split_k=split_k, stagger=stagger)

    per = gpus_per_node
    plan = CollectivePlan(op=CollectiveOp.REDUCE_SCATTER,
                          collective="hier-rs", n_ranks=n, n_chunks=n,
                          stage_names=("intra", "inter"), split_k=split_k)

    def group(j: int, first_node: int) -> Tuple[int, ...]:
        """Position-``j`` chunks, rotated to start at ``first_node``."""
        return tuple(((first_node + m) % n_nodes) * per + j
                     for m in range(n_nodes))

    for rank in range(n):
        k, g = divmod(rank, per)
        intra_down = k * per + (g - 1) % per
        intra_up = k * per + (g + 1) % per
        rail_down = ((k - 1) % n_nodes) * per + g
        rail_up = ((k + 1) % n_nodes) * per + g

        steps: List[PlanStep] = []
        for s in range(1, per):
            steps.append(PlanStep(
                step=s, stage="intra", dst=intra_down, src=intra_up,
                send_chunks=group((g + s) % per, k),
                recv_chunks=group((g + s + 1) % per, k)))
        for s in range(1, n_nodes):
            steps.append(PlanStep(
                step=s, stage="inter", dst=rail_down, src=rail_up,
                send_chunks=(((k + s) % n_nodes) * per + g,),
                recv_chunks=(((k + s + 1) % n_nodes) * per + g,)))

        remote_group = (g + 1) % per       # remote-mapped intra-downstream
        remote_fed_group = (g + 2) % per   # fed by intra-upstream's remote_map

        def intra_in(j: int) -> int:
            return split_k if j == remote_fed_group else 1

        routes: Dict[int, ChunkRoute] = {}
        for j in range(per):
            for m in range(n_nodes):
                cid = m * per + j
                if j == remote_group:
                    routes[cid] = ChunkRoute(
                        cid, RouteKind.REMOTE_UPDATE, dst_gpu=intra_down,
                        stage="intra")
                elif j != g:
                    routes[cid] = ChunkRoute(
                        cid, RouteKind.LOCAL_UPDATE, dst_gpu=intra_down,
                        expected_updates=split_k + intra_in(j),
                        stage="intra")
                elif m == k:
                    # Own chunk: node-local reduction + the rail ring's
                    # final reduced DMA terminate here.
                    routes[cid] = ChunkRoute(
                        cid, RouteKind.LOCAL_TERMINAL,
                        expected_updates=split_k + intra_in(g) + 1,
                        stage="inter")
                elif m == (k + 1) % n_nodes:
                    # First inter-node hop of node (k+1)'s chunk: only the
                    # local node's reduction has landed when it fires.
                    routes[cid] = ChunkRoute(
                        cid, RouteKind.LOCAL_UPDATE, dst_gpu=rail_down,
                        expected_updates=split_k + intra_in(g),
                        stage="inter")
                else:
                    routes[cid] = ChunkRoute(
                        cid, RouteKind.LOCAL_UPDATE, dst_gpu=rail_down,
                        expected_updates=split_k + intra_in(g) + 1,
                        stage="inter")

        if stagger:
            # Groups in intra-ring consumption order, own group last; within
            # the own group, the chunk forwarded first (node k+1's) first.
            order: List[int] = []
            for s in range(1, per):
                order.extend(group((g + s) % per, k + 1))
            order.extend(group(g, k + 1))
        else:
            order = list(range(n))
        plan.ranks.append(RankPlan(rank=rank, steps=steps, routes=routes,
                                   production_order=order))
    return plan


def plan_for(topology, collective: str = "ring-rs",
             n_chunks: Optional[int] = None,
             max_chunks: Optional[int] = None,
             split_k: int = 1, stagger: bool = True) -> CollectivePlan:
    """Build the plan matching a live topology: hierarchical rings get the
    two-phase plan, everything else the flat pattern for ``collective``."""
    from repro.interconnect.topology import HierarchicalRingTopology

    n = topology.n_gpus
    if collective == "direct-rs":
        return direct_rs_plan(n)
    if collective == "all-to-all":
        return all_to_all_plan(n)
    if collective == "all-gather":
        return ring_all_gather_plan(n)
    if collective != "ring-rs":
        raise ValueError(f"unsupported fused collective {collective!r}")
    if isinstance(topology, HierarchicalRingTopology) \
            and 1 < topology.gpus_per_node < n:
        if max_chunks is not None and max_chunks < n:
            raise ValueError(
                f"hierarchical ring-RS over {n} ranks needs {n} chunks but "
                f"the payload only splits {max_chunks} ways — shrink the "
                "node count or enlarge the output")
        return hierarchical_rs_plan(n // topology.gpus_per_node,
                                    topology.gpus_per_node,
                                    split_k=split_k, stagger=stagger)
    return ring_reduce_scatter_plan(n, n_chunks=n_chunks,
                                    max_chunks=max_chunks,
                                    split_k=split_k, stagger=stagger)
