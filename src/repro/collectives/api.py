"""Collective types and closed-form cost models.

The closed forms serve three roles:

1. the "hardware measurement" reference of the Figure 14 validation (see
   DESIGN.md substitutions — we validate the event simulator against
   these the way the paper validates Accel-Sim against an MI210 node);
2. the *Ideal-GEMM-RS-Overlap* and *Ideal-RS+NMC* configurations
   (Section 5.3), which by definition use isolated kernel times with no
   contention;
3. quick analytic sweeps in the end-to-end model (Figure 4 / 19).

A ring collective over ``N`` devices moves ``N-1`` chunk-sized steps; each
step is limited by the slowest of link serialization, DRAM traffic, and
(for CU-driven reductions) CU reduce throughput.
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.config import SystemConfig


class CollectiveOp(enum.Enum):
    REDUCE_SCATTER = "reduce-scatter"
    ALL_GATHER = "all-gather"
    ALL_REDUCE = "all-reduce"
    ALL_TO_ALL = "all-to-all"


#: fixed software cost to launch a collective kernel / step bookkeeping.
DEFAULT_LAUNCH_OVERHEAD_NS = 2_000.0


def _step_bytes(nbytes_total: int, n_gpus: int) -> float:
    if nbytes_total <= 0:
        raise ValueError("collective payload must be positive")
    if n_gpus < 2:
        raise ValueError("collectives need at least 2 devices")
    return nbytes_total / n_gpus


def ring_rs_time(nbytes_total: int, system: SystemConfig,
                 n_cus: Optional[int] = None,
                 launch_overhead_ns: float = DEFAULT_LAUNCH_OVERHEAD_NS,
                 ) -> float:
    """CU-driven ring reduce-scatter time (baseline, Figure 10a).

    Per steady step each GPU reads 2 chunk copies, reduces on ``n_cus``
    CUs, and streams the result to its neighbour; the final incoming chunk
    is reduced and written locally.
    """
    n = system.n_gpus
    chunk = _step_bytes(nbytes_total, n)
    link = chunk / system.link.bandwidth
    mem = 3.0 * chunk / system.memory.effective_bandwidth
    cu = 3.0 * chunk / system.compute.reduce_bandwidth(n_cus)
    step = max(link, mem, cu)
    final_reduce = max(
        3.0 * chunk / system.memory.effective_bandwidth,
        3.0 * chunk / system.compute.reduce_bandwidth(n_cus),
    )
    return (
        launch_overhead_ns
        + (n - 1) * step
        + system.link.latency_ns
        + final_reduce
    )


def rs_with_nmc_time(nbytes_total: int, system: SystemConfig,
                     launch_overhead_ns: float = DEFAULT_LAUNCH_OVERHEAD_NS,
                     ) -> float:
    """Ring-RS when reductions happen near memory (Ideal-RS+NMC).

    NMC removes the CU reduce stage and the final step's read-reduce-write
    round trip: arriving updates reduce in DRAM, so only one read per
    steady step (to forward the chunk) remains.
    """
    n = system.n_gpus
    chunk = _step_bytes(nbytes_total, n)
    link = chunk / system.link.bandwidth
    # one read to forward + one NMC update (at CCDWL) of the incoming copy.
    mem = (
        chunk / system.memory.effective_bandwidth
        + chunk * system.memory.nmc_ccdwl_factor / system.memory.effective_bandwidth
    )
    step = max(link, mem)
    return launch_overhead_ns + (n - 1) * step + system.link.latency_ns


def ring_ag_time(nbytes_total: int, system: SystemConfig,
                 launch_overhead_ns: float = DEFAULT_LAUNCH_OVERHEAD_NS,
                 ) -> float:
    """Ring all-gather: N-1 forwarding steps, no reduction."""
    n = system.n_gpus
    chunk = _step_bytes(nbytes_total, n)
    link = chunk / system.link.bandwidth
    mem = 2.0 * chunk / system.memory.effective_bandwidth  # read + write per step
    step = max(link, mem)
    return launch_overhead_ns + (n - 1) * step + system.link.latency_ns


def all_to_all_time(nbytes_total: int, system: SystemConfig,
                    launch_overhead_ns: float = DEFAULT_LAUNCH_OVERHEAD_NS,
                    ) -> float:
    """All-to-all personalized exchange on the ring substrate.

    Each GPU keeps its own ``1/N`` shard and exchanges the remaining
    ``(N-1)/N`` of its payload pairwise with every peer — unlike a ring
    all-gather there is no forwarding, so the exchanged volume does not
    scale with ``N-1`` steps.  Two limits bound the time:

    * **injection**: a GPU serializes its ``(N-1)/N`` outgoing bytes onto
      its links;
    * **bisection**: pairwise shards crossing the ring cut share the two
      bisection links.  ``cross_pairs = floor(N/2) * ceil(N/2)`` ordered
      pairs cross in each direction, each carrying a ``1/N`` shard over
      the ``2`` links of that cut direction.

    DRAM pays one read and one write of the exchanged volume.
    """
    n = system.n_gpus
    shard = _step_bytes(nbytes_total, n)  # validates payload / device count
    exchanged = nbytes_total - shard      # (N-1)/N of the payload
    inject = exchanged / system.link.bandwidth
    cross_pairs = (n // 2) * ((n + 1) // 2)
    bisection = cross_pairs * shard / (2.0 * system.link.bandwidth)
    mem = 2.0 * exchanged / system.memory.effective_bandwidth
    return (
        launch_overhead_ns
        + max(inject, bisection, mem)
        + system.link.latency_ns
    )


def ring_ar_time(nbytes_total: int, system: SystemConfig,
                 n_cus: Optional[int] = None,
                 launch_overhead_ns: float = DEFAULT_LAUNCH_OVERHEAD_NS,
                 ) -> float:
    """Ring all-reduce = ring-RS followed by ring-AG (Section 2.3)."""
    return (
        ring_rs_time(nbytes_total, system, n_cus=n_cus,
                     launch_overhead_ns=launch_overhead_ns)
        + ring_ag_time(nbytes_total, system,
                       launch_overhead_ns=launch_overhead_ns)
    )


def rs_wire_bytes_per_gpu(nbytes_total: int, n_gpus: int) -> float:
    """Bytes each GPU puts on the wire during a ring-RS."""
    return _step_bytes(nbytes_total, n_gpus) * (n_gpus - 1)


def collective_time(op: CollectiveOp, nbytes_total: int,
                    system: SystemConfig, **kwargs) -> float:
    """Dispatch helper for the analytic models."""
    if op is CollectiveOp.REDUCE_SCATTER:
        return ring_rs_time(nbytes_total, system, **kwargs)
    if op is CollectiveOp.ALL_GATHER:
        return ring_ag_time(nbytes_total, system, **kwargs)
    if op is CollectiveOp.ALL_REDUCE:
        return ring_ar_time(nbytes_total, system, **kwargs)
    if op is CollectiveOp.ALL_TO_ALL:
        kwargs.pop("n_cus", None)  # no CU reduction in a pure exchange
        return all_to_all_time(nbytes_total, system, **kwargs)
    raise ValueError(f"unsupported collective {op}")
