"""Baseline CU-driven collective kernels (what T3 replaces).

These model today's GPU collectives (Figure 10a): GPU compute units read
operand copies from DRAM, reduce them, and stream results over the ring —
competing with any concurrent kernel for CUs and memory bandwidth.

The run is co-simulated across every GPU of the topology.  Synchronization
is by data arrival: step ``s`` on a rank cannot start until the chunk sent
to it at step ``s-1`` has fully landed in its DRAM.  Within a step, reads,
CU reduction, link serialization and remote writes are pipelined at the
simulation quantum, so each step's duration converges to its bottleneck
(link, DRAM or CU throughput) — the property the Figure 6 CU-sharing study
depends on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.collectives.plan import CollectivePlan, plan_for
from repro.collectives.schedule import (
    chunk_sizes,
    ring_ag_schedule,
    ring_rs_schedule,
)
from repro.interconnect.topology import RingTopology, Topology
from repro.memory.request import AccessKind, Stream
from repro.sim.engine import BaseEvent, Process
from repro.sim.machines import CallbackMachine, CompletionGroup
from repro.sim.primitives import Resource


@dataclass
class CollectiveResult:
    """Timing of one co-simulated collective."""

    start: float = 0.0
    end: float = 0.0
    per_rank_end: Dict[int, float] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start


class _QuantumMachine(CallbackMachine):
    """Callback state machine for one pipelined quantum: operand reads →
    CU reduction → link serialization → remote writes.

    The event-driven replacement for the former ``_quantum_proc``
    generator process — by far the most-instantiated process in the
    simulator.  The machine subclasses :class:`BaseEvent` and re-arms
    *itself* for every stage boundary (boot, reads-complete,
    writes-complete, completion) and for the CU hold interval, so one
    recycled object replaces the process + boot event + two ``AllOf``
    composites + per-child closures the generator version allocated per
    quantum.  Every boundary is scheduled at exactly the slot the
    generator version's event occupied (see ``repro.sim.machines``), so
    firing order — and therefore every DRAM arbitration decision — is
    bit-identical to the process version (``scripts/smoke_engine.py``
    enforces this).

    Callers guarantee ``read_bytes`` and ``cu_bytes`` are positive (every
    ring step reads at least the local copy and reduces it).
    """

    __slots__ = ("coll", "rank", "dst_rank", "nbytes", "read_bytes",
                 "cu_bytes", "reduce_unit", "cu_bw", "chunk_id", "group",
                 "_stage", "_pending", "_hold")

    def __init__(self, coll: "_RingCollectiveBase", rank: int, dst_rank: int,
                 nbytes: int, read_bytes: int, cu_bytes: int,
                 reduce_unit: Resource, cu_bw: float,
                 chunk_id: Optional[int], group: CompletionGroup):
        super().__init__(coll.env)
        self.coll = coll
        self.rank = rank
        self.dst_rank = dst_rank
        self.nbytes = nbytes
        self.read_bytes = read_bytes
        self.cu_bytes = cu_bytes
        self.reduce_unit = reduce_unit
        self.cu_bw = cu_bw
        self.chunk_id = chunk_id
        self.group = group
        self._stage = 0
        self._pending = 0
        self._hold = 0.0

    def _advance(self, _event: BaseEvent) -> None:
        stage = self._stage
        if stage == 0:
            # Booted: issue the operand reads.
            self._stage = 1
            coll = self.coll
            reads = coll.topo.gpus[self.rank].mc.submit_bulk(
                AccessKind.READ, Stream.COMPUTE, self.read_bytes, coll.label)
            self._pending = len(reads)
            cb = self._read_done
            for ev in reads:
                ev.add_callback(cb)
        elif stage == 1:
            # Reads landed: queue for the CU reduce unit.
            self._stage = 2
            env = self.env
            hold = self.cu_bytes / self.cu_bw
            if env.faults is not None and env.faults.has_compute_faults:
                # Straggler seam: the CU reduction of a slowed GPU paces
                # its ring step exactly like a slowed GEMM wave.
                hold *= env.faults.compute_factor(
                    self.coll.topo.gpus[self.rank].gpu_id, env._now)
            self._hold = hold
            self.reduce_unit.request().add_callback(self._granted)
        elif stage == 2:
            # CU hold elapsed: release the unit, go on the wire.
            coll = self.coll
            self.reduce_unit.release()
            dst_gpu_id = coll.topo.gpus[self.dst_rank].gpu_id
            coll.topo.gpus[self.rank].link_to(dst_gpu_id) \
                .transfer(self.nbytes).add_callback(self._arrived)
        elif stage == 3:
            # Writes landed (the slot the writes-AllOf used to fire in).
            self._stage = 4
            self._arm()
        else:
            # Completion slot (the former process-completion event).
            self.group.done_one()

    def _read_done(self, _event: BaseEvent) -> None:
        self._pending -= 1
        if not self._pending:
            self._arm()

    def _granted(self, _event: BaseEvent) -> None:
        self._arm(self._hold)

    def _arrived(self, _event: BaseEvent) -> None:
        # Arriving writes are tagged with the chunk they deliver, so a T3
        # Tracker at the receiver can gate consumers on chunk arrival
        # (Section 7.2).
        coll = self.coll
        writes = coll.topo.gpus[self.dst_rank].mc.submit_bulk(
            AccessKind.WRITE, Stream.COMM, self.nbytes, coll.label,
            wg_id=self.chunk_id, chunk_id=self.chunk_id)
        self._pending = len(writes)
        cb = self._write_done
        for ev in writes:
            ev.add_callback(cb)

    def _write_done(self, _event: BaseEvent) -> None:
        self._pending -= 1
        if not self._pending:
            self._stage = 3
            self._arm()


class _RingCollectiveBase:
    """Shared machinery for baseline ring collectives."""

    label = "collective"

    def __init__(self, topology: RingTopology, nbytes_total: int,
                 n_cus: Optional[int] = None,
                 launch_overhead_ns: float = 2_000.0):
        self.topo = topology
        self.env = topology.env
        self.system = topology.system
        self.nbytes_total = nbytes_total
        self.n_cus = n_cus
        self.launch_overhead_ns = launch_overhead_ns
        n = topology.n_gpus
        self.chunks = chunk_sizes(nbytes_total, n)
        #: incoming[rank][step] fires when the chunk sent to ``rank`` at
        #: ``step`` has fully landed in its DRAM.
        self._incoming: List[Dict[int, BaseEvent]] = [
            {s: BaseEvent(self.env) for s in range(1, n)} for _ in range(n)
        ]
        self.result = CollectiveResult()

    # -- per-quantum pipeline -------------------------------------------------

    def _quanta(self, nbytes: int) -> List[int]:
        quantum = self.system.fidelity.quantum_bytes
        full, rem = divmod(nbytes, quantum)
        sizes = [quantum] * full
        if rem:
            sizes.append(rem)
        return sizes

    def _send_chunk(self, rank: int, step: int, chunk_bytes: int,
                    read_factor: int, cu_factor: int,
                    reduce_unit: Resource, cu_bw: float,
                    chunk_id: Optional[int] = None):
        """Pipeline one chunk to the downstream neighbour; returns when it
        has fully landed there, then fires the receiver's incoming event."""
        dst_rank = self.topo.next_gpu(rank)
        quanta = self._quanta(chunk_bytes)
        group = CompletionGroup(self.env, len(quanta))
        for q in quanta:
            _QuantumMachine(
                self, rank, dst_rank, q, read_factor * q, cu_factor * q,
                reduce_unit, cu_bw, chunk_id, group).start()
        yield group
        self._incoming[dst_rank][step].succeed()

    # -- orchestration -----------------------------------------------------------

    def _rank_proc(self, rank: int):
        raise NotImplementedError

    def launch(self) -> List[Process]:
        self.result.start = self.env.now
        return [
            self.env.process(self._rank_proc(rank),
                             name=f"{self.label}.rank{rank}")
            for rank in range(self.topo.n_gpus)
        ]

    def run(self) -> CollectiveResult:
        """Launch on all ranks and simulate to completion."""
        procs = self.launch()
        done = self.env.all_of(procs)
        self.env.run()
        if not done.fired:
            raise RuntimeError(
                f"{self.label} deadlocked: some rank never finished")
        self.result.end = self.env.now
        return self.result

    def _cu_bandwidth(self) -> float:
        return self.system.compute.reduce_bandwidth(self.n_cus)


class RingReduceScatter(_RingCollectiveBase):
    """Baseline ring reduce-scatter (Figures 3 and 10a)."""

    label = "rs"

    def _rank_proc(self, rank: int):
        env = self.env
        gpu = self.topo.gpus[rank]
        n = self.topo.n_gpus
        yield env.timeout(self.launch_overhead_ns)
        reduce_unit = Resource(env, 1, name=f"rs.cu.{rank}")
        cu_bw = self._cu_bandwidth()

        for ring_step in ring_rs_schedule(n, rank):
            if ring_step.step >= 2:
                # Need the partial received in the previous step.
                yield self._incoming[rank][ring_step.step - 1]
            chunk_bytes = self.chunks[ring_step.send_chunk]
            # Step 1 reads only the fresh local copy; steady steps read the
            # local copy plus the received partial (2 copies, Figure 10a).
            read_factor = 1 if ring_step.step == 1 else 2
            yield from self._send_chunk(
                rank, ring_step.step, chunk_bytes,
                read_factor=read_factor, cu_factor=read_factor + 1,
                reduce_unit=reduce_unit, cu_bw=cu_bw)

        # Final local reduction of this rank's own chunk.
        yield self._incoming[rank][n - 1]
        own = self.chunks[rank]
        reads = gpu.mc.submit_bulk(
            AccessKind.READ, Stream.COMPUTE, 2 * own, self.label)
        yield env.all_of(reads)
        yield from reduce_unit.acquire(hold=3 * own / cu_bw)
        writes = gpu.mc.submit_bulk(
            AccessKind.WRITE, Stream.COMPUTE, own, self.label)
        yield env.all_of(writes)
        self.result.per_rank_end[rank] = env.now


class RingAllGather(_RingCollectiveBase):
    """Baseline ring all-gather: pure forwarding, no reduction."""

    label = "ag"

    def _rank_proc(self, rank: int):
        env = self.env
        n = self.topo.n_gpus
        yield env.timeout(self.launch_overhead_ns)
        copy_unit = Resource(env, 1, name=f"ag.cu.{rank}")
        cu_bw = self._cu_bandwidth()

        for ring_step in ring_ag_schedule(n, rank):
            if ring_step.step >= 2:
                yield self._incoming[rank][ring_step.step - 1]
            chunk_bytes = self.chunks[ring_step.send_chunk]
            yield from self._send_chunk(
                rank, ring_step.step, chunk_bytes,
                read_factor=1, cu_factor=2,
                reduce_unit=copy_unit, cu_bw=cu_bw,
                chunk_id=ring_step.send_chunk)
        self.result.per_rank_end[rank] = env.now


class PlannedReduceScatter(_RingCollectiveBase):
    """CU-driven reduce-scatter executing an arbitrary
    :class:`~repro.collectives.plan.CollectivePlan`.

    Where :class:`RingReduceScatter` is hard-wired to the flat single-ring
    schedule, this executor walks the plan's per-rank step lists —
    including the hierarchical two-phase (intra-node ring, then
    per-position inter-node rings) plan — with the same quantum-pipelined
    read/reduce/link/write cost model.  On a flat ring plan it reproduces
    :class:`RingReduceScatter`'s behaviour; it exists so the scale-out
    experiments have an apples-to-apples Sequential baseline on any
    topology.
    """

    label = "rs"

    def __init__(self, topology: Topology, nbytes_total: int,
                 plan: Optional[CollectivePlan] = None,
                 n_cus: Optional[int] = None,
                 launch_overhead_ns: float = 2_000.0):
        if plan is None:
            plan = plan_for(topology, "ring-rs")
        if plan.n_ranks != topology.n_gpus:
            raise ValueError(
                f"plan covers {plan.n_ranks} ranks but the topology has "
                f"{topology.n_gpus}")
        self.topo = topology
        self.env = topology.env
        self.system = topology.system
        self.nbytes_total = nbytes_total
        self.n_cus = n_cus
        self.launch_overhead_ns = launch_overhead_ns
        self.plan = plan
        self.chunks = chunk_sizes(nbytes_total, plan.n_chunks)
        #: arrival[(rank, stage, step, chunk)] fires when that chunk's
        #: contribution has fully landed in ``rank``'s DRAM.
        self._arrivals: Dict[Tuple[int, str, int, int], BaseEvent] = {}
        for rank in range(plan.n_ranks):
            for step in plan.steps(rank):
                for cid in step.recv_chunks:
                    self._arrivals[(rank, step.stage, step.step, cid)] = \
                        BaseEvent(self.env)
        self.result = CollectiveResult()

    def _send_group(self, rank: int, dst_rank: int, stage: str, step: int,
                    chunk_ids: Tuple[int, ...], read_factor: int,
                    reduce_unit: Resource, cu_bw: float):
        group = CompletionGroup(self.env)
        for cid in chunk_ids:
            for q in self._quanta(self.chunks[cid]):
                group.expect()
                _QuantumMachine(
                    self, rank, dst_rank, q, read_factor * q,
                    (read_factor + 1) * q, reduce_unit, cu_bw, cid,
                    group).start()
        yield group
        for cid in chunk_ids:
            self._arrivals[(dst_rank, stage, step, cid)].succeed()

    def _rank_proc(self, rank: int):
        env = self.env
        gpu = self.topo.gpus[rank]
        rank_plan = self.plan.rank_plan(rank)
        yield env.timeout(self.launch_overhead_ns)
        reduce_unit = Resource(env, 1, name=f"rs.cu.{rank}")
        cu_bw = self._cu_bandwidth()

        #: copies held per chunk (1 local + received partials): paces the
        #: read/reduce cost of each forward, as in Figure 10a.
        copies = {cid: 1 for cid in range(self.plan.n_chunks)}
        pending: Dict[int, List[BaseEvent]] = {}
        for step in rank_plan.steps:
            if step.send_chunks:
                deps = [ev for cid in step.send_chunks
                        for ev in pending.pop(cid, [])]
                if deps:
                    yield env.all_of(deps)
                read_factor = copies[step.send_chunks[0]]
                yield from self._send_group(
                    rank, step.dst, step.stage, step.step, step.send_chunks,
                    read_factor, reduce_unit, cu_bw)
            for cid in step.recv_chunks:
                pending.setdefault(cid, []).append(
                    self._arrivals[(rank, step.stage, step.step, cid)])
                copies[cid] += 1

        # Final local reduction of any chunk that terminates here.
        for cid in rank_plan.terminal_chunks():
            deps = pending.pop(cid, [])
            if deps:
                yield env.all_of(deps)
            own = self.chunks[cid]
            held = copies[cid]
            reads = gpu.mc.submit_bulk(
                AccessKind.READ, Stream.COMPUTE, held * own, self.label)
            yield env.all_of(reads)
            yield from reduce_unit.acquire(hold=(held + 1) * own / cu_bw)
            writes = gpu.mc.submit_bulk(
                AccessKind.WRITE, Stream.COMPUTE, own, self.label)
            yield env.all_of(writes)
        self.result.per_rank_end[rank] = env.now


class RingAllReduce:
    """Baseline all-reduce = ring-RS followed by ring-AG (Section 2.3)."""

    label = "ar"

    def __init__(self, topology: RingTopology, nbytes_total: int,
                 n_cus: Optional[int] = None,
                 launch_overhead_ns: float = 2_000.0):
        self.topo = topology
        self.nbytes_total = nbytes_total
        self.n_cus = n_cus
        self.launch_overhead_ns = launch_overhead_ns
        self.rs_result: Optional[CollectiveResult] = None
        self.ag_result: Optional[CollectiveResult] = None

    def run(self) -> CollectiveResult:
        start = self.topo.env.now
        rs = RingReduceScatter(
            self.topo, self.nbytes_total, n_cus=self.n_cus,
            launch_overhead_ns=self.launch_overhead_ns)
        self.rs_result = rs.run()
        ag = RingAllGather(
            self.topo, self.nbytes_total, n_cus=self.n_cus,
            launch_overhead_ns=self.launch_overhead_ns)
        self.ag_result = ag.run()
        return CollectiveResult(start=start, end=self.topo.env.now)
