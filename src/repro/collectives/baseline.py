"""Baseline CU-driven collective kernels (what T3 replaces).

These model today's GPU collectives (Figure 10a): GPU compute units read
operand copies from DRAM, reduce them, and stream results over the ring —
competing with any concurrent kernel for CUs and memory bandwidth.

The run is co-simulated across every GPU of the topology.  Synchronization
is by data arrival: step ``s`` on a rank cannot start until the chunk sent
to it at step ``s-1`` has fully landed in its DRAM.  Within a step, reads,
CU reduction, link serialization and remote writes are pipelined at the
simulation quantum, so each step's duration converges to its bottleneck
(link, DRAM or CU throughput) — the property the Figure 6 CU-sharing study
depends on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.collectives.plan import CollectivePlan, plan_for
from repro.collectives.schedule import (
    chunk_sizes,
    ring_ag_schedule,
    ring_rs_schedule,
)
from repro.interconnect.topology import RingTopology, Topology
from repro.memory.request import AccessKind, Stream
from repro.sim.engine import BaseEvent, Process
from repro.sim.primitives import Resource


@dataclass
class CollectiveResult:
    """Timing of one co-simulated collective."""

    start: float = 0.0
    end: float = 0.0
    per_rank_end: Dict[int, float] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start


class _RingCollectiveBase:
    """Shared machinery for baseline ring collectives."""

    label = "collective"

    def __init__(self, topology: RingTopology, nbytes_total: int,
                 n_cus: Optional[int] = None,
                 launch_overhead_ns: float = 2_000.0):
        self.topo = topology
        self.env = topology.env
        self.system = topology.system
        self.nbytes_total = nbytes_total
        self.n_cus = n_cus
        self.launch_overhead_ns = launch_overhead_ns
        n = topology.n_gpus
        self.chunks = chunk_sizes(nbytes_total, n)
        #: incoming[rank][step] fires when the chunk sent to ``rank`` at
        #: ``step`` has fully landed in its DRAM.
        self._incoming: List[Dict[int, BaseEvent]] = [
            {s: BaseEvent(self.env) for s in range(1, n)} for _ in range(n)
        ]
        self.result = CollectiveResult()

    # -- per-quantum pipeline -------------------------------------------------

    def _quanta(self, nbytes: int) -> List[int]:
        quantum = self.system.fidelity.quantum_bytes
        full, rem = divmod(nbytes, quantum)
        sizes = [quantum] * full
        if rem:
            sizes.append(rem)
        return sizes

    def _quantum_proc(self, rank: int, dst_rank: int, nbytes: int,
                      read_bytes: int, cu_bytes: int,
                      reduce_unit: Resource, cu_bw: float,
                      chunk_id: Optional[int] = None):
        gpu = self.topo.gpus[rank]
        if read_bytes:
            reads = gpu.mc.submit_bulk(
                AccessKind.READ, Stream.COMPUTE, read_bytes, self.label)
            if reads:
                yield self.env.all_of(reads)
        if cu_bytes:
            hold = cu_bytes / cu_bw
            if self.env.faults is not None:
                # Straggler seam: the CU reduction of a slowed GPU paces
                # its ring step exactly like a slowed GEMM wave.
                hold *= self.env.faults.compute_factor(gpu.gpu_id,
                                                      self.env.now)
            yield from reduce_unit.acquire(hold=hold)
        yield gpu.link_to(self.topo.gpus[dst_rank].gpu_id).transfer(nbytes)
        # Arriving writes are tagged with the chunk they deliver, so a T3
        # Tracker at the receiver can gate consumers on chunk arrival
        # (Section 7.2).
        writes = self.topo.gpus[dst_rank].mc.submit_bulk(
            AccessKind.WRITE, Stream.COMM, nbytes, self.label,
            wg_id=chunk_id, chunk_id=chunk_id)
        if writes:
            yield self.env.all_of(writes)

    def _send_chunk(self, rank: int, step: int, chunk_bytes: int,
                    read_factor: int, cu_factor: int,
                    reduce_unit: Resource, cu_bw: float,
                    chunk_id: Optional[int] = None):
        """Pipeline one chunk to the downstream neighbour; returns when it
        has fully landed there, then fires the receiver's incoming event."""
        dst_rank = self.topo.next_gpu(rank)
        procs: List[Process] = []
        for q in self._quanta(chunk_bytes):
            procs.append(self.env.process(
                self._quantum_proc(
                    rank, dst_rank, q, read_factor * q, cu_factor * q,
                    reduce_unit, cu_bw, chunk_id=chunk_id),
                name=f"{self.label}.r{rank}.s{step}.q",
            ))
        yield self.env.all_of(procs)
        self._incoming[dst_rank][step].succeed()

    # -- orchestration -----------------------------------------------------------

    def _rank_proc(self, rank: int):
        raise NotImplementedError

    def launch(self) -> List[Process]:
        self.result.start = self.env.now
        return [
            self.env.process(self._rank_proc(rank),
                             name=f"{self.label}.rank{rank}")
            for rank in range(self.topo.n_gpus)
        ]

    def run(self) -> CollectiveResult:
        """Launch on all ranks and simulate to completion."""
        procs = self.launch()
        done = self.env.all_of(procs)
        self.env.run()
        if not done.fired:
            raise RuntimeError(
                f"{self.label} deadlocked: some rank never finished")
        self.result.end = self.env.now
        return self.result

    def _cu_bandwidth(self) -> float:
        return self.system.compute.reduce_bandwidth(self.n_cus)


class RingReduceScatter(_RingCollectiveBase):
    """Baseline ring reduce-scatter (Figures 3 and 10a)."""

    label = "rs"

    def _rank_proc(self, rank: int):
        env = self.env
        gpu = self.topo.gpus[rank]
        n = self.topo.n_gpus
        yield env.timeout(self.launch_overhead_ns)
        reduce_unit = Resource(env, 1, name=f"rs.cu.{rank}")
        cu_bw = self._cu_bandwidth()

        for ring_step in ring_rs_schedule(n, rank):
            if ring_step.step >= 2:
                # Need the partial received in the previous step.
                yield self._incoming[rank][ring_step.step - 1]
            chunk_bytes = self.chunks[ring_step.send_chunk]
            # Step 1 reads only the fresh local copy; steady steps read the
            # local copy plus the received partial (2 copies, Figure 10a).
            read_factor = 1 if ring_step.step == 1 else 2
            yield from self._send_chunk(
                rank, ring_step.step, chunk_bytes,
                read_factor=read_factor, cu_factor=read_factor + 1,
                reduce_unit=reduce_unit, cu_bw=cu_bw)

        # Final local reduction of this rank's own chunk.
        yield self._incoming[rank][n - 1]
        own = self.chunks[rank]
        reads = gpu.mc.submit_bulk(
            AccessKind.READ, Stream.COMPUTE, 2 * own, self.label)
        yield env.all_of(reads)
        yield from reduce_unit.acquire(hold=3 * own / cu_bw)
        writes = gpu.mc.submit_bulk(
            AccessKind.WRITE, Stream.COMPUTE, own, self.label)
        yield env.all_of(writes)
        self.result.per_rank_end[rank] = env.now


class RingAllGather(_RingCollectiveBase):
    """Baseline ring all-gather: pure forwarding, no reduction."""

    label = "ag"

    def _rank_proc(self, rank: int):
        env = self.env
        n = self.topo.n_gpus
        yield env.timeout(self.launch_overhead_ns)
        copy_unit = Resource(env, 1, name=f"ag.cu.{rank}")
        cu_bw = self._cu_bandwidth()

        for ring_step in ring_ag_schedule(n, rank):
            if ring_step.step >= 2:
                yield self._incoming[rank][ring_step.step - 1]
            chunk_bytes = self.chunks[ring_step.send_chunk]
            yield from self._send_chunk(
                rank, ring_step.step, chunk_bytes,
                read_factor=1, cu_factor=2,
                reduce_unit=copy_unit, cu_bw=cu_bw,
                chunk_id=ring_step.send_chunk)
        self.result.per_rank_end[rank] = env.now


class PlannedReduceScatter(_RingCollectiveBase):
    """CU-driven reduce-scatter executing an arbitrary
    :class:`~repro.collectives.plan.CollectivePlan`.

    Where :class:`RingReduceScatter` is hard-wired to the flat single-ring
    schedule, this executor walks the plan's per-rank step lists —
    including the hierarchical two-phase (intra-node ring, then
    per-position inter-node rings) plan — with the same quantum-pipelined
    read/reduce/link/write cost model.  On a flat ring plan it reproduces
    :class:`RingReduceScatter`'s behaviour; it exists so the scale-out
    experiments have an apples-to-apples Sequential baseline on any
    topology.
    """

    label = "rs"

    def __init__(self, topology: Topology, nbytes_total: int,
                 plan: Optional[CollectivePlan] = None,
                 n_cus: Optional[int] = None,
                 launch_overhead_ns: float = 2_000.0):
        if plan is None:
            plan = plan_for(topology, "ring-rs")
        if plan.n_ranks != topology.n_gpus:
            raise ValueError(
                f"plan covers {plan.n_ranks} ranks but the topology has "
                f"{topology.n_gpus}")
        self.topo = topology
        self.env = topology.env
        self.system = topology.system
        self.nbytes_total = nbytes_total
        self.n_cus = n_cus
        self.launch_overhead_ns = launch_overhead_ns
        self.plan = plan
        self.chunks = chunk_sizes(nbytes_total, plan.n_chunks)
        #: arrival[(rank, stage, step, chunk)] fires when that chunk's
        #: contribution has fully landed in ``rank``'s DRAM.
        self._arrivals: Dict[Tuple[int, str, int, int], BaseEvent] = {}
        for rank in range(plan.n_ranks):
            for step in plan.steps(rank):
                for cid in step.recv_chunks:
                    self._arrivals[(rank, step.stage, step.step, cid)] = \
                        BaseEvent(self.env)
        self.result = CollectiveResult()

    def _send_group(self, rank: int, dst_rank: int, stage: str, step: int,
                    chunk_ids: Tuple[int, ...], read_factor: int,
                    reduce_unit: Resource, cu_bw: float):
        procs: List[Process] = []
        for cid in chunk_ids:
            for q in self._quanta(self.chunks[cid]):
                procs.append(self.env.process(
                    self._quantum_proc(
                        rank, dst_rank, q, read_factor * q,
                        (read_factor + 1) * q, reduce_unit, cu_bw,
                        chunk_id=cid),
                    name=f"{self.label}.r{rank}.{stage}{step}.q",
                ))
        yield self.env.all_of(procs)
        for cid in chunk_ids:
            self._arrivals[(dst_rank, stage, step, cid)].succeed()

    def _rank_proc(self, rank: int):
        env = self.env
        gpu = self.topo.gpus[rank]
        rank_plan = self.plan.rank_plan(rank)
        yield env.timeout(self.launch_overhead_ns)
        reduce_unit = Resource(env, 1, name=f"rs.cu.{rank}")
        cu_bw = self._cu_bandwidth()

        #: copies held per chunk (1 local + received partials): paces the
        #: read/reduce cost of each forward, as in Figure 10a.
        copies = {cid: 1 for cid in range(self.plan.n_chunks)}
        pending: Dict[int, List[BaseEvent]] = {}
        for step in rank_plan.steps:
            if step.send_chunks:
                deps = [ev for cid in step.send_chunks
                        for ev in pending.pop(cid, [])]
                if deps:
                    yield env.all_of(deps)
                read_factor = copies[step.send_chunks[0]]
                yield from self._send_group(
                    rank, step.dst, step.stage, step.step, step.send_chunks,
                    read_factor, reduce_unit, cu_bw)
            for cid in step.recv_chunks:
                pending.setdefault(cid, []).append(
                    self._arrivals[(rank, step.stage, step.step, cid)])
                copies[cid] += 1

        # Final local reduction of any chunk that terminates here.
        for cid in rank_plan.terminal_chunks():
            deps = pending.pop(cid, [])
            if deps:
                yield env.all_of(deps)
            own = self.chunks[cid]
            held = copies[cid]
            reads = gpu.mc.submit_bulk(
                AccessKind.READ, Stream.COMPUTE, held * own, self.label)
            yield env.all_of(reads)
            yield from reduce_unit.acquire(hold=(held + 1) * own / cu_bw)
            writes = gpu.mc.submit_bulk(
                AccessKind.WRITE, Stream.COMPUTE, own, self.label)
            yield env.all_of(writes)
        self.result.per_rank_end[rank] = env.now


class RingAllReduce:
    """Baseline all-reduce = ring-RS followed by ring-AG (Section 2.3)."""

    label = "ar"

    def __init__(self, topology: RingTopology, nbytes_total: int,
                 n_cus: Optional[int] = None,
                 launch_overhead_ns: float = 2_000.0):
        self.topo = topology
        self.nbytes_total = nbytes_total
        self.n_cus = n_cus
        self.launch_overhead_ns = launch_overhead_ns
        self.rs_result: Optional[CollectiveResult] = None
        self.ag_result: Optional[CollectiveResult] = None

    def run(self) -> CollectiveResult:
        start = self.topo.env.now
        rs = RingReduceScatter(
            self.topo, self.nbytes_total, n_cus=self.n_cus,
            launch_overhead_ns=self.launch_overhead_ns)
        self.rs_result = rs.run()
        ag = RingAllGather(
            self.topo, self.nbytes_total, n_cus=self.n_cus,
            launch_overhead_ns=self.launch_overhead_ns)
        self.ag_result = ag.run()
        return CollectiveResult(start=start, end=self.topo.env.now)
