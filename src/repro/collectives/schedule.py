"""Chunk schedules for ring and direct collectives — views over plans.

Chunks are labelled by their **final owner**: chunk ``e`` of a
reduce-scatter ends fully reduced on device ``e``.  With the paper's ring
orientation (device ``d`` sends to ``(d-1) mod N``, Figure 7):

* at step ``s`` (1-based), device ``d`` **sends** its partial of chunk
  ``(d+s) mod N`` and **receives** the partial of chunk ``(d+s+1) mod N``;
* after step ``N-1`` the received chunk is ``d``'s own — the final, local
  reduction.

The same labelling gives the staggered GEMM production order
(:meth:`repro.gpu.wavefront.TileGrid.chunk_order`): device ``d`` must
produce chunk ``(d+s) mod N`` before step ``s``, i.e. chunks
``d+1, d+2, ..., d`` in order.

The arithmetic itself lives in one place —
:mod:`repro.collectives.plan` — and these helpers are thin per-rank
views of the corresponding :class:`~repro.collectives.plan.CollectivePlan`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.collectives.plan import (
    all_to_all_plan,
    direct_rs_plan,
    ring_all_gather_plan,
    ring_reduce_scatter_plan,
)
from repro.gpu.wavefront import split_evenly


@dataclass(frozen=True)
class RingStep:
    """One communication step on one rank."""

    step: int          # 1-based
    send_chunk: int    # chunk id being sent (partial or reduced)
    recv_chunk: int    # chunk id arriving this step


def ring_rs_schedule(n_gpus: int, rank: int) -> List[RingStep]:
    """Reduce-scatter steps for ``rank`` (N-1 steps)."""
    _validate(n_gpus, rank)
    return [
        RingStep(step=s.step, send_chunk=s.send_chunks[0],
                 recv_chunk=s.recv_chunks[0])
        for s in ring_reduce_scatter_plan(n_gpus).steps(rank)
    ]


def ring_ag_schedule(n_gpus: int, rank: int) -> List[RingStep]:
    """All-gather steps for ``rank``: forward the newest chunk each step."""
    _validate(n_gpus, rank)
    return [
        RingStep(step=s.step, send_chunk=s.send_chunks[0],
                 recv_chunk=s.recv_chunks[0])
        for s in ring_all_gather_plan(n_gpus).steps(rank)
    ]


def all_to_all_schedule(n_gpus: int, rank: int) -> List[Tuple[int, int]]:
    """(peer, chunk) pairs: rank sends chunk ``peer`` to each peer."""
    _validate(n_gpus, rank)
    return sorted(
        (s.dst, s.send_chunks[0])
        for s in all_to_all_plan(n_gpus).steps(rank)
    )


def direct_rs_peers(n_gpus: int, rank: int) -> List[Tuple[int, int]]:
    """Direct-RS on a fully-connected topology (Section 7.1): every GEMM
    stage's output is sliced and each slice ``remote_map``-ed straight to
    its final owner.  Returns (destination, chunk) pairs."""
    _validate(n_gpus, rank)
    return sorted(
        (s.dst, s.send_chunks[0])
        for s in direct_rs_plan(n_gpus).steps(rank)
    )


def chunk_sizes(nbytes_total: int, n_gpus: int) -> List[int]:
    """Chunk byte counts (balanced, summing exactly to the payload)."""
    if nbytes_total < n_gpus:
        raise ValueError(
            f"payload of {nbytes_total} bytes cannot be chunked "
            f"{n_gpus} ways"
        )
    return split_evenly(nbytes_total, n_gpus)


def _validate(n_gpus: int, rank: int) -> None:
    if n_gpus < 2:
        raise ValueError("ring collectives need at least 2 devices")
    if not 0 <= rank < n_gpus:
        raise ValueError(f"rank {rank} out of range for {n_gpus} devices")
